/**
 * @file
 * OLTP engine demo: runs the TPC-B database standalone (no simulation
 * hooks), shows transaction statistics, verifies balance conservation,
 * then crashes the system mid-flight and recovers from the write-ahead
 * log.
 */

#include <iostream>

#include "db/tpcb.hh"
#include "support/table.hh"

using namespace spikesim;

int
main()
{
    db::TpcbConfig config;
    config.branches = 10;
    config.accounts_per_branch = 1'000;
    config.buffer_frames = 256;

    db::TpcbDatabase dbase(config);
    std::cout << "loading TPC-B database: " << config.branches
              << " branches, " << dbase.numAccounts() << " accounts...\n";
    dbase.setup();
    std::cout << "account index height: "
              << dbase.accountIndex().height() << "\n\n";

    const int kTxns = 2'000;
    std::uint64_t waits = 0;
    std::uint64_t leaders = 0;
    for (int i = 0; i < kTxns; ++i) {
        db::TpcbOutcome out =
            dbase.runTransaction(static_cast<std::uint16_t>(i % 8));
        waits += out.lock_waited ? 1 : 0;
        leaders += out.flush_leader ? 1 : 0;
    }

    support::TablePrinter table({"metric", "value"});
    table.addRow({"transactions", support::withCommas(kTxns)});
    table.addRow({"buffer hit rate",
                  support::percent(
                      static_cast<double>(dbase.pool().hits()) /
                      static_cast<double>(dbase.pool().hits() +
                                          dbase.pool().misses()))});
    table.addRow({"log flushes (group commit)",
                  support::withCommas(dbase.wal().flushes())});
    table.addRow({"flush leaders", support::withCommas(leaders)});
    table.addRow({"hot-branch lock waits", support::withCommas(waits)});
    table.addRow({"history rows",
                  support::withCommas(dbase.history().numRows())});
    table.print(std::cout);

    std::string err = dbase.verify();
    std::cout << "\nbalance conservation: "
              << (err.empty() ? "OK" : err) << "\n";
    std::string tree = dbase.accountIndex().check();
    std::cout << "account index integrity: "
              << (tree.empty() ? "OK" : tree) << "\n";

    // Crash and recover.
    std::cout << "\nsimulating crash (dropping buffer pool and "
                 "unflushed log)...\n";
    dbase.crash();
    db::RecoveryResult rec = dbase.recover();
    std::cout << "recovered: " << rec.records_redone << " records redone, "
              << rec.txns_committed << " committed txns, "
              << rec.txns_lost << " lost\n";
    err = dbase.verify();
    std::cout << "post-recovery balance conservation: "
              << (err.empty() ? "OK" : err) << "\n";
    return err.empty() ? 0 : 1;
}
