/**
 * @file
 * Layout explorer: the full paper pipeline on the simulated OLTP
 * system. Runs the workload once to profile (the paper's Pixie run),
 * once more to record the measured trace, then replays the trace under
 * every optimization combination across a cache sweep.
 *
 * Usage: layout_explorer [profile_txns] [trace_txns]
 */

#include <cstdlib>
#include <iostream>

#include "core/pipeline.hh"
#include "metrics/footprint.hh"
#include "metrics/sequence.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "support/table.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    std::uint64_t profile_txns = argc > 1 ? std::atoll(argv[1]) : 400;
    std::uint64_t trace_txns = argc > 2 ? std::atoll(argv[2]) : 300;

    sim::SystemConfig config;
    sim::System system(config);
    std::cout << "app image: " << system.appProg().numProcs()
              << " procs, " << system.appProg().numBlocks() << " blocks, "
              << system.appProg().sizeInstrs() * 4 / 1024
              << "KB static text\n";
    std::cout << "kernel image: " << system.kernelProg().numProcs()
              << " procs, "
              << system.kernelProg().sizeInstrs() * 4 / 1024
              << "KB static text\n";

    std::cout << "\nloading database..." << std::flush;
    system.setup();
    std::cout << " done\nwarmup + profiling " << profile_txns
              << " txns..." << std::flush;
    system.warmup(50);
    sim::System::Profiles profiles = system.collectProfiles(profile_txns);
    std::cout << " done\nrecording trace of " << trace_txns << " txns..."
              << std::flush;
    trace::TraceBuffer buf;
    system.run(trace_txns, buf);
    std::cout << " done (" << buf.size() << " events, "
              << buf.imageEvents(trace::ImageId::Kernel)
              << " kernel)\n\n";

    metrics::FootprintCdf cdf(profiles.app);
    std::cout << "application executed footprint: "
              << cdf.totalBytes() / 1024 << "KB; 60% of execution in "
              << cdf.bytesForCoverage(0.6) / 1024 << "KB; 99% in "
              << cdf.bytesForCoverage(0.99) / 1024 << "KB\n\n";

    core::Layout kernel_layout = core::baselineLayout(
        system.kernelProg(), config.kernel_text_base);

    support::TablePrinter table({"layout", "packed text", "seq len",
                                 "32KB", "64KB", "128KB", "256KB"});
    for (core::OptCombo combo : core::allCombos()) {
        core::PipelineOptions opts;
        opts.combo = combo;
        core::Layout layout =
            core::buildLayout(system.appProg(), profiles.app, opts);
        sim::Replayer replayer(buf, layout, &kernel_layout);
        auto seq =
            metrics::sequenceLengths(buf, layout, trace::ImageId::App);
        std::vector<std::string> row{
            core::comboName(combo),
            support::bytesHuman(metrics::packedFootprintBytes(
                profiles.app, layout, 128)),
            support::fixed(seq.mean, 2)};
        for (std::uint32_t kb : {32, 64, 128, 256}) {
            auto r = replayer.icache({kb * 1024, 128, 4},
                                     sim::StreamFilter::AppOnly);
            row.push_back(support::withCommas(r.misses));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n(128B lines, 4-way, per-CPU caches, application "
                 "stream only)\n";
    return 0;
}
