/**
 * @file
 * Web-server scenario: the paper's introduction motivates code layout
 * with "commercial applications such as databases and Web servers".
 * This example shows the library applied to a different server: a
 * synthetic HTTP-server image (accept/parse/cache/CGI/filesystem
 * subsystems) driven by a request mix, profiled, optimized, and
 * measured — entirely through the public API, no database involved.
 */

#include <iostream>

#include "core/pipeline.hh"
#include "metrics/footprint.hh"
#include "metrics/sequence.hh"
#include "sim/replay.hh"
#include "support/rng.hh"
#include "support/table.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"

using namespace spikesim;

namespace {

/** A web-server-like image: layered like httpd + libc. */
synth::SynthParams
webServerImage()
{
    synth::SynthParams p;
    p.name = "httpd-like";
    p.seed = 2024;
    p.budget_base = 90.0;
    p.budget_growth = 2.6;
    p.subsystems = {
        {"accept", 0, 40, 6.0, 1.8, false},
        {"http",   1, 120, 7.0, 1.8, false},
        {"vhost",  1, 50, 5.0, 1.4, false},
        {"cache",  2, 80, 5.0, 1.2, false},
        {"cgi",    2, 90, 6.0, 1.4, false},
        {"fs",     3, 80, 5.0, 1.0, false},
        {"tls",    3, 70, 5.0, 1.0, false},
        {"libc",   4, 160, 4.0, 0.5, false},
        {"err",    5, 120, 4.0, 0.2, true},
    };
    p.entries = {
        {"accept_conn", "accept", 1.2, 0},
        {"http_parse", "http", 1.6, 1},    // hint: header count
        {"route_request", "vhost", 1.0, 0},
        {"cache_lookup", "cache", 0.9, 0},
        {"cache_fill", "cache", 1.6, 0},
        {"serve_static", "http", 1.2, 1},  // hint: chunks sent
        {"run_cgi", "cgi", 2.0, 1},        // hint: script statements
        {"fs_read", "fs", 1.2, 1},
        {"tls_record", "tls", 1.0, 1},
        {"access_log", "http", 0.7, 0},
    };
    return p;
}

/** Serves a request mix against the image. */
class WebDriver
{
  public:
    WebDriver(const synth::SyntheticProgram& image, std::uint64_t seed)
        : image_(image),
          walker_(image.prog, trace::ImageId::App, seed),
          rng_(seed, 0xebULL)
    {
    }

    void
    serveRequest(trace::TraceSink& sink)
    {
        trace::ExecContext ctx;
        ctx.cpu = static_cast<std::uint8_t>(requests_ % 2);
        ctx.process = static_cast<std::uint16_t>(requests_ % 8);
        ++requests_;
        auto run = [&](const char* name, std::initializer_list<int> h) {
            std::vector<int> hints(h);
            walker_.run(image_.entry(name), ctx, sink,
                        {hints.data(), hints.size()});
        };
        run("accept_conn", {});
        int headers = 4 + static_cast<int>(rng_.nextBounded(12));
        run("http_parse", {headers});
        run("route_request", {});
        bool tls = rng_.nextBool(0.5);
        if (tls)
            run("tls_record", {2});
        run("cache_lookup", {});
        if (rng_.nextBool(0.15)) { // static miss: hit the filesystem
            run("fs_read", {3});
            run("cache_fill", {});
        }
        if (rng_.nextBool(0.2)) { // dynamic content
            int stmts = 5 + static_cast<int>(rng_.nextBounded(20));
            run("run_cgi", {stmts});
        } else {
            int chunks = 1 + static_cast<int>(rng_.nextBounded(8));
            run("serve_static", {chunks});
        }
        if (tls)
            run("tls_record", {4});
        run("access_log", {});
    }

  private:
    const synth::SyntheticProgram& image_;
    synth::CfgWalker walker_;
    support::Pcg32 rng_;
    std::uint64_t requests_ = 0;
};

} // namespace

int
main()
{
    synth::SyntheticProgram image =
        synth::buildSyntheticProgram(webServerImage());
    std::cout << "httpd-like image: " << image.prog.numProcs()
              << " procs, " << image.prog.sizeInstrs() * 4 / 1024
              << "KB text\n";

    // Profile 2000 requests, trace another 1500.
    profile::Profile prof(image.prog);
    profile::ProfileRecorder recorder(trace::ImageId::App, prof);
    {
        WebDriver profiling_driver(image, 1);
        for (int i = 0; i < 2000; ++i)
            profiling_driver.serveRequest(recorder);
    }
    trace::TraceBuffer buf;
    {
        WebDriver measured_driver(image, 2);
        for (int i = 0; i < 1500; ++i)
            measured_driver.serveRequest(buf);
    }
    metrics::FootprintCdf cdf(prof);
    std::cout << "executed footprint: " << cdf.totalBytes() / 1024
              << "KB over " << buf.size() << " block events\n\n";

    support::TablePrinter table(
        {"layout", "16KB misses", "32KB misses", "64KB misses",
         "seq len"});
    for (core::OptCombo combo :
         {core::OptCombo::Base, core::OptCombo::Chain,
          core::OptCombo::All}) {
        core::PipelineOptions opts;
        opts.combo = combo;
        core::Layout layout = core::buildLayout(image.prog, prof, opts);
        sim::Replayer rep(buf, layout);
        auto seq =
            metrics::sequenceLengths(buf, layout, trace::ImageId::App);
        std::vector<std::string> row{core::comboName(combo)};
        for (std::uint32_t kb : {16, 32, 64}) {
            auto r = rep.icache({kb * 1024, 64, 2},
                                sim::StreamFilter::AppOnly);
            row.push_back(support::withCommas(r.misses));
        }
        row.push_back(support::fixed(seq.mean, 1));
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\nSame pipeline, different server: layout gains are "
                 "not database-specific.\n";
    return 0;
}
