/**
 * @file
 * Image inspector: prints the structural statistics of the synthetic
 * Oracle-like binary (the substrate every experiment runs on) — per-
 * subsystem size, terminator mix, entry-point costs — and optionally
 * dumps the whole image to a text file for inspection or diffing.
 *
 * Usage: image_inspector [seed] [dump-file]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>

#include "program/serialize.hh"
#include "support/table.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 42;
    synth::SynthParams params = synth::SynthParams::oracleLike(seed);
    synth::SyntheticProgram image = synth::buildSyntheticProgram(params);
    const program::Program& prog = image.prog;

    std::cout << "image '" << prog.name() << "' (seed " << seed
              << "): " << prog.numProcs() << " procedures, "
              << prog.numBlocks() << " blocks, "
              << support::bytesHuman(prog.sizeInstrs() * 4)
              << " of text\n\n";

    // Per-subsystem structure.
    struct SubStats
    {
        std::uint64_t procs = 0;
        std::uint64_t blocks = 0;
        std::uint64_t instrs = 0;
    };
    std::map<std::string, SubStats> subs;
    for (program::ProcId p = 0; p < prog.numProcs(); ++p) {
        SubStats& s = subs[image.subsystem_of[p]];
        ++s.procs;
        s.blocks += prog.proc(p).blocks.size();
        s.instrs += prog.proc(p).sizeInstrs();
    }
    support::TablePrinter sub_table(
        {"subsystem", "procs", "blocks", "text"});
    for (const auto& [name, s] : subs)
        sub_table.addRow({name, support::withCommas(s.procs),
                          support::withCommas(s.blocks),
                          support::bytesHuman(s.instrs * 4)});
    sub_table.print(std::cout);

    // Terminator mix (static).
    std::map<std::string, std::uint64_t> terms;
    for (program::GlobalBlockId g = 0; g < prog.numBlocks(); ++g)
        ++terms[program::terminatorName(prog.block(g).term)];
    std::cout << "\nterminator mix:";
    for (const auto& [name, count] : terms)
        std::cout << "  " << name << " "
                  << support::percent(
                         static_cast<double>(count) /
                         static_cast<double>(prog.numBlocks()));
    std::cout << "\n\n";

    // Entry-point dynamic cost (100 trial walks each).
    support::TablePrinter entries({"entry point", "mean instrs/call"});
    synth::CfgWalker walker(prog, trace::ImageId::App, seed);
    trace::NullSink sink;
    trace::ExecContext ctx;
    for (const synth::EntrySpec& e : params.entries) {
        std::vector<int> hints(
            static_cast<std::size_t>(e.hinted_loops), 3);
        std::uint64_t total = 0;
        for (int i = 0; i < 100; ++i)
            total += walker
                         .run(image.entry(e.name), ctx, sink,
                              {hints.data(), hints.size()})
                         .instrs;
        entries.addRow({e.name, support::withCommas(total / 100)});
    }
    entries.print(std::cout);

    if (argc > 2) {
        std::ofstream out(argv[2]);
        program::saveProgram(prog, out);
        std::cout << "\nimage dumped to " << argv[2] << "\n";
    }
    return 0;
}
