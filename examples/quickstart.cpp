/**
 * @file
 * Quickstart: the layout-optimization library on a tiny hand-built
 * program. Builds a two-procedure CFG, profiles a synthetic execution,
 * runs the full Spike-style pipeline (chain + split + Pettis-Hansen),
 * and compares instruction cache misses before and after.
 */

#include <iostream>

#include "core/pipeline.hh"
#include "metrics/sequence.hh"
#include "program/builder.hh"
#include "sim/replay.hh"
#include "support/table.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

using namespace spikesim;

namespace {

/** A procedure with a hot loop and a cold inline error path. */
program::Procedure
makeWorker(program::ProcId helper)
{
    using program::EdgeKind;
    using program::Terminator;
    program::ProcedureBuilder b("worker");
    auto entry = b.addBlock(6, Terminator::FallThrough);
    auto loop_body = b.addBlock(8, Terminator::CondBranch); // error check
    auto error = b.addBlock(12, Terminator::Return);        // cold path
    auto call = b.addBlock(2, Terminator::Call, helper);
    auto latch = b.addBlock(3, Terminator::CondBranch);
    auto exit = b.addBlock(4, Terminator::Return);
    b.addEdge(entry, loop_body, EdgeKind::FallThrough);
    b.addCond(loop_body, error, call, 0.002); // taken = error (cold)
    b.addEdge(call, latch, EdgeKind::FallThrough);
    b.addCond(latch, loop_body, exit, 0.9); // taken = loop again
    return b.build();
}

program::Procedure
makeHelper()
{
    using program::EdgeKind;
    using program::Terminator;
    program::ProcedureBuilder b("helper");
    auto entry = b.addBlock(5, Terminator::CondBranch);
    auto fast = b.addBlock(4, Terminator::Return);
    auto slow = b.addBlock(20, Terminator::Return);
    b.addCond(entry, slow, fast, 0.1);
    return b.build();
}

} // namespace

int
main()
{
    // 1. Build the program: worker calls helper inside a loop.
    program::Program prog("quickstart");
    program::ProcId helper_id = 1; // will be the second procedure
    prog.addProcedure(makeWorker(helper_id));
    prog.addProcedure(makeHelper());
    std::string err = prog.validate();
    if (!err.empty()) {
        std::cerr << "invalid program: " << err << "\n";
        return 1;
    }

    // 2. Execute it 20000 times, collecting a profile and a trace.
    profile::Profile prof(prog);
    profile::ProfileRecorder recorder(trace::ImageId::App, prof);
    trace::TraceBuffer buf;
    trace::TeeSink tee({&recorder, &buf});
    synth::CfgWalker walker(prog, trace::ImageId::App, 123);
    trace::ExecContext ctx;
    for (int i = 0; i < 20000; ++i)
        walker.run(0, ctx, tee);
    std::cout << "executed " << walker.totalInstrs()
              << " instructions over " << buf.size() << " blocks\n\n";

    // 3. Build layouts and compare a small instruction cache.
    mem::CacheConfig cache{1024, 64, 1}; // tiny, to make conflicts visible
    support::TablePrinter table(
        {"layout", "text bytes", "seq len", "misses"});
    for (core::OptCombo combo :
         {core::OptCombo::Base, core::OptCombo::Chain,
          core::OptCombo::All}) {
        core::PipelineOptions opts;
        opts.combo = combo;
        core::Layout layout = core::buildLayout(prog, prof, opts);
        sim::Replayer replayer(buf, layout);
        auto result = replayer.icache(cache, sim::StreamFilter::AppOnly);
        auto seq = metrics::sequenceLengths(buf, layout,
                                            trace::ImageId::App);
        table.addRow({core::comboName(combo),
                      std::to_string(layout.textBytes()),
                      support::fixed(seq.mean, 2),
                      support::withCommas(result.misses)});
    }
    table.print(std::cout);
    std::cout << "\nChaining straightens the hot loop; splitting + "
                 "ordering move the cold error path away.\n";
    return 0;
}
