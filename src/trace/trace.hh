#ifndef SPIKESIM_TRACE_TRACE_HH
#define SPIKESIM_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "program/program.hh"

/**
 * @file
 * Block-granular execution traces. The workload executes once and
 * records a stream of (cpu, process, image, block) events; layouts and
 * cache configurations are then evaluated by *replaying* the trace with
 * different block-address mappings, exactly mirroring the paper's
 * trace-driven methodology (SimOS-generated instruction traces fed to
 * simple cache simulators).
 */

namespace spikesim::trace {

/**
 * Which stream a trace event belongs to. App and Kernel are the two
 * executable images (block events); Data tags data-reference events
 * (used by the L1D/L2 studies; data addresses are layout-independent).
 */
enum class ImageId : std::uint8_t {
    App = 0,
    Kernel = 1,
    Data = 2,
};

inline constexpr std::size_t kNumImages = 3;

/** Execution context a block event occurred in. */
struct ExecContext
{
    std::uint16_t process = 0; ///< server process id (kernel work keeps
                               ///< the process it ran on behalf of)
    std::uint8_t cpu = 0;      ///< processor the block executed on
};

/**
 * One executed basic block (image App/Kernel; `block` is a global block
 * id) or one data reference (image Data; `block` is the word index, the
 * byte address divided by 4). 8 bytes; traces run to tens of millions.
 */
struct TraceEvent
{
    std::uint32_t block = 0;
    std::uint16_t process = 0;
    std::uint8_t cpu = 0;
    ImageId image = ImageId::App;
};

static_assert(sizeof(TraceEvent) == 8, "TraceEvent should stay compact");

/**
 * Receiver for execution events emitted by the CFG walker. onBlock is
 * the hot callback; edge/call callbacks exist so profile collection
 * sees exact flow- and call-edge counts (Pixie-equivalent).
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** A basic block executed. */
    virtual void onBlock(const ExecContext& ctx, ImageId image,
                         program::GlobalBlockId block) = 0;

    /** Control flowed across an intra-procedure edge. */
    virtual void
    onEdge(ImageId image, program::GlobalBlockId from,
           program::GlobalBlockId to)
    {
        (void)image;
        (void)from;
        (void)to;
    }

    /** A call executed from a block to a procedure (same image). */
    virtual void
    onCall(ImageId image, program::GlobalBlockId caller_block,
           program::ProcId callee)
    {
        (void)image;
        (void)caller_block;
        (void)callee;
    }

    /** A data word was referenced at the given byte address. */
    virtual void
    onData(const ExecContext& ctx, std::uint64_t byte_addr)
    {
        (void)ctx;
        (void)byte_addr;
    }
};

/** Fans events out to several sinks (e.g., trace buffer + profiler). */
class TeeSink : public TraceSink
{
  public:
    /** Sinks are borrowed; caller keeps them alive. */
    explicit TeeSink(std::vector<TraceSink*> sinks);

    void onBlock(const ExecContext& ctx, ImageId image,
                 program::GlobalBlockId block) override;
    void onEdge(ImageId image, program::GlobalBlockId from,
                program::GlobalBlockId to) override;
    void onCall(ImageId image, program::GlobalBlockId caller_block,
                program::ProcId callee) override;
    void onData(const ExecContext& ctx, std::uint64_t byte_addr) override;

  private:
    std::vector<TraceSink*> sinks_;
};

/** In-memory trace store. */
class TraceBuffer : public TraceSink
{
  public:
    TraceBuffer() = default;

    void onBlock(const ExecContext& ctx, ImageId image,
                 program::GlobalBlockId block) override;
    void onData(const ExecContext& ctx, std::uint64_t byte_addr) override;

    /** Append an already-formed event (bulk loads, e.g. TraceReader). */
    void
    append(const TraceEvent& e)
    {
        events_.push_back(e);
        per_image_[static_cast<std::size_t>(e.image)]++;
        if (e.cpu > max_cpu_)
            max_cpu_ = e.cpu;
    }

    /**
     * Bulk append for decoders: copy n already-formed events of one
     * image and one CPU (decoders emit (process, cpu) runs, so the cpu
     * is constant per call). Unlike append() in a loop, the copy is a
     * single memcpy with no per-event bookkeeping and no
     * value-initialization pass.
     */
    void
    appendRun(const TraceEvent* events, std::size_t n, ImageId image,
              std::uint8_t cpu)
    {
        per_image_[static_cast<std::size_t>(image)] += n;
        events_.insert(events_.end(), events, events + n);
        if (n > 0 && cpu > max_cpu_)
            max_cpu_ = cpu;
    }

    const std::vector<TraceEvent>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    void
    clear()
    {
        events_.clear();
        for (std::uint64_t& n : per_image_)
            n = 0;
        max_cpu_ = 0;
    }

    /**
     * Number of CPUs the trace was recorded on: one past the highest
     * cpu id observed, maintained incrementally at capture/append time
     * so consumers (Replayer, the parallel replay engine) never rescan
     * the full event stream. An empty trace reports 1.
     */
    int numCpus() const { return static_cast<int>(max_cpu_) + 1; }

    /**
     * Pre-allocate space for n events. Multi-megabyte reservations are
     * additionally madvise'd for transparent huge pages on Linux:
     * traces run to hundreds of MB, and first-touch faults on 4KB
     * pages otherwise dominate bulk decode time.
     */
    void reserve(std::size_t n);

    /** Number of block events from the given image. */
    std::uint64_t imageEvents(ImageId image) const;

    /**
     * Total dynamic instructions in the trace for an image, given the
     * program the image ids refer to (sums block sizes; excludes
     * layout-materialized branches).
     */
    std::uint64_t dynamicInstrs(const program::Program& prog,
                                ImageId image) const;

  private:
    std::vector<TraceEvent> events_;
    std::uint64_t per_image_[kNumImages] = {};
    std::uint8_t max_cpu_ = 0;
};

/** Sink that discards everything (for warmup phases). */
class NullSink : public TraceSink
{
  public:
    void
    onBlock(const ExecContext&, ImageId, program::GlobalBlockId) override
    {
    }
};

} // namespace spikesim::trace

#endif // SPIKESIM_TRACE_TRACE_HH
