#include "trace/serialize.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "support/panic.hh"

namespace spikesim::trace {

using support::ByteReader;
using support::putVarint;
using support::zigzagEncode;

namespace {

/** Value masks for the four group-varint width codes {1, 2, 4, 8}. */
constexpr std::uint64_t kWidthMask[4] = {0xffULL, 0xffffULL,
                                         0xffffffffULL, ~0ULL};

/**
 * Zero bytes appended after each data stream so the decoder's
 * unaligned 8-byte loads on the last values stay inside the buffer.
 */
constexpr std::size_t kDataPad = 7;

} // namespace

void
TraceWriter::add(const TraceEvent& e)
{
    SPIKESIM_ASSERT(!finished_, "TraceWriter::add after finish");
    const auto img_idx = static_cast<std::size_t>(e.image);
    SPIKESIM_ASSERT(img_idx < kNumImages, "bad image id in trace event");

    if (num_events_ == 0) {
        cur_process_ = e.process;
        cur_cpu_ = e.cpu;
        cur_img_ = e.image;
    }
    if (e.process != cur_process_ || e.cpu != cur_cpu_) {
        flushCtxRun();
        cur_process_ = e.process;
        cur_cpu_ = e.cpu;
    }
    if (e.image != cur_img_) {
        flushImgRun();
        cur_img_ = e.image;
    }
    ++cur_ctx_len_;
    ++cur_img_len_;

    ImageStream& s = streams_[img_idx];
    const std::int64_t delta = static_cast<std::int64_t>(e.block) -
                               static_cast<std::int64_t>(s.last);
    const std::uint64_t v = zigzagEncode(delta);
    const unsigned code = v < 0x100       ? 0
                          : v < 0x10000   ? 1
                          : v <= kWidthMask[2] ? 2
                                               : 3;
    if (s.slot == 0)
        s.ctrl.push_back(static_cast<std::uint8_t>(code));
    else
        s.ctrl.back() |= static_cast<std::uint8_t>(code << (2 * s.slot));
    s.slot = (s.slot + 1) & 3;
    std::uint8_t bytes[8];
    std::memcpy(bytes, &v, sizeof v); // little-endian hosts only
    s.data.insert(s.data.end(), bytes, bytes + (std::size_t{1} << code));
    s.last = e.block;
    ++s.count;
    ++num_events_;
}

void
TraceWriter::addAll(const TraceBuffer& buf)
{
    for (const TraceEvent& e : buf.events())
        add(e);
}

void
TraceWriter::flushCtxRun()
{
    if (cur_ctx_len_ == 0)
        return;
    putVarint(ctx_runs_, cur_ctx_len_);
    putVarint(ctx_runs_, cur_process_);
    putVarint(ctx_runs_, cur_cpu_);
    ++num_ctx_runs_;
    cur_ctx_len_ = 0;
}

void
TraceWriter::flushImgRun()
{
    if (cur_img_len_ == 0)
        return;
    putVarint(img_runs_, cur_img_len_);
    putVarint(img_runs_, static_cast<std::uint64_t>(cur_img_));
    ++num_img_runs_;
    cur_img_len_ = 0;
}

void
TraceWriter::finish(std::vector<std::uint8_t>& out)
{
    SPIKESIM_ASSERT(!finished_, "TraceWriter::finish called twice");
    finished_ = true;
    flushCtxRun();
    flushImgRun();

    putVarint(out, num_events_);
    putVarint(out, num_ctx_runs_);
    putVarint(out, ctx_runs_.size());
    out.insert(out.end(), ctx_runs_.begin(), ctx_runs_.end());
    putVarint(out, num_img_runs_);
    putVarint(out, img_runs_.size());
    out.insert(out.end(), img_runs_.begin(), img_runs_.end());
    for (const ImageStream& s : streams_) {
        putVarint(out, s.count);
        putVarint(out, s.ctrl.size());
        out.insert(out.end(), s.ctrl.begin(), s.ctrl.end());
        putVarint(out, s.data.size() + kDataPad);
        out.insert(out.end(), s.data.begin(), s.data.end());
        out.insert(out.end(), kDataPad, std::uint8_t{0});
    }
}

TraceReader::TraceReader(support::ByteReader& r)
{
    num_events_ = r.varint();
    ctx_runs_left_ = r.varint();
    ctx_runs_ = r.subReader(r.varint());
    img_runs_left_ = r.varint();
    img_runs_ = r.subReader(r.varint());
    std::uint64_t stream_total = 0;
    for (ImageStream& s : streams_) {
        s.remaining = r.varint();
        stream_total += s.remaining;
        s.ctrl = r.subReader(r.varint());
        s.data = r.subReader(r.varint());
        // Every value needs a 2-bit width code and at least one data
        // byte; the data stream additionally carries the tail pad.
        // Subtraction instead of addition so corrupt counts near 2^64
        // cannot overflow the comparisons.
        if (s.ctrl.remaining() <
            s.remaining / 4 + (s.remaining % 4 != 0 ? 1 : 0))
            support::fatal("trace section corrupt: control stream "
                           "shorter than its value count");
        if (s.data.remaining() < kDataPad ||
            s.data.remaining() - kDataPad < s.remaining)
            support::fatal("trace section corrupt: image block stream "
                           "shorter than its run lengths");
    }
    if (stream_total != num_events_)
        support::fatal("trace section corrupt: per-image counts do not "
                       "sum to the event count");
}

void
TraceReader::refillCtxRun()
{
    if (ctx_runs_left_ == 0)
        support::fatal("trace section truncated: context runs "
                       "ended before the event stream");
    --ctx_runs_left_;
    cur_ctx_left_ = ctx_runs_.varint();
    if (cur_ctx_left_ == 0)
        support::fatal("trace section corrupt: empty context run");
    cur_process_ = static_cast<std::uint16_t>(ctx_runs_.varint());
    cur_cpu_ = static_cast<std::uint8_t>(ctx_runs_.varint());
}

void
TraceReader::refillImgRun()
{
    if (img_runs_left_ == 0)
        support::fatal("trace section truncated: image runs ended "
                       "before the event stream");
    --img_runs_left_;
    cur_img_left_ = img_runs_.varint();
    if (cur_img_left_ == 0)
        support::fatal("trace section corrupt: empty image run");
    const std::uint64_t img = img_runs_.varint();
    if (img >= kNumImages)
        support::fatal("trace section corrupt: bad image id");
    cur_img_ = static_cast<ImageId>(img);
}

bool
TraceReader::next(TraceEvent& e)
{
    if (events_read_ == num_events_)
        return false;
    if (cur_ctx_left_ == 0)
        refillCtxRun();
    if (cur_img_left_ == 0)
        refillImgRun();
    --cur_ctx_left_;
    --cur_img_left_;

    ImageStream& s = streams_[static_cast<std::size_t>(cur_img_)];
    if (s.remaining == 0)
        support::fatal("trace section corrupt: image block stream "
                       "shorter than its run lengths");
    --s.remaining;
    if (s.slot == 0)
        s.cur_ctrl = *s.ctrl.raw(1);
    const unsigned code = (s.cur_ctrl >> (2 * s.slot)) & 3;
    s.slot = (s.slot + 1) & 3;
    const std::size_t len = std::size_t{1} << code;
    if (s.data.remaining() < len + kDataPad)
        support::fatal("trace section corrupt: image block stream "
                       "shorter than its run lengths");
    std::uint64_t v = 0;
    std::memcpy(&v, s.data.raw(len), len); // little-endian hosts only
    const std::int64_t block = static_cast<std::int64_t>(s.last) +
                               support::zigzagDecode(v);
    if (block < 0 || block > 0xffffffffLL)
        support::fatal("trace section corrupt: block id out of range");
    s.last = static_cast<std::uint32_t>(block);

    e.block = s.last;
    e.process = cur_process_;
    e.cpu = cur_cpu_;
    e.image = cur_img_;
    ++events_read_;
    return true;
}

void
TraceReader::readAll(TraceBuffer& buf)
{
    buf.reserve(buf.size() + (num_events_ - events_read_));
    while (events_read_ < num_events_) {
        if (cur_ctx_left_ == 0)
            refillCtxRun();
        if (cur_img_left_ == 0)
            refillImgRun();
        // Decode one (context ∩ image) run in a single tight loop.
        std::uint64_t chunk = std::min(cur_ctx_left_, cur_img_left_);
        chunk = std::min(chunk, num_events_ - events_read_);
        ImageStream& s = streams_[static_cast<std::size_t>(cur_img_)];
        if (s.remaining < chunk)
            support::fatal("trace section corrupt: image block stream "
                           "shorter than its run lengths");
        // Local copies of the stream cursors and run context: the
        // batch is filled through byte-level stores that could
        // otherwise alias the reader's members and force per-event
        // reloads.
        const std::uint8_t* cp = s.ctrl.pos();
        const std::uint8_t* const cend = cp + s.ctrl.remaining();
        const std::uint8_t* dp = s.data.pos();
        const std::uint8_t* const dend = dp + s.data.remaining();
        unsigned slot = s.slot;
        std::uint8_t ctrl_byte = s.cur_ctrl;
        std::uint32_t last = s.last;
        TraceEvent proto;
        proto.process = cur_process_;
        proto.cpu = cur_cpu_;
        proto.image = cur_img_;
        // The context half of every event in this run is identical;
        // precompose it so each event is a single 8-byte store
        // (proto.block is 0, so OR-ing the block id in is exact).
        std::uint64_t proto_word;
        std::memcpy(&proto_word, &proto, sizeof proto_word);
        // Decode into an L1-resident batch, then memcpy it into the
        // buffer: appending pre-formed events skips the
        // value-initialization pass a resize-then-write scheme pays on
        // a multi-hundred-MB buffer.
        constexpr std::uint64_t kBatch = 1024;
        TraceEvent batch[kBatch];
        for (std::uint64_t done = 0; done < chunk;) {
            const std::uint64_t want = std::min(kBatch, chunk - done);
            if (static_cast<std::uint64_t>(dend - dp) >= want * 8 &&
                static_cast<std::uint64_t>(cend - cp) >= want / 4 + 1) {
                // Fast path: enough bytes remain that no per-value
                // bounds check can fire (each value reads 8 bytes and
                // consumes at most 8; ctrl consumes at most one byte
                // per four values plus the straddled first byte).
                for (std::uint64_t i = 0; i < want; ++i) {
                    if (slot == 0)
                        ctrl_byte = *cp++;
                    const unsigned code = (ctrl_byte >> (2 * slot)) & 3;
                    slot = (slot + 1) & 3;
                    std::uint64_t v;
                    std::memcpy(&v, dp, sizeof v);
                    v &= kWidthMask[code];
                    dp += std::size_t{1} << code;
                    const std::int64_t block =
                        static_cast<std::int64_t>(last) +
                        support::zigzagDecode(v);
                    if (block < 0 || block > 0xffffffffLL)
                        support::fatal("trace section corrupt: block "
                                       "id out of range");
                    last = static_cast<std::uint32_t>(block);
                    if constexpr (std::endian::native ==
                                  std::endian::little) {
                        // block is the struct's low word on
                        // little-endian hosts, so the whole event is
                        // one 8-byte store.
                        const std::uint64_t word =
                            proto_word | static_cast<std::uint64_t>(last);
                        batch[i] = std::bit_cast<TraceEvent>(word);
                    } else {
                        batch[i] = proto;
                        batch[i].block = last;
                    }
                }
            } else {
                // Stream tails: per-value bounds checks, never reading
                // past the pad.
                for (std::uint64_t i = 0; i < want; ++i) {
                    if (slot == 0) {
                        if (cp == cend)
                            support::fatal(
                                "trace section corrupt: control stream "
                                "shorter than its value count");
                        ctrl_byte = *cp++;
                    }
                    const unsigned code = (ctrl_byte >> (2 * slot)) & 3;
                    slot = (slot + 1) & 3;
                    const std::size_t len = std::size_t{1} << code;
                    if (static_cast<std::size_t>(dend - dp) <
                        len + kDataPad)
                        support::fatal(
                            "trace section corrupt: image block stream "
                            "shorter than its run lengths");
                    std::uint64_t v = 0;
                    std::memcpy(&v, dp, len);
                    dp += len;
                    const std::int64_t block =
                        static_cast<std::int64_t>(last) +
                        support::zigzagDecode(v);
                    if (block < 0 || block > 0xffffffffLL)
                        support::fatal("trace section corrupt: block "
                                       "id out of range");
                    last = static_cast<std::uint32_t>(block);
                    batch[i] = proto;
                    batch[i].block = last;
                }
            }
            buf.appendRun(batch, static_cast<std::size_t>(want),
                          proto.image, proto.cpu);
            done += want;
        }
        s.ctrl.skip(static_cast<std::size_t>(cp - s.ctrl.pos()));
        s.data.skip(static_cast<std::size_t>(dp - s.data.pos()));
        s.slot = slot;
        s.cur_ctrl = ctrl_byte;
        s.last = last;
        s.remaining -= chunk;
        cur_ctx_left_ -= chunk;
        cur_img_left_ -= chunk;
        events_read_ += chunk;
    }
}

} // namespace spikesim::trace
