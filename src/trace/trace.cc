#include "trace/trace.hh"

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "support/panic.hh"

namespace spikesim::trace {

TeeSink::TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks))
{
    for (auto* s : sinks_)
        SPIKESIM_ASSERT(s != nullptr, "TeeSink given a null sink");
}

void
TeeSink::onBlock(const ExecContext& ctx, ImageId image,
                 program::GlobalBlockId block)
{
    for (auto* s : sinks_)
        s->onBlock(ctx, image, block);
}

void
TeeSink::onEdge(ImageId image, program::GlobalBlockId from,
                program::GlobalBlockId to)
{
    for (auto* s : sinks_)
        s->onEdge(image, from, to);
}

void
TeeSink::onCall(ImageId image, program::GlobalBlockId caller_block,
                program::ProcId callee)
{
    for (auto* s : sinks_)
        s->onCall(image, caller_block, callee);
}

void
TeeSink::onData(const ExecContext& ctx, std::uint64_t byte_addr)
{
    for (auto* s : sinks_)
        s->onData(ctx, byte_addr);
}

void
TraceBuffer::onBlock(const ExecContext& ctx, ImageId image,
                     program::GlobalBlockId block)
{
    TraceEvent e;
    e.block = block;
    e.process = ctx.process;
    e.cpu = ctx.cpu;
    e.image = image;
    events_.push_back(e);
    per_image_[static_cast<std::size_t>(image)]++;
    if (e.cpu > max_cpu_)
        max_cpu_ = e.cpu;
}

void
TraceBuffer::onData(const ExecContext& ctx, std::uint64_t byte_addr)
{
    TraceEvent e;
    e.block = static_cast<std::uint32_t>(byte_addr >> 2);
    e.process = ctx.process;
    e.cpu = ctx.cpu;
    e.image = ImageId::Data;
    events_.push_back(e);
    per_image_[static_cast<std::size_t>(ImageId::Data)]++;
    if (e.cpu > max_cpu_)
        max_cpu_ = e.cpu;
}

void
TraceBuffer::reserve(std::size_t n)
{
    if (n <= events_.capacity())
        return;
    events_.reserve(n);
#ifdef __linux__
    // Large reservations are about to be filled front to back, so tell
    // the kernel up front instead of paying ~50k first-touch faults on
    // a 200MB buffer: prefault the whole range in one syscall where
    // MADV_POPULATE_WRITE exists (5.14+), and ask for 2MB pages on the
    // interior when THP is in madvise mode. Both are best-effort:
    // errors are ignored and writes just fault on demand.
    const std::size_t bytes = events_.capacity() * sizeof(TraceEvent);
    if (bytes >= (std::size_t{8} << 20)) {
        const auto addr = reinterpret_cast<std::uintptr_t>(events_.data());
#ifdef MADV_HUGEPAGE
        constexpr std::uintptr_t kHuge = std::uintptr_t{2} << 20;
        const std::uintptr_t hlo = (addr + kHuge - 1) & ~(kHuge - 1);
        const std::uintptr_t hhi = (addr + bytes) & ~(kHuge - 1);
        if (hhi > hlo)
            ::madvise(reinterpret_cast<void*>(hlo), hhi - hlo,
                      MADV_HUGEPAGE);
#endif
#ifdef MADV_POPULATE_WRITE
        constexpr std::uintptr_t kPage = 4096;
        const std::uintptr_t plo = (addr + kPage - 1) & ~(kPage - 1);
        const std::uintptr_t phi = (addr + bytes) & ~(kPage - 1);
        if (phi > plo)
            ::madvise(reinterpret_cast<void*>(plo), phi - plo,
                      MADV_POPULATE_WRITE);
#endif
    }
#endif
}

std::uint64_t
TraceBuffer::imageEvents(ImageId image) const
{
    return per_image_[static_cast<std::size_t>(image)];
}

std::uint64_t
TraceBuffer::dynamicInstrs(const program::Program& prog, ImageId image) const
{
    std::uint64_t total = 0;
    for (const auto& e : events_)
        if (e.image == image)
            total += prog.block(e.block).sizeInstrs;
    return total;
}

} // namespace spikesim::trace
