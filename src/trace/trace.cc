#include "trace/trace.hh"

#include "support/panic.hh"

namespace spikesim::trace {

TeeSink::TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks))
{
    for (auto* s : sinks_)
        SPIKESIM_ASSERT(s != nullptr, "TeeSink given a null sink");
}

void
TeeSink::onBlock(const ExecContext& ctx, ImageId image,
                 program::GlobalBlockId block)
{
    for (auto* s : sinks_)
        s->onBlock(ctx, image, block);
}

void
TeeSink::onEdge(ImageId image, program::GlobalBlockId from,
                program::GlobalBlockId to)
{
    for (auto* s : sinks_)
        s->onEdge(image, from, to);
}

void
TeeSink::onCall(ImageId image, program::GlobalBlockId caller_block,
                program::ProcId callee)
{
    for (auto* s : sinks_)
        s->onCall(image, caller_block, callee);
}

void
TeeSink::onData(const ExecContext& ctx, std::uint64_t byte_addr)
{
    for (auto* s : sinks_)
        s->onData(ctx, byte_addr);
}

void
TraceBuffer::onBlock(const ExecContext& ctx, ImageId image,
                     program::GlobalBlockId block)
{
    TraceEvent e;
    e.block = block;
    e.process = ctx.process;
    e.cpu = ctx.cpu;
    e.image = image;
    events_.push_back(e);
    per_image_[static_cast<std::size_t>(image)]++;
}

void
TraceBuffer::onData(const ExecContext& ctx, std::uint64_t byte_addr)
{
    TraceEvent e;
    e.block = static_cast<std::uint32_t>(byte_addr >> 2);
    e.process = ctx.process;
    e.cpu = ctx.cpu;
    e.image = ImageId::Data;
    events_.push_back(e);
    per_image_[static_cast<std::size_t>(ImageId::Data)]++;
}

std::uint64_t
TraceBuffer::imageEvents(ImageId image) const
{
    return per_image_[static_cast<std::size_t>(image)];
}

std::uint64_t
TraceBuffer::dynamicInstrs(const program::Program& prog, ImageId image) const
{
    std::uint64_t total = 0;
    for (const auto& e : events_)
        if (e.image == image)
            total += prog.block(e.block).sizeInstrs;
    return total;
}

} // namespace spikesim::trace
