#ifndef SPIKESIM_TRACE_SERIALIZE_HH
#define SPIKESIM_TRACE_SERIALIZE_HH

#include <cstdint>
#include <vector>

#include "support/varint.hh"
#include "trace/trace.hh"

/**
 * @file
 * Compact binary serialization of TraceBuffer event streams. The
 * encoding exploits the structure of the trace:
 *
 *  - Events arrive in long runs of the same image (the CFG walker emits
 *    many App blocks, then a burst of Kernel blocks, then Data touches),
 *    so the image id stream is run-length encoded.
 *  - The (process, cpu) context changes only at transaction boundaries
 *    and context switches — thousands of events apart — so it is also
 *    run-length encoded.
 *  - Block ids are spatially local within one image (CFG walks revisit
 *    nearby blocks), so each image's block-id stream is delta-encoded
 *    against the previous block of the *same* image and stored zigzag
 *    as group varints: a control stream holding one byte per four
 *    deltas (two bits each coding a width of 1, 2, 4 or 8 bytes) and a
 *    data stream holding just the value bytes, typically 1–2 per event
 *    vs. the 8-byte in-memory TraceEvent. Decoupling widths from data
 *    lets the decoder run branch-free masked 8-byte loads instead of
 *    testing a continuation bit per byte — LEB128's load→length→
 *    address dependency chain is what bounds a varint decoder.
 *
 * The interleaved total order — which cache simulation depends on — is
 * exactly reconstructed from the image run lengths.
 *
 * Section layout (lengths as LEB128 varints, see DESIGN.md §10):
 *
 *   varint num_events
 *   varint num_ctx_runs,  varint byte_len, runs: (len, process, cpu)
 *   varint num_img_runs,  varint byte_len, runs: (len, image)
 *   3 × per-image stream: varint count,
 *                         varint ctrl_len, control bytes,
 *                         varint data_len, value bytes + 7 pad bytes
 *                         (pad keeps the decoder's unaligned 8-byte
 *                         tail loads inside the buffer)
 */

namespace spikesim::trace {

/**
 * Streaming encoder: feed events in trace order via add() (or a whole
 * buffer via addAll()), then finish() appends the encoded section to an
 * output byte vector. State per event is O(1) beyond the output bytes.
 */
class TraceWriter
{
  public:
    TraceWriter() = default;

    /** Append one event (must be called in trace order). */
    void add(const TraceEvent& e);

    /** Append every event of a buffer. */
    void addAll(const TraceBuffer& buf);

    /** Flush pending runs and append the encoded section to `out`. */
    void finish(std::vector<std::uint8_t>& out);

    std::uint64_t numEvents() const { return num_events_; }

  private:
    void flushCtxRun();
    void flushImgRun();

    struct ImageStream
    {
        std::vector<std::uint8_t> ctrl; ///< 2-bit width codes, 4/byte
        std::vector<std::uint8_t> data; ///< value bytes, widths in ctrl
        std::uint32_t last = 0;
        std::uint64_t count = 0;
        unsigned slot = 0; ///< next 2-bit position in the ctrl byte
    };

    ImageStream streams_[kNumImages];
    std::vector<std::uint8_t> ctx_runs_;
    std::vector<std::uint8_t> img_runs_;
    std::uint64_t num_ctx_runs_ = 0;
    std::uint64_t num_img_runs_ = 0;
    std::uint64_t cur_ctx_len_ = 0;
    std::uint16_t cur_process_ = 0;
    std::uint8_t cur_cpu_ = 0;
    std::uint64_t cur_img_len_ = 0;
    ImageId cur_img_ = ImageId::App;
    std::uint64_t num_events_ = 0;
    bool finished_ = false;
};

/**
 * Streaming decoder over an encoded section (e.g. a slice of an
 * mmap-ed corpus file; the bytes must stay alive while reading).
 * fatal()s on any structural corruption — never yields garbage events.
 */
class TraceReader
{
  public:
    /** `r` is positioned at the start of a section written by
     *  TraceWriter::finish(); the reader consumes exactly the section. */
    explicit TraceReader(support::ByteReader& r);

    std::uint64_t numEvents() const { return num_events_; }

    /** Decode the next event; false when the section is exhausted. */
    bool next(TraceEvent& e);

    /**
     * Decode all (remaining) events, appending to `buf` (reserved).
     * Faster than a next() loop: run boundaries are resolved once per
     * run, and the run's events are written straight into the buffer.
     */
    void readAll(TraceBuffer& buf);

  private:
    void refillCtxRun();
    void refillImgRun();
    struct ImageStream
    {
        support::ByteReader ctrl;
        support::ByteReader data;
        std::uint32_t last = 0;
        std::uint64_t remaining = 0;
        unsigned slot = 0;            ///< next 2-bit ctrl position
        std::uint8_t cur_ctrl = 0;    ///< ctrl byte being consumed
    };

    ImageStream streams_[kNumImages];
    support::ByteReader ctx_runs_;
    support::ByteReader img_runs_;
    std::uint64_t ctx_runs_left_ = 0;
    std::uint64_t img_runs_left_ = 0;
    std::uint64_t cur_ctx_left_ = 0;
    std::uint16_t cur_process_ = 0;
    std::uint8_t cur_cpu_ = 0;
    std::uint64_t cur_img_left_ = 0;
    ImageId cur_img_ = ImageId::App;
    std::uint64_t num_events_ = 0;
    std::uint64_t events_read_ = 0;
};

} // namespace spikesim::trace

#endif // SPIKESIM_TRACE_SERIALIZE_HH
