#include "serve/arrival.hh"

#include <algorithm>
#include <cmath>

#include "support/panic.hh"
#include "support/rng.hh"

namespace spikesim::serve {

namespace {

/** Per-session RNG stream id namespace (disjoint from other users of
 *  the bench seed). */
constexpr std::uint64_t kArrivalStream = 0xa1120000ULL;

/** Exponential variate with the given mean, in cycles (>= 0). */
double
expVariate(support::Pcg32& rng, double mean)
{
    // nextDouble() is in [0, 1), so 1-u is in (0, 1] and log() is safe.
    return -std::log(1.0 - rng.nextDouble()) * mean;
}

void
poissonSession(std::uint32_t session, const ArrivalConfig& cfg,
               double mean_gap, std::vector<Arrival>& out)
{
    support::Pcg32 rng(cfg.seed, kArrivalStream + session);
    double t = expVariate(rng, mean_gap);
    while (t < static_cast<double>(cfg.horizon_cycles)) {
        out.push_back({static_cast<std::uint64_t>(t), session});
        t += expVariate(rng, mean_gap);
    }
}

void
burstySession(std::uint32_t session, const ArrivalConfig& cfg,
              double mean_gap, std::vector<Arrival>& out)
{
    support::Pcg32 rng(cfg.seed, kArrivalStream + session);
    const double mean_on = cfg.mean_on_cycles;
    const double mean_off =
        mean_on * (1.0 - cfg.on_fraction) / cfg.on_fraction;
    // While ON the session fires faster by 1/on_fraction so its
    // long-run rate matches the Poisson configuration.
    const double on_gap = mean_gap * cfg.on_fraction;
    const double horizon = static_cast<double>(cfg.horizon_cycles);

    // Start in ON with the stationary probability, so the stream has
    // no warm-up transient.
    bool on = rng.nextBool(cfg.on_fraction);
    double t = 0.0;
    while (t < horizon) {
        if (!on) {
            t += expVariate(rng, mean_off);
            on = true;
            continue;
        }
        double burst_end = t + expVariate(rng, mean_on);
        double a = t + expVariate(rng, on_gap);
        while (a < burst_end && a < horizon) {
            out.push_back({static_cast<std::uint64_t>(a), session});
            a += expVariate(rng, on_gap);
        }
        t = burst_end;
        on = false;
    }
}

} // namespace

std::string
ArrivalConfig::check() const
{
    if (sessions == 0)
        return "sessions must be > 0";
    if (!(rate > 0.0))
        return "rate must be > 0";
    if (horizon_cycles == 0)
        return "horizon_cycles must be > 0";
    if (kind == ArrivalKind::Bursty &&
        (!(on_fraction > 0.0) || on_fraction > 1.0))
        return "on_fraction must be in (0, 1]";
    if (kind == ArrivalKind::Bursty && !(mean_on_cycles > 0.0))
        return "mean_on_cycles must be > 0";
    return "";
}

std::vector<Arrival>
generateArrivals(const ArrivalConfig& cfg)
{
    SPIKESIM_ASSERT(cfg.check().empty(),
                    "bad arrival config: " << cfg.check());
    const double mean_gap =
        static_cast<double>(cfg.sessions) / cfg.rate;
    std::vector<Arrival> out;
    out.reserve(static_cast<std::size_t>(
        cfg.rate * static_cast<double>(cfg.horizon_cycles) * 1.1));
    for (std::uint32_t s = 0; s < cfg.sessions; ++s) {
        if (cfg.kind == ArrivalKind::Poisson)
            poissonSession(s, cfg, mean_gap, out);
        else
            burstySession(s, cfg, mean_gap, out);
    }
    // Stable by construction within a session; the explicit (time,
    // session) order makes the merged stream deterministic.
    std::stable_sort(out.begin(), out.end(),
                     [](const Arrival& a, const Arrival& b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         return a.session < b.session;
                     });
    return out;
}

} // namespace spikesim::serve
