#include "serve/queueing.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "obs/registry.hh"
#include "support/panic.hh"
#include "support/rng.hh"

namespace spikesim::serve {

namespace {

/** Service-time sampling stream id (disjoint from arrival streams). */
constexpr std::uint64_t kServiceStream = 0x5e41ce00ULL;

/** One shard's view: arrivals in global order, pre-sampled service. */
struct ShardWork
{
    std::vector<std::uint64_t> times;
    std::vector<std::uint64_t> services;
};

/** Per-shard outputs before the ordered merge. */
struct ShardOut
{
    ShardResult result;
    obs::QuantileSketch latency_sketch;
    std::vector<std::uint64_t> latencies;
    std::vector<std::uint64_t> depth_hist;
    std::vector<WindowStats> windows;
};

/** Grow `windows` so index `w` exists. */
WindowStats& windowAt(std::vector<WindowStats>& windows, std::uint64_t w)
{
    if (windows.size() <= w)
        windows.resize(static_cast<std::size_t>(w) + 1);
    return windows[static_cast<std::size_t>(w)];
}

/**
 * Single-server FIFO queue with bounded admission: depth at arrival is
 * the number of admitted-but-incomplete requests (a request completing
 * exactly at the arrival instant counts as done); arrivals at full
 * depth are dropped. Window accounting bins arrivals/drops/depth by
 * arrival time and completions (plus their latency) by completion
 * time.
 */
void
runShard(const ShardWork& work, const QueueConfig& config, ShardOut& out)
{
    const std::uint32_t bound = config.queue_bound;
    const std::uint64_t wc = config.window_cycles;
    out.depth_hist.assign(bound + 1, 0);
    std::deque<std::uint64_t> completions;
    std::uint64_t server_free = 0;
    for (std::size_t i = 0; i < work.times.size(); ++i) {
        const std::uint64_t t = work.times[i];
        while (!completions.empty() && completions.front() <= t)
            completions.pop_front();
        const std::uint32_t depth =
            static_cast<std::uint32_t>(completions.size());
        ++out.result.arrivals;
        ++out.depth_hist[depth];
        WindowStats* win = wc ? &windowAt(out.windows, t / wc) : nullptr;
        if (win != nullptr) {
            ++win->arrivals;
            win->depth_max = std::max<std::uint64_t>(win->depth_max, depth);
        }
        if (depth >= bound) {
            ++out.result.dropped;
            if (win != nullptr)
                ++win->dropped;
            continue;
        }
        const std::uint64_t service = work.services[i];
        const std::uint64_t start = std::max(t, server_free);
        const std::uint64_t done = start + service;
        completions.push_back(done);
        server_free = done;
        ++out.result.admitted;
        out.result.busy_cycles += service;
        out.result.last_completion = done;
        const std::uint64_t latency = done - t;
        out.latency_sketch.record(latency);
        if (config.keep_latencies)
            out.latencies.push_back(latency);
        if (wc) {
            WindowStats& cw = windowAt(out.windows, done / wc);
            ++cw.completed;
            cw.latency.record(latency);
        }
    }
}

} // namespace

std::uint64_t
percentileSorted(std::span<const std::uint64_t> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

ServingResult
simulateOpenLoop(std::span<const Arrival> arrivals,
                 std::span<const std::uint64_t> service_cycles,
                 std::uint64_t horizon_cycles, const QueueConfig& config,
                 support::ThreadPool* pool)
{
    SPIKESIM_ASSERT(config.shards >= 1, "shards must be >= 1");
    SPIKESIM_ASSERT(config.queue_bound >= 1,
                    "queue_bound must be >= 1");
    SPIKESIM_ASSERT(!service_cycles.empty(),
                    "service-time table is empty");
    const std::size_t nshards =
        static_cast<std::size_t>(config.shards);

    // Sample service times by global arrival index *before* sharding,
    // so the assignment is independent of shard topology and thread
    // count.
    support::Pcg32 rng(config.seed, kServiceStream);
    std::vector<ShardWork> work(nshards);
    for (const Arrival& a : arrivals) {
        const std::uint64_t service = service_cycles[rng.nextBounded(
            static_cast<std::uint32_t>(service_cycles.size()))];
        ShardWork& w = work[a.session % nshards];
        w.times.push_back(a.time);
        w.services.push_back(service);
    }

    std::vector<ShardOut> outs(nshards);
    if (pool != nullptr) {
        for (std::size_t s = 0; s < nshards; ++s)
            pool->submit([&, s] {
                runShard(work[s], config, outs[s]);
            });
        pool->wait();
    } else {
        for (std::size_t s = 0; s < nshards; ++s)
            runShard(work[s], config, outs[s]);
    }

    // Ordered merge: shard order, integer sketch-bucket and window
    // counts — independent of execution interleaving by construction.
    ServingResult r;
    r.horizon_cycles = horizon_cycles;
    r.window_cycles = config.window_cycles;
    r.offered = arrivals.size();
    r.depth_hist.assign(config.queue_bound + 1, 0);
    for (std::size_t s = 0; s < nshards; ++s) {
        const ShardOut& o = outs[s];
        r.completed += o.result.admitted;
        r.dropped += o.result.dropped;
        r.makespan_cycles =
            std::max(r.makespan_cycles, o.result.last_completion);
        for (std::size_t d = 0; d < o.depth_hist.size(); ++d)
            r.depth_hist[d] += o.depth_hist[d];
        r.latency_sketch.merge(o.latency_sketch);
        if (r.windows.size() < o.windows.size())
            r.windows.resize(o.windows.size());
        for (std::size_t w = 0; w < o.windows.size(); ++w) {
            WindowStats& dst = r.windows[w];
            const WindowStats& src = o.windows[w];
            dst.arrivals += src.arrivals;
            dst.completed += src.completed;
            dst.dropped += src.dropped;
            dst.depth_max = std::max(dst.depth_max, src.depth_max);
            dst.latency.merge(src.latency);
        }
        if (config.keep_latencies)
            r.latencies_sorted.insert(r.latencies_sorted.end(),
                                      o.latencies.begin(),
                                      o.latencies.end());
        r.shards.push_back(o.result);
    }
    std::sort(r.latencies_sorted.begin(), r.latencies_sorted.end());
    if (!r.latency_sketch.empty()) {
        r.p50 = r.latency_sketch.quantile(0.50);
        r.p90 = r.latency_sketch.quantile(0.90);
        r.p99 = r.latency_sketch.quantile(0.99);
        r.p999 = r.latency_sketch.quantile(0.999);
        r.max_latency = r.latency_sketch.max();
        r.mean_latency = r.latency_sketch.mean();
    }
    std::uint64_t busy = 0;
    for (const ShardResult& s : r.shards)
        busy += s.busy_cycles;
    if (r.makespan_cycles > 0)
        r.utilization = static_cast<double>(busy) /
                        (static_cast<double>(nshards) *
                         static_cast<double>(r.makespan_cycles));

    // Observability: totals and distributions for active manifests.
    // Histograms are fed in bulk from the sketch buckets / depth
    // counts instead of one record() per sample.
    obs::counter("serve.offered").add(r.offered);
    obs::counter("serve.completed").add(r.completed);
    obs::counter("serve.dropped").add(r.dropped);
    auto& lat_hist = obs::histogram("serve.latency_cycles");
    const std::vector<std::uint64_t>& buckets =
        r.latency_sketch.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b)
        if (buckets[b])
            lat_hist.record(obs::QuantileSketch::bucketLowerBound(b),
                            buckets[b]);
    auto& depth_hist = obs::histogram("serve.queue_depth");
    for (std::size_t d = 0; d < r.depth_hist.size(); ++d)
        if (r.depth_hist[d])
            depth_hist.record(d, r.depth_hist[d]);
    obs::sketch("serve.latency_cycles").merge(r.latency_sketch);
    obs::gauge("serve.makespan_cycles").max(
        static_cast<std::int64_t>(r.makespan_cycles));
    return r;
}

} // namespace spikesim::serve
