#include "serve/queueing.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "obs/registry.hh"
#include "support/panic.hh"
#include "support/rng.hh"

namespace spikesim::serve {

namespace {

/** Service-time sampling stream id (disjoint from arrival streams). */
constexpr std::uint64_t kServiceStream = 0x5e41ce00ULL;

/** One shard's view: arrivals in global order, pre-sampled service. */
struct ShardWork
{
    std::vector<std::uint64_t> times;
    std::vector<std::uint64_t> services;
};

/** Per-shard outputs before the ordered merge. */
struct ShardOut
{
    ShardResult result;
    std::vector<std::uint64_t> latencies;
    std::vector<std::uint64_t> depth_hist;
};

/**
 * Single-server FIFO queue with bounded admission: depth at arrival is
 * the number of admitted-but-incomplete requests (a request completing
 * exactly at the arrival instant counts as done); arrivals at full
 * depth are dropped.
 */
void
runShard(const ShardWork& work, std::uint32_t bound, ShardOut& out)
{
    out.depth_hist.assign(bound + 1, 0);
    std::deque<std::uint64_t> completions;
    std::uint64_t server_free = 0;
    for (std::size_t i = 0; i < work.times.size(); ++i) {
        const std::uint64_t t = work.times[i];
        while (!completions.empty() && completions.front() <= t)
            completions.pop_front();
        const std::uint32_t depth =
            static_cast<std::uint32_t>(completions.size());
        ++out.result.arrivals;
        ++out.depth_hist[depth];
        if (depth >= bound) {
            ++out.result.dropped;
            continue;
        }
        const std::uint64_t service = work.services[i];
        const std::uint64_t start = std::max(t, server_free);
        const std::uint64_t done = start + service;
        completions.push_back(done);
        server_free = done;
        ++out.result.admitted;
        out.result.busy_cycles += service;
        out.result.last_completion = done;
        out.latencies.push_back(done - t);
    }
}

} // namespace

std::uint64_t
percentileSorted(std::span<const std::uint64_t> sorted, double q)
{
    if (sorted.empty())
        return 0;
    const double n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

ServingResult
simulateOpenLoop(std::span<const Arrival> arrivals,
                 std::span<const std::uint64_t> service_cycles,
                 std::uint64_t horizon_cycles, const QueueConfig& config,
                 support::ThreadPool* pool)
{
    SPIKESIM_ASSERT(config.shards >= 1, "shards must be >= 1");
    SPIKESIM_ASSERT(config.queue_bound >= 1,
                    "queue_bound must be >= 1");
    SPIKESIM_ASSERT(!service_cycles.empty(),
                    "service-time table is empty");
    const std::size_t nshards =
        static_cast<std::size_t>(config.shards);

    // Sample service times by global arrival index *before* sharding,
    // so the assignment is independent of shard topology and thread
    // count.
    support::Pcg32 rng(config.seed, kServiceStream);
    std::vector<ShardWork> work(nshards);
    for (const Arrival& a : arrivals) {
        const std::uint64_t service = service_cycles[rng.nextBounded(
            static_cast<std::uint32_t>(service_cycles.size()))];
        ShardWork& w = work[a.session % nshards];
        w.times.push_back(a.time);
        w.services.push_back(service);
    }

    std::vector<ShardOut> outs(nshards);
    if (pool != nullptr) {
        for (std::size_t s = 0; s < nshards; ++s)
            pool->submit([&, s] {
                runShard(work[s], config.queue_bound, outs[s]);
            });
        pool->wait();
    } else {
        for (std::size_t s = 0; s < nshards; ++s)
            runShard(work[s], config.queue_bound, outs[s]);
    }

    // Ordered merge: shard order, then one global sort of latencies —
    // both independent of execution interleaving.
    ServingResult r;
    r.horizon_cycles = horizon_cycles;
    r.offered = arrivals.size();
    r.depth_hist.assign(config.queue_bound + 1, 0);
    for (std::size_t s = 0; s < nshards; ++s) {
        const ShardOut& o = outs[s];
        r.completed += o.result.admitted;
        r.dropped += o.result.dropped;
        r.makespan_cycles =
            std::max(r.makespan_cycles, o.result.last_completion);
        for (std::size_t d = 0; d < o.depth_hist.size(); ++d)
            r.depth_hist[d] += o.depth_hist[d];
        r.latencies_sorted.insert(r.latencies_sorted.end(),
                                  o.latencies.begin(),
                                  o.latencies.end());
        r.shards.push_back(o.result);
    }
    std::sort(r.latencies_sorted.begin(), r.latencies_sorted.end());
    if (!r.latencies_sorted.empty()) {
        r.p50 = percentileSorted(r.latencies_sorted, 0.50);
        r.p90 = percentileSorted(r.latencies_sorted, 0.90);
        r.p99 = percentileSorted(r.latencies_sorted, 0.99);
        r.p999 = percentileSorted(r.latencies_sorted, 0.999);
        r.max_latency = r.latencies_sorted.back();
        std::uint64_t total = 0;
        for (std::uint64_t l : r.latencies_sorted)
            total += l;
        r.mean_latency =
            static_cast<double>(total) /
            static_cast<double>(r.latencies_sorted.size());
    }
    std::uint64_t busy = 0;
    for (const ShardResult& s : r.shards)
        busy += s.busy_cycles;
    if (r.makespan_cycles > 0)
        r.utilization = static_cast<double>(busy) /
                        (static_cast<double>(nshards) *
                         static_cast<double>(r.makespan_cycles));

    // Observability: totals and distributions for active manifests.
    obs::counter("serve.offered").add(r.offered);
    obs::counter("serve.completed").add(r.completed);
    obs::counter("serve.dropped").add(r.dropped);
    auto& lat_hist = obs::histogram("serve.latency_cycles");
    for (std::uint64_t l : r.latencies_sorted)
        lat_hist.record(l);
    auto& depth_hist = obs::histogram("serve.queue_depth");
    for (std::size_t d = 0; d < r.depth_hist.size(); ++d)
        for (std::uint64_t n = 0; n < r.depth_hist[d]; ++n)
            depth_hist.record(d);
    obs::gauge("serve.makespan_cycles").max(
        static_cast<std::int64_t>(r.makespan_cycles));
    return r;
}

} // namespace spikesim::serve
