#include "serve/service.hh"

#include <algorithm>

#include "serve/queueing.hh"
#include "support/panic.hh"

namespace spikesim::serve {

namespace {

/** Tenant address-space salt: page-granular, far above every text base
 *  and data region, so tenants collide in the shared L2/iTLB only the
 *  way distinct address spaces do (different pages, same capacity). */
constexpr std::uint64_t kTenantSaltShift = 44;

const core::Layout&
layoutFor(trace::ImageId image, const core::Layout& app,
          const core::Layout* kernel)
{
    if (image == trace::ImageId::App)
        return app;
    SPIKESIM_ASSERT(kernel != nullptr,
                    "service model needs a kernel layout for kernel "
                    "events");
    return *kernel;
}

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
ServiceModel::segments(const trace::TraceBuffer& trace)
{
    std::vector<std::pair<std::size_t, std::size_t>> segs;
    const auto events = trace.events();
    std::size_t start = 0;
    for (std::size_t i = 1; i < events.size(); ++i)
        if (events[i].process != events[i - 1].process) {
            segs.emplace_back(start, i);
            start = i;
        }
    if (start < events.size())
        segs.emplace_back(start, events.size());
    return segs;
}

ServiceModel::ServiceModel(const trace::TraceBuffer& trace,
                           const core::Layout& app,
                           const core::Layout* kernel,
                           const ServiceModelConfig& config)
{
    SPIKESIM_ASSERT(config.tenants >= 1, "tenants must be >= 1");
    const sim::PlatformParams& p = config.platform;
    const mem::HierarchyConfig& h = p.hierarchy;
    const int ncpus = trace.numCpus();
    const std::size_t tenants =
        static_cast<std::size_t>(config.tenants);
    const auto segs = segments(trace);
    const auto events = trace.events();

    // Private L1 I/D per (tenant, cpu); shared L2 + iTLB per cpu.
    std::vector<mem::SetAssocCache> l1i;
    std::vector<mem::SetAssocCache> l1d;
    std::vector<mem::SetAssocCache> l2;
    std::vector<mem::ITlb> itlb;
    l1i.reserve(tenants * static_cast<std::size_t>(ncpus));
    l1d.reserve(tenants * static_cast<std::size_t>(ncpus));
    for (std::size_t i = 0; i < tenants * static_cast<std::size_t>(ncpus);
         ++i) {
        l1i.emplace_back(h.l1i);
        l1d.emplace_back(h.l1d);
    }
    l2.reserve(static_cast<std::size_t>(ncpus));
    itlb.reserve(static_cast<std::size_t>(ncpus));
    for (int i = 0; i < ncpus; ++i) {
        l2.emplace_back(h.l2);
        itlb.emplace_back(h.itlb_entries, h.page_bytes);
    }
    std::vector<std::uint64_t> expected(
        tenants * static_cast<std::size_t>(ncpus), ~0ULL);

    const std::uint64_t iline = h.l1i.line_bytes;
    const std::uint64_t dline = h.l1d.line_bytes;
    cycles_.reserve(segs.size() * tenants);

    // Tenants execute the trace interleaved one transaction at a time:
    // request g is tenant g % tenants running segment g / tenants.
    for (std::size_t g = 0; g < segs.size() * tenants; ++g) {
        const std::size_t t = g % tenants;
        const auto [seg_begin, seg_end] = segs[g / tenants];
        const std::uint64_t salt = static_cast<std::uint64_t>(t)
                                   << kTenantSaltShift;
        double c = 0.0;
        for (std::size_t i = seg_begin; i < seg_end; ++i) {
            const trace::TraceEvent& e = events[i];
            const std::size_t tc =
                t * static_cast<std::size_t>(ncpus) + e.cpu;
            if (e.image == trace::ImageId::Data) {
                if (!config.include_data)
                    continue;
                const std::uint64_t line =
                    (static_cast<std::uint64_t>(e.block) << 2) &
                    ~(dline - 1);
                if (l1d[tc].access(line, mem::Owner::Data).hit) {
                    stats_.mem.l1d.record(false);
                    continue;
                }
                stats_.mem.l1d.record(true);
                c += p.l2_hit_cycles;
                const bool miss =
                    !l2[e.cpu]
                         .access(mem::pseudoPhysical(line + salt,
                                                     h.page_bytes),
                                 mem::Owner::Data)
                         .hit;
                stats_.mem.l2d.record(miss);
                if (miss)
                    c += p.mem_cycles;
                continue;
            }
            const core::Layout& layout = layoutFor(e.image, app, kernel);
            const std::uint64_t bytes = layout.blockBytes(e.block);
            if (bytes == 0)
                continue;
            const std::uint64_t addr = layout.blockAddr(e.block);
            const std::uint64_t end = addr + bytes;
            const std::uint64_t instrs = layout.blockSize(e.block);
            stats_.instrs += instrs;
            c += static_cast<double>(instrs) * p.cpi_base;
            if (addr != expected[tc]) {
                ++stats_.fetch_breaks;
                c += p.fetch_break_cycles;
            }
            expected[tc] = end;
            const mem::Owner owner = e.image == trace::ImageId::App
                                         ? mem::Owner::App
                                         : mem::Owner::Kernel;
            for (std::uint64_t a = addr & ~(iline - 1); a < end;
                 a += iline) {
                if (!itlb[e.cpu].access(a + salt)) {
                    ++stats_.mem.itlb_misses;
                    c += p.itlb_cycles;
                }
                if (l1i[tc].access(a, owner).hit) {
                    stats_.mem.l1i.record(false);
                    continue;
                }
                stats_.mem.l1i.record(true);
                c += p.l2_hit_cycles;
                const bool miss =
                    !l2[e.cpu]
                         .access(mem::pseudoPhysical(a + salt,
                                                     h.page_bytes),
                                 owner)
                         .hit;
                stats_.mem.l2i.record(miss);
                if (miss)
                    c += p.mem_cycles;
            }
        }
        cycles_.push_back(static_cast<std::uint64_t>(c));
    }

    stats_.requests = cycles_.size();
    if (!cycles_.empty()) {
        std::vector<std::uint64_t> sorted = cycles_;
        std::sort(sorted.begin(), sorted.end());
        stats_.min_cycles = sorted.front();
        stats_.max_cycles = sorted.back();
        for (std::uint64_t v : sorted)
            stats_.total_cycles += v;
        stats_.mean_cycles = static_cast<double>(stats_.total_cycles) /
                             static_cast<double>(sorted.size());
        stats_.p50_cycles = percentileSorted(sorted, 0.50);
        stats_.p99_cycles = percentileSorted(sorted, 0.99);
    }
}

} // namespace spikesim::serve
