#ifndef SPIKESIM_SERVE_ARRIVAL_HH
#define SPIKESIM_SERVE_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

/**
 * @file
 * Open-loop arrival generation: thousands of independent sessions, each
 * emitting requests on its own seeded random process, merged into one
 * time-ordered arrival stream. Open-loop means arrivals do not wait for
 * completions — exactly the regime where layout-induced service-time
 * differences turn into queueing-delay differences (a closed-loop
 * driver hides them by self-throttling).
 *
 * Two processes are provided: Poisson (exponential inter-arrival times,
 * the classic open-loop model) and bursty on-off (each session
 * alternates exponentially-distributed ON and OFF periods and only
 * emits while ON, a Markov-modulated Poisson process whose long-run
 * rate matches the Poisson configuration but whose arrivals clump).
 *
 * Determinism: each session derives its stream from support::Pcg32
 * (seed, session-id) pairs, and the merge is an explicit stable sort by
 * (time, session), so the generated stream is byte-stable for a seed
 * regardless of session count ordering, host, or thread pool.
 */

namespace spikesim::serve {

/** Arrival process family. */
enum class ArrivalKind : std::uint8_t { Poisson, Bursty };

/** One generated request arrival (times in model cycles). */
struct Arrival
{
    std::uint64_t time = 0;
    std::uint32_t session = 0;
};

/** Shape of the offered load. */
struct ArrivalConfig
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Concurrent sessions (users); each contributes rate/sessions. */
    std::uint32_t sessions = 1'000;
    /** Aggregate arrival rate in requests per cycle. */
    double rate = 1e-5;
    /** Generation horizon in cycles; expected arrivals = rate * horizon. */
    std::uint64_t horizon_cycles = 0;
    std::uint64_t seed = 1;
    /** Bursty only: long-run fraction of time a session is ON. While
     *  ON the session fires at rate/sessions/on_fraction, so the
     *  long-run average rate matches the Poisson configuration. */
    double on_fraction = 0.25;
    /** Bursty only: mean ON-period duration in cycles. */
    double mean_on_cycles = 500'000.0;

    /** Empty when consistent, else a complaint. */
    std::string check() const;
};

/**
 * Generate the merged arrival stream for one configuration. Sorted by
 * (time, session); ties in time across sessions are broken by session
 * id, and a session's own arrivals stay in generation order.
 */
std::vector<Arrival> generateArrivals(const ArrivalConfig& config);

} // namespace spikesim::serve

#endif // SPIKESIM_SERVE_ARRIVAL_HH
