#ifndef SPIKESIM_SERVE_QUEUEING_HH
#define SPIKESIM_SERVE_QUEUEING_HH

#include <cstdint>
#include <span>
#include <vector>

#include "obs/sketch.hh"
#include "serve/arrival.hh"
#include "support/threadpool.hh"

/**
 * @file
 * Discrete-event queueing over the open-loop arrival stream: sessions
 * are statically multiplexed onto per-CPU worker shards (session %
 * shards, the way connection-per-core servers pin clients), each shard
 * is a single FIFO server with a bounded admission queue, and service
 * times are drawn from a per-request service-time table (the
 * serve::ServiceModel distribution for one layout). The output is what
 * a load generator would report: offered vs sustained throughput,
 * latency percentiles down to p999, drops, utilization, and a
 * queue-depth histogram.
 *
 * Latency percentiles come from a bounded-relative-error quantile
 * sketch (obs/sketch.hh, <= 1/128 off) built per shard and merged in
 * shard order, not from sorting every sample; the sorted vector
 * remains available behind QueueConfig::keep_latencies as the exact
 * oracle for tests and distribution dumps. When
 * QueueConfig::window_cycles is set the simulation also keeps a
 * flight-recorder view: per fixed virtual-time window, arrivals,
 * completions, drops, max queue depth, and a latency sketch of that
 * window's completions — the feed for obs/timeline and obs/slo.
 *
 * Determinism: service times are assigned to requests by global
 * arrival index from one seeded stream *before* sharding, each shard's
 * sub-stream preserves global arrival order, and shard results are
 * merged in shard order — integer bucket counts all the way — so the
 * result is byte-identical for a seed whether shards run serially or
 * on any thread-pool width (the PR 4 / PR 8 convention).
 */

namespace spikesim::serve {

/** Shard topology and admission policy. */
struct QueueConfig
{
    /** Worker shards (single-server queues); sessions map session %
     *  shards. */
    int shards = 4;
    /** Max requests admitted but not yet completed per shard
     *  (in-service included); an arrival finding the queue full is
     *  dropped. */
    std::uint32_t queue_bound = 64;
    /** Stream for sampling per-request service times. */
    std::uint64_t seed = 1;
    /** Virtual-time window width for the flight recorder view; 0
     *  disables windowed accounting. */
    std::uint64_t window_cycles = 0;
    /** Keep every completed latency in latencies_sorted (exact
     *  percentile oracle; costs memory + a global sort). */
    bool keep_latencies = false;
};

/** Per-shard accounting. */
struct ShardResult
{
    std::uint64_t arrivals = 0;
    std::uint64_t admitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t busy_cycles = 0;
    std::uint64_t last_completion = 0;
};

/** One virtual-time window of the flight recorder view. Arrivals,
 *  drops, and depth are binned by arrival time; completions and their
 *  latency sketch by completion time. */
struct WindowStats
{
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t dropped = 0;
    /** Deepest queue seen by an arrival in this window. */
    std::uint64_t depth_max = 0;
    /** Latencies of the requests that completed in this window. */
    obs::QuantileSketch latency;
};

/** Everything one simulated serving run reports. */
struct ServingResult
{
    std::uint64_t offered = 0;   ///< arrivals presented
    std::uint64_t completed = 0; ///< admitted and served
    std::uint64_t dropped = 0;
    std::uint64_t horizon_cycles = 0;  ///< arrival-generation horizon
    std::uint64_t makespan_cycles = 0; ///< latest completion time
    /** Latency percentiles in cycles, from the merged sketch: within
     *  1/128 above the exact nearest-rank sample. */
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
    std::uint64_t max_latency = 0; ///< exact (sketch tracks extrema)
    double mean_latency = 0.0;     ///< exact (sketch sum is exact)
    /** Busy cycles / (shards * makespan). */
    double utilization = 0.0;
    /** Queue depth seen by each arrival (dropped ones included);
     *  index = depth, size = queue_bound + 1. */
    std::vector<std::uint64_t> depth_hist;
    std::vector<ShardResult> shards;
    /** All completed-request latencies merged across shards. */
    obs::QuantileSketch latency_sketch;
    /** Flight recorder windows (empty unless config.window_cycles). */
    std::vector<WindowStats> windows;
    std::uint64_t window_cycles = 0; ///< copied from the config
    /** All completed-request latencies, ascending — only filled when
     *  config.keep_latencies (the exact oracle path). */
    std::vector<std::uint64_t> latencies_sorted;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample; 0 on empty
 * input. q in [0, 1].
 */
std::uint64_t percentileSorted(std::span<const std::uint64_t> sorted,
                               double q);

/**
 * Run the open-loop simulation: `arrivals` must be time-sorted
 * (generateArrivals output), `service_cycles` is the non-empty
 * per-request service-time table sampled uniformly per request, `pool`
 * parallelizes over shards when non-null (results identical either
 * way). Also records serve.* counters, latency/queue-depth histograms,
 * and the serve.latency_cycles quantile sketch in the obs registry, so
 * active manifests capture the run.
 */
ServingResult simulateOpenLoop(std::span<const Arrival> arrivals,
                               std::span<const std::uint64_t> service_cycles,
                               std::uint64_t horizon_cycles,
                               const QueueConfig& config,
                               support::ThreadPool* pool = nullptr);

} // namespace spikesim::serve

#endif // SPIKESIM_SERVE_QUEUEING_HH
