#ifndef SPIKESIM_SERVE_SERVICE_HH
#define SPIKESIM_SERVE_SERVICE_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/layout.hh"
#include "mem/hierarchy.hh"
#include "sim/timing.hh"
#include "trace/trace.hh"

/**
 * @file
 * Per-request service times from the replay timing model. The figure
 * benches report whole-trace non-idle cycles (sim/timing); the serving
 * model needs the same quantity *per transaction*, because queueing
 * delay under open-loop load depends on the service-time distribution,
 * not just its mean. The walk here replays the recorded trace through
 * the same per-CPU hierarchy simulation as Replayer::hierarchy, but
 * attributes every miss penalty and instruction cycle to the
 * transaction segment being executed, yielding one service time per
 * transaction per layout — the bridge from "layout saves misses" to
 * "layout moves p99".
 *
 * Transaction boundaries come from the trace itself: the system issues
 * every transaction on the next server process round-robin
 * (sim/system.hh), so the points where TraceEvent::process changes are
 * exactly the transaction boundaries. No extra trace format is needed.
 *
 * Multi-tenant mode models N engine instances on the same machine:
 * each tenant has private L1 I/D caches, but all tenants on a CPU
 * share its L2 and iTLB (the structures the fig12/13 interference
 * studies contend on). Tenant addresses are salted at page granularity
 * — distinct address spaces land on different L2 sets and TLB entries,
 * the way distinct processes' pages do — and tenants execute the trace
 * interleaved one transaction at a time, so shared-structure
 * interference inflates every tenant's service times.
 */

namespace spikesim::serve {

/** Timing platform + sharing shape for the service-time walk. */
struct ServiceModelConfig
{
    sim::PlatformParams platform = sim::PlatformParams::sim21364();
    /** Engine instances sharing each CPU's L2 + iTLB (1 = solo). */
    int tenants = 1;
    /** Replay data references into the hierarchy (like fig15). */
    bool include_data = true;
};

/** Distribution summary over the per-request service times. */
struct ServiceStats
{
    std::uint64_t requests = 0;
    std::uint64_t total_cycles = 0;
    std::uint64_t min_cycles = 0;
    std::uint64_t max_cycles = 0;
    double mean_cycles = 0.0;
    std::uint64_t p50_cycles = 0;
    std::uint64_t p99_cycles = 0;
    /** Aggregate hierarchy counters over all tenants (differential
     *  check against Replayer::hierarchy when tenants == 1). */
    mem::HierarchyStats mem;
    std::uint64_t instrs = 0;
    std::uint64_t fetch_breaks = 0;
};

/** Derives per-transaction service times for one (trace, layout) pair. */
class ServiceModel
{
  public:
    /**
     * Replays the whole trace immediately. @param kernel may be null
     * only if the trace contains no kernel events.
     */
    ServiceModel(const trace::TraceBuffer& trace,
                 const core::Layout& app, const core::Layout* kernel,
                 const ServiceModelConfig& config);

    /**
     * Service time of every request, in cycles, in execution order
     * (tenant-interleaved when tenants > 1: request i belongs to
     * tenant i % tenants). Size = segments * tenants.
     */
    const std::vector<std::uint64_t>&
    requestCycles() const
    {
        return cycles_;
    }

    const ServiceStats& stats() const { return stats_; }

    /**
     * Transaction segments of a trace as [begin, end) event-index
     * ranges, split where TraceEvent::process changes. A trace with a
     * single process yields one segment (and the serving model
     * degenerates to one request — configure more processes).
     */
    static std::vector<std::pair<std::size_t, std::size_t>>
    segments(const trace::TraceBuffer& trace);

  private:
    std::vector<std::uint64_t> cycles_;
    ServiceStats stats_;
};

} // namespace spikesim::serve

#endif // SPIKESIM_SERVE_SERVICE_HH
