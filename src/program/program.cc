#include "program/program.hh"

#include <cmath>
#include <sstream>
#include <unordered_map>

#include "support/panic.hh"

namespace spikesim::program {

const char*
terminatorName(Terminator t)
{
    switch (t) {
      case Terminator::FallThrough: return "fallthrough";
      case Terminator::CondBranch: return "cond";
      case Terminator::UncondBranch: return "uncond";
      case Terminator::IndirectJump: return "indirect";
      case Terminator::Call: return "call";
      case Terminator::Return: return "return";
    }
    return "?";
}

std::uint64_t
Procedure::sizeInstrs() const
{
    std::uint64_t total = 0;
    for (const auto& b : blocks)
        total += b.sizeInstrs;
    return total;
}

std::vector<const FlowEdge*>
Procedure::outEdges(BlockLocalId b) const
{
    std::vector<const FlowEdge*> out;
    for (const auto& e : edges)
        if (e.from == b)
            out.push_back(&e);
    return out;
}

Program::Program(std::string name) : name_(std::move(name)) {}

ProcId
Program::addProcedure(Procedure proc)
{
    SPIKESIM_ASSERT(!proc.blocks.empty(),
                    "procedure " << proc.name << " has no blocks");
    auto id = static_cast<ProcId>(procs_.size());
    block_base_.push_back(num_blocks_);
    num_blocks_ += static_cast<std::uint32_t>(proc.blocks.size());
    procs_.push_back(std::move(proc));
    return id;
}

const Procedure&
Program::proc(ProcId p) const
{
    SPIKESIM_ASSERT(p < procs_.size(), "proc id out of range: " << p);
    return procs_[p];
}

Procedure&
Program::proc(ProcId p)
{
    SPIKESIM_ASSERT(p < procs_.size(), "proc id out of range: " << p);
    return procs_[p];
}

ProcId
Program::findProc(const std::string& name) const
{
    for (std::size_t i = 0; i < procs_.size(); ++i)
        if (procs_[i].name == name)
            return static_cast<ProcId>(i);
    return kInvalidId;
}

GlobalBlockId
Program::globalBlockId(ProcId p, BlockLocalId b) const
{
    SPIKESIM_ASSERT(p < procs_.size(), "proc id out of range: " << p);
    SPIKESIM_ASSERT(b < procs_[p].blocks.size(),
                    "block " << b << " out of range in proc " << p);
    return block_base_[p] + b;
}

std::pair<ProcId, BlockLocalId>
Program::locateBlock(GlobalBlockId g) const
{
    SPIKESIM_ASSERT(g < num_blocks_, "global block id out of range: " << g);
    // Binary search over block_base_.
    std::size_t lo = 0, hi = block_base_.size() - 1;
    while (lo < hi) {
        std::size_t mid = (lo + hi + 1) / 2;
        if (block_base_[mid] <= g)
            lo = mid;
        else
            hi = mid - 1;
    }
    return {static_cast<ProcId>(lo), g - block_base_[lo]};
}

const BasicBlock&
Program::block(GlobalBlockId g) const
{
    auto [p, b] = locateBlock(g);
    return procs_[p].blocks[b];
}

std::uint64_t
Program::sizeInstrs() const
{
    std::uint64_t total = 0;
    for (const auto& p : procs_)
        total += p.sizeInstrs();
    return total;
}

namespace {

std::string
checkProc(const Program& prog, ProcId pid)
{
    const Procedure& p = prog.proc(pid);
    std::ostringstream err;
    auto fail = [&](const std::string& what) {
        return "proc " + p.name + " (#" + std::to_string(pid) + "): " + what;
    };

    // Collect out-edges per block.
    std::vector<std::vector<const FlowEdge*>> out(p.blocks.size());
    for (const auto& e : p.edges) {
        if (e.from >= p.blocks.size() || e.to >= p.blocks.size())
            return fail("edge references block out of range");
        if (e.prob < 0.0 || e.prob > 1.0)
            return fail("edge probability out of [0,1]");
        out[e.from].push_back(&e);
    }

    for (BlockLocalId b = 0; b < p.blocks.size(); ++b) {
        const BasicBlock& blk = p.blocks[b];
        const auto& oe = out[b];
        auto count = [&](EdgeKind k) {
            std::size_t n = 0;
            for (const auto* e : oe)
                if (e->kind == k)
                    ++n;
            return n;
        };
        std::string where = "block " + std::to_string(b) + " (" +
                            terminatorName(blk.term) + ")";
        if (blk.sizeInstrs == 0)
            return fail(where + " has zero size");
        switch (blk.term) {
          case Terminator::FallThrough:
          case Terminator::Call:
            if (oe.size() != 1 || count(EdgeKind::FallThrough) != 1)
                return fail(where + " needs exactly one fall-through edge");
            if (blk.term == Terminator::Call) {
                if (blk.callee == kInvalidId)
                    return fail(where + " call without callee");
            } else if (blk.callee != kInvalidId) {
                return fail(where + " non-call block has a callee");
            }
            break;
          case Terminator::CondBranch:
            if (oe.size() != 2 || count(EdgeKind::CondTaken) != 1 ||
                count(EdgeKind::FallThrough) != 1)
                return fail(where +
                            " needs one taken and one fall-through edge");
            break;
          case Terminator::UncondBranch:
            if (oe.size() != 1 || count(EdgeKind::UncondTarget) != 1)
                return fail(where + " needs exactly one uncond edge");
            break;
          case Terminator::IndirectJump:
            if (oe.empty() || count(EdgeKind::IndirectTarget) != oe.size())
                return fail(where + " needs >= 1 indirect edges");
            break;
          case Terminator::Return:
            if (!oe.empty())
                return fail(where + " return must have no successors");
            break;
        }
        if (blk.term != Terminator::Call && blk.callee != kInvalidId)
            return fail(where + " non-call block has a callee");
        if (blk.callee != kInvalidId && blk.callee >= prog.numProcs())
            return fail(where + " callee out of range");
        // Outgoing probabilities should sum to ~1 for multi-way blocks.
        if (!oe.empty()) {
            double sum = 0.0;
            for (const auto* e : oe)
                sum += e->prob;
            if (std::abs(sum - 1.0) > 1e-6)
                return fail(where + " edge probabilities sum to " +
                            std::to_string(sum));
        }
    }
    // The procedure must be able to terminate: at least one return block.
    bool has_return = false;
    for (const auto& blk : p.blocks)
        if (blk.term == Terminator::Return)
            has_return = true;
    if (!has_return)
        return fail("no return block");
    return "";
}

} // namespace

std::string
Program::validate() const
{
    for (ProcId pid = 0; pid < procs_.size(); ++pid) {
        std::string err = checkProc(*this, pid);
        if (!err.empty())
            return err;
    }
    return "";
}

} // namespace spikesim::program
