#ifndef SPIKESIM_PROGRAM_SERIALIZE_HH
#define SPIKESIM_PROGRAM_SERIALIZE_HH

#include <iosfwd>

#include "program/program.hh"

/**
 * @file
 * Text serialization of the structural program model. Lets a generated
 * image be dumped, inspected, diffed, and reloaded — the equivalent of
 * disassembling the binary under study. The format is line-oriented:
 *
 *   spikesim-program 1
 *   name <program name>
 *   proc <name> <num blocks>
 *   b <size> <term> [callee] [hint]
 *   e <from> <to> <kind> <prob>
 *   end
 */

namespace spikesim::program {

/** Write the program in the text format above. */
void saveProgram(const Program& prog, std::ostream& os);

/** Parse a program written by saveProgram. fatal() on malformed input. */
Program loadProgram(std::istream& is);

} // namespace spikesim::program

#endif // SPIKESIM_PROGRAM_SERIALIZE_HH
