#ifndef SPIKESIM_PROGRAM_PROGRAM_HH
#define SPIKESIM_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

/**
 * @file
 * Structural model of an executable image: procedures made of basic
 * blocks connected by typed control-flow edges, plus call sites. This is
 * the representation the layout optimizer (src/core) consumes and the
 * CFG walker (src/synth) executes. Instructions are fixed-width 4 bytes
 * (Alpha-style); blocks carry only an instruction count, since layout
 * optimization never looks inside a block.
 */

namespace spikesim::program {

using ProcId = std::uint32_t;
using BlockLocalId = std::uint32_t;
/** Program-wide dense block id (see Program::globalBlockId). */
using GlobalBlockId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = 0xffffffffu;
/** Fixed instruction width in bytes (Alpha). */
inline constexpr std::uint32_t kInstrBytes = 4;

/**
 * How a basic block ends. This determines which outgoing edges are legal
 * and what control instructions the block needs under a given layout:
 *
 * - FallThrough: no control instruction; must be followed (dynamically)
 *   by its unique successor. If the layout does not place the successor
 *   adjacently, an unconditional branch is materialized (+1 instruction).
 * - CondBranch: conditional branch with a taken successor and a
 *   fall-through successor. The branch sense can be inverted for free,
 *   so whichever successor is adjacent becomes the fall-through; if
 *   neither is adjacent an extra unconditional branch is materialized.
 * - UncondBranch: direct jump to the unique successor. If the layout
 *   places the successor adjacently the branch is deleted (-1
 *   instruction), which is the "eliminates frequently executed
 *   unconditional branches" effect from the paper.
 * - IndirectJump: computed jump (switch); always breaks the fetch
 *   sequence.
 * - Call: direct procedure call; execution continues in the callee and
 *   resumes at this block's unique fall-through successor. Always breaks
 *   the fetch sequence (like FallThrough, the successor may need a
 *   materialized branch after the call returns — handled as adjacency of
 *   the fall-through successor).
 * - Return: subroutine return; no intra-procedure successors.
 */
enum class Terminator : std::uint8_t {
    FallThrough,
    CondBranch,
    UncondBranch,
    IndirectJump,
    Call,
    Return,
};

/** Human-readable terminator name (for dumps and test failures). */
const char* terminatorName(Terminator t);

/** Kind of an intra-procedure control-flow edge. */
enum class EdgeKind : std::uint8_t {
    /** Sequential successor of FallThrough / CondBranch / Call blocks. */
    FallThrough,
    /** Taken side of a CondBranch block. */
    CondTaken,
    /** Target of an UncondBranch block. */
    UncondTarget,
    /** One target of an IndirectJump block. */
    IndirectTarget,
};

/** An intra-procedure control-flow edge with a static probability hint. */
struct FlowEdge
{
    BlockLocalId from = kInvalidId;
    BlockLocalId to = kInvalidId;
    EdgeKind kind = EdgeKind::FallThrough;
    /**
     * Static probability that control leaves `from` via this edge,
     * used by the CFG walker; the optimizer uses *measured* edge
     * profiles instead.
     */
    double prob = 1.0;
};

/**
 * A basic block. `sizeInstrs` counts the block's instructions including
 * its terminating control instruction where one is architecturally
 * required (CondBranch, UncondBranch, IndirectJump, Call, Return);
 * FallThrough blocks have no terminator instruction. Layout may add or
 * remove one trailing unconditional branch as described at Terminator.
 */
struct BasicBlock
{
    std::uint32_t sizeInstrs = 1;
    Terminator term = Terminator::FallThrough;
    /** Callee procedure when term == Call. */
    ProcId callee = kInvalidId;
    /**
     * When this block is the head of a walker-hint loop, the 1-based
     * hint slot whose value supplies the trip count; 0 = not hinted.
     */
    std::uint16_t hintSlot = 0;
};

/** A procedure: blocks (entry = block 0) plus its flow edges. */
struct Procedure
{
    std::string name;
    std::vector<BasicBlock> blocks;
    std::vector<FlowEdge> edges;

    /** Total static size of the procedure body in instructions. */
    std::uint64_t sizeInstrs() const;

    /** Outgoing edges of a block (linear scan; fine for build/validate). */
    std::vector<const FlowEdge*> outEdges(BlockLocalId b) const;
};

/**
 * An executable image: a set of procedures with a dense global block id
 * space (for compact traces and profiles).
 */
class Program
{
  public:
    explicit Program(std::string name);

    /** Append a procedure; returns its id. */
    ProcId addProcedure(Procedure proc);

    const std::string& name() const { return name_; }
    std::size_t numProcs() const { return procs_.size(); }
    const Procedure& proc(ProcId p) const;
    Procedure& proc(ProcId p);

    /** Look up a procedure id by name; kInvalidId if absent. */
    ProcId findProc(const std::string& name) const;

    /** Total number of basic blocks across all procedures. */
    std::uint32_t numBlocks() const { return num_blocks_; }

    /** Dense program-wide block id. */
    GlobalBlockId globalBlockId(ProcId p, BlockLocalId b) const;

    /** Inverse mapping of globalBlockId. */
    std::pair<ProcId, BlockLocalId> locateBlock(GlobalBlockId g) const;

    /** The block record behind a global id. */
    const BasicBlock& block(GlobalBlockId g) const;

    /** Total static program size in instructions. */
    std::uint64_t sizeInstrs() const;

    /**
     * Check structural invariants (edge/terminator consistency, valid
     * callees, probabilities summing to ~1 per block). Returns an empty
     * string when valid, else a description of the first problem.
     */
    std::string validate() const;

  private:
    std::string name_;
    std::vector<Procedure> procs_;
    /** blockBase_[p] = global id of proc p's block 0. */
    std::vector<GlobalBlockId> block_base_;
    std::uint32_t num_blocks_ = 0;
};

} // namespace spikesim::program

#endif // SPIKESIM_PROGRAM_PROGRAM_HH
