#ifndef SPIKESIM_PROGRAM_BUILDER_HH
#define SPIKESIM_PROGRAM_BUILDER_HH

#include <string>

#include "program/program.hh"

/**
 * @file
 * Convenience builder for hand-constructing procedures in tests and in
 * the synthetic program generator. Thin sugar over Procedure; the real
 * invariants are enforced by Program::validate().
 */

namespace spikesim::program {

/** Incrementally builds one Procedure. */
class ProcedureBuilder
{
  public:
    explicit ProcedureBuilder(std::string name);

    /** Add a block; returns its local id (entry is the first added). */
    BlockLocalId addBlock(std::uint32_t size_instrs, Terminator term,
                          ProcId callee = kInvalidId);

    /** Add a typed control-flow edge. */
    void addEdge(BlockLocalId from, BlockLocalId to, EdgeKind kind,
                 double prob = 1.0);

    /** Shorthand: conditional with taken-probability p. */
    void addCond(BlockLocalId from, BlockLocalId taken,
                 BlockLocalId fallthrough, double taken_prob);

    /** Mark a block as a hinted-loop head consuming the given slot. */
    void setHintSlot(BlockLocalId b, std::uint16_t slot);

    /** Number of blocks added so far. */
    std::size_t numBlocks() const { return proc_.blocks.size(); }

    /** Move the finished procedure out. */
    Procedure build();

  private:
    Procedure proc_;
};

} // namespace spikesim::program

#endif // SPIKESIM_PROGRAM_BUILDER_HH
