#include "program/serialize.hh"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "support/panic.hh"

namespace spikesim::program {

namespace {

const char*
edgeKindName(EdgeKind k)
{
    switch (k) {
      case EdgeKind::FallThrough: return "fall";
      case EdgeKind::CondTaken: return "taken";
      case EdgeKind::UncondTarget: return "uncond";
      case EdgeKind::IndirectTarget: return "indirect";
    }
    return "?";
}

EdgeKind
edgeKindFromName(const std::string& s)
{
    if (s == "fall")
        return EdgeKind::FallThrough;
    if (s == "taken")
        return EdgeKind::CondTaken;
    if (s == "uncond")
        return EdgeKind::UncondTarget;
    if (s == "indirect")
        return EdgeKind::IndirectTarget;
    support::fatal("bad edge kind '" + s + "'");
}

Terminator
terminatorFromName(const std::string& s)
{
    for (Terminator t :
         {Terminator::FallThrough, Terminator::CondBranch,
          Terminator::UncondBranch, Terminator::IndirectJump,
          Terminator::Call, Terminator::Return}) {
        if (s == terminatorName(t))
            return t;
    }
    support::fatal("bad terminator '" + s + "'");
}

} // namespace

void
saveProgram(const Program& prog, std::ostream& os)
{
    os << "spikesim-program 1\n";
    // Probabilities must survive the round trip bit-exactly (the
    // validator checks per-block sums to 1e-6).
    os << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    os << "name " << prog.name() << "\n";
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        const Procedure& proc = prog.proc(p);
        os << "proc " << proc.name << " " << proc.blocks.size() << "\n";
        for (const BasicBlock& b : proc.blocks) {
            os << "b " << b.sizeInstrs << " " << terminatorName(b.term);
            if (b.term == Terminator::Call)
                os << " " << b.callee;
            else
                os << " -";
            os << " " << b.hintSlot << "\n";
        }
        for (const FlowEdge& e : proc.edges)
            os << "e " << e.from << " " << e.to << " "
               << edgeKindName(e.kind) << " " << e.prob << "\n";
        os << "end\n";
    }
}

Program
loadProgram(std::istream& is)
{
    std::string tag;
    int version = 0;
    is >> tag >> version;
    if (tag != "spikesim-program" || version != 1)
        support::fatal("bad program header");
    std::string name_tag, name;
    is >> name_tag >> name;
    if (name_tag != "name")
        support::fatal("missing program name");

    Program prog(name);
    while (is >> tag) {
        if (tag != "proc")
            support::fatal("expected proc record, got '" + tag + "'");
        Procedure proc;
        std::size_t num_blocks = 0;
        is >> proc.name >> num_blocks;
        while (is >> tag) {
            if (tag == "end")
                break;
            if (tag == "b") {
                BasicBlock b;
                std::string term, callee;
                is >> b.sizeInstrs >> term >> callee >> b.hintSlot;
                b.term = terminatorFromName(term);
                if (callee != "-")
                    b.callee =
                        static_cast<ProcId>(std::stoul(callee));
                proc.blocks.push_back(b);
            } else if (tag == "e") {
                FlowEdge e;
                std::string kind;
                is >> e.from >> e.to >> kind >> e.prob;
                e.kind = edgeKindFromName(kind);
                proc.edges.push_back(e);
            } else {
                support::fatal("bad record '" + tag + "' in proc " +
                               proc.name);
            }
        }
        if (proc.blocks.size() != num_blocks)
            support::fatal("block count mismatch in proc " + proc.name);
        prog.addProcedure(std::move(proc));
    }
    return prog;
}

} // namespace spikesim::program
