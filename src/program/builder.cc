#include "program/builder.hh"

#include "support/panic.hh"

namespace spikesim::program {

ProcedureBuilder::ProcedureBuilder(std::string name)
{
    proc_.name = std::move(name);
}

BlockLocalId
ProcedureBuilder::addBlock(std::uint32_t size_instrs, Terminator term,
                           ProcId callee)
{
    BasicBlock b;
    b.sizeInstrs = size_instrs;
    b.term = term;
    b.callee = callee;
    proc_.blocks.push_back(b);
    return static_cast<BlockLocalId>(proc_.blocks.size() - 1);
}

void
ProcedureBuilder::addEdge(BlockLocalId from, BlockLocalId to, EdgeKind kind,
                          double prob)
{
    FlowEdge e;
    e.from = from;
    e.to = to;
    e.kind = kind;
    e.prob = prob;
    proc_.edges.push_back(e);
}

void
ProcedureBuilder::addCond(BlockLocalId from, BlockLocalId taken,
                          BlockLocalId fallthrough, double taken_prob)
{
    addEdge(from, taken, EdgeKind::CondTaken, taken_prob);
    addEdge(from, fallthrough, EdgeKind::FallThrough, 1.0 - taken_prob);
}

void
ProcedureBuilder::setHintSlot(BlockLocalId b, std::uint16_t slot)
{
    SPIKESIM_ASSERT(b < proc_.blocks.size(), "hint block out of range");
    proc_.blocks[b].hintSlot = slot;
}

Procedure
ProcedureBuilder::build()
{
    return std::move(proc_);
}

} // namespace spikesim::program
