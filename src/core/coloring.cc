#include "core/coloring.hh"

#include <algorithm>
#include <numeric>

#include "support/panic.hh"

namespace spikesim::core {

namespace {

/** Dynamic instruction weight of a segment. */
std::uint64_t
segWeight(const program::Program& prog, const profile::Profile& profile,
          const CodeSegment& seg)
{
    std::uint64_t w = 0;
    for (program::BlockLocalId b : seg.blocks) {
        auto g = prog.globalBlockId(seg.proc, b);
        w += profile.blockCount(g) * prog.block(g).sizeInstrs;
    }
    return w;
}

std::uint64_t
segBytes(const program::Program& prog, const CodeSegment& seg)
{
    std::uint64_t bytes = 0;
    for (program::BlockLocalId b : seg.blocks)
        bytes += static_cast<std::uint64_t>(
                     prog.block(prog.globalBlockId(seg.proc, b))
                         .sizeInstrs) *
                 program::kInstrBytes;
    return bytes;
}

std::vector<CodeSegment>
rowPack(const program::Program& prog, const profile::Profile& profile,
        std::vector<CodeSegment> segs, const ColoringOptions& opts)
{
    std::string err = opts.target.check();
    SPIKESIM_ASSERT(err.empty(), "bad coloring target cache: " << err);

    // Hot segments sorted by weight (desc); cold keep original order.
    std::vector<std::uint32_t> hot, cold;
    std::vector<std::uint64_t> weight(segs.size());
    for (std::uint32_t i = 0; i < segs.size(); ++i) {
        weight[i] = segWeight(prog, profile, segs[i]);
        (weight[i] > 0 ? hot : cold).push_back(i);
    }
    std::stable_sort(hot.begin(), hot.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return weight[a] > weight[b];
                     });

    // First-fit-decreasing bin packing into cache-sized rows: every
    // segment within a row is conflict-free with the others in that
    // row, and earlier (hotter) rows hold hotter code. Taking segments
    // by weight and filling gaps greedily means the row capacity
    // genuinely shapes the final order.
    const std::uint64_t row_bytes = opts.target.size_bytes;
    std::vector<std::vector<std::uint32_t>> rows;
    std::vector<std::uint64_t> row_fill;
    for (std::uint32_t i : hot) {
        std::uint64_t bytes = segBytes(prog, segs[i]);
        bool placed = false;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            if (row_fill[r] + bytes <= row_bytes) {
                rows[r].push_back(i);
                row_fill[r] += bytes;
                placed = true;
                break;
            }
        }
        if (!placed) {
            rows.push_back({i});
            row_fill.push_back(bytes);
        }
    }

    std::vector<CodeSegment> out;
    out.reserve(segs.size());
    for (const auto& row : rows)
        for (std::uint32_t i : row)
            out.push_back(std::move(segs[i]));
    for (std::uint32_t i : cold)
        out.push_back(std::move(segs[i]));
    return out;
}

} // namespace

std::vector<CodeSegment>
colorOrderProcedures(const program::Program& prog,
                     const profile::Profile& profile,
                     const ColoringOptions& opts)
{
    return rowPack(prog, profile, baselineSegments(prog), opts);
}

std::vector<CodeSegment>
colorOrderSegments(const program::Program& prog,
                   const profile::Profile& profile,
                   std::vector<CodeSegment> segments,
                   const ColoringOptions& opts)
{
    return rowPack(prog, profile, std::move(segments), opts);
}

} // namespace spikesim::core
