#ifndef SPIKESIM_CORE_TEMPORAL_HH
#define SPIKESIM_CORE_TEMPORAL_HH

#include <cstdint>

#include "core/split.hh"
#include "program/program.hh"
#include "trace/trace.hh"

/**
 * @file
 * Temporal-affinity procedure ordering, after Gloy, Blackwell, Smith &
 * Calder (MICRO'97), one of the placement algorithms the paper's
 * related-work section contrasts with Pettis-Hansen. Instead of call
 * counts, the placement graph weighs how often two procedures are
 * *live together in time*: each procedure activation adds affinity to
 * the procedures activated shortly before it. Procedures that
 * interleave tightly end up adjacent even when they never call each
 * other — something a pure call graph cannot see.
 *
 * This is a faithful simplification: the original also folds in cache
 * geometry; here the temporal relationship graph is fed to the same
 * merge machinery as Pettis-Hansen so the two graphs can be compared
 * like-for-like (see bench/ablation_placement).
 */

namespace spikesim::core {

/** Parameters for temporal-affinity graph construction. */
struct TemporalOptions
{
    /** How many distinct recently-activated procedures constitute
     *  "temporally adjacent". */
    std::size_t window = 8;
    /** Image whose activations are analyzed. */
    trace::ImageId image = trace::ImageId::App;
};

/**
 * Build the temporal relationship graph over procedures from an
 * execution trace: one node per procedure, edge weight = number of
 * times the two procedures appeared within `window` distinct
 * activations of each other (tracked per CPU).
 */
SegmentGraph buildTemporalGraph(const program::Program& prog,
                                const trace::TraceBuffer& trace,
                                const TemporalOptions& opts = {});

} // namespace spikesim::core

#endif // SPIKESIM_CORE_TEMPORAL_HH
