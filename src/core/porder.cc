#include "core/porder.hh"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "profile/profile.hh"
#include "support/panic.hh"

namespace spikesim::core {

namespace {

std::uint64_t
undirKey(std::uint32_t a, std::uint32_t b)
{
    if (a > b)
        std::swap(a, b);
    return profile::pairKey(a, b);
}

} // namespace

std::vector<std::uint32_t>
pettisHansenOrder(
    std::size_t num_nodes,
    const std::vector<std::tuple<std::uint32_t, std::uint32_t,
                                 std::uint64_t>>& edges)
{
    // Original undirected unit-level weights (for orientation choices).
    std::unordered_map<std::uint64_t, std::uint64_t> orig;
    for (const auto& [a, b, w] : edges) {
        SPIKESIM_ASSERT(a < num_nodes && b < num_nodes,
                        "edge endpoint out of range");
        if (a != b && w > 0)
            orig[undirKey(a, b)] += w;
    }
    auto orig_weight = [&](std::uint32_t a, std::uint32_t b) {
        auto it = orig.find(undirKey(a, b));
        return it == orig.end() ? std::uint64_t(0) : it->second;
    };

    // Union-find over merged nodes.
    std::vector<std::uint32_t> rep(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i)
        rep[i] = static_cast<std::uint32_t>(i);
    auto find = [&](std::uint32_t x) {
        while (rep[x] != x) {
            rep[x] = rep[rep[x]];
            x = rep[x];
        }
        return x;
    };

    // Per-representative state: merged adjacency, unit sequence, and
    // the total weight contracted into the node so far.
    std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> adj(
        num_nodes);
    std::vector<std::vector<std::uint32_t>> seq(num_nodes);
    std::vector<std::uint64_t> contracted(num_nodes, 0);
    for (std::size_t i = 0; i < num_nodes; ++i)
        seq[i].push_back(static_cast<std::uint32_t>(i));
    for (const auto& [key, w] : orig) {
        auto a = static_cast<std::uint32_t>(key >> 32);
        auto b = static_cast<std::uint32_t>(key & 0xffffffffu);
        adj[a][b] = w;
        adj[b][a] = w;
    }

    // Max-heap of candidate edges with lazy invalidation.
    using Entry = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;
    std::priority_queue<Entry> pq;
    for (const auto& [key, w] : orig)
        pq.emplace(w, static_cast<std::uint32_t>(key >> 32),
                   static_cast<std::uint32_t>(key & 0xffffffffu));

    while (!pq.empty()) {
        auto [w, a, b] = pq.top();
        pq.pop();
        if (find(a) != a || find(b) != b)
            continue; // stale endpoint
        auto it = adj[a].find(b);
        if (it == adj[a].end() || it->second != w)
            continue; // stale weight

        // Choose the concatenation orientation whose seam joins the
        // most strongly related original units (Pettis-Hansen "best of
        // four merge endpoints").
        const auto& sa = seq[a];
        const auto& sb = seq[b];
        std::uint64_t score[4] = {
            orig_weight(sa.back(), sb.front()),  // A + B
            orig_weight(sa.back(), sb.back()),   // A + reverse(B)
            orig_weight(sa.front(), sb.front()), // reverse(A) + B
            orig_weight(sa.front(), sb.back()),  // reverse(A) + reverse(B)
        };
        int best = 0;
        for (int i = 1; i < 4; ++i)
            if (score[i] > score[best])
                best = i;

        std::vector<std::uint32_t> merged;
        merged.reserve(sa.size() + sb.size());
        auto append = [&](const std::vector<std::uint32_t>& s, bool rev) {
            if (rev)
                merged.insert(merged.end(), s.rbegin(), s.rend());
            else
                merged.insert(merged.end(), s.begin(), s.end());
        };
        append(sa, best == 2 || best == 3);
        append(sb, best == 1 || best == 3);

        // Merge b into a.
        rep[b] = a;
        seq[a] = std::move(merged);
        seq[b].clear();
        contracted[a] += contracted[b] + w;
        adj[a].erase(b);
        adj[b].erase(a);
        for (const auto& [n, nw] : adj[b]) {
            adj[n].erase(b);
            std::uint64_t& cur = adj[a][n];
            cur += nw;
            adj[n][a] = cur;
            pq.emplace(cur, std::min(a, n), std::max(a, n));
        }
        adj[b].clear();
    }

    // Collect surviving components: heaviest first, then by smallest
    // original unit index; untouched singletons retain original order.
    struct Comp
    {
        std::uint32_t rep;
        std::uint64_t weight;
        std::uint32_t min_unit;
    };
    std::vector<Comp> comps;
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
        if (find(i) != i)
            continue;
        Comp c;
        c.rep = i;
        c.weight = contracted[i];
        c.min_unit = *std::min_element(seq[i].begin(), seq[i].end());
        comps.push_back(c);
    }
    std::sort(comps.begin(), comps.end(), [](const Comp& x, const Comp& y) {
        if (x.weight != y.weight)
            return x.weight > y.weight;
        return x.min_unit < y.min_unit;
    });

    std::vector<std::uint32_t> order;
    order.reserve(num_nodes);
    for (const Comp& c : comps)
        order.insert(order.end(), seq[c.rep].begin(), seq[c.rep].end());
    SPIKESIM_ASSERT(order.size() == num_nodes,
                    "Pettis-Hansen lost placement units");
    return order;
}

} // namespace spikesim::core
