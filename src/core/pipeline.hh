#ifndef SPIKESIM_CORE_PIPELINE_HH
#define SPIKESIM_CORE_PIPELINE_HH

#include <string>
#include <vector>

#include "core/layout.hh"
#include "profile/profile.hh"
#include "program/program.hh"

/**
 * @file
 * End-to-end layout pipelines: the optimization combinations evaluated
 * in the paper's Figures 7 and 15 (base, porder, chain, chain+split,
 * chain+porder, all) plus two ablations (classic Pettis-Hansen hot/cold
 * splitting, and the CFA / software-trace-cache layout the paper tried
 * and rejected).
 */

namespace spikesim::core {

/** Optimization combination, mirroring the paper's x-axis labels. */
enum class OptCombo {
    /** Original compiler layout. */
    Base,
    /** Pettis-Hansen ordering of whole procedures only. */
    POrder,
    /** Basic block chaining only. */
    Chain,
    /** Chaining + fine-grain splitting (segments in natural order). */
    ChainSplit,
    /** Chaining + whole-procedure Pettis-Hansen ordering. */
    ChainPOrder,
    /** Chaining + fine-grain splitting + segment-level ordering. */
    All,
    /** Ablation: chaining + hot/cold splitting + ordering (classic PH /
     *  Spike-distribution variant). */
    HotCold,
    /** Ablation: conflict-free-area layout (software trace cache). */
    Cfa,
};

/** Paper-style label ("base", "chain+split", ...). */
const char* comboName(OptCombo combo);

/** All combos in the paper's presentation order, then the ablations. */
std::vector<OptCombo> allCombos();

/** Pipeline configuration. */
struct PipelineOptions
{
    OptCombo combo = OptCombo::All;
    std::uint64_t text_base = 0x10000000ULL;
    /** Alignment of whole-procedure units (compiler-style). */
    std::uint32_t proc_align = 16;
    /** Alignment of post-splitting segments (Spike packs tight). */
    std::uint32_t segment_align = 4;
    /** Block count at or above which a block is hot (hot/cold split). */
    std::uint64_t hot_threshold = 1;
    /** CFA reserved area and target cache size (Cfa combo only). */
    std::uint32_t cfa_bytes = 16 * 1024;
    std::uint32_t cfa_cache_bytes = 64 * 1024;
};

/** Build the layout for the requested optimization combination. */
Layout buildLayout(const program::Program& prog,
                   const profile::Profile& profile,
                   const PipelineOptions& opts);

} // namespace spikesim::core

#endif // SPIKESIM_CORE_PIPELINE_HH
