#include "core/layout.hh"

#include <algorithm>
#include <numeric>

#include "support/panic.hh"

namespace spikesim::core {

using program::BasicBlock;
using program::BlockLocalId;
using program::EdgeKind;
using program::FlowEdge;
using program::GlobalBlockId;
using program::kInstrBytes;
using program::kInvalidId;
using program::ProcId;
using program::Procedure;
using program::Terminator;

namespace {

/** Per-block successor summary used for size adjustment. */
struct Succs
{
    GlobalBlockId fall = kInvalidId;   ///< fall-through successor
    GlobalBlockId taken = kInvalidId;  ///< cond-taken successor
    GlobalBlockId uncond = kInvalidId; ///< uncond-branch target
};

std::vector<Succs>
collectSuccs(const program::Program& prog)
{
    std::vector<Succs> succs(prog.numBlocks());
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        const Procedure& proc = prog.proc(p);
        for (const FlowEdge& e : proc.edges) {
            GlobalBlockId from = prog.globalBlockId(p, e.from);
            GlobalBlockId to = prog.globalBlockId(p, e.to);
            switch (e.kind) {
              case EdgeKind::FallThrough:
                succs[from].fall = to;
                break;
              case EdgeKind::CondTaken:
                succs[from].taken = to;
                break;
              case EdgeKind::UncondTarget:
                succs[from].uncond = to;
                break;
              case EdgeKind::IndirectTarget:
                break;
            }
        }
    }
    return succs;
}

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

Layout::Layout(const program::Program& prog,
               std::vector<CodeSegment> segments, const AssignOptions& opts,
               const std::vector<bool>& hot_flags)
    : prog_(&prog),
      segments_(std::move(segments)),
      addr_(prog.numBlocks(), 0),
      size_(prog.numBlocks(), 0),
      text_base_(opts.text_base)
{
    SPIKESIM_ASSERT(opts.segment_align >= kInstrBytes &&
                        (opts.segment_align & (opts.segment_align - 1)) == 0,
                    "segment alignment must be a power of two >= 4");
    SPIKESIM_ASSERT(hot_flags.empty() ||
                        hot_flags.size() == segments_.size(),
                    "hot flag vector must parallel the segment list");

    // Flatten the segment order into a global linear block order, and
    // remember each block's segment.
    std::vector<GlobalBlockId> order;
    order.reserve(prog.numBlocks());
    std::vector<std::uint32_t> seg_of(prog.numBlocks(), 0);
    for (std::size_t s = 0; s < segments_.size(); ++s) {
        const CodeSegment& seg = segments_[s];
        SPIKESIM_ASSERT(!seg.blocks.empty(), "empty code segment");
        for (BlockLocalId b : seg.blocks) {
            GlobalBlockId g = prog.globalBlockId(seg.proc, b);
            order.push_back(g);
            seg_of[g] = static_cast<std::uint32_t>(s);
        }
    }
    SPIKESIM_ASSERT(order.size() == prog.numBlocks(),
                    "layout covers " << order.size() << " of "
                                     << prog.numBlocks() << " blocks");

    // Pass 1: layout-adjusted sizes. Adjacent means "next in the linear
    // order" and either same segment or pack-tight alignment (no padding
    // can intervene).
    const std::vector<Succs> succs = collectSuccs(prog);
    const bool tight = opts.segment_align <= kInstrBytes &&
                       opts.cfa_bytes == 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
        GlobalBlockId g = order[i];
        const BasicBlock& blk = prog.block(g);
        GlobalBlockId next = kInvalidId;
        if (i + 1 < order.size() &&
            (tight || seg_of[order[i + 1]] == seg_of[g]))
            next = order[i + 1];
        std::uint32_t sz = blk.sizeInstrs;
        switch (blk.term) {
          case Terminator::FallThrough:
          case Terminator::Call:
            if (succs[g].fall != next) {
                ++sz;
                ++materialized_;
            }
            break;
          case Terminator::CondBranch:
            if (succs[g].fall != next && succs[g].taken != next) {
                ++sz;
                ++materialized_;
            }
            break;
          case Terminator::UncondBranch:
            if (succs[g].uncond == next) {
                --sz;
                ++deleted_;
            }
            break;
          case Terminator::IndirectJump:
          case Terminator::Return:
            break;
        }
        size_[g] = sz;
    }

    // Pass 2: addresses. In CFA mode hot segments are confined to the
    // first cfa_bytes of every cfa_cache_bytes-sized row and cold
    // segments to the remainder; otherwise a single cursor walks the
    // segments in order with alignment padding between them.
    if (opts.cfa_bytes > 0) {
        SPIKESIM_ASSERT(opts.cfa_cache_bytes > opts.cfa_bytes,
                        "CFA area must be smaller than the cache");
        const std::uint64_t row = opts.cfa_cache_bytes;
        const std::uint64_t hot_sz = opts.cfa_bytes;
        std::uint64_t hot_cur = text_base_;
        std::uint64_t cold_cur = text_base_ + hot_sz;
        auto place = [&](const CodeSegment& seg, bool hot) {
            std::uint64_t& cur = hot ? hot_cur : cold_cur;
            std::uint64_t win_off = hot ? 0 : hot_sz;
            std::uint64_t win_len = hot ? hot_sz : row - hot_sz;
            std::uint64_t bytes = 0;
            for (BlockLocalId b : seg.blocks)
                bytes += static_cast<std::uint64_t>(
                             size_[prog.globalBlockId(seg.proc, b)]) *
                         kInstrBytes;
            // Jump to the next window if the segment does not fit the
            // remainder of this one (unless it can never fit a window,
            // in which case place it anyway and let it spill -- this is
            // how oversized traces defeat the CFA, per the paper).
            std::uint64_t in_win = (cur - text_base_) % row - win_off;
            std::uint64_t left = win_len - in_win;
            if (bytes > left && bytes <= win_len) {
                std::uint64_t next_win =
                    ((cur - text_base_) / row + 1) * row + win_off;
                padding_bytes_ += text_base_ + next_win - cur;
                cur = text_base_ + next_win;
            }
            for (BlockLocalId b : seg.blocks) {
                GlobalBlockId g = prog.globalBlockId(seg.proc, b);
                addr_[g] = cur;
                cur += static_cast<std::uint64_t>(size_[g]) * kInstrBytes;
            }
        };
        for (std::size_t s = 0; s < segments_.size(); ++s) {
            bool hot = !hot_flags.empty() && hot_flags[s];
            place(segments_[s], hot);
        }
        text_limit_ = std::max(hot_cur, cold_cur);
    } else {
        std::uint64_t cur = text_base_;
        for (const CodeSegment& seg : segments_) {
            std::uint64_t aligned = alignUp(cur, opts.segment_align);
            padding_bytes_ += aligned - cur;
            cur = aligned;
            for (BlockLocalId b : seg.blocks) {
                GlobalBlockId g = prog.globalBlockId(seg.proc, b);
                addr_[g] = cur;
                cur += static_cast<std::uint64_t>(size_[g]) * kInstrBytes;
            }
        }
        text_limit_ = cur;
    }
}

std::uint64_t
Layout::blockAddr(GlobalBlockId g) const
{
    SPIKESIM_ASSERT(g < addr_.size(), "block id out of range");
    return addr_[g];
}

std::uint32_t
Layout::blockSize(GlobalBlockId g) const
{
    SPIKESIM_ASSERT(g < size_.size(), "block id out of range");
    return size_[g];
}

std::uint64_t
Layout::branchesBeyondDisplacement(std::uint64_t limit_bytes) const
{
    const program::Program& prog = *prog_;
    const std::vector<Succs> succs = collectSuccs(prog);
    std::uint64_t count = 0;
    auto check = [&](GlobalBlockId from, GlobalBlockId to) {
        if (to == kInvalidId)
            return;
        std::uint64_t src = addr_[from] + blockBytes(from);
        std::uint64_t dst = addr_[to];
        std::uint64_t dist = src > dst ? src - dst : dst - src;
        if (dist > limit_bytes)
            ++count;
    };
    for (GlobalBlockId g = 0; g < prog.numBlocks(); ++g) {
        const BasicBlock& blk = prog.block(g);
        switch (blk.term) {
          case Terminator::CondBranch:
            check(g, succs[g].taken);
            check(g, succs[g].fall);
            break;
          case Terminator::UncondBranch:
            check(g, succs[g].uncond);
            break;
          case Terminator::FallThrough:
          case Terminator::Call:
            check(g, succs[g].fall);
            break;
          case Terminator::IndirectJump:
          case Terminator::Return:
            break;
        }
    }
    return count;
}

std::string
Layout::validate() const
{
    // Every block exactly once is already asserted in the constructor;
    // here check address monotonicity / overlap.
    std::vector<GlobalBlockId> ids(prog_->numBlocks());
    std::iota(ids.begin(), ids.end(), 0);
    std::sort(ids.begin(), ids.end(), [&](GlobalBlockId a, GlobalBlockId b) {
        return addr_[a] < addr_[b];
    });
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
        std::uint64_t end = addr_[ids[i]] + blockBytes(ids[i]);
        if (end > addr_[ids[i + 1]])
            return "blocks overlap: block " + std::to_string(ids[i]) +
                   " ends at " + std::to_string(end) + ", block " +
                   std::to_string(ids[i + 1]) + " starts at " +
                   std::to_string(addr_[ids[i + 1]]);
    }
    if (!ids.empty()) {
        if (addr_[ids.front()] < text_base_)
            return "block below text base";
        if (addr_[ids.back()] + blockBytes(ids.back()) > text_limit_)
            return "block beyond text limit";
    }
    return "";
}

std::vector<CodeSegment>
baselineSegments(const program::Program& prog)
{
    std::vector<CodeSegment> segs;
    segs.reserve(prog.numProcs());
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        CodeSegment seg;
        seg.proc = p;
        seg.blocks.resize(prog.proc(p).blocks.size());
        std::iota(seg.blocks.begin(), seg.blocks.end(), 0);
        segs.push_back(std::move(seg));
    }
    return segs;
}

Layout
baselineLayout(const program::Program& prog, std::uint64_t text_base)
{
    AssignOptions opts;
    opts.text_base = text_base;
    opts.segment_align = 16;
    return Layout(prog, baselineSegments(prog), opts);
}

} // namespace spikesim::core
