#include "core/pipeline.hh"

#include <algorithm>
#include <numeric>

#include "core/chain.hh"
#include "core/porder.hh"
#include "core/split.hh"
#include "support/panic.hh"

namespace spikesim::core {

using program::BlockLocalId;
using program::ProcId;

const char*
comboName(OptCombo combo)
{
    switch (combo) {
      case OptCombo::Base: return "base";
      case OptCombo::POrder: return "porder";
      case OptCombo::Chain: return "chain";
      case OptCombo::ChainSplit: return "chain+split";
      case OptCombo::ChainPOrder: return "chain+porder";
      case OptCombo::All: return "all";
      case OptCombo::HotCold: return "hotcold";
      case OptCombo::Cfa: return "cfa";
    }
    return "?";
}

std::vector<OptCombo>
allCombos()
{
    return {OptCombo::Base,       OptCombo::POrder,
            OptCombo::Chain,      OptCombo::ChainSplit,
            OptCombo::ChainPOrder, OptCombo::All,
            OptCombo::HotCold,    OptCombo::Cfa};
}

namespace {

/** Original (source) block order of a procedure. */
std::vector<BlockLocalId>
naturalOrder(const program::Program& prog, ProcId p)
{
    std::vector<BlockLocalId> order(prog.proc(p).blocks.size());
    std::iota(order.begin(), order.end(), 0);
    return order;
}

/** One whole-procedure segment with the given intra-proc order. */
CodeSegment
wholeProcSegment(ProcId p, std::vector<BlockLocalId> order)
{
    CodeSegment seg;
    seg.proc = p;
    seg.blocks = std::move(order);
    return seg;
}

/** Per-procedure block orders for every proc (chained or natural). */
std::vector<std::vector<BlockLocalId>>
blockOrders(const program::Program& prog, const profile::Profile& profile,
            bool chain)
{
    std::vector<std::vector<BlockLocalId>> orders(prog.numProcs());
    for (ProcId p = 0; p < prog.numProcs(); ++p)
        orders[p] = chain ? chainBasicBlocks(prog, p, profile)
                          : naturalOrder(prog, p);
    return orders;
}

/** Reorder whole-procedure units with Pettis-Hansen over the call graph. */
std::vector<CodeSegment>
orderWholeProcs(const program::Program& prog,
                const profile::Profile& profile,
                std::vector<std::vector<BlockLocalId>> orders)
{
    auto cg = profile::CallGraph::fromProfile(profile);
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>
        edges;
    edges.reserve(cg.edges().size());
    for (const auto& [a, b, w] : cg.edges())
        edges.emplace_back(a, b, w);
    std::vector<std::uint32_t> order =
        pettisHansenOrder(prog.numProcs(), edges);
    std::vector<CodeSegment> segs;
    segs.reserve(order.size());
    for (std::uint32_t p : order)
        segs.push_back(wholeProcSegment(p, std::move(orders[p])));
    return segs;
}

/** Flatten per-proc segment lists in natural proc order. */
std::vector<CodeSegment>
concatSegments(std::vector<std::vector<CodeSegment>> per_proc)
{
    std::vector<CodeSegment> out;
    for (auto& v : per_proc)
        for (auto& s : v)
            out.push_back(std::move(s));
    return out;
}

/** Reorder arbitrary segments with Pettis-Hansen over the segment graph. */
std::vector<CodeSegment>
orderSegments(const program::Program& prog, const profile::Profile& profile,
              std::vector<CodeSegment> segs)
{
    SegmentGraph g = buildSegmentGraph(prog, profile, segs);
    std::vector<std::uint32_t> order =
        pettisHansenOrder(g.num_nodes, g.edges);
    std::vector<CodeSegment> out;
    out.reserve(segs.size());
    for (std::uint32_t s : order)
        out.push_back(std::move(segs[s]));
    return out;
}

/** Dynamic instruction weight of a segment (for CFA hot selection). */
std::uint64_t
segmentWeight(const program::Program& prog, const profile::Profile& profile,
              const CodeSegment& seg)
{
    std::uint64_t w = 0;
    for (BlockLocalId b : seg.blocks) {
        auto g = prog.globalBlockId(seg.proc, b);
        w += profile.blockCount(g) * prog.block(g).sizeInstrs;
    }
    return w;
}

std::uint64_t
segmentBytes(const program::Program& prog, const CodeSegment& seg)
{
    std::uint64_t bytes = 0;
    for (BlockLocalId b : seg.blocks)
        bytes += static_cast<std::uint64_t>(
                     prog.block(prog.globalBlockId(seg.proc, b))
                         .sizeInstrs) *
                 program::kInstrBytes;
    return bytes;
}

} // namespace

Layout
buildLayout(const program::Program& prog, const profile::Profile& profile,
            const PipelineOptions& opts)
{
    AssignOptions aopts;
    aopts.text_base = opts.text_base;

    switch (opts.combo) {
      case OptCombo::Base:
        aopts.segment_align = opts.proc_align;
        return Layout(prog, baselineSegments(prog), aopts);

      case OptCombo::POrder: {
        aopts.segment_align = opts.proc_align;
        auto orders = blockOrders(prog, profile, /*chain=*/false);
        return Layout(prog,
                      orderWholeProcs(prog, profile, std::move(orders)),
                      aopts);
      }

      case OptCombo::Chain: {
        aopts.segment_align = opts.proc_align;
        auto orders = blockOrders(prog, profile, /*chain=*/true);
        std::vector<CodeSegment> segs;
        segs.reserve(prog.numProcs());
        for (ProcId p = 0; p < prog.numProcs(); ++p)
            segs.push_back(wholeProcSegment(p, std::move(orders[p])));
        return Layout(prog, std::move(segs), aopts);
      }

      case OptCombo::ChainSplit: {
        aopts.segment_align = opts.segment_align;
        auto orders = blockOrders(prog, profile, /*chain=*/true);
        std::vector<std::vector<CodeSegment>> per_proc(prog.numProcs());
        for (ProcId p = 0; p < prog.numProcs(); ++p)
            per_proc[p] = splitFineGrain(prog, p, orders[p]);
        return Layout(prog, concatSegments(std::move(per_proc)), aopts);
      }

      case OptCombo::ChainPOrder: {
        aopts.segment_align = opts.proc_align;
        auto orders = blockOrders(prog, profile, /*chain=*/true);
        return Layout(prog,
                      orderWholeProcs(prog, profile, std::move(orders)),
                      aopts);
      }

      case OptCombo::All: {
        aopts.segment_align = opts.segment_align;
        auto orders = blockOrders(prog, profile, /*chain=*/true);
        std::vector<std::vector<CodeSegment>> per_proc(prog.numProcs());
        for (ProcId p = 0; p < prog.numProcs(); ++p)
            per_proc[p] = splitFineGrain(prog, p, orders[p]);
        auto segs = concatSegments(std::move(per_proc));
        return Layout(prog, orderSegments(prog, profile, std::move(segs)),
                      aopts);
      }

      case OptCombo::HotCold: {
        aopts.segment_align = opts.segment_align;
        auto orders = blockOrders(prog, profile, /*chain=*/true);
        std::vector<std::vector<CodeSegment>> per_proc(prog.numProcs());
        for (ProcId p = 0; p < prog.numProcs(); ++p)
            per_proc[p] = splitHotCold(prog, p, profile, orders[p],
                                       opts.hot_threshold);
        auto segs = concatSegments(std::move(per_proc));
        return Layout(prog, orderSegments(prog, profile, std::move(segs)),
                      aopts);
      }

      case OptCombo::Cfa: {
        // Chain + split, hottest segments greedily fill the reserved
        // area; everything is then placed with the CFA address mode.
        aopts.segment_align = opts.segment_align;
        aopts.cfa_bytes = opts.cfa_bytes;
        aopts.cfa_cache_bytes = opts.cfa_cache_bytes;
        auto orders = blockOrders(prog, profile, /*chain=*/true);
        std::vector<std::vector<CodeSegment>> per_proc(prog.numProcs());
        for (ProcId p = 0; p < prog.numProcs(); ++p)
            per_proc[p] = splitFineGrain(prog, p, orders[p]);
        auto segs = concatSegments(std::move(per_proc));

        std::vector<std::uint32_t> idx(segs.size());
        std::iota(idx.begin(), idx.end(), 0);
        std::vector<std::uint64_t> weight(segs.size());
        for (std::size_t i = 0; i < segs.size(); ++i)
            weight[i] = segmentWeight(prog, profile, segs[i]);
        std::stable_sort(idx.begin(), idx.end(),
                         [&](std::uint32_t a, std::uint32_t b) {
                             return weight[a] > weight[b];
                         });
        std::vector<CodeSegment> ordered;
        std::vector<bool> hot;
        ordered.reserve(segs.size());
        hot.reserve(segs.size());
        std::uint64_t filled = 0;
        for (std::uint32_t i : idx) {
            bool is_hot = weight[i] > 0 && filled < opts.cfa_bytes;
            if (is_hot)
                filled += segmentBytes(prog, segs[i]);
            ordered.push_back(std::move(segs[i]));
            hot.push_back(is_hot);
        }
        return Layout(prog, std::move(ordered), aopts, hot);
      }
    }
    SPIKESIM_PANIC("unknown optimization combo");
}

} // namespace spikesim::core
