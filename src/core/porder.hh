#ifndef SPIKESIM_CORE_PORDER_HH
#define SPIKESIM_CORE_PORDER_HH

#include <cstdint>
#include <tuple>
#include <vector>

/**
 * @file
 * Pettis & Hansen procedure ordering (paper section 2, Figure 2). The
 * algorithm works on an abstract weighted graph over placement units
 * (whole procedures, or fine-grain segments after splitting): repeatedly
 * merge the endpoints of the heaviest edge, choosing among the four
 * possible concatenation orientations using the *original* graph
 * weights; when the graph is exhausted the merged sequences give the
 * final placement order.
 */

namespace spikesim::core {

/**
 * Compute a Pettis-Hansen placement order.
 *
 * @param num_nodes number of placement units (0..num_nodes-1).
 * @param edges directed weighted edges; parallel and opposite-direction
 *        edges are summed into a single undirected weight.
 * @return a permutation of 0..num_nodes-1: heaviest connected groups
 *         first (by component weight), unconnected units last in their
 *         original relative order.
 */
std::vector<std::uint32_t> pettisHansenOrder(
    std::size_t num_nodes,
    const std::vector<std::tuple<std::uint32_t, std::uint32_t,
                                 std::uint64_t>>& edges);

} // namespace spikesim::core

#endif // SPIKESIM_CORE_PORDER_HH
