#include "core/temporal.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "profile/profile.hh"
#include "support/panic.hh"

namespace spikesim::core {

SegmentGraph
buildTemporalGraph(const program::Program& prog,
                   const trace::TraceBuffer& trace,
                   const TemporalOptions& opts)
{
    SPIKESIM_ASSERT(opts.window >= 1, "temporal window must be >= 1");

    // Dense block -> procedure map (locateBlock per event would be a
    // binary search on a multi-million-event trace).
    std::vector<program::ProcId> proc_of(prog.numBlocks());
    for (program::ProcId p = 0; p < prog.numProcs(); ++p)
        for (program::BlockLocalId b = 0;
             b < prog.proc(p).blocks.size(); ++b)
            proc_of[prog.globalBlockId(p, b)] = p;

    static constexpr int kMaxCpus = 64;
    program::ProcId current[kMaxCpus];
    std::deque<program::ProcId> window[kMaxCpus];
    for (int i = 0; i < kMaxCpus; ++i)
        current[i] = program::kInvalidId;

    std::unordered_map<std::uint64_t, std::uint64_t> weight;
    for (const trace::TraceEvent& e : trace.events()) {
        if (e.image != opts.image)
            continue;
        int cpu = e.cpu;
        SPIKESIM_ASSERT(cpu < kMaxCpus, "cpu id out of range");
        program::ProcId p = proc_of[e.block];
        if (p == current[cpu])
            continue; // still inside the same activation
        current[cpu] = p;

        auto& win = window[cpu];
        for (program::ProcId q : win) {
            if (q == p)
                continue;
            weight[profile::pairKey(std::min(p, q), std::max(p, q))] += 1;
        }
        // Keep the window a set of the most recent distinct procs.
        auto it = std::find(win.begin(), win.end(), p);
        if (it != win.end())
            win.erase(it);
        win.push_back(p);
        if (win.size() > opts.window)
            win.pop_front();
    }

    SegmentGraph g;
    g.num_nodes = prog.numProcs();
    g.edges.reserve(weight.size());
    for (const auto& [key, w] : weight)
        g.edges.emplace_back(static_cast<std::uint32_t>(key >> 32),
                             static_cast<std::uint32_t>(key), w);
    return g;
}

} // namespace spikesim::core
