#ifndef SPIKESIM_CORE_CHAIN_HH
#define SPIKESIM_CORE_CHAIN_HH

#include <vector>

#include "profile/profile.hh"
#include "program/program.hh"

/**
 * @file
 * Basic block chaining (paper section 2, Figure 1a): a greedy algorithm
 * that reorders the blocks of a procedure so the heaviest control-flow
 * edges become fall-throughs, biasing conditional branches towards
 * not-taken and eliminating hot unconditional branches.
 */

namespace spikesim::core {

/**
 * Chain the basic blocks of one procedure.
 *
 * Flow edges are sorted by profiled weight (heaviest first; zero-weight
 * edges last, in original edge order) and processed greedily: an edge
 * src->dst joins two chains when src has no chained successor, dst has
 * no chained predecessor, and the join would not close a cycle. The
 * chain containing the entry block is emitted first; remaining chains
 * follow in decreasing order of their head block's execution count.
 *
 * @return the blocks of the procedure in chained order (a permutation
 *         of 0..numBlocks-1).
 */
std::vector<program::BlockLocalId>
chainBasicBlocks(const program::Program& prog, program::ProcId proc,
                 const profile::Profile& profile);

/**
 * Dynamic fall-through weight of a block order: the sum of profiled
 * edge counts over pairs (order[i] -> order[i+1]) that are actual flow
 * edges capable of falling through. Chaining maximizes this greedily;
 * tests use it to check chained >= original. Its distance-aware
 * sibling is opt::extTspOrderScore (opt/exttsp.hh), which also credits
 * short jumps and i-cache-line co-residency and is the proxy objective
 * of the layout search engine (opt/search.hh).
 */
std::uint64_t
fallThroughWeight(const program::Program& prog, program::ProcId proc,
                  const profile::Profile& profile,
                  const std::vector<program::BlockLocalId>& order);

} // namespace spikesim::core

#endif // SPIKESIM_CORE_CHAIN_HH
