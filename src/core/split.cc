#include "core/split.hh"

#include <algorithm>
#include <unordered_map>

#include "support/panic.hh"

namespace spikesim::core {

using program::BasicBlock;
using program::BlockLocalId;
using program::EdgeKind;
using program::FlowEdge;
using program::GlobalBlockId;
using program::kInvalidId;
using program::ProcId;
using program::Procedure;
using program::Terminator;

namespace {

/** Can control fall from `from` into `next` under an adjacent layout? */
bool
fallsInto(const Procedure& p, BlockLocalId from, BlockLocalId next)
{
    const BasicBlock& blk = p.blocks[from];
    if (blk.term == Terminator::Return ||
        blk.term == Terminator::IndirectJump)
        return false;
    for (const FlowEdge& e : p.edges) {
        if (e.from != from || e.to != next)
            continue;
        switch (blk.term) {
          case Terminator::FallThrough:
          case Terminator::Call:
            if (e.kind == EdgeKind::FallThrough)
                return true;
            break;
          case Terminator::CondBranch:
            // Either side can be the fall-through (free inversion).
            if (e.kind == EdgeKind::FallThrough ||
                e.kind == EdgeKind::CondTaken)
                return true;
            break;
          case Terminator::UncondBranch:
            // Adjacent target: the branch is deleted, becoming a
            // fall-through.
            if (e.kind == EdgeKind::UncondTarget)
                return true;
            break;
          default:
            break;
        }
    }
    return false;
}

} // namespace

std::vector<CodeSegment>
splitFineGrain(const program::Program& prog, ProcId proc,
               const std::vector<BlockLocalId>& order)
{
    const Procedure& p = prog.proc(proc);
    SPIKESIM_ASSERT(order.size() == p.blocks.size(),
                    "order does not cover proc " << p.name);
    std::vector<CodeSegment> segs;
    CodeSegment cur;
    cur.proc = proc;
    for (std::size_t i = 0; i < order.size(); ++i) {
        cur.blocks.push_back(order[i]);
        bool cut = (i + 1 == order.size()) ||
                   !fallsInto(p, order[i], order[i + 1]);
        if (cut) {
            segs.push_back(std::move(cur));
            cur = CodeSegment();
            cur.proc = proc;
        }
    }
    return segs;
}

std::vector<CodeSegment>
splitHotCold(const program::Program& prog, ProcId proc,
             const profile::Profile& profile,
             const std::vector<BlockLocalId>& order,
             std::uint64_t hot_threshold)
{
    CodeSegment hot, cold;
    hot.proc = cold.proc = proc;
    for (BlockLocalId b : order) {
        std::uint64_t count =
            profile.blockCount(prog.globalBlockId(proc, b));
        if (count >= hot_threshold)
            hot.blocks.push_back(b);
        else
            cold.blocks.push_back(b);
    }
    std::vector<CodeSegment> segs;
    if (!hot.blocks.empty())
        segs.push_back(std::move(hot));
    if (!cold.blocks.empty())
        segs.push_back(std::move(cold));
    return segs;
}

HotColdPartition
partitionHotCold(const program::Program& prog,
                 const profile::Profile& profile,
                 const std::vector<CodeSegment>& segments,
                 std::uint64_t hot_threshold)
{
    HotColdPartition part;
    for (const CodeSegment& seg : segments) {
        std::uint64_t peak = 0;
        for (BlockLocalId b : seg.blocks)
            peak = std::max(
                peak, profile.blockCount(prog.globalBlockId(seg.proc, b)));
        (peak >= hot_threshold ? part.hot : part.cold).push_back(seg);
    }
    return part;
}

SegmentGraph
buildSegmentGraph(const program::Program& prog,
                  const profile::Profile& profile,
                  const std::vector<CodeSegment>& segments)
{
    SegmentGraph g;
    g.num_nodes = segments.size();

    // Map every block to its segment, and every procedure entry to the
    // segment holding it.
    std::vector<std::uint32_t> seg_of(prog.numBlocks(), kInvalidId);
    for (std::size_t s = 0; s < segments.size(); ++s)
        for (BlockLocalId b : segments[s].blocks)
            seg_of[prog.globalBlockId(segments[s].proc, b)] =
                static_cast<std::uint32_t>(s);
    for (std::uint32_t so : seg_of)
        SPIKESIM_ASSERT(so != kInvalidId,
                        "segment list does not cover the program");

    std::unordered_map<std::uint64_t, std::uint64_t> weight;
    auto add = [&](std::uint32_t from, std::uint32_t to, std::uint64_t w) {
        if (from == to || w == 0)
            return;
        weight[profile::pairKey(from, to)] += w;
    };

    // Call edges: caller block's segment -> callee entry's segment.
    for (const auto& [caller_block, callee, count] : profile.calls()) {
        GlobalBlockId entry = prog.globalBlockId(callee, 0);
        add(seg_of[caller_block], seg_of[entry], count);
    }
    // Severed flow edges: control transfers between segments.
    for (const auto& [from, to, count] : profile.edges())
        add(seg_of[from], seg_of[to], count);

    g.edges.reserve(weight.size());
    for (const auto& [key, w] : weight)
        g.edges.emplace_back(static_cast<std::uint32_t>(key >> 32),
                             static_cast<std::uint32_t>(key), w);
    return g;
}

} // namespace spikesim::core
