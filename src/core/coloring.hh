#ifndef SPIKESIM_CORE_COLORING_HH
#define SPIKESIM_CORE_COLORING_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "mem/cache.hh"
#include "profile/profile.hh"
#include "program/program.hh"

/**
 * @file
 * Cache-conscious procedure placement after Hashemi, Kaeli & Calder
 * (PLDI'97): procedures are placed so that the most frequently
 * executed ones do not collide in the target instruction cache. The
 * paper's related-work section contrasts this "cache line coloring"
 * family with the Spike pipeline; we implement a row-packing variant:
 * procedures are taken hottest-first and packed into cache-sized rows,
 * so every procedure in a row is conflict-free with the others in the
 * same row, and the hottest rows hold the hottest code. Cold
 * procedures follow in their original order.
 */

namespace spikesim::core {

/** Options for cache-colored placement. */
struct ColoringOptions
{
    /** Geometry of the cache being colored for. */
    mem::CacheConfig target{64 * 1024, 128, 1};
};

/**
 * Order whole procedures by cache-colored row packing, hottest first.
 *
 * @return segments (one per procedure, natural intra-proc block order)
 *         in placement order.
 */
std::vector<CodeSegment>
colorOrderProcedures(const program::Program& prog,
                     const profile::Profile& profile,
                     const ColoringOptions& opts = {});

/**
 * Like colorOrderProcedures, but packs the given pre-split segments
 * (e.g., chained + fine-grain split) instead of whole procedures.
 */
std::vector<CodeSegment>
colorOrderSegments(const program::Program& prog,
                   const profile::Profile& profile,
                   std::vector<CodeSegment> segments,
                   const ColoringOptions& opts = {});

} // namespace spikesim::core

#endif // SPIKESIM_CORE_COLORING_HH
