#include "core/chain.hh"

#include <algorithm>

#include "support/panic.hh"

namespace spikesim::core {

using program::BlockLocalId;
using program::EdgeKind;
using program::FlowEdge;
using program::GlobalBlockId;
using program::kInvalidId;
using program::ProcId;
using program::Procedure;

std::vector<BlockLocalId>
chainBasicBlocks(const program::Program& prog, ProcId proc,
                 const profile::Profile& profile)
{
    const Procedure& p = prog.proc(proc);
    const std::size_t n = p.blocks.size();

    // Weighted edge worklist. Zero-weight edges participate too (they
    // keep cold code in a sane order) but sort after all hot edges.
    struct WorkEdge
    {
        BlockLocalId from;
        BlockLocalId to;
        std::uint64_t weight;
        std::size_t index; // original edge order, the deterministic tie-break
    };
    std::vector<WorkEdge> work;
    work.reserve(p.edges.size());
    for (std::size_t i = 0; i < p.edges.size(); ++i) {
        const FlowEdge& e = p.edges[i];
        if (e.from == e.to)
            continue; // self-loop can never be a fall-through
        if (e.kind == EdgeKind::IndirectTarget)
            continue; // indirect jumps always break; adjacency is useless
        std::uint64_t w =
            profile.edgeCount(prog.globalBlockId(proc, e.from),
                              prog.globalBlockId(proc, e.to));
        work.push_back({e.from, e.to, w, i});
    }
    std::sort(work.begin(), work.end(),
              [](const WorkEdge& a, const WorkEdge& b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.index < b.index;
              });

    // Greedy chaining with union-find cycle prevention.
    std::vector<BlockLocalId> succ(n, kInvalidId);
    std::vector<BlockLocalId> pred(n, kInvalidId);
    std::vector<BlockLocalId> rep(n);
    for (std::size_t i = 0; i < n; ++i)
        rep[i] = static_cast<BlockLocalId>(i);
    auto find = [&](BlockLocalId x) {
        while (rep[x] != x) {
            rep[x] = rep[rep[x]];
            x = rep[x];
        }
        return x;
    };
    for (const WorkEdge& e : work) {
        if (succ[e.from] != kInvalidId || pred[e.to] != kInvalidId)
            continue;
        BlockLocalId ra = find(e.from);
        BlockLocalId rb = find(e.to);
        if (ra == rb)
            continue; // would close a cycle
        succ[e.from] = e.to;
        pred[e.to] = e.from;
        rep[ra] = rb;
    }

    // Collect chains: heads are blocks with no chained predecessor.
    struct ChainInfo
    {
        BlockLocalId head;
        std::uint64_t head_count;
        bool has_entry;
    };
    std::vector<ChainInfo> chains;
    for (std::size_t b = 0; b < n; ++b) {
        if (pred[b] != kInvalidId)
            continue;
        ChainInfo ci;
        ci.head = static_cast<BlockLocalId>(b);
        ci.head_count =
            profile.blockCount(prog.globalBlockId(proc, ci.head));
        ci.has_entry = false;
        for (BlockLocalId cur = ci.head; cur != kInvalidId;
             cur = succ[cur])
            if (cur == 0)
                ci.has_entry = true;
        chains.push_back(ci);
    }

    // Entry chain first; the rest by head execution count, heaviest
    // first; ties broken by head id for determinism.
    std::sort(chains.begin(), chains.end(),
              [](const ChainInfo& a, const ChainInfo& b) {
                  if (a.has_entry != b.has_entry)
                      return a.has_entry;
                  if (a.head_count != b.head_count)
                      return a.head_count > b.head_count;
                  return a.head < b.head;
              });

    std::vector<BlockLocalId> order;
    order.reserve(n);
    for (const ChainInfo& ci : chains)
        for (BlockLocalId cur = ci.head; cur != kInvalidId; cur = succ[cur])
            order.push_back(cur);

    SPIKESIM_ASSERT(order.size() == n,
                    "chaining lost blocks in proc " << p.name);
    return order;
}

std::uint64_t
fallThroughWeight(const program::Program& prog, ProcId proc,
                  const profile::Profile& profile,
                  const std::vector<BlockLocalId>& order)
{
    const Procedure& p = prog.proc(proc);
    // Adjacency set of fall-through-capable flow edges.
    std::uint64_t total = 0;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        for (const FlowEdge& e : p.edges) {
            if (e.from != order[i] || e.to != order[i + 1])
                continue;
            // Any direct edge can become the fall-through (cond branches
            // invert for free; uncond branches get deleted); indirect
            // jump targets cannot.
            if (e.kind == EdgeKind::IndirectTarget)
                continue;
            total += profile.edgeCount(prog.globalBlockId(proc, e.from),
                                       prog.globalBlockId(proc, e.to));
        }
    }
    return total;
}

} // namespace spikesim::core
