#ifndef SPIKESIM_CORE_SPLIT_HH
#define SPIKESIM_CORE_SPLIT_HH

#include <vector>

#include "core/layout.hh"
#include "profile/profile.hh"
#include "program/program.hh"

/**
 * @file
 * Procedure splitting. Two variants from the paper:
 *
 * - Fine-grain splitting (developed for the paper): the chained block
 *   order of a procedure is cut after every block from which control
 *   cannot fall through to the next block (unconditional branch,
 *   return, indirect jump, or a severed chain link that forces a
 *   materialized branch). Each resulting run becomes an independent
 *   placement unit for procedure ordering.
 *
 * - Hot/cold splitting (the variant in the Spike distribution): each
 *   procedure is divided into just two units, the executed (hot) part
 *   and the rest (cold).
 */

namespace spikesim::core {

/**
 * Cut one procedure's block order into fine-grain segments.
 *
 * @param order the (typically chained) intra-procedure block order.
 * @return runs of blocks; concatenated they equal `order`.
 */
std::vector<CodeSegment>
splitFineGrain(const program::Program& prog, program::ProcId proc,
               const std::vector<program::BlockLocalId>& order);

/**
 * Split one procedure's block order into a hot segment (blocks whose
 * execution count is >= hot_threshold) and a cold segment, preserving
 * relative order. Either may be absent if empty.
 */
std::vector<CodeSegment>
splitHotCold(const program::Program& prog, program::ProcId proc,
             const profile::Profile& profile,
             const std::vector<program::BlockLocalId>& order,
             std::uint64_t hot_threshold = 1);

/**
 * Program-level hot/cold partition of a segment list (BOLT-style text
 * splitting): segments whose peak block execution count reaches
 * `hot_threshold` go to `hot`, the rest to `cold`, each preserving the
 * input's relative order. Concatenated hot + cold is a permutation of
 * the input segment list — every block placed exactly once, with the
 * hot text forming one compact contiguous prefix.
 */
struct HotColdPartition
{
    std::vector<CodeSegment> hot;
    std::vector<CodeSegment> cold;
};

HotColdPartition
partitionHotCold(const program::Program& prog,
                 const profile::Profile& profile,
                 const std::vector<CodeSegment>& segments,
                 std::uint64_t hot_threshold = 1);

/** Weighted graph over code segments, input to procedure ordering. */
struct SegmentGraph
{
    std::size_t num_nodes = 0;
    /** Directed edges (from segment, to segment, weight), weight > 0. */
    std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>>
        edges;
};

/**
 * Build the placement graph over segments from a profile: call edges
 * (caller block's segment -> segment holding the callee's entry block)
 * plus inter-segment flow edges (severed chain links), exactly the
 * "call graph includes branch as well as call edges" construction from
 * the paper.
 */
SegmentGraph
buildSegmentGraph(const program::Program& prog,
                  const profile::Profile& profile,
                  const std::vector<CodeSegment>& segments);

} // namespace spikesim::core

#endif // SPIKESIM_CORE_SPLIT_HH
