#ifndef SPIKESIM_CORE_LAYOUT_HH
#define SPIKESIM_CORE_LAYOUT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hh"

/**
 * @file
 * Code layout representation: an ordered list of code segments (the
 * placement units) and the address assignment derived from it. The
 * assigner models the two layout-dependent code-size effects from the
 * paper: unconditional branches are *deleted* when their target becomes
 * the fall-through, and are *materialized* when a block that used to
 * fall through is moved away from its successor.
 */

namespace spikesim::core {

/**
 * A contiguous run of blocks from one procedure, placed as a unit.
 * Before splitting there is one segment per procedure; fine-grain
 * splitting produces many small segments.
 */
struct CodeSegment
{
    program::ProcId proc = program::kInvalidId;
    std::vector<program::BlockLocalId> blocks;
};

/** Knobs for address assignment. */
struct AssignOptions
{
    /** Base virtual address of the text section. */
    std::uint64_t text_base = 0x10000000ULL;
    /**
     * Segment start alignment in bytes (power of two). Compiler-made
     * baselines align procedure entries (16 here); Spike-style optimized
     * layouts pack segments with no padding (4).
     */
    std::uint32_t segment_align = 4;
    /**
     * When > 0, reserve a conflict-free area (CFA): segments flagged hot
     * are placed only into cache rows [0, cfa_bytes) of a cache of
     * cfa_cache_bytes, cold segments only outside it.
     */
    std::uint32_t cfa_bytes = 0;
    std::uint32_t cfa_cache_bytes = 0;
};

/**
 * The result of placing segments in order: per-block addresses and
 * layout-adjusted sizes.
 */
class Layout
{
  public:
    /**
     * Assign addresses to the given segment order. Every block of the
     * program must appear exactly once across the segments.
     *
     * @param hot_flags optional per-segment hot flag (parallel to
     *        segments) used only in CFA mode; empty means all cold.
     */
    Layout(const program::Program& prog, std::vector<CodeSegment> segments,
           const AssignOptions& opts = {},
           const std::vector<bool>& hot_flags = {});

    const program::Program& prog() const { return *prog_; }
    const std::vector<CodeSegment>& segments() const { return segments_; }

    /** Start address of a block under this layout. */
    std::uint64_t blockAddr(program::GlobalBlockId g) const;

    /**
     * Layout-adjusted block size in instructions (body plus materialized
     * or minus deleted trailing unconditional branch). May be zero for a
     * branch-only block whose branch was deleted.
     */
    std::uint32_t blockSize(program::GlobalBlockId g) const;

    /** Block size in bytes. */
    std::uint64_t
    blockBytes(program::GlobalBlockId g) const
    {
        return static_cast<std::uint64_t>(blockSize(g)) *
               program::kInstrBytes;
    }

    std::uint64_t textBase() const { return text_base_; }
    /** One past the last text byte. */
    std::uint64_t textLimit() const { return text_limit_; }
    std::uint64_t textBytes() const { return text_limit_ - text_base_; }

    /** Number of unconditional branches added because a fall-through
     *  successor was moved away. */
    std::uint64_t branchesMaterialized() const { return materialized_; }
    /** Number of unconditional branches deleted because their target
     *  became the fall-through. */
    std::uint64_t branchesDeleted() const { return deleted_; }
    /** Alignment padding inserted, in bytes. */
    std::uint64_t paddingBytes() const { return padding_bytes_; }

    /**
     * Audit branch displacements: number of direct branches (cond or
     * uncond, including materialized ones) whose source-to-target
     * distance exceeds the given limit (Alpha cond-branch reach is
     * +-1MB).
     */
    std::uint64_t
    branchesBeyondDisplacement(std::uint64_t limit_bytes = 1u << 20) const;

    /**
     * Verify the layout covers every block exactly once with
     * non-overlapping addresses. Returns empty string when valid.
     */
    std::string validate() const;

  private:
    const program::Program* prog_;
    std::vector<CodeSegment> segments_;
    std::vector<std::uint64_t> addr_;      ///< by global block id
    std::vector<std::uint32_t> size_;      ///< by global block id
    std::uint64_t text_base_ = 0;
    std::uint64_t text_limit_ = 0;
    std::uint64_t materialized_ = 0;
    std::uint64_t deleted_ = 0;
    std::uint64_t padding_bytes_ = 0;
};

/**
 * Baseline segment list: one segment per procedure, blocks in their
 * original (source) order, procedures in id (link) order.
 */
std::vector<CodeSegment> baselineSegments(const program::Program& prog);

/** Baseline layout as produced by the original compiler/linker. */
Layout baselineLayout(const program::Program& prog,
                      std::uint64_t text_base = 0x10000000ULL);

} // namespace spikesim::core

#endif // SPIKESIM_CORE_LAYOUT_HH
