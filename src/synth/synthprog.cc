#include "synth/synthprog.hh"

#include <algorithm>

#include "program/builder.hh"
#include "support/panic.hh"
#include "support/rng.hh"

namespace spikesim::synth {

using program::BlockLocalId;
using program::EdgeKind;
using program::kInvalidId;
using program::ProcId;
using program::ProcedureBuilder;
using program::Terminator;
using support::Pcg32;

namespace {

/** Abstract statement of a generated procedure body. */
struct Region
{
    enum class Kind {
        Straight, ///< one plain block
        CallStmt, ///< one block ending in a call
        IfThen,   ///< guard + inline (usually cold) body
        IfElse,   ///< guard + two alternative bodies
        Loop,     ///< do-while body + latch
        Switch,   ///< indirect dispatch over arms
        EarlyRet, ///< return block (cold exits)
    };
    Kind kind = Kind::Straight;
    int size = 1;      ///< instructions in the head (or only) block
    double prob = 0.5; ///< IfThen/IfElse: P(fall into first body);
                       ///< Loop: back-edge probability
    ProcId callee = kInvalidId;
    std::uint16_t hint_slot = 0;
    std::vector<double> arm_probs;          ///< Switch only
    std::vector<std::vector<Region>> bodies;
};

int countBlocks(const std::vector<Region>& seq);

int
countBlocks(const Region& r)
{
    int n = 1; // head block
    for (const auto& b : r.bodies)
        n += countBlocks(b);
    return n;
}

int
countBlocks(const std::vector<Region>& seq)
{
    int n = 0;
    for (const auto& r : seq)
        n += countBlocks(r);
    return n;
}

void emitSeq(ProcedureBuilder& b, const std::vector<Region>& seq,
             BlockLocalId exit);

void
emitRegion(ProcedureBuilder& b, const Region& r, BlockLocalId exit)
{
    auto size = static_cast<std::uint32_t>(r.size);
    switch (r.kind) {
      case Region::Kind::Straight: {
        BlockLocalId id = b.addBlock(size, Terminator::FallThrough);
        b.addEdge(id, exit, EdgeKind::FallThrough, 1.0);
        break;
      }
      case Region::Kind::CallStmt: {
        BlockLocalId id = b.addBlock(size, Terminator::Call, r.callee);
        b.addEdge(id, exit, EdgeKind::FallThrough, 1.0);
        break;
      }
      case Region::Kind::EarlyRet: {
        b.addBlock(size, Terminator::Return);
        break;
      }
      case Region::Kind::IfThen: {
        BlockLocalId c = b.addBlock(size, Terminator::CondBranch);
        auto then_entry = static_cast<BlockLocalId>(b.numBlocks());
        emitSeq(b, r.bodies[0], exit);
        // Falling into the inline body has probability r.prob; the
        // common case takes the forward branch over it — exactly how
        // compilers lay out inline error paths.
        b.addEdge(c, then_entry, EdgeKind::FallThrough, r.prob);
        b.addEdge(c, exit, EdgeKind::CondTaken, 1.0 - r.prob);
        break;
      }
      case Region::Kind::IfElse: {
        BlockLocalId c = b.addBlock(size, Terminator::CondBranch);
        auto then_entry = static_cast<BlockLocalId>(b.numBlocks());
        emitSeq(b, r.bodies[0], exit);
        auto else_entry = static_cast<BlockLocalId>(b.numBlocks());
        emitSeq(b, r.bodies[1], exit);
        b.addEdge(c, then_entry, EdgeKind::FallThrough, r.prob);
        b.addEdge(c, else_entry, EdgeKind::CondTaken, 1.0 - r.prob);
        break;
      }
      case Region::Kind::Loop: {
        auto body_entry = static_cast<BlockLocalId>(b.numBlocks());
        auto latch = static_cast<BlockLocalId>(
            b.numBlocks() + static_cast<std::size_t>(
                                countBlocks(r.bodies[0])));
        emitSeq(b, r.bodies[0], latch);
        BlockLocalId t = b.addBlock(size, Terminator::CondBranch);
        SPIKESIM_ASSERT(t == latch, "loop latch id mismatch");
        b.addEdge(t, body_entry, EdgeKind::CondTaken, r.prob);
        b.addEdge(t, exit, EdgeKind::FallThrough, 1.0 - r.prob);
        if (r.hint_slot != 0)
            b.setHintSlot(t, r.hint_slot);
        break;
      }
      case Region::Kind::Switch: {
        BlockLocalId s = b.addBlock(size, Terminator::IndirectJump);
        for (std::size_t i = 0; i < r.bodies.size(); ++i) {
            auto arm_entry = static_cast<BlockLocalId>(b.numBlocks());
            emitSeq(b, r.bodies[i], exit);
            b.addEdge(s, arm_entry, EdgeKind::IndirectTarget,
                      r.arm_probs[i]);
        }
        break;
      }
    }
}

void
emitSeq(ProcedureBuilder& b, const std::vector<Region>& seq,
        BlockLocalId exit)
{
    SPIKESIM_ASSERT(!seq.empty(), "empty region sequence");
    for (std::size_t i = 0; i < seq.size(); ++i) {
        BlockLocalId region_exit;
        if (i + 1 == seq.size()) {
            region_exit = exit;
        } else {
            region_exit = static_cast<BlockLocalId>(
                b.numBlocks() +
                static_cast<std::size_t>(countBlocks(seq[i])));
        }
        emitRegion(b, seq[i], region_exit);
    }
}

/** Metadata of every planned procedure, available before bodies exist. */
struct ProcMeta
{
    std::string name;
    int subsystem = 0; ///< index into params.subsystems
    int layer = 0;
    bool cold = false;
    bool is_entry = false;
    bool tight = false;
    double scale = 1.0;
    int hinted_loops = 0;
};

/** Shared generation context. */
struct Gen
{
    const SynthParams& params;
    std::vector<ProcMeta> metas;
    Pcg32 rng;
    /**
     * Expected dynamic instructions per invocation of each generated
     * procedure (including its callees). Bodies are generated deepest-
     * first so every call site knows its callee's cost and can stay
     * within the caller's layer budget — this is what keeps the call
     * DAG's dynamic cost bounded and calibratable.
     */
    std::vector<double> expected_cost;
    /** Accumulated expected cost of the procedure being generated. */
    double e_acc = 0.0;
    /** Budget for the procedure being generated. */
    double e_cap = 0.0;
    /** Nominal trip count assumed for hinted loops. */
    static constexpr double kNominalHintTrips = 3.0;
    /** True while generating a tight (scan-loop) entry procedure. */
    bool tight_mode = false;

    /**
     * Candidate indexes over the planned procedures, so pickCallee
     * visits only real candidates instead of scanning every procedure
     * per call site (the scans dominated image-build time):
     * by_subsystem[s] = ascending proc indices of subsystem s;
     * hot_above[l] / cold_above[l] = ascending indices with layer > l,
     * split by the cold flag.
     */
    std::vector<std::vector<std::uint32_t>> by_subsystem;
    std::vector<std::vector<std::uint32_t>> hot_above;
    std::vector<std::vector<std::uint32_t>> cold_above;
    /** Reused per call site to avoid allocation churn. */
    std::vector<std::uint32_t> same_scratch, deeper_scratch, cold_scratch;

    explicit Gen(const SynthParams& p) : params(p), rng(p.seed) {}

    /** Build the candidate indexes; call once metas are planned. */
    void
    indexCandidates()
    {
        int max_layer = 0;
        for (const ProcMeta& m : metas)
            max_layer = std::max(max_layer, m.layer);
        by_subsystem.assign(params.subsystems.size(), {});
        hot_above.assign(static_cast<std::size_t>(max_layer) + 1, {});
        cold_above.assign(static_cast<std::size_t>(max_layer) + 1, {});
        for (std::size_t j = 0; j < metas.size(); ++j) {
            const ProcMeta& m = metas[j];
            const auto idx = static_cast<std::uint32_t>(j);
            by_subsystem[static_cast<std::size_t>(m.subsystem)]
                .push_back(idx);
            for (int l = 0; l < m.layer; ++l)
                (m.cold ? cold_above : hot_above)[static_cast<
                    std::size_t>(l)]
                    .push_back(idx);
        }
    }

    int
    blockSize()
    {
        return rng.nextGeometric(params.avg_block_instrs,
                                 params.max_block_instrs);
    }

    /** Error-handling code is verbose: bigger blocks on cold paths. */
    int
    coldBlockSize()
    {
        return rng.nextGeometric(params.avg_block_instrs * 1.8,
                                 params.max_block_instrs);
    }

    /**
     * A dispatch switch whose arms call different procedures — the
     * virtual-function / operation-table pattern that spreads heat
     * across many callees in real database engines.
     */
    Region
    makeDispatchSwitch(std::size_t caller, bool cold_path, double mult,
                       int min_arms, int max_arms)
    {
        Region r;
        r.kind = Region::Kind::Switch;
        r.size = blockSize();
        e_acc += mult * r.size;
        int arms = min_arms +
                   static_cast<int>(rng.nextBounded(
                       static_cast<std::uint32_t>(max_arms - min_arms + 1)));
        double sum = 0.0;
        for (int i = 0; i < arms; ++i) {
            double p = 1.0 / arms; // dispatch tables spread evenly
            sum += p;
            std::vector<Region> arm;
            double budget = (e_cap - e_acc) / std::max(mult * p, 1e-9);
            ProcId callee = pickCallee(caller, cold_path, budget);
            Region stmt;
            stmt.size = blockSize();
            if (callee != kInvalidId) {
                stmt.kind = Region::Kind::CallStmt;
                stmt.callee = callee;
                e_acc += mult * p * (stmt.size + expected_cost[callee]);
            } else {
                stmt.kind = Region::Kind::Straight;
                e_acc += mult * p * stmt.size;
            }
            arm.push_back(std::move(stmt));
            r.bodies.push_back(std::move(arm));
            r.arm_probs.push_back(p);
        }
        r.arm_probs.back() += 1.0 - sum;
        return r;
    }

    /** Expected-cost budget for a procedure of the given layer. */
    double
    layerBudget(int layer, int max_layer) const
    {
        double budget = params.budget_base;
        for (int l = max_layer; l > layer; --l)
            budget *= params.budget_growth;
        return budget;
    }

    /**
     * Pick a callee for procedure `caller`: a later procedure in the
     * same subsystem (bounded stride, to keep the call DAG shallow) or
     * in a deeper layer, subject to the remaining expected-cost
     * budget. Cold paths prefer cold subsystems. Returns kInvalidId
     * when no affordable candidate exists.
     */
    ProcId
    pickCallee(std::size_t caller, bool cold_path, double budget)
    {
        const ProcMeta& cm = metas[caller];
        // Walk the precomputed candidate indexes from the first entry
        // past the caller; contents and order match what full scans
        // over [caller+1, n) would produce.
        const auto first_after = [&](const std::vector<std::uint32_t>& v) {
            return std::upper_bound(v.begin(), v.end(),
                                    static_cast<std::uint32_t>(caller));
        };
        std::vector<std::uint32_t>& same = same_scratch;
        std::vector<std::uint32_t>& deeper = deeper_scratch;
        std::vector<std::uint32_t>& cold = cold_scratch;
        same.clear();
        deeper.clear();
        cold.clear();
        const auto& subs =
            by_subsystem[static_cast<std::size_t>(cm.subsystem)];
        for (auto it = first_after(subs);
             it != subs.end() && same.size() < 48; ++it) {
            if (expected_cost[*it] <= budget)
                same.push_back(*it);
        }
        const auto& hot =
            hot_above[static_cast<std::size_t>(cm.layer)];
        for (auto it = first_after(hot); it != hot.end(); ++it)
            if (expected_cost[*it] <= budget)
                deeper.push_back(*it);
        const auto& colds =
            cold_above[static_cast<std::size_t>(cm.layer)];
        for (auto it = first_after(colds); it != colds.end(); ++it)
            if (expected_cost[*it] <= budget)
                cold.push_back(*it);
        auto pick_skewed = [&](const std::vector<std::uint32_t>& v)
            -> ProcId {
            if (v.empty())
                return kInvalidId;
            // Geometric skew: a few candidates take most of the calls,
            // but the tail spreads over the whole pool, giving the
            // flat-but-skewed profile OLTP binaries show.
            double mean = std::max(
                6.0, static_cast<double>(v.size()) / 4.0);
            std::size_t i = static_cast<std::size_t>(
                rng.nextGeometric(mean, static_cast<int>(v.size())) - 1);
            return v[i];
        };
        if (cold_path) {
            ProcId c = pick_skewed(cold);
            if (c != kInvalidId)
                return c;
        }
        if (!same.empty() && (deeper.empty() || rng.nextBool(0.55)))
            return pick_skewed(same);
        if (!deeper.empty()) {
            std::size_t i = static_cast<std::size_t>(
                rng.nextGeometric(
                    std::max(4.0, static_cast<double>(deeper.size()) / 3.0),
                    static_cast<int>(deeper.size())) -
                1);
            return deeper[i];
        }
        return pick_skewed(same);
    }

    std::vector<Region> genSeq(std::size_t caller, int n_regions,
                               double call_prob, bool cold_path, int depth,
                               int hinted_loops, double mult);

    Region genCompound(std::size_t caller, bool cold_path, int depth,
                       double mult);
};

Region
Gen::genCompound(std::size_t caller, bool cold_path, int depth,
                 double mult)
{
    Region r;
    r.size = blockSize();
    double pick = rng.nextDouble();
    const ProcMeta& cm = metas[caller];
    double sub_call_prob =
        params.subsystems[static_cast<std::size_t>(cm.subsystem)]
            .avg_calls > 0
            ? 0.35
            : 0.0;

    if (pick < params.error_if_fraction) {
        // if-then guarding a cold inline path.
        r.kind = Region::Kind::IfThen;
        static constexpr double kColdProbs[] = {0.0002, 0.0005, 0.001,
                                                0.003, 0.01, 0.02, 0.05};
        r.prob = kColdProbs[rng.nextBounded(7)];
        e_acc += mult * r.size;
        int body_len = 2 + static_cast<int>(rng.nextBounded(3));
        r.bodies.push_back(genSeq(caller, body_len, sub_call_prob, true,
                                  depth + 1, 0, mult * r.prob));
        // Cold paths often bail out of the procedure entirely.
        if (rng.nextBool(0.4)) {
            Region ret;
            ret.kind = Region::Kind::EarlyRet;
            ret.size = coldBlockSize();
            e_acc += mult * r.prob * ret.size;
            r.bodies[0].push_back(ret);
        }
    } else if (pick < params.error_if_fraction + 0.15) {
        // Balanced-ish if-else.
        r.kind = Region::Kind::IfElse;
        static constexpr double kBiases[] = {0.5, 0.6, 0.7, 0.8, 0.9};
        r.prob = kBiases[rng.nextBounded(5)];
        e_acc += mult * r.size;
        r.bodies.push_back(genSeq(caller, 1, sub_call_prob, cold_path,
                                  depth + 1, 0, mult * r.prob));
        r.bodies.push_back(genSeq(caller, 1, sub_call_prob, cold_path,
                                  depth + 1, 0, mult * (1.0 - r.prob)));
    } else if (pick < params.error_if_fraction + 0.15 + 0.15) {
        // Loop with a modest expected trip count.
        r.kind = Region::Kind::Loop;
        double mean_trips = 1.0 + rng.nextDouble() * 5.0;
        r.prob = mean_trips / (mean_trips + 1.0);
        double trips = mean_trips + 1.0;
        e_acc += mult * trips * r.size; // the latch block
        int body_len = 1 + static_cast<int>(rng.nextBounded(2));
        r.bodies.push_back(genSeq(caller, body_len, sub_call_prob * 0.5,
                                  cold_path, depth + 1, 0,
                                  mult * trips));
    } else {
        // Indirect dispatch (switch / virtual call table).
        r.kind = Region::Kind::Switch;
        e_acc += mult * r.size;
        int arms = 3 + static_cast<int>(rng.nextBounded(5));
        double norm = 0.0;
        for (int i = 0; i < arms; ++i)
            norm += 1.0 / (i + 1.0);
        for (int i = 0; i < arms; ++i) {
            double p = 1.0 / ((i + 1.0) * norm);
            r.arm_probs.push_back(p);
            r.bodies.push_back(genSeq(caller, 1, sub_call_prob, cold_path,
                                      depth + 1, 0, mult * p));
        }
        // Fix rounding so probabilities sum to exactly 1.
        double sum = 0.0;
        for (double p : r.arm_probs)
            sum += p;
        r.arm_probs.back() += 1.0 - sum;
    }
    return r;
}

std::vector<Region>
Gen::genSeq(std::size_t caller, int n_regions, double call_prob,
            bool cold_path, int depth, int hinted_loops, double mult)
{
    std::vector<Region> seq;
    seq.reserve(static_cast<std::size_t>(n_regions) +
                static_cast<std::size_t>(hinted_loops));

    // Hinted loops (slots 1..hinted_loops) go first; each wraps a call
    // so every trip does per-level work (a B-tree level, a log chunk).
    for (int h = 1; h <= hinted_loops; ++h) {
        Region r;
        r.kind = Region::Kind::Loop;
        r.size = blockSize();
        r.prob = 0.6; // unused when a hint is supplied
        r.hint_slot = static_cast<std::uint16_t>(h);
        double loop_mult = mult * kNominalHintTrips;
        e_acc += loop_mult * r.size;
        std::vector<Region> body =
            genSeq(caller, 1, 0.0, cold_path, depth + 1, 0, loop_mult);
        if (tight_mode) {
            // Scan loops: one fixed helper call per trip, no dispatch.
            double budget = (e_cap - e_acc) / std::max(loop_mult, 1e-9);
            ProcId callee = pickCallee(caller, cold_path,
                                       std::min(budget, 60.0));
            if (callee != kInvalidId) {
                Region call;
                call.kind = Region::Kind::CallStmt;
                call.size = blockSize();
                call.callee = callee;
                e_acc +=
                    loop_mult * (call.size + expected_cost[callee]);
                body.push_back(std::move(call));
            }
        } else {
            // Per-trip work dispatches over several helpers (compare
            // functions, row formats, ...), spreading heat.
            body.push_back(
                makeDispatchSwitch(caller, cold_path, loop_mult, 4, 8));
        }
        r.bodies.push_back(std::move(body));
        seq.push_back(std::move(r));
    }

    for (int i = 0; i < n_regions; ++i) {
        if (rng.nextBool(call_prob)) {
            double budget = (e_cap - e_acc) / std::max(mult, 1e-9);
            ProcId callee = pickCallee(caller, cold_path, budget);
            if (callee != kInvalidId) {
                Region r;
                r.kind = Region::Kind::CallStmt;
                r.size = blockSize();
                r.callee = callee;
                e_acc += mult * (r.size + expected_cost[callee]);
                seq.push_back(std::move(r));
                continue;
            }
        }
        if (depth < 3 && rng.nextBool(cold_path ? 0.15 : 0.55)) {
            seq.push_back(genCompound(caller, cold_path, depth, mult));
        } else {
            Region r;
            r.kind = Region::Kind::Straight;
            r.size = cold_path ? coldBlockSize() : blockSize();
            e_acc += mult * r.size;
            seq.push_back(std::move(r));
        }
    }
    if (seq.empty()) {
        Region r;
        r.kind = Region::Kind::Straight;
        r.size = blockSize();
        e_acc += mult * r.size;
        seq.push_back(std::move(r));
    }
    return seq;
}

} // namespace

program::ProcId
SyntheticProgram::entry(const std::string& name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        support::fatal("unknown entry point '" + name + "' in image " +
                       prog.name());
    return it->second;
}

SynthParams
SynthParams::oracleLike(std::uint64_t seed)
{
    SynthParams p;
    p.name = "oracle-like-oltp";
    p.seed = seed;
    p.budget_base = 100.0;
    p.budget_growth = 2.9;
    p.error_if_fraction = 0.50;
    p.subsystems = {
        // name       layer procs avg_regions avg_calls cold
        {"net",       0,    55,   6.0,        1.8,      false},
        {"server",    0,    90,   7.0,        2.2,      false},
        {"sql",       1,    170,  7.0,        2.0,      false},
        {"txn",       1,    90,   6.0,        1.8,      false},
        {"catalog",   2,    90,   5.0,        1.3,      false},
        {"row",       2,    150,  6.0,        1.5,      false},
        {"btree",     2,    130,  6.0,        1.5,      false},
        {"buf",       3,    120,  5.0,        1.1,      false},
        {"lock",      3,    90,   5.0,        1.1,      false},
        {"log",       3,    110,  5.0,        1.1,      false},
        {"space",     3,    80,   5.0,        1.0,      false},
        {"util",      4,    230,  5.0,        0.6,      false},
        {"mem",       4,    120,  4.0,        0.5,      false},
        {"err",       5,    220,  4.0,        0.2,      true},
        {"admin",     5,    300,  6.0,        0.3,      true},
    };
    p.entries = {
        {"net_recv", "net", 1.6, 0},
        {"net_reply", "net", 1.3, 0},
        {"txn_begin", "txn", 1.3, 0},
        {"txn_commit", "txn", 2.0, 0},
        {"sql_exec_update", "sql", 2.5, 0},
        {"sql_exec_insert", "sql", 2.2, 0},
        {"sql_exec_scan", "sql", 1.2, 1, true},
        {"agg_update", "sql", 0.4, 0, true},
        {"row_scan_next", "row", 0.5, 1, true},
        {"btree_search", "btree", 1.5, 1},
        {"btree_insert", "btree", 1.6, 1},
        {"heap_update", "row", 1.5, 1},
        {"heap_insert", "row", 1.4, 0},
        {"buf_get_hit", "buf", 1.0, 0},
        {"buf_get_miss", "buf", 1.8, 0},
        {"lock_acquire_fast", "lock", 0.9, 0},
        {"lock_acquire_wait", "lock", 1.6, 0},
        {"lock_release_all", "lock", 1.1, 1},
        {"log_append", "log", 1.2, 1},
        {"log_flush", "log", 1.5, 1},
        {"log_wait", "log", 0.8, 0},
        {"space_alloc", "space", 1.2, 0},
        {"catalog_lookup", "catalog", 1.1, 0},
        {"dbwr_flush", "buf", 1.4, 1},
    };
    return p;
}

SynthParams
SynthParams::kernelLike(std::uint64_t seed)
{
    SynthParams p;
    p.name = "tru64-like-kernel";
    p.seed = seed;
    p.budget_base = 90.0;
    p.budget_growth = 2.5;
    p.subsystems = {
        {"trap",  0, 35, 5.0, 1.5, false},
        {"sched", 1, 50, 5.0, 1.3, false},
        {"sys",   1, 80, 6.0, 1.6, false},
        {"fs",    2, 90, 6.0, 1.4, false},
        {"vm",    2, 75, 5.0, 1.2, false},
        {"io",    3, 80, 5.0, 1.0, false},
        {"klib",  4, 95, 4.0, 0.5, false},
        {"kerr",  5, 85, 4.0, 0.2, true},
    };
    p.entries = {
        {"sys_read", "sys", 1.4, 1},
        {"sys_write", "sys", 1.4, 1},
        {"sys_fsync", "sys", 1.2, 1},
        {"sys_ipc", "sys", 1.0, 0},
        {"sys_poll", "sys", 0.8, 0},
        {"sched_switch", "sched", 1.2, 0},
        {"intr_timer", "trap", 1.0, 0},
        {"tlb_refill", "trap", 0.5, 0},
    };
    return p;
}

SyntheticProgram
buildSyntheticProgram(const SynthParams& params)
{
    SPIKESIM_ASSERT(!params.subsystems.empty(), "no subsystems specified");
    Gen gen(params);

    // Plan procedure metadata: subsystems sorted by layer, entry
    // points first within their subsystem (so they can call the
    // subsystem internals generated after them).
    std::vector<int> sub_order(params.subsystems.size());
    for (std::size_t i = 0; i < sub_order.size(); ++i)
        sub_order[i] = static_cast<int>(i);
    std::stable_sort(sub_order.begin(), sub_order.end(), [&](int a, int b) {
        return params.subsystems[static_cast<std::size_t>(a)].layer <
               params.subsystems[static_cast<std::size_t>(b)].layer;
    });

    for (int si : sub_order) {
        const SubsystemSpec& sub =
            params.subsystems[static_cast<std::size_t>(si)];
        int made = 0;
        for (const EntrySpec& e : params.entries) {
            if (e.subsystem != sub.name)
                continue;
            ProcMeta m;
            m.name = e.name;
            m.subsystem = si;
            m.layer = sub.layer;
            m.cold = sub.cold;
            m.is_entry = true;
            m.tight = e.tight;
            m.scale = e.scale;
            m.hinted_loops = e.hinted_loops;
            gen.metas.push_back(std::move(m));
            ++made;
        }
        for (int i = made; i < sub.num_procs; ++i) {
            ProcMeta m;
            m.name = sub.name + "_p" + std::to_string(i);
            m.subsystem = si;
            m.layer = sub.layer;
            m.cold = sub.cold;
            gen.metas.push_back(std::move(m));
        }
    }

    gen.indexCandidates();

    int max_layer = 0;
    for (const SubsystemSpec& sub : params.subsystems)
        max_layer = std::max(max_layer, sub.layer);

    // Generate bodies deepest-first so every call site knows its
    // callee's expected cost; emit procedures in id order afterwards.
    const std::size_t n = gen.metas.size();
    gen.expected_cost.assign(n, 0.0);
    std::vector<std::vector<Region>> bodies(n);
    std::vector<int> ret_sizes(n, 1);
    for (std::size_t r = 0; r < n; ++r) {
        std::size_t i = n - 1 - r;
        const ProcMeta& m = gen.metas[i];
        const SubsystemSpec& sub =
            params.subsystems[static_cast<std::size_t>(m.subsystem)];
        int n_regions = std::max(
            1, static_cast<int>(gen.rng.nextGeometric(
                   std::max(1.0, sub.avg_regions * m.scale), 20)));
        double call_prob =
            std::min(0.6, sub.avg_calls / std::max(1, n_regions));
        gen.e_acc = 0.0;
        gen.e_cap = gen.layerBudget(m.layer, max_layer) * m.scale;
        gen.tight_mode = m.tight;
        if (m.tight)
            call_prob *= 0.3;
        bodies[i] = gen.genSeq(i, n_regions, call_prob, m.cold, 0,
                               m.hinted_loops, 1.0);
        gen.tight_mode = false;
        if (m.is_entry && !m.tight) {
            // Entry points start with an operation-dispatch switch, the
            // way server entry functions fan out over request kinds.
            bodies[i].insert(bodies[i].begin(),
                             gen.makeDispatchSwitch(i, m.cold, 1.0, 8, 16));
        }
        ret_sizes[i] = gen.blockSize();
        gen.expected_cost[i] = gen.e_acc + ret_sizes[i];
    }

    SyntheticProgram out{program::Program(params.name), {}, {}};
    for (std::size_t i = 0; i < n; ++i) {
        const ProcMeta& m = gen.metas[i];
        const SubsystemSpec& sub =
            params.subsystems[static_cast<std::size_t>(m.subsystem)];
        ProcedureBuilder pb(m.name);
        auto ret_block = static_cast<BlockLocalId>(countBlocks(bodies[i]));
        emitSeq(pb, bodies[i], ret_block);
        BlockLocalId r = pb.addBlock(
            static_cast<std::uint32_t>(ret_sizes[i]),
            Terminator::Return);
        SPIKESIM_ASSERT(r == ret_block, "return block id mismatch");
        program::Procedure proc = pb.build();
        // The emitter expresses every unconditional transfer as a
        // fall-through edge. Where the successor is not adjacent in
        // the original order the real compiler emits an explicit
        // unconditional branch: make that instruction part of the
        // block, so chaining has real branches to delete.
        for (BlockLocalId b = 0; b < proc.blocks.size(); ++b) {
            program::BasicBlock& blk = proc.blocks[b];
            if (blk.term != Terminator::FallThrough)
                continue;
            for (program::FlowEdge& e : proc.edges) {
                if (e.from != b || e.kind != EdgeKind::FallThrough)
                    continue;
                if (e.to != b + 1) {
                    blk.term = Terminator::UncondBranch;
                    ++blk.sizeInstrs;
                    e.kind = EdgeKind::UncondTarget;
                }
                break;
            }
        }
        ProcId id = out.prog.addProcedure(std::move(proc));
        SPIKESIM_ASSERT(id == i, "proc id mismatch");
        out.subsystem_of.push_back(sub.name);
    }

    for (const EntrySpec& e : params.entries) {
        ProcId id = out.prog.findProc(e.name);
        SPIKESIM_ASSERT(id != kInvalidId,
                        "entry " << e.name << " was not generated");
        out.entries[e.name] = id;
    }

    std::string err = out.prog.validate();
    SPIKESIM_ASSERT(err.empty(), "generated program invalid: " << err);
    return out;
}

} // namespace spikesim::synth
