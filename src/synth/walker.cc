#include "synth/walker.hh"

#include "support/panic.hh"

namespace spikesim::synth {

using program::BlockLocalId;
using program::EdgeKind;
using program::FlowEdge;
using program::GlobalBlockId;
using program::kInvalidId;
using program::ProcId;
using program::Procedure;
using program::Terminator;

CfgWalker::CfgWalker(const program::Program& prog, trace::ImageId image,
                     std::uint64_t seed)
    : prog_(&prog), image_(image), rng_(seed, 0x5b1ce51bULL ^ seed)
{
    // Precompute per-block successor tables; the walk loop is the
    // hottest code in the whole simulator. Indirect targets of one
    // block may be interleaved with other blocks' edges in the edge
    // list (nested switches), so group them per block before
    // flattening into the contiguous target array.
    succ_.resize(prog.numBlocks());
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        const Procedure& proc = prog.proc(p);
        std::vector<std::vector<IndirectTarget>> grouped(
            proc.blocks.size());
        for (const FlowEdge& e : proc.edges) {
            GlobalBlockId g = prog.globalBlockId(p, e.from);
            Succ& s = succ_[g];
            switch (e.kind) {
              case EdgeKind::FallThrough:
                s.fall = e.to;
                break;
              case EdgeKind::CondTaken:
                s.taken = e.to;
                s.taken_prob = e.prob;
                break;
              case EdgeKind::UncondTarget:
                s.taken = e.to;
                break;
              case EdgeKind::IndirectTarget:
                grouped[e.from].push_back({e.to, e.prob});
                break;
            }
        }
        for (BlockLocalId b = 0; b < proc.blocks.size(); ++b) {
            if (grouped[b].empty())
                continue;
            Succ& s = succ_[prog.globalBlockId(p, b)];
            s.indirect_begin =
                static_cast<std::uint32_t>(indirect_targets_.size());
            s.indirect_count =
                static_cast<std::uint32_t>(grouped[b].size());
            indirect_targets_.insert(indirect_targets_.end(),
                                     grouped[b].begin(),
                                     grouped[b].end());
        }
    }
}

WalkStats
CfgWalker::run(ProcId proc, const trace::ExecContext& ctx,
               trace::TraceSink& sink, std::span<const int> hints)
{
    WalkStats stats;
    walkProc(proc, ctx, sink, hints, 0, stats);
    total_instrs_ += stats.instrs;
    return stats;
}

void
CfgWalker::walkProc(ProcId proc, const trace::ExecContext& ctx,
                    trace::TraceSink& sink, std::span<const int> hints,
                    int depth, WalkStats& stats)
{
    SPIKESIM_ASSERT(depth < kMaxCallDepth,
                    "call depth exceeded; synthetic call graph may have "
                    "a cycle");
    const Procedure& p = prog_->proc(proc);
    const GlobalBlockId base = prog_->globalBlockId(proc, 0);

    // Per-activation state of hinted loops in this frame.
    struct LoopState
    {
        BlockLocalId local = kInvalidId;
        int remaining = 0;
        bool active = false;
    };
    static constexpr int kMaxHintedLoops = 8;
    LoopState loops[kMaxHintedLoops];
    int num_loops = 0;
    auto loop_state = [&](BlockLocalId b) -> LoopState& {
        for (int i = 0; i < num_loops; ++i)
            if (loops[i].local == b)
                return loops[i];
        SPIKESIM_ASSERT(num_loops < kMaxHintedLoops,
                        "too many hinted loops in proc " << p.name);
        loops[num_loops].local = b;
        loops[num_loops].active = false;
        return loops[num_loops++];
    };

    BlockLocalId local = 0;
    for (;;) {
        const program::BasicBlock& blk = p.blocks[local];
        GlobalBlockId g = base + local;
        const Succ& s = succ_[g];
        sink.onBlock(ctx, image_, g);
        stats.instrs += blk.sizeInstrs;
        ++stats.blocks;
        SPIKESIM_ASSERT(stats.instrs < kMaxInstrsPerRun,
                        "runaway walk in proc " << p.name);

        BlockLocalId next = kInvalidId;
        switch (blk.term) {
          case Terminator::Return:
            return;
          case Terminator::Call:
            ++stats.calls;
            sink.onCall(image_, g, blk.callee);
            walkProc(blk.callee, ctx, sink, hints, depth + 1, stats);
            next = s.fall;
            break;
          case Terminator::FallThrough:
            next = s.fall;
            break;
          case Terminator::UncondBranch:
            next = s.taken;
            break;
          case Terminator::CondBranch:
            if (blk.hintSlot != 0 && blk.hintSlot <= hints.size()) {
                // Hinted loop: follow the taken (back) edge exactly
                // hints[slot-1] times per activation.
                LoopState& ls = loop_state(local);
                if (!ls.active) {
                    ls.active = true;
                    ls.remaining = hints[blk.hintSlot - 1];
                }
                if (ls.remaining > 0) {
                    --ls.remaining;
                    next = s.taken;
                } else {
                    ls.active = false;
                    next = s.fall;
                }
            } else {
                next = rng_.nextBool(s.taken_prob) ? s.taken : s.fall;
            }
            break;
          case Terminator::IndirectJump: {
            SPIKESIM_ASSERT(s.indirect_count > 0,
                            "indirect jump without targets in proc "
                                << p.name);
            double r = rng_.nextDouble();
            double acc = 0.0;
            next = indirect_targets_[s.indirect_begin +
                                     s.indirect_count - 1]
                       .to; // rounding slop fallback
            for (std::uint32_t i = 0; i < s.indirect_count; ++i) {
                const auto& t = indirect_targets_[s.indirect_begin + i];
                acc += t.prob;
                if (r < acc) {
                    next = t.to;
                    break;
                }
            }
            break;
          }
        }
        SPIKESIM_ASSERT(next != kInvalidId,
                        "no successor for block " << local << " in proc "
                                                  << p.name);
        sink.onEdge(image_, g, base + next);
        local = next;
    }
}

} // namespace spikesim::synth
