#ifndef SPIKESIM_SYNTH_SYNTHPROG_HH
#define SPIKESIM_SYNTH_SYNTHPROG_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "program/program.hh"

/**
 * @file
 * Synthetic executable image generator. The paper's workload is the
 * Oracle 8.0.4 server binary — 27 MB of text with a ~260 KB, very flat
 * executed footprint. We obviously cannot ship Oracle, so we generate a
 * program with the same *structural statistics*: many procedures
 * organized in layered subsystems, small basic blocks, biased branches
 * guarding inline error paths (cold code interleaved with hot code —
 * the packing problem layout optimization solves), loops, indirect
 * dispatch, and a deep call DAG. Named entry-point procedures are the
 * interface the database engine (src/db) and kernel model (src/oskern)
 * use to drive execution; hinted loops let the engine inject real
 * data-dependent trip counts (B-tree depth, log batch size, ...).
 */

namespace spikesim::synth {

/** One layered subsystem of the generated image. */
struct SubsystemSpec
{
    std::string name;
    /** Layer number; procedures may only call same-or-deeper layers
     *  (and only procedures created after them), making the call graph
     *  a DAG. */
    int layer = 0;
    int num_procs = 0;
    /** Mean number of regions (statements) per procedure body. */
    double avg_regions = 6.0;
    /** Mean call-statements per procedure body. */
    double avg_calls = 1.0;
    /** True for subsystems that only contain cold code (error
     *  handling, admin); they are called only from cold paths. */
    bool cold = false;
};

/** An entry point the workload drivers call by name. */
struct EntrySpec
{
    std::string name;
    std::string subsystem;
    /** Body size multiplier relative to the subsystem average. */
    double scale = 1.0;
    /** Number of hinted loops (hint slots 1..n) to embed. */
    int hinted_loops = 0;
    /**
     * Tight-loop entry (scan/aggregate inner loops): no operation-
     * dispatch switch, simple loop bodies -- the code shape that makes
     * DSS instruction footprints small.
     */
    bool tight = false;
};

/** Generation parameters. */
struct SynthParams
{
    std::string name = "synthetic";
    std::uint64_t seed = 42;
    std::vector<SubsystemSpec> subsystems;
    std::vector<EntrySpec> entries;

    /** Mean / max basic block size in instructions. */
    double avg_block_instrs = 5.0;
    int max_block_instrs = 24;

    /**
     * Expected-dynamic-cost budget of a deepest-layer procedure, and
     * the multiplicative growth per layer above it. These calibrate
     * instructions-per-invocation of the entry points.
     */
    double budget_base = 150.0;
    double budget_growth = 3.3;

    /** Probability that a compound statement is an if-then guarding a
     *  cold (error) path, vs a balanced if-else. */
    double error_if_fraction = 0.45;

    /** The Oracle-8-like application image used by the OLTP engine. */
    static SynthParams oracleLike(std::uint64_t seed = 42);
    /** The Tru64-like kernel image used by the OS model. */
    static SynthParams kernelLike(std::uint64_t seed = 1042);
};

/** A generated image plus its entry-point directory. */
struct SyntheticProgram
{
    program::Program prog;
    std::unordered_map<std::string, program::ProcId> entries;
    /** Subsystem name of each procedure (parallel to proc ids). */
    std::vector<std::string> subsystem_of;

    /** Entry-point id by name; fatal() if unknown. */
    program::ProcId entry(const std::string& name) const;
};

/** Generate an image. Deterministic in params (including seed). */
SyntheticProgram buildSyntheticProgram(const SynthParams& params);

} // namespace spikesim::synth

#endif // SPIKESIM_SYNTH_SYNTHPROG_HH
