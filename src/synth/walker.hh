#ifndef SPIKESIM_SYNTH_WALKER_HH
#define SPIKESIM_SYNTH_WALKER_HH

#include <cstdint>
#include <span>

#include "program/program.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

/**
 * @file
 * CFG walker: "executes" a procedure of the structural program model by
 * walking its control-flow graph, emitting one trace event per basic
 * block. Branch outcomes come from seeded pseudo-random draws against
 * the edge probabilities, except that designated loop heads can be
 * driven by caller-supplied hints — that is how the database engine
 * injects genuinely data-dependent behaviour (B-tree depth, rows per
 * page scan, log batch size) into the instruction stream.
 */

namespace spikesim::synth {

/** Walk statistics for one run() call. */
struct WalkStats
{
    std::uint64_t instrs = 0;
    std::uint64_t blocks = 0;
    std::uint64_t calls = 0;
};

/** Executes procedures of one program image. */
class CfgWalker
{
  public:
    /**
     * @param prog  the image to execute (borrowed; must outlive walker).
     * @param image trace tag for emitted events.
     * @param seed  RNG seed; walks are fully deterministic in
     *              (seed, sequence of run() calls, hints).
     */
    CfgWalker(const program::Program& prog, trace::ImageId image,
              std::uint64_t seed);

    /**
     * Execute one procedure from its entry block until it returns.
     *
     * @param hints values for hinted loop heads: a block with
     *        hintSlot == k takes its per-activation trip count from
     *        hints[k-1]; hinted blocks beyond the span fall back to
     *        their edge probabilities.
     */
    WalkStats run(program::ProcId proc, const trace::ExecContext& ctx,
                  trace::TraceSink& sink,
                  std::span<const int> hints = {});

    /** Instructions executed across all run() calls. */
    std::uint64_t totalInstrs() const { return total_instrs_; }

    const program::Program& prog() const { return *prog_; }

  private:
    void walkProc(program::ProcId proc, const trace::ExecContext& ctx,
                  trace::TraceSink& sink, std::span<const int> hints,
                  int depth, WalkStats& stats);

    /** Precomputed successor summary for one block. */
    struct Succ
    {
        program::BlockLocalId fall = program::kInvalidId;
        program::BlockLocalId taken = program::kInvalidId;
        double taken_prob = 0.0;
        std::uint32_t indirect_begin = program::kInvalidId;
        std::uint32_t indirect_count = 0;
    };
    struct IndirectTarget
    {
        program::BlockLocalId to;
        double prob;
    };

    const program::Program* prog_;
    trace::ImageId image_;
    support::Pcg32 rng_;
    std::vector<Succ> succ_;
    std::vector<IndirectTarget> indirect_targets_;
    std::uint64_t total_instrs_ = 0;

    /** Recursion guard: the synthetic call graph is a DAG, but guard
     *  against builder bugs. */
    static constexpr int kMaxCallDepth = 256;
    /** Runaway guard per run() call. */
    static constexpr std::uint64_t kMaxInstrsPerRun = 50'000'000;
};

} // namespace spikesim::synth

#endif // SPIKESIM_SYNTH_WALKER_HH
