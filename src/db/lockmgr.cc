#include "db/lockmgr.hh"

#include "obs/registry.hh"

#include <algorithm>

#include "support/panic.hh"

namespace spikesim::db {

bool
LockManager::conflicts(const LockState& s, TxnId txn, LockMode mode)
{
    if (s.holders.empty())
        return false;
    bool held_by_self_only =
        s.holders.size() == 1 && s.holders[0] == txn;
    if (held_by_self_only)
        return false; // upgrade handled by caller path
    if (mode == LockMode::Shared && s.mode == LockMode::Shared)
        return false;
    // Exclusive request, or shared request against exclusive holder:
    // conflict unless the only other holder is us (covered above).
    for (TxnId h : s.holders)
        if (h != txn)
            return true;
    return false;
}

bool
LockManager::wouldDeadlock(TxnId txn, const LockState& s) const
{
    // DFS over the wait-for graph starting from the blockers; a path
    // back to `txn` means adding the wait edge closes a cycle.
    std::vector<TxnId> stack;
    std::unordered_set<TxnId> seen;
    for (TxnId h : s.holders)
        if (h != txn)
            stack.push_back(h);
    while (!stack.empty()) {
        TxnId cur = stack.back();
        stack.pop_back();
        if (cur == txn)
            return true;
        if (!seen.insert(cur).second)
            continue;
        auto it = wait_for_.find(cur);
        if (it == wait_for_.end())
            continue;
        for (TxnId next : it->second)
            stack.push_back(next);
    }
    return false;
}

LockResult
LockManager::acquire(TxnId txn, const LockName& name, LockMode mode)
{
    LockState& s = table_[name];

    // Already held by us?
    bool mine = std::find(s.holders.begin(), s.holders.end(), txn) !=
                s.holders.end();
    static obs::Counter& c_regrants = obs::counter("db.lockmgr.grants");
    if (mine) {
        if (mode == LockMode::Shared || s.mode == LockMode::Exclusive) {
            ++grants_;
            c_regrants.add(1);
            cancelWait(txn);
            return LockResult::Granted;
        }
        // Upgrade shared -> exclusive: possible only if sole holder.
        if (s.holders.size() == 1) {
            s.mode = LockMode::Exclusive;
            ++grants_;
            c_regrants.add(1);
            cancelWait(txn);
            return LockResult::Granted;
        }
    }

    if (conflicts(s, txn, mode) ||
        (mine && mode == LockMode::Exclusive)) {
        ++conflicts_;
        static obs::Counter& c_conflicts =
            obs::counter("db.lockmgr.conflicts");
        c_conflicts.add(1);
        if (wouldDeadlock(txn, s)) {
            ++deadlocks_;
            static obs::Counter& c_deadlocks =
                obs::counter("db.lockmgr.deadlocks");
            c_deadlocks.add(1);
            return LockResult::Deadlock;
        }
        auto& waits = wait_for_[txn];
        for (TxnId h : s.holders)
            if (h != txn)
                waits.insert(h);
        return LockResult::WouldWait;
    }

    if (!mine) {
        s.holders.push_back(txn);
        held_[txn].push_back(name);
    }
    if (mode == LockMode::Exclusive)
        s.mode = LockMode::Exclusive;
    else if (s.holders.size() == 1 && !mine)
        s.mode = mode;
    ++grants_;
    static obs::Counter& c_grants = obs::counter("db.lockmgr.grants");
    c_grants.add(1);
    cancelWait(txn);
    return LockResult::Granted;
}

void
LockManager::cancelWait(TxnId txn)
{
    wait_for_.erase(txn);
}

void
LockManager::releaseAll(TxnId txn)
{
    cancelWait(txn);
    auto it = held_.find(txn);
    if (it == held_.end())
        return;
    for (const LockName& name : it->second) {
        auto lt = table_.find(name);
        if (lt == table_.end())
            continue;
        auto& holders = lt->second.holders;
        std::size_t before = holders.size();
        holders.erase(std::remove(holders.begin(), holders.end(), txn),
                      holders.end());
        if (holders.empty()) {
            table_.erase(lt);
        } else if (holders.size() != before) {
            // Remaining holders can only be shared readers.
            lt->second.mode = LockMode::Shared;
        }
    }
    held_.erase(it);
}

bool
LockManager::holds(TxnId txn, const LockName& name, LockMode mode) const
{
    auto it = table_.find(name);
    if (it == table_.end())
        return false;
    const LockState& s = it->second;
    if (std::find(s.holders.begin(), s.holders.end(), txn) ==
        s.holders.end())
        return false;
    if (mode == LockMode::Exclusive)
        return s.mode == LockMode::Exclusive;
    return true;
}

} // namespace spikesim::db
