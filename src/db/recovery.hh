#ifndef SPIKESIM_DB_RECOVERY_HH
#define SPIKESIM_DB_RECOVERY_HH

#include <cstdint>

#include "db/bufferpool.hh"
#include "db/disk.hh"
#include "db/types.hh"

/**
 * @file
 * Crash recovery: redo of the write-ahead log. Structural records
 * (txn 0) and records of committed transactions are re-applied in LSN
 * order, guarded by page LSNs for idempotence; updates of transactions
 * with no commit record are then rolled back from their logged
 * before-images (losers whose dirty pages reached disk).
 */

namespace spikesim::db {

/** What recovery found and did. */
struct RecoveryResult
{
    std::uint64_t records_scanned = 0;
    std::uint64_t records_redone = 0;
    std::uint64_t records_undone = 0;
    std::uint64_t txns_committed = 0;
    std::uint64_t txns_lost = 0;
    TxnId max_txn = 0;
    PageId max_page = 0;
    Lsn max_lsn = 0;
};

/**
 * Replay the disk's log into pages through the buffer pool. The caller
 * should flushAll() afterwards (or keep running; the pool holds the
 * recovered state either way).
 */
RecoveryResult recover(SimDisk& disk, BufferPool& pool);

} // namespace spikesim::db

#endif // SPIKESIM_DB_RECOVERY_HH
