#include "db/heap.hh"

#include <cstring>
#include <vector>

#include "db/btree.hh" // PageAllocator
#include "support/panic.hh"

namespace spikesim::db {

HeapTable::HeapTable(BufferPool& pool, Wal& wal, PageAllocator& alloc,
                     std::uint16_t row_bytes, EngineHooks* hooks)
    : pool_(pool), wal_(wal), alloc_(alloc), hooks_(hooks),
      row_bytes_(row_bytes)
{
}

HeapTable
HeapTable::create(BufferPool& pool, Wal& wal, PageAllocator& alloc,
                  std::uint16_t row_bytes, EngineHooks* hooks)
{
    HeapTable t(pool, wal, alloc, row_bytes, hooks);
    PageId id = alloc.alloc();
    FrameRef ref = pool.fetch(id);
    ref.page->format(id, PageType::Heap, row_bytes);
    ref.page->header().extra = kInvalidPage;
    wal.logFormat(kStructuralTxn, id,
                  static_cast<std::uint32_t>(PageType::Heap), row_bytes);
    ref.page->header().lsn =
        wal.logSetExtra(kStructuralTxn, id, kInvalidPage);
    pool.release(ref, true);
    t.first_ = id;
    t.tail_ = id;
    t.num_pages_ = 1;
    return t;
}

HeapTable
HeapTable::open(BufferPool& pool, Wal& wal, PageAllocator& alloc,
                PageId first_page, EngineHooks* hooks)
{
    // Walk the chain to find the tail and rediscover geometry.
    PageId cur = first_page;
    PageId tail = first_page;
    std::uint16_t row_bytes = 0;
    std::uint64_t pages = 0;
    while (cur != kInvalidPage) {
        FrameRef ref = pool.fetch(cur);
        SPIKESIM_ASSERT(ref.page->header().type == PageType::Heap,
                        "page " << cur << " is not a heap page");
        row_bytes = ref.page->header().slot_bytes;
        tail = cur;
        PageId next = static_cast<PageId>(ref.page->header().extra);
        pool.release(ref, false);
        cur = next;
        ++pages;
    }
    HeapTable t(pool, wal, alloc, row_bytes, hooks);
    t.first_ = first_page;
    t.tail_ = tail;
    t.num_pages_ = pages;
    return t;
}

RowId
HeapTable::insert(TxnId txn, const void* row)
{
    if (hooks_ != nullptr)
        hooks_->onOp("heap_insert");
    FrameRef ref = pool_.fetch(tail_);
    if (ref.page->full()) {
        // Allocate and link a fresh tail page.
        if (hooks_ != nullptr)
            hooks_->onOp("space_alloc");
        PageId fresh = alloc_.alloc();
        FrameRef nref = pool_.fetch(fresh);
        nref.page->format(fresh, PageType::Heap, row_bytes_);
        nref.page->header().extra = kInvalidPage;
        wal_.logFormat(kStructuralTxn, fresh,
                       static_cast<std::uint32_t>(PageType::Heap),
                       row_bytes_);
        nref.page->header().lsn =
            wal_.logSetExtra(kStructuralTxn, fresh, kInvalidPage);
        pool_.release(nref, true);

        ref.page->header().extra = fresh;
        ref.page->header().lsn =
            wal_.logSetExtra(kStructuralTxn, tail_, fresh);
        pool_.release(ref, true);
        tail_ = fresh;
        ++num_pages_;
        ref = pool_.fetch(tail_);
    }
    std::uint16_t slot = ref.page->appendSlot(row);
    touchRow(ref, slot);
    ref.page->header().lsn =
        wal_.logAppend(txn, tail_, row, row_bytes_);
    pool_.release(ref, true);
    return {tail_, slot};
}

void
HeapTable::fetch(RowId rid, void* out)
{
    FrameRef ref = pool_.fetch(rid.page);
    SPIKESIM_ASSERT(rid.slot < ref.page->header().num_slots,
                    "fetch of missing row");
    std::memcpy(out, ref.page->slot(rid.slot), row_bytes_);
    touchRow(ref, rid.slot);
    pool_.release(ref, false);
}

void
HeapTable::touchRow(const FrameRef& ref, std::uint16_t slot)
{
    if (hooks_ == nullptr)
        return;
    // The row's cache lines within the (simulated) frame.
    std::uint64_t first = ref.sim_addr + 64 +
                          static_cast<std::uint64_t>(slot) * row_bytes_;
    for (std::uint64_t a = first & ~63ull; a < first + row_bytes_;
         a += 64)
        hooks_->onData(a);
}

void
HeapTable::update(TxnId txn, RowId rid, const void* row)
{
    if (hooks_ != nullptr) {
        int words = row_bytes_ / 8;
        hooks_->onOp("heap_update", {&words, 1});
    }
    FrameRef ref = pool_.fetch(rid.page);
    SPIKESIM_ASSERT(rid.slot < ref.page->header().num_slots,
                    "update of missing row");
    std::vector<std::uint8_t> before(row_bytes_);
    std::memcpy(before.data(), ref.page->slot(rid.slot), row_bytes_);
    std::memcpy(ref.page->slot(rid.slot), row, row_bytes_);
    touchRow(ref, rid.slot);
    ref.page->header().lsn = wal_.logUpdate(txn, rid.page, rid.slot, row,
                                            before.data(), row_bytes_);
    pool_.release(ref, true);
}

void
HeapTable::scan(const std::function<void(RowId, const void*)>& fn)
{
    PageId cur = first_;
    while (cur != kInvalidPage) {
        FrameRef ref = pool_.fetch(cur);
        for (std::uint16_t s = 0; s < ref.page->header().num_slots; ++s)
            fn({cur, s}, ref.page->slot(s));
        PageId next = static_cast<PageId>(ref.page->header().extra);
        pool_.release(ref, false);
        cur = next;
    }
}

std::uint64_t
HeapTable::numRows()
{
    std::uint64_t n = 0;
    scan([&](RowId, const void*) { ++n; });
    return n;
}

} // namespace spikesim::db
