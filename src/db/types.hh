#ifndef SPIKESIM_DB_TYPES_HH
#define SPIKESIM_DB_TYPES_HH

#include <cstdint>
#include <span>

/**
 * @file
 * Common identifiers and the engine-to-simulator hook interface for the
 * OLTP database engine. The engine is a real (if compact) transaction
 * processing system — pages, buffer pool, B+trees, WAL, 2PL — and is
 * deliberately independent of the synthetic-program machinery: it
 * reports what it does through EngineHooks, and the simulation layer
 * (src/sim) turns those reports into instruction/data/kernel streams.
 */

namespace spikesim::db {

using PageId = std::uint32_t;
using Lsn = std::uint64_t;
using TxnId = std::uint64_t;

inline constexpr PageId kInvalidPage = 0xffffffffu;
inline constexpr std::uint32_t kPageBytes = 8 * 1024;

/** Row address: page plus slot. */
struct RowId
{
    PageId page = kInvalidPage;
    std::uint16_t slot = 0;

    bool
    operator==(const RowId& o) const
    {
        return page == o.page && slot == o.slot;
    }
    bool valid() const { return page != kInvalidPage; }
};

/**
 * Callbacks from the database engine into the simulation harness.
 *
 * - onOp: the engine is executing the named application code path
 *   (a synthetic-image entry point); hints carry data-dependent loop
 *   trip counts (B-tree depth, log chunks, ...).
 * - onData: the engine touched simulated data memory at the given
 *   address (buffer frames, log buffer, private work areas).
 * - onSyscall: the engine entered the operating system (named kernel
 *   entry point).
 *
 * The default implementations do nothing, so the engine can run
 * standalone (e.g., in unit tests) without a simulator attached.
 */
class EngineHooks
{
  public:
    virtual ~EngineHooks() = default;

    virtual void
    onOp(const char* entry, std::span<const int> hints = {})
    {
        (void)entry;
        (void)hints;
    }

    virtual void
    onData(std::uint64_t addr)
    {
        (void)addr;
    }

    virtual void
    onSyscall(const char* entry, std::span<const int> hints = {})
    {
        (void)entry;
        (void)hints;
    }
};

/** Simulated data-address map (kept below 16GB so word indices fit in
 *  32-bit trace events). */
namespace addrmap {
/** Buffer pool frame f starts here. */
inline constexpr std::uint64_t kBufferBase = 0x0'8000'0000ULL;
/** Redo log buffer. */
inline constexpr std::uint64_t kLogBase = 0x1'0000'0000ULL;
/** Per-process private work areas (1MB stride). */
inline constexpr std::uint64_t kPgaBase = 0x1'8000'0000ULL;
/** Shared metadata (lock tables, catalog). */
inline constexpr std::uint64_t kSgaBase = 0x2'0000'0000ULL;

inline std::uint64_t
bufferFrame(std::uint32_t frame)
{
    return kBufferBase + static_cast<std::uint64_t>(frame) * kPageBytes;
}

inline std::uint64_t
pga(std::uint16_t process)
{
    return kPgaBase + static_cast<std::uint64_t>(process) * (1ULL << 20);
}
} // namespace addrmap

} // namespace spikesim::db

#endif // SPIKESIM_DB_TYPES_HH
