#include "db/ycsb.hh"

#include <vector>

#include "support/panic.hh"

namespace spikesim::db {

namespace {
/** Lock space for usertable keys (disjoint from TPC-B/TPC-C spaces). */
constexpr std::uint32_t kUserSpace = 20;
/** SGA lock-bucket array size (mirrors the TPC-B contention touch). */
constexpr std::uint64_t kLockBuckets = 4'096;
} // namespace

std::string
YcsbConfig::check() const
{
    if (record_count < 1)
        return "record_count must be >= 1";
    if (zipf_theta < 0.0 || zipf_theta >= 1.0)
        return "zipf_theta must be in [0, 1)";
    if (update_ratio < 0.0 || update_ratio > 1.0)
        return "update_ratio must be in [0, 1]";
    if (operation_count < 1)
        return "operation_count must be >= 1";
    return "";
}

YcsbDatabase::YcsbDatabase(const YcsbConfig& config, EngineHooks* hooks)
    : config_(config), hooks_(hooks), rng_(config.seed, 0x4c5bULL),
      zipf_(static_cast<std::uint64_t>(
                config.record_count < 1 ? 1 : config.record_count),
            config.zipf_theta)
{
    SPIKESIM_ASSERT(config.check().empty(),
                    "bad YCSB config: " << config.check());
    pool_ = std::make_unique<BufferPool>(disk_, config.buffer_frames,
                                         hooks);
    wal_ = std::make_unique<Wal>(disk_, config.wal, hooks);
    txns_ = std::make_unique<TransactionManager>(*wal_, locks_, *pool_,
                                                 hooks);
    pool_->setWalBarrier([this](Lsn lsn) {
        if (lsn > wal_->flushedLsn())
            wal_->flush();
    });
}

void
YcsbDatabase::setup()
{
    usertable_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(YcsbRow), hooks_));
    user_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, alloc_.alloc(), hooks_));

    TxnId txn = txns_->begin();
    for (std::int64_t k = 0; k < config_.record_count; ++k) {
        YcsbRow row{};
        row.id = k;
        row.version = 0;
        row.value = k;
        RowId rid = usertable_->insert(txn, &row);
        user_idx_->insert(txn, k, rid);
    }
    txns_->commit(txn);
    wal_->flush();
    pool_->flushAll();
}

YcsbOutcome
YcsbDatabase::runRequest(std::uint16_t process)
{
    SPIKESIM_ASSERT(usertable_ != nullptr, "setup() was not called");
    YcsbOutcome out;

    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc"); // socket receive
        hooks_->onOp("net_recv");
        for (int line = 0; line < 4; ++line)
            hooks_->onData(addrmap::pga(process) +
                           static_cast<std::uint64_t>(line) * 64);
    }
    TxnId txn = txns_->begin();
    out.txn = txn;

    for (int op = 0; op < config_.operation_count; ++op) {
        const auto key =
            static_cast<std::int64_t>(zipf_.sample(rng_));
        if (rng_.nextBool(config_.update_ratio)) {
            if (hooks_ != nullptr)
                hooks_->onOp("sql_exec_update");
            RowId rid = *user_idx_->search(key);
            locks_.acquire(txn,
                           {kUserSpace,
                            static_cast<std::uint64_t>(key)},
                           LockMode::Exclusive);
            if (hooks_ != nullptr) {
                hooks_->onOp("lock_acquire_fast");
                hooks_->onData(
                    addrmap::kSgaBase +
                    (static_cast<std::uint64_t>(key) % kLockBuckets) *
                        64);
            }
            YcsbRow row;
            usertable_->fetch(rid, &row);
            ++row.version;
            row.value += key + op;
            usertable_->update(txn, rid, &row);
            ++out.updates;
        } else {
            if (hooks_ != nullptr)
                hooks_->onOp("btree_search");
            RowId rid = *user_idx_->search(key);
            if (hooks_ != nullptr)
                hooks_->onOp("buf_get_hit");
            YcsbRow row;
            usertable_->fetch(rid, &row);
            out.value_sum += row.value;
            ++out.reads;
        }
    }

    txns_->commit(txn);
    reads_ += static_cast<std::uint64_t>(out.reads);
    updates_ += static_cast<std::uint64_t>(out.updates);
    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc"); // socket send
    }
    return out;
}

void
YcsbDatabase::checkpoint()
{
    wal_->flush();
    pool_->flushAll();
}

std::string
YcsbDatabase::verify()
{
    if (usertable_ == nullptr)
        return "setup() was not called";
    std::vector<bool> seen(
        static_cast<std::size_t>(config_.record_count), false);
    std::uint64_t rows = 0;
    std::uint64_t version_sum = 0;
    std::string complaint;
    usertable_->scan([&](RowId rid, const void* data) {
        const auto* row = static_cast<const YcsbRow*>(data);
        ++rows;
        if (row->id < 0 || row->id >= config_.record_count) {
            complaint = "row id out of range";
            return;
        }
        if (seen[static_cast<std::size_t>(row->id)]) {
            complaint = "duplicate row id";
            return;
        }
        seen[static_cast<std::size_t>(row->id)] = true;
        version_sum += static_cast<std::uint64_t>(row->version);
        auto rid_idx = user_idx_->search(row->id);
        if (!rid_idx.has_value() || !(*rid_idx == rid))
            complaint = "index does not point at the row";
    });
    if (!complaint.empty())
        return complaint;
    if (rows != static_cast<std::uint64_t>(config_.record_count))
        return "row count mismatch";
    if (version_sum != updates_)
        return "version sum does not match committed updates";
    return "";
}

} // namespace spikesim::db
