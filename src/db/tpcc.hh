#ifndef SPIKESIM_DB_TPCC_HH
#define SPIKESIM_DB_TPCC_HH

#include <cstdint>
#include <memory>
#include <string>

#include "db/btree.hh"
#include "db/bufferpool.hh"
#include "db/disk.hh"
#include "db/heap.hh"
#include "db/lockmgr.hh"
#include "db/txn.hh"
#include "db/types.hh"
#include "db/wal.hh"
#include "support/rng.hh"

/**
 * @file
 * TPC-C-style order-entry workload (reduced): warehouses, districts,
 * customers, items, stock, orders and order lines, with New-Order,
 * Payment and Stock-Level transactions. The paper notes that Spike was
 * used to produce audited TPC-C results on Alpha servers; this driver
 * provides a second OLTP transaction mix over the same engine so the
 * layout pipeline can be evaluated on a workload it was not profiled
 * on (see bench/ablation_profile_quality).
 */

namespace spikesim::db {

/** Scale parameters (reduced from the full TPC-C scale rules). */
struct TpccConfig
{
    int warehouses = 4;
    int districts_per_warehouse = 10;
    int customers_per_district = 300;
    int items = 1'000;
    std::uint32_t buffer_frames = 1'600;
    std::uint64_t seed = 21;
    Wal::Config wal;
};

/** Transaction kinds in the mix. */
enum class TpccKind : std::uint8_t { NewOrder, Payment, StockLevel };

/** Result of one TPC-C transaction. */
struct TpccOutcome
{
    TpccKind kind = TpccKind::NewOrder;
    TxnId txn = 0;
    std::int64_t warehouse = 0;
    std::int64_t district = 0;
    int order_lines = 0;        ///< NewOrder only
    std::int64_t amount = 0;    ///< Payment only
    int low_stock = 0;          ///< StockLevel only
};

/** TPC-C rows (fixed width, padded like the TPC-B rows). */
struct WarehouseRow
{
    std::int64_t id;
    std::int64_t ytd;
    char pad[88];
};
struct DistrictRow
{
    std::int64_t id; ///< dense: warehouse * D + district
    std::int64_t ytd;
    std::int64_t next_order_id;
    char pad[80];
};
struct CustomerRow
{
    std::int64_t id; ///< dense across the database
    std::int64_t district;
    std::int64_t balance;
    std::int64_t payments;
    char pad[72];
};
struct ItemRow
{
    std::int64_t id;
    std::int64_t price;
    char pad[88];
};
struct StockRow
{
    std::int64_t id; ///< warehouse * items + item
    std::int64_t quantity;
    std::int64_t ytd;
    char pad[80];
};
struct OrderRow
{
    std::int64_t id; ///< dense per district: district * 1e6 + seq
    std::int64_t customer;
    std::int64_t line_count;
    char pad[80];
};
struct OrderLineRow
{
    std::int64_t order_id;
    std::int64_t number;
    std::int64_t item;
    std::int64_t quantity;
    std::int64_t amount;
    char pad[64];
};
static_assert(sizeof(DistrictRow) == 104 && sizeof(OrderLineRow) == 104,
              "TPC-C rows are ~100 bytes (104 with alignment)");

/** The order-entry database. */
class TpccDatabase
{
  public:
    explicit TpccDatabase(const TpccConfig& config,
                          EngineHooks* hooks = nullptr);

    /** Create and populate the schema. */
    void setup();

    /** Run one transaction from the standard-ish mix
     *  (45% New-Order, 43% Payment, 12% Stock-Level). */
    TpccOutcome runTransaction(std::uint16_t process);

    TpccOutcome runNewOrder(std::uint16_t process);
    TpccOutcome runPayment(std::uint16_t process);
    TpccOutcome runStockLevel(std::uint16_t process);

    /**
     * Consistency checks: every district's next_order_id advanced by
     * exactly its number of New-Order transactions; order-line counts
     * match order headers; warehouse/district YTD equals the payment
     * sum; customer balances equal their payment sums. Empty when
     * consistent.
     */
    std::string verify();

    std::int64_t numDistricts() const
    {
        return static_cast<std::int64_t>(config_.warehouses) *
               config_.districts_per_warehouse;
    }
    std::int64_t numCustomers() const
    {
        return numDistricts() * config_.customers_per_district;
    }

    const TpccConfig& config() const { return config_; }
    BufferPool& pool() { return *pool_; }
    Wal& wal() { return *wal_; }
    std::uint64_t newOrders() const { return new_orders_; }
    std::uint64_t payments() const { return payments_; }

  private:
    std::int64_t customerKey(std::int64_t district,
                             std::int64_t c) const;

    TpccConfig config_;
    EngineHooks* hooks_;
    support::Pcg32 rng_;
    SimDisk disk_;
    std::unique_ptr<BufferPool> pool_;
    std::unique_ptr<Wal> wal_;
    LockManager locks_;
    std::unique_ptr<TransactionManager> txns_;
    PageAllocator alloc_{1};

    std::unique_ptr<HeapTable> warehouses_;
    std::unique_ptr<HeapTable> districts_;
    std::unique_ptr<HeapTable> customers_;
    std::unique_ptr<HeapTable> items_;
    std::unique_ptr<HeapTable> stock_;
    std::unique_ptr<HeapTable> orders_;
    std::unique_ptr<HeapTable> order_lines_;

    std::unique_ptr<BTree> district_idx_;
    std::unique_ptr<BTree> customer_idx_;
    std::unique_ptr<BTree> item_idx_;
    std::unique_ptr<BTree> stock_idx_;
    std::unique_ptr<BTree> order_idx_;

    std::uint64_t new_orders_ = 0;
    std::uint64_t payments_ = 0;
    std::uint64_t stock_levels_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_TPCC_HH
