#ifndef SPIKESIM_DB_YCSB_HH
#define SPIKESIM_DB_YCSB_HH

#include <cstdint>
#include <memory>
#include <string>

#include "db/btree.hh"
#include "db/bufferpool.hh"
#include "db/disk.hh"
#include "db/heap.hh"
#include "db/lockmgr.hh"
#include "db/txn.hh"
#include "db/types.hh"
#include "db/wal.hh"
#include "support/rng.hh"

/**
 * @file
 * YCSB-style key-value workload over the engine: one usertable (heap
 * rows + B+tree primary index), requests of `operation_count` point
 * operations each, keys drawn Zipf-skewed, and a read/update split
 * (Spitfire-style knobs: zipf_theta, update_ratio, operation_count —
 * see SNIPPETS.md snippet 3). The control-flow shape is deliberately
 * different from TPC-B/TPC-C: no multi-table joins, no history
 * append, shallow per-operation paths — which is exactly what the
 * cross-workload profile-quality row and the serving bench's
 * `--workload ycsb` mode need.
 */

namespace spikesim::db {

/** Scale and mix parameters. */
struct YcsbConfig
{
    std::int64_t record_count = 20'000;
    /** Zipfian skew of key choice (0 = uniform). */
    double zipf_theta = 0.8;
    /** Probability an operation is an update (else a read). */
    double update_ratio = 0.5;
    /** Point operations per request (one request = one transaction). */
    int operation_count = 8;
    std::uint32_t buffer_frames = 1'200;
    std::uint64_t seed = 11;
    Wal::Config wal;

    /** Empty when consistent, else a complaint. */
    std::string check() const;
};

/** Result of one YCSB request. */
struct YcsbOutcome
{
    TxnId txn = 0;
    int reads = 0;
    int updates = 0;
    std::int64_t value_sum = 0; ///< sum of values read
};

/** YCSB usertable row (~100 bytes like the other workloads' rows). */
struct YcsbRow
{
    std::int64_t id;
    std::int64_t version; ///< update count; verify() audits the total
    std::int64_t value;
    char pad[80];
};
static_assert(sizeof(YcsbRow) == 104, "YCSB rows are ~100 bytes");

/** The key-value database instance. */
class YcsbDatabase
{
  public:
    explicit YcsbDatabase(const YcsbConfig& config,
                          EngineHooks* hooks = nullptr);

    /** Create the usertable + index and load record_count rows. */
    void setup();

    /** Execute one request (operation_count point ops) for a client
     *  process. */
    YcsbOutcome runRequest(std::uint16_t process);

    /** Force log + dirty pages to disk. */
    void checkpoint();

    /**
     * Consistency checks: row ids are dense, the summed version
     * counters equal the number of committed updates, and every row is
     * reachable through the index. Empty when consistent.
     */
    std::string verify();

    const YcsbConfig& config() const { return config_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t updates() const { return updates_; }

  private:
    YcsbConfig config_;
    EngineHooks* hooks_;
    support::Pcg32 rng_;
    support::ZipfSampler zipf_;
    SimDisk disk_;
    std::unique_ptr<BufferPool> pool_;
    std::unique_ptr<Wal> wal_;
    LockManager locks_;
    std::unique_ptr<TransactionManager> txns_;
    PageAllocator alloc_{1};

    std::unique_ptr<HeapTable> usertable_;
    std::unique_ptr<BTree> user_idx_;

    std::uint64_t reads_ = 0;
    std::uint64_t updates_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_YCSB_HH
