#include "db/tpcb.hh"

#include <cstring>

#include "support/panic.hh"

namespace spikesim::db {

namespace {
/** Lock spaces (table ids for LockName). */
constexpr std::uint32_t kAccountSpace = 1;
constexpr std::uint32_t kTellerSpace = 2;
constexpr std::uint32_t kBranchSpace = 3;
} // namespace

TpcbDatabase::TpcbDatabase(const TpcbConfig& config, EngineHooks* hooks)
    : config_(config),
      hooks_(hooks),
      rng_(config.seed, 0x7bcb5ULL),
      alloc_(1),
      branch_last_write_(static_cast<std::size_t>(config.branches),
                         ~0ULL)
{
    pool_ = std::make_unique<BufferPool>(disk_, config.buffer_frames,
                                         hooks);
    wal_ = std::make_unique<Wal>(disk_, config.wal, hooks);
    txns_ = std::make_unique<TransactionManager>(*wal_, locks_, *pool_,
                                                 hooks);
    // Enforce the write-ahead rule: the log reaches disk before any
    // page that depends on it.
    pool_->setWalBarrier([this](Lsn lsn) {
        if (lsn > wal_->flushedLsn())
            wal_->flush();
    });
}

void
TpcbDatabase::setup()
{
    // Create all tables and indexes first so their anchor/first pages
    // get small deterministic ids (reopen after recovery relies on the
    // remembered ids).
    accounts_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(AccountRow), hooks_));
    tellers_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(TellerRow), hooks_));
    branches_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(BranchRow), hooks_));
    history_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(HistoryRow), hooks_));
    accounts_first_ = accounts_->firstPage();
    tellers_first_ = tellers_->firstPage();
    branches_first_ = branches_->firstPage();
    history_first_ = history_->firstPage();

    account_anchor_ = alloc_.alloc();
    account_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, account_anchor_, hooks_));
    teller_anchor_ = alloc_.alloc();
    teller_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, teller_anchor_, hooks_));
    branch_anchor_ = alloc_.alloc();
    branch_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, branch_anchor_, hooks_));

    // Populate: branches, tellers, accounts (ids are dense).
    TxnId txn = txns_->begin();
    for (std::int64_t b = 0; b < config_.branches; ++b) {
        BranchRow row{};
        row.id = b;
        row.balance = 0;
        RowId rid = branches_->insert(txn, &row);
        branch_idx_->insert(txn, b, rid);
    }
    for (std::int64_t t = 0; t < numTellers(); ++t) {
        TellerRow row{};
        row.id = t;
        row.branch = t / config_.tellers_per_branch;
        row.balance = 0;
        RowId rid = tellers_->insert(txn, &row);
        teller_idx_->insert(txn, t, rid);
    }
    for (std::int64_t a = 0; a < numAccounts(); ++a) {
        AccountRow row{};
        row.id = a;
        row.branch = a / config_.accounts_per_branch;
        row.balance = 0;
        RowId rid = accounts_->insert(txn, &row);
        account_idx_->insert(txn, a, rid);
    }
    txns_->commit(txn);
    checkpoint();
}

template <typename Row>
void
TpcbDatabase::updateBalance(TxnId txn, BTree& index, HeapTable& table,
                            std::uint32_t lock_space, std::int64_t key,
                            std::int64_t delta, bool hot_branch)
{
    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_update");
    std::optional<RowId> rid = index.search(key);
    SPIKESIM_ASSERT(rid.has_value(),
                    "missing row " << key << " in space " << lock_space);

    // Lock the row. Execution is serial, so the real lock manager
    // always grants; the hot-branch contention model decides whether
    // the code path is the fast grant or the wait-and-retry path.
    last_update_waited_ = false;
    if (hot_branch) {
        if (hooks_ != nullptr) {
            hooks_->onOp("lock_acquire_wait");
            hooks_->onSyscall("sys_poll");
        }
        last_update_waited_ = true;
    } else if (hooks_ != nullptr) {
        hooks_->onOp("lock_acquire_fast");
    }
    if (hooks_ != nullptr) {
        // The lock table bucket in shared memory.
        std::uint64_t bucket =
            (static_cast<std::uint64_t>(key) * 0x9e3779b9u +
             lock_space) %
            16384;
        hooks_->onData(addrmap::kSgaBase + bucket * 64);
    }
    LockResult lr = locks_.acquire(
        txn, {lock_space, static_cast<std::uint64_t>(key)},
        LockMode::Exclusive);
    SPIKESIM_ASSERT(lr == LockResult::Granted,
                    "unexpected lock conflict in serial execution");

    Row row;
    table.fetch(*rid, &row);
    row.balance += delta;
    table.update(txn, *rid, &row);
}

TpcbOutcome
TpcbDatabase::runTransaction(std::uint16_t process)
{
    SPIKESIM_ASSERT(accounts_ != nullptr, "setup() was not called");
    ++txn_seq_;

    // TPC-B selection: uniform teller; account in the teller's branch
    // (85%) or any other branch (15%); delta in [-999999, 999999].
    std::int64_t teller = rng_.nextRange(0, numTellers() - 1);
    std::int64_t branch = teller / config_.tellers_per_branch;
    std::int64_t account;
    if (config_.branches > 1 &&
        rng_.nextBool(config_.remote_account_prob)) {
        std::int64_t other =
            rng_.nextRange(0, config_.branches - 2);
        if (other >= branch)
            ++other;
        account = other * config_.accounts_per_branch +
                  rng_.nextRange(0, config_.accounts_per_branch - 1);
    } else {
        account = branch * config_.accounts_per_branch +
                  rng_.nextRange(0, config_.accounts_per_branch - 1);
    }
    std::int64_t delta = rng_.nextRange(-999'999, 999'999);

    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc"); // socket receive
        hooks_->onOp("net_recv");
        // Request parsing and cursor state live in the process-private
        // work area (hot lines, mostly L1 hits after warmup).
        for (int line = 0; line < 24; ++line)
            hooks_->onData(addrmap::pga(process) +
                           static_cast<std::uint64_t>(line) * 64);
        // Cold-start statements occasionally re-resolve metadata.
        if (rng_.nextBool(0.02))
            hooks_->onOp("catalog_lookup");
    }

    TxnId txn = txns_->begin();
    TpcbOutcome out;
    out.txn = txn;
    out.account = account;
    out.teller = teller;
    out.branch = branch;
    out.delta = delta;

    // Hot-branch contention: a branch written again within the window
    // takes the wait path.
    auto bidx = static_cast<std::size_t>(branch);
    bool hot = branch_last_write_[bidx] != ~0ULL &&
               txn_seq_ - branch_last_write_[bidx] <=
                   config_.contention_window;
    branch_last_write_[bidx] = txn_seq_;

    updateBalance<AccountRow>(txn, *account_idx_, *accounts_,
                              kAccountSpace, account, delta, false);
    updateBalance<TellerRow>(txn, *teller_idx_, *tellers_, kTellerSpace,
                             teller, delta, false);
    updateBalance<BranchRow>(txn, *branch_idx_, *branches_, kBranchSpace,
                             branch, delta, hot);
    out.lock_waited = last_update_waited_;

    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_insert");
    HistoryRow h{};
    h.account = account;
    h.teller = teller;
    h.branch = branch;
    h.delta = delta;
    h.txn = static_cast<std::int64_t>(txn);
    history_->insert(txn, &h);

    txns_->commit(txn);
    out.flush_leader = wal_->flushedLsn() >= wal_->currentLsn();

    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc"); // socket send
    }
    return out;
}

void
TpcbDatabase::checkpoint()
{
    wal_->flush();
    pool_->flushAll();
}

void
TpcbDatabase::crash()
{
    pool_->dropAll();
    wal_->discardBuffer();
}

RecoveryResult
TpcbDatabase::recover()
{
    RecoveryResult result = spikesim::db::recover(disk_, *pool_);
    alloc_.seed(result.max_page + 1);
    txns_->seedNextTxn(result.max_txn + 1);
    // Reopen tables and indexes from their remembered first/anchor
    // pages.
    accounts_ = std::make_unique<HeapTable>(HeapTable::open(
        *pool_, *wal_, alloc_, accounts_first_, hooks_));
    tellers_ = std::make_unique<HeapTable>(HeapTable::open(
        *pool_, *wal_, alloc_, tellers_first_, hooks_));
    branches_ = std::make_unique<HeapTable>(HeapTable::open(
        *pool_, *wal_, alloc_, branches_first_, hooks_));
    history_ = std::make_unique<HeapTable>(HeapTable::open(
        *pool_, *wal_, alloc_, history_first_, hooks_));
    account_idx_ = std::make_unique<BTree>(
        BTree::open(*pool_, *wal_, alloc_, account_anchor_, hooks_));
    teller_idx_ = std::make_unique<BTree>(
        BTree::open(*pool_, *wal_, alloc_, teller_anchor_, hooks_));
    branch_idx_ = std::make_unique<BTree>(
        BTree::open(*pool_, *wal_, alloc_, branch_anchor_, hooks_));
    return result;
}

std::string
TpcbDatabase::verify()
{
    std::int64_t acc = 0, tel = 0, br = 0, hist = 0;
    accounts_->scan([&](RowId, const void* p) {
        AccountRow r;
        std::memcpy(&r, p, sizeof(r));
        acc += r.balance;
    });
    tellers_->scan([&](RowId, const void* p) {
        TellerRow r;
        std::memcpy(&r, p, sizeof(r));
        tel += r.balance;
    });
    branches_->scan([&](RowId, const void* p) {
        BranchRow r;
        std::memcpy(&r, p, sizeof(r));
        br += r.balance;
    });
    history_->scan([&](RowId, const void* p) {
        HistoryRow r;
        std::memcpy(&r, p, sizeof(r));
        hist += r.delta;
    });
    if (acc != br || tel != br || hist != br)
        return "balance mismatch: accounts=" + std::to_string(acc) +
               " tellers=" + std::to_string(tel) +
               " branches=" + std::to_string(br) +
               " history=" + std::to_string(hist);
    return "";
}

} // namespace spikesim::db
