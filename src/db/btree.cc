#include "db/btree.hh"

#include <cstring>

#include "support/panic.hh"

namespace spikesim::db {

namespace {

/**
 * First slot in a node whose key is >= key (binary search). When hooks
 * and a frame address are supplied, every probed slot is reported as a
 * data touch -- the pointer-chasing data-reference pattern of index
 * search.
 */
template <typename Entry>
std::uint16_t
lowerBound(const Page& page, std::int64_t key,
           EngineHooks* hooks = nullptr, std::uint64_t sim_addr = 0)
{
    std::uint16_t lo = 0;
    std::uint16_t hi = page.header().num_slots;
    while (lo < hi) {
        std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
        Entry e;
        page.readSlot(mid, e);
        if (hooks != nullptr)
            hooks->onData(sim_addr + 64 +
                          static_cast<std::uint64_t>(mid) *
                              page.header().slot_bytes);
        if (e.key < key)
            lo = static_cast<std::uint16_t>(mid + 1);
        else
            hi = mid;
    }
    return lo;
}

} // namespace

BTree::BTree(BufferPool& pool, Wal& wal, PageAllocator& alloc,
             PageId anchor_page, EngineHooks* hooks)
    : pool_(pool), wal_(wal), alloc_(alloc), hooks_(hooks),
      anchor_(anchor_page)
{
}

PageId
BTree::newLeaf(PageId next_link)
{
    PageId id = alloc_.alloc();
    FrameRef ref = pool_.fetch(id);
    ref.page->format(id, PageType::BtreeLeaf,
                     static_cast<std::uint16_t>(sizeof(LeafEntry)));
    ref.page->header().extra = next_link;
    wal_.logFormat(kStructuralTxn, id,
                   static_cast<std::uint32_t>(PageType::BtreeLeaf),
                   sizeof(LeafEntry));
    ref.page->header().lsn =
        wal_.logSetExtra(kStructuralTxn, id, next_link);
    pool_.release(ref, true);
    return id;
}

PageId
BTree::newInner()
{
    PageId id = alloc_.alloc();
    FrameRef ref = pool_.fetch(id);
    ref.page->format(id, PageType::BtreeInner,
                     static_cast<std::uint16_t>(sizeof(InnerEntry)));
    ref.page->header().lsn = wal_.logFormat(
        kStructuralTxn, id,
        static_cast<std::uint32_t>(PageType::BtreeInner),
        sizeof(InnerEntry));
    pool_.release(ref, true);
    return id;
}

void
BTree::writeAnchor()
{
    FrameRef ref = pool_.fetch(anchor_);
    AnchorRecord rec{root_, height_};
    if (ref.page->header().num_slots == 0) {
        ref.page->appendSlot(&rec);
        ref.page->header().lsn =
            wal_.logAppend(kStructuralTxn, anchor_, &rec, sizeof(rec));
    } else {
        AnchorRecord before;
        ref.page->readSlot(0, before);
        ref.page->writeSlot(0, rec);
        ref.page->header().lsn = wal_.logUpdate(
            kStructuralTxn, anchor_, 0, &rec, &before, sizeof(rec));
    }
    pool_.release(ref, true);
}

BTree
BTree::create(BufferPool& pool, Wal& wal, PageAllocator& alloc,
              PageId anchor_page, EngineHooks* hooks)
{
    BTree t(pool, wal, alloc, anchor_page, hooks);
    {
        FrameRef ref = pool.fetch(anchor_page);
        ref.page->format(anchor_page, PageType::Meta,
                         sizeof(AnchorRecord));
        ref.page->header().lsn = wal.logFormat(
            kStructuralTxn, anchor_page,
            static_cast<std::uint32_t>(PageType::Meta),
            sizeof(AnchorRecord));
        pool.release(ref, true);
    }
    t.root_ = t.newLeaf(kInvalidPage);
    t.height_ = 1;
    t.writeAnchor();
    return t;
}

BTree
BTree::open(BufferPool& pool, Wal& wal, PageAllocator& alloc,
            PageId anchor_page, EngineHooks* hooks)
{
    BTree t(pool, wal, alloc, anchor_page, hooks);
    FrameRef ref = pool.fetch(anchor_page);
    SPIKESIM_ASSERT(ref.page->header().type == PageType::Meta &&
                        ref.page->header().num_slots == 1,
                    "bad btree anchor page " << anchor_page);
    AnchorRecord rec;
    ref.page->readSlot(0, rec);
    pool.release(ref, false);
    t.root_ = rec.root;
    t.height_ = rec.height;
    return t;
}

std::optional<RowId>
BTree::search(std::int64_t key)
{
    if (hooks_ != nullptr) {
        int levels = height_ - 1;
        hooks_->onOp("btree_search", {&levels, 1});
    }
    PageId cur = root_;
    for (;;) {
        FrameRef ref = pool_.fetch(cur);
        const Page& page = *ref.page;
        if (page.header().type == PageType::BtreeLeaf) {
            std::uint16_t i =
                lowerBound<LeafEntry>(page, key, hooks_, ref.sim_addr);
            std::optional<RowId> out;
            if (i < page.header().num_slots) {
                LeafEntry e;
                page.readSlot(i, e);
                if (e.key == key)
                    out = e.rid;
            }
            pool_.release(ref, false);
            return out;
        }
        std::uint16_t i =
            lowerBound<InnerEntry>(page, key, hooks_, ref.sim_addr);
        SPIKESIM_ASSERT(i < page.header().num_slots,
                        "descend past +inf sentinel");
        InnerEntry e;
        page.readSlot(i, e);
        pool_.release(ref, false);
        cur = e.child;
    }
}

void
BTree::growRoot()
{
    PageId old_root = root_;
    PageId new_root = newInner();
    FrameRef ref = pool_.fetch(new_root);
    InnerEntry sentinel{kMaxKey, old_root, 0};
    ref.page->appendSlot(&sentinel);
    ref.page->header().lsn = wal_.logAppend(
        kStructuralTxn, new_root, &sentinel, sizeof(sentinel));
    pool_.release(ref, true);
    root_ = new_root;
    ++height_;
    writeAnchor();
    splitChild(new_root, 0);
}

void
BTree::splitChild(PageId parent_id, std::uint16_t idx)
{
    FrameRef pref = pool_.fetch(parent_id);
    Page& parent = *pref.page;
    SPIKESIM_ASSERT(!parent.full(), "split with full parent");
    InnerEntry pe;
    parent.readSlot(idx, pe);
    PageId left_id = pe.child;

    FrameRef lref = pool_.fetch(left_id);
    Page& left = *lref.page;
    const std::uint16_t n = left.header().num_slots;
    const std::uint16_t keep = static_cast<std::uint16_t>(n / 2);
    std::int64_t sep;

    PageId right_id;
    if (left.header().type == PageType::BtreeLeaf) {
        right_id = newLeaf(static_cast<PageId>(left.header().extra));
        FrameRef rref = pool_.fetch(right_id);
        Page& right = *rref.page;
        for (std::uint16_t s = keep; s < n; ++s) {
            LeafEntry e;
            left.readSlot(s, e);
            right.appendSlot(&e);
            right.header().lsn = wal_.logAppend(kStructuralTxn, right_id,
                                                &e, sizeof(e));
        }
        pool_.release(rref, true);
        LeafEntry last_kept;
        left.readSlot(static_cast<std::uint16_t>(keep - 1), last_kept);
        sep = last_kept.key;
        left.setSlotCount(keep);
        left.header().lsn =
            wal_.logSetSlotCount(kStructuralTxn, left_id, keep);
        left.header().extra = right_id;
        left.header().lsn =
            wal_.logSetExtra(kStructuralTxn, left_id, right_id);
    } else {
        right_id = newInner();
        FrameRef rref = pool_.fetch(right_id);
        Page& right = *rref.page;
        for (std::uint16_t s = keep; s < n; ++s) {
            InnerEntry e;
            left.readSlot(s, e);
            right.appendSlot(&e);
            right.header().lsn = wal_.logAppend(kStructuralTxn, right_id,
                                                &e, sizeof(e));
        }
        pool_.release(rref, true);
        InnerEntry last_kept;
        left.readSlot(static_cast<std::uint16_t>(keep - 1), last_kept);
        sep = last_kept.key;
        left.setSlotCount(keep);
        left.header().lsn =
            wal_.logSetSlotCount(kStructuralTxn, left_id, keep);
    }
    pool_.release(lref, true);

    // Parent: the slot that pointed at `left` now points at `right`
    // (it still carries the subtree's upper bound); a new entry
    // {sep, left} covers the lower half.
    InnerEntry after{pe.key, right_id, 0};
    parent.writeSlot(idx, after);
    parent.header().lsn = wal_.logUpdate(kStructuralTxn, parent_id, idx,
                                         &after, &pe, sizeof(after));
    InnerEntry left_entry{sep, left_id, 0};
    parent.insertSlotAt(idx, &left_entry);
    parent.header().lsn = wal_.logInsertAt(
        kStructuralTxn, parent_id, idx, &left_entry, sizeof(left_entry));
    pool_.release(pref, true);
}

bool
BTree::insert(TxnId txn, std::int64_t key, RowId rid)
{
    SPIKESIM_ASSERT(key < kMaxKey, "key collides with +inf sentinel");
    if (hooks_ != nullptr) {
        int levels = height_ - 1;
        hooks_->onOp("btree_insert", {&levels, 1});
    }

    // Preemptive splitting: never descend into a full node.
    {
        FrameRef rref = pool_.fetch(root_);
        bool root_full = rref.page->full();
        pool_.release(rref, false);
        if (root_full)
            growRoot();
    }

    PageId cur = root_;
    for (;;) {
        FrameRef ref = pool_.fetch(cur);
        Page& page = *ref.page;
        if (page.header().type == PageType::BtreeLeaf) {
            std::uint16_t i = lowerBound<LeafEntry>(page, key);
            if (i < page.header().num_slots) {
                LeafEntry e;
                page.readSlot(i, e);
                if (e.key == key) {
                    pool_.release(ref, false);
                    return false;
                }
            }
            LeafEntry e{key, rid};
            page.insertSlotAt(i, &e);
            page.header().lsn =
                wal_.logInsertAt(txn, cur, i, &e, sizeof(e));
            pool_.release(ref, true);
            return true;
        }
        std::uint16_t i = lowerBound<InnerEntry>(page, key);
        SPIKESIM_ASSERT(i < page.header().num_slots,
                        "descend past +inf sentinel");
        InnerEntry e;
        page.readSlot(i, e);
        FrameRef cref = pool_.fetch(e.child);
        bool child_full = cref.page->full();
        pool_.release(cref, false);
        if (child_full) {
            pool_.release(ref, false);
            splitChild(cur, i);
            continue; // re-run the search at this level
        }
        pool_.release(ref, false);
        cur = e.child;
    }
}

bool
BTree::remove(TxnId txn, std::int64_t key)
{
    PageId cur = root_;
    for (;;) {
        FrameRef ref = pool_.fetch(cur);
        Page& page = *ref.page;
        if (page.header().type == PageType::BtreeLeaf) {
            std::uint16_t i = lowerBound<LeafEntry>(page, key);
            bool found = false;
            if (i < page.header().num_slots) {
                LeafEntry e;
                page.readSlot(i, e);
                found = e.key == key;
            }
            if (found) {
                page.removeSlotAt(i);
                page.header().lsn = wal_.logRemoveAt(txn, cur, i);
            }
            pool_.release(ref, found);
            return found;
        }
        std::uint16_t i = lowerBound<InnerEntry>(page, key);
        SPIKESIM_ASSERT(i < page.header().num_slots,
                        "descend past +inf sentinel");
        InnerEntry e;
        page.readSlot(i, e);
        pool_.release(ref, false);
        cur = e.child;
    }
}

void
BTree::scan(std::int64_t lo, std::int64_t hi,
            const std::function<void(std::int64_t, RowId)>& fn)
{
    // Descend to the leaf that would contain `lo`.
    PageId cur = root_;
    for (;;) {
        FrameRef ref = pool_.fetch(cur);
        const Page& page = *ref.page;
        if (page.header().type == PageType::BtreeLeaf) {
            pool_.release(ref, false);
            break;
        }
        std::uint16_t i = lowerBound<InnerEntry>(page, lo);
        SPIKESIM_ASSERT(i < page.header().num_slots,
                        "descend past +inf sentinel");
        InnerEntry e;
        page.readSlot(i, e);
        pool_.release(ref, false);
        cur = e.child;
    }
    // Walk the leaf chain.
    while (cur != kInvalidPage) {
        FrameRef ref = pool_.fetch(cur);
        const Page& page = *ref.page;
        std::uint16_t i = lowerBound<LeafEntry>(page, lo);
        bool done = false;
        for (; i < page.header().num_slots; ++i) {
            LeafEntry e;
            page.readSlot(i, e);
            if (e.key > hi) {
                done = true;
                break;
            }
            fn(e.key, e.rid);
        }
        PageId next = static_cast<PageId>(page.header().extra);
        pool_.release(ref, false);
        if (done)
            break;
        cur = next;
    }
}

std::uint64_t
BTree::numEntries()
{
    std::uint64_t n = 0;
    scan(std::numeric_limits<std::int64_t>::min(), kMaxKey - 1,
         [&](std::int64_t, RowId) { ++n; });
    return n;
}

std::string
BTree::checkNode(PageId id, int depth, std::int64_t lo, std::int64_t hi,
                 int& leaf_depth, PageId& leftmost_leaf)
{
    FrameRef ref = pool_.fetch(id);
    const Page& page = *ref.page;
    std::string err;
    auto fail = [&](const std::string& what) {
        return "page " + std::to_string(id) + " (depth " +
               std::to_string(depth) + "): " + what;
    };

    if (page.header().type == PageType::BtreeLeaf) {
        if (leaf_depth == -1) {
            leaf_depth = depth;
            leftmost_leaf = id;
        } else if (leaf_depth != depth) {
            err = fail("leaves at unequal depth");
        }
        std::int64_t prev = std::numeric_limits<std::int64_t>::min();
        for (std::uint16_t s = 0; err.empty() &&
                                  s < page.header().num_slots; ++s) {
            LeafEntry e;
            page.readSlot(s, e);
            if (e.key <= prev && s > 0)
                err = fail("leaf keys not strictly increasing");
            else if (e.key <= lo || e.key > hi)
                err = fail("leaf key outside separator bounds");
            prev = e.key;
        }
        pool_.release(ref, false);
        return err;
    }

    if (page.header().type != PageType::BtreeInner) {
        pool_.release(ref, false);
        return fail("unexpected page type");
    }
    if (page.header().num_slots == 0) {
        pool_.release(ref, false);
        return fail("empty inner node");
    }
    InnerEntry last;
    page.readSlot(
        static_cast<std::uint16_t>(page.header().num_slots - 1), last);
    if (last.key != hi) {
        pool_.release(ref, false);
        return fail("last separator does not match upper bound");
    }
    std::int64_t prev = lo;
    std::vector<InnerEntry> entries(page.header().num_slots);
    for (std::uint16_t s = 0; s < page.header().num_slots; ++s)
        page.readSlot(s, entries[s]);
    pool_.release(ref, false);
    for (const InnerEntry& e : entries) {
        if (e.key <= prev && e.key != prev)
            return fail("inner keys not increasing");
        err = checkNode(e.child, depth + 1, prev, e.key, leaf_depth,
                        leftmost_leaf);
        if (!err.empty())
            return err;
        prev = e.key;
    }
    return "";
}

std::string
BTree::check()
{
    int leaf_depth = -1;
    PageId leftmost = kInvalidPage;
    std::string err =
        checkNode(root_, 1, std::numeric_limits<std::int64_t>::min(),
                  kMaxKey, leaf_depth, leftmost);
    if (!err.empty())
        return err;
    if (leaf_depth != height_)
        return "height mismatch: anchor says " + std::to_string(height_) +
               ", leaves at " + std::to_string(leaf_depth);

    // Leaf chain must be sorted and start at the leftmost leaf.
    std::int64_t prev = std::numeric_limits<std::int64_t>::min();
    PageId cur = leftmost;
    while (cur != kInvalidPage) {
        FrameRef ref = pool_.fetch(cur);
        for (std::uint16_t s = 0; s < ref.page->header().num_slots; ++s) {
            LeafEntry e;
            ref.page->readSlot(s, e);
            if (e.key <= prev)
                return "leaf chain keys not increasing at page " +
                       std::to_string(cur);
            prev = e.key;
        }
        PageId next = static_cast<PageId>(ref.page->header().extra);
        pool_.release(ref, false);
        cur = next;
    }
    return "";
}

} // namespace spikesim::db
