#ifndef SPIKESIM_DB_WAL_HH
#define SPIKESIM_DB_WAL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/disk.hh"
#include "db/types.hh"

/**
 * @file
 * Write-ahead redo log with group commit. Mutators (heap, B+tree) log
 * physical slot-level after-images (plus before-images for updates, so
 * aborts can roll back); commit durability is provided by flushing the
 * log buffer, with commits batched exactly the way OLTP systems batch
 * them — the batching feeds the log_flush / log_wait code-path split
 * the instruction stream sees.
 */

namespace spikesim::db {

/** Redo record kinds. */
enum class WalKind : std::uint8_t {
    Begin = 1,
    Commit,
    Abort,
    Format,       ///< page formatted (type + slot size)
    Append,       ///< slot appended to a page
    Update,       ///< slot overwritten (payload: after then before image)
    InsertAt,     ///< slot inserted at a position (sorted structures)
    RemoveAt,     ///< slot removed at a position
    SetSlotCount, ///< page slot count changed (splits)
    SetExtra,     ///< page extra/link field changed
};

/** Fixed on-log record header (payload follows immediately). */
struct WalRecordHeader
{
    Lsn lsn = 0;
    TxnId txn = 0;
    PageId page = kInvalidPage;
    std::uint32_t aux = 0;      ///< slot / slot count / page type
    std::uint64_t aux64 = 0;    ///< extra value for SetExtra
    std::uint16_t payload_len = 0;
    WalKind kind = WalKind::Begin;
};

/** A decoded record (for recovery and tests). */
struct WalRecord
{
    WalRecordHeader hdr;
    std::vector<std::uint8_t> payload;
};

/** Transactions with txn id 0 are structural (always redone). */
inline constexpr TxnId kStructuralTxn = 0;

/** Group-commit tuning for the redo log. */
struct WalConfig
{
    /** Commits per group-commit batch before the leader flushes. */
    std::uint32_t group_commit_batch = 4;
    std::uint32_t flush_threshold_bytes = 48 * 1024;
};

/** The redo log manager. */
class Wal
{
  public:
    using Config = WalConfig;

    Wal(SimDisk& disk, const Config& config = Config(),
        EngineHooks* hooks = nullptr);

    Lsn logBegin(TxnId txn);
    Lsn logCommitRecord(TxnId txn);
    Lsn logAbort(TxnId txn);
    Lsn logFormat(TxnId txn, PageId page, std::uint32_t page_type,
                  std::uint16_t slot_bytes);
    Lsn logAppend(TxnId txn, PageId page, const void* bytes,
                  std::uint16_t len);
    /** Update logs the after image followed by the before image. */
    Lsn logUpdate(TxnId txn, PageId page, std::uint16_t slot,
                  const void* after, const void* before,
                  std::uint16_t len);
    Lsn logInsertAt(TxnId txn, PageId page, std::uint16_t slot,
                    const void* bytes, std::uint16_t len);
    Lsn logRemoveAt(TxnId txn, PageId page, std::uint16_t slot);
    Lsn logSetSlotCount(TxnId txn, PageId page, std::uint16_t count);
    Lsn logSetExtra(TxnId txn, PageId page, std::uint64_t value);

    /**
     * Commit with group-commit semantics: the commit record is logged;
     * if this commit completes a batch (or the buffer is large) the
     * caller becomes the flush leader and the buffer is written and
     * fsynced; otherwise the caller "waits" for the current leader.
     * Returns true if this call flushed.
     */
    bool commit(TxnId txn);

    /** Force the buffer to disk. */
    void flush();

    Lsn currentLsn() const { return next_lsn_ - 1; }
    Lsn flushedLsn() const { return flushed_lsn_; }
    std::uint64_t flushes() const { return flushes_; }
    std::uint64_t commits() const { return commits_; }

    /** Decode the entire on-disk log (recovery, tests). */
    static std::vector<WalRecord> readAll(const SimDisk& disk);

    /** Discard buffered (unflushed) records — crash simulation. */
    void discardBuffer();

    /** Per-transaction undo entry (before image of an update). */
    struct UndoEntry
    {
        PageId page;
        std::uint16_t slot;
        std::vector<std::uint8_t> before;
    };

    /** Undo chain of an active transaction (newest last). */
    const std::vector<UndoEntry>& undoChain(TxnId txn) const;

    /** Drop the undo chain (after commit or completed rollback). */
    void dropUndoChain(TxnId txn);

  private:
    Lsn append(WalKind kind, TxnId txn, PageId page, std::uint32_t aux,
               std::uint64_t aux64, const void* payload,
               std::uint16_t payload_len);

    SimDisk& disk_;
    Config config_;
    EngineHooks* hooks_;
    std::vector<std::uint8_t> buffer_;
    Lsn next_lsn_ = 1;
    Lsn flushed_lsn_ = 0;
    Lsn buffered_from_lsn_ = 1;
    std::uint32_t pending_commits_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t commits_ = 0;
    std::unordered_map<TxnId, std::vector<UndoEntry>> undo_;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_WAL_HH
