#include "db/disk.hh"

#include <cstring>

namespace spikesim::db {

void
SimDisk::readPage(PageId id, Page& out) const
{
    ++pages_read_;
    auto it = pages_.find(id);
    if (it == pages_.end()) {
        out = Page();
        out.header().id = id;
        return;
    }
    out = *it->second;
}

void
SimDisk::writePage(PageId id, const Page& page)
{
    ++pages_written_;
    auto it = pages_.find(id);
    if (it == pages_.end())
        pages_.emplace(id, std::make_unique<Page>(page));
    else
        *it->second = page;
}

bool
SimDisk::pageExists(PageId id) const
{
    return pages_.find(id) != pages_.end();
}

std::uint64_t
SimDisk::appendLog(const void* bytes, std::uint32_t len)
{
    std::uint64_t off = log_.size();
    const auto* p = static_cast<const std::uint8_t*>(bytes);
    log_.insert(log_.end(), p, p + len);
    return off;
}

std::uint32_t
SimDisk::readLog(std::uint64_t offset, void* out, std::uint32_t len) const
{
    if (offset >= log_.size())
        return 0;
    std::uint64_t avail = log_.size() - offset;
    std::uint32_t n = len < avail ? len : static_cast<std::uint32_t>(avail);
    std::memcpy(out, log_.data() + offset, n);
    return n;
}

} // namespace spikesim::db
