#ifndef SPIKESIM_DB_LOCKMGR_HH
#define SPIKESIM_DB_LOCKMGR_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/types.hh"

/**
 * @file
 * Two-phase row lock manager. Grants shared/exclusive locks, detects
 * conflicts, and maintains a wait-for graph for deadlock detection.
 * The OLTP driver executes transactions one at a time, so in the
 * simulated workload conflicts are modeled through recent-writer
 * tracking (see TpcbDriver); the lock manager itself is nevertheless a
 * complete implementation that the tests exercise with genuinely
 * interleaved transactions.
 */

namespace spikesim::db {

enum class LockMode : std::uint8_t { Shared, Exclusive };

/** Outcome of a lock request. */
enum class LockResult : std::uint8_t {
    Granted,   ///< lock acquired (or already held strongly enough)
    WouldWait, ///< conflicting holder exists; caller must wait
    Deadlock,  ///< waiting would close a wait-for cycle
};

/** Lockable resource name: (space, key) — e.g. (table id, row key). */
struct LockName
{
    std::uint32_t space = 0;
    std::uint64_t key = 0;

    bool
    operator==(const LockName& o) const
    {
        return space == o.space && key == o.key;
    }
};

struct LockNameHash
{
    std::size_t
    operator()(const LockName& n) const
    {
        std::uint64_t h = n.key * 0x9e3779b97f4a7c15ULL;
        h ^= (static_cast<std::uint64_t>(n.space) << 32) | n.space;
        h *= 0xbf58476d1ce4e5b9ULL;
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
};

/** Row/key lock manager with deadlock detection. */
class LockManager
{
  public:
    LockManager() = default;

    /**
     * Request a lock. On WouldWait the caller is registered as waiting
     * (for the wait-for graph) until it retries successfully or calls
     * cancelWait. On Deadlock nothing is registered; the caller should
     * abort.
     */
    LockResult acquire(TxnId txn, const LockName& name, LockMode mode);

    /** Drop a wait registration (caller gave up or was granted). */
    void cancelWait(TxnId txn);

    /** Release every lock the transaction holds (end of 2PL). */
    void releaseAll(TxnId txn);

    /** True if txn currently holds the named lock at `mode` or
     *  stronger. */
    bool holds(TxnId txn, const LockName& name, LockMode mode) const;

    std::uint64_t grants() const { return grants_; }
    std::uint64_t conflicts() const { return conflicts_; }
    std::uint64_t deadlocks() const { return deadlocks_; }
    std::size_t numLockedResources() const { return table_.size(); }

  private:
    struct LockState
    {
        /** Holders; exclusive implies exactly one. */
        std::vector<TxnId> holders;
        LockMode mode = LockMode::Shared;
    };

    /** Does granting (txn, mode) conflict with current holders? */
    static bool conflicts(const LockState& s, TxnId txn, LockMode mode);

    /** Would txn waiting on `blockers` close a wait-for cycle? */
    bool wouldDeadlock(TxnId txn, const LockState& s) const;

    std::unordered_map<LockName, LockState, LockNameHash> table_;
    std::unordered_map<TxnId, std::vector<LockName>> held_;
    /** waiting txn -> txns it waits for. */
    std::unordered_map<TxnId, std::unordered_set<TxnId>> wait_for_;
    std::uint64_t grants_ = 0;
    std::uint64_t conflicts_ = 0;
    std::uint64_t deadlocks_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_LOCKMGR_HH
