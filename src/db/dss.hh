#ifndef SPIKESIM_DB_DSS_HH
#define SPIKESIM_DB_DSS_HH

#include <cstdint>

#include "db/tpcb.hh"

/**
 * @file
 * Decision-support (DSS) query driver over the same banking schema.
 * The paper repeatedly contrasts OLTP with DSS: scan-dominated DSS
 * queries have tight loops and a small instruction footprint, so their
 * cache behaviour is far better and code layout buys much less. This
 * driver runs aggregate scans and index range queries against the
 * TPC-B database so the two workload classes can be compared on the
 * same engine (see bench/ablation_dss).
 */

namespace spikesim::db {

/** Result of one DSS query. */
struct DssOutcome
{
    std::int64_t rows_scanned = 0;
    std::int64_t groups = 0;
    std::int64_t aggregate = 0;
};

/** Runs scan/aggregate queries against a TpcbDatabase. */
class DssDriver
{
  public:
    /**
     * @param db the (already set-up) database.
     * @param hooks simulation hooks; usually the same dispatcher the
     *        database uses so both workloads share one trace.
     */
    DssDriver(TpcbDatabase& db, EngineHooks* hooks,
              std::uint64_t seed = 99);

    /**
     * Q1: full-table scan of accounts with a per-branch balance
     * aggregate (the classic scan+group-by).
     */
    DssOutcome scanAggregate(std::uint16_t process);

    /**
     * Q2: index range scan -- sum balances of accounts with keys in a
     * random contiguous range (fraction of the table).
     */
    DssOutcome rangeQuery(std::uint16_t process, double selectivity = 0.02);

    std::uint64_t queriesRun() const { return queries_; }

  private:
    TpcbDatabase& db_;
    EngineHooks* hooks_;
    support::Pcg32 rng_;
    std::uint64_t queries_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_DSS_HH
