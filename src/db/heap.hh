#ifndef SPIKESIM_DB_HEAP_HH
#define SPIKESIM_DB_HEAP_HH

#include <cstdint>
#include <functional>
#include <string>

#include "db/bufferpool.hh"
#include "db/types.hh"
#include "db/wal.hh"

/**
 * @file
 * Heap table: fixed-width rows appended into a chain of pages (linked
 * through the page `extra` field). Inserts fill the tail page and
 * allocate a new one when full; updates overwrite rows in place with
 * before/after images logged for redo and rollback.
 */

namespace spikesim::db {

class PageAllocator;

/** Append-oriented table of fixed-width rows. */
class HeapTable
{
  public:
    /** Create a new table: formats its first page. */
    static HeapTable create(BufferPool& pool, Wal& wal,
                            PageAllocator& alloc, std::uint16_t row_bytes,
                            EngineHooks* hooks = nullptr);

    /** Reopen an existing table from its first page. */
    static HeapTable open(BufferPool& pool, Wal& wal, PageAllocator& alloc,
                          PageId first_page, EngineHooks* hooks = nullptr);

    /** Append a row; returns where it landed. */
    RowId insert(TxnId txn, const void* row);

    /** Read a row. */
    void fetch(RowId rid, void* out);

    /** Overwrite a row in place. */
    void update(TxnId txn, RowId rid, const void* row);

    /** Visit every row in insertion order. */
    void scan(const std::function<void(RowId, const void*)>& fn);

    std::uint64_t numRows();
    PageId firstPage() const { return first_; }
    std::uint16_t rowBytes() const { return row_bytes_; }
    std::uint64_t numPages() const { return num_pages_; }

  private:
    HeapTable(BufferPool& pool, Wal& wal, PageAllocator& alloc,
              std::uint16_t row_bytes, EngineHooks* hooks);

    /** Report the data lines of one row to the simulation hooks. */
    void touchRow(const FrameRef& ref, std::uint16_t slot);

    BufferPool& pool_;
    Wal& wal_;
    PageAllocator& alloc_;
    EngineHooks* hooks_;
    std::uint16_t row_bytes_;
    PageId first_ = kInvalidPage;
    PageId tail_ = kInvalidPage;
    std::uint64_t num_pages_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_HEAP_HH
