#ifndef SPIKESIM_DB_DISK_HH
#define SPIKESIM_DB_DISK_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "db/page.hh"
#include "db/types.hh"

/**
 * @file
 * Simulated durable storage: a page store plus an append-only redo log
 * file. Durability is what recovery tests exercise — crash() drops all
 * volatile state elsewhere, and the content here is what survives.
 */

namespace spikesim::db {

/** In-memory stand-in for the database's disks. */
class SimDisk
{
  public:
    SimDisk() = default;
    SimDisk(const SimDisk&) = delete;
    SimDisk& operator=(const SimDisk&) = delete;

    /** Read a page into `out`; pages never written read as freshly
     *  zeroed Free pages. */
    void readPage(PageId id, Page& out) const;

    /** Durably write a page. */
    void writePage(PageId id, const Page& page);

    /** True if the page was ever written. */
    bool pageExists(PageId id) const;

    /** Append raw bytes to the redo log file; returns the offset. */
    std::uint64_t appendLog(const void* bytes, std::uint32_t len);

    /** Read log bytes (for recovery). Returns bytes copied. */
    std::uint32_t readLog(std::uint64_t offset, void* out,
                          std::uint32_t len) const;

    std::uint64_t logBytes() const { return log_.size(); }
    std::uint64_t pagesWritten() const { return pages_written_; }
    std::uint64_t pagesRead() const { return pages_read_; }

  private:
    std::unordered_map<PageId, std::unique_ptr<Page>> pages_;
    std::vector<std::uint8_t> log_;
    mutable std::uint64_t pages_read_ = 0;
    std::uint64_t pages_written_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_DISK_HH
