#ifndef SPIKESIM_DB_BTREE_HH
#define SPIKESIM_DB_BTREE_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "db/bufferpool.hh"
#include "db/types.hh"
#include "db/wal.hh"

/**
 * @file
 * B+tree index mapping int64 keys to row ids. Nodes live in buffer-pool
 * pages; every structural mutation is WAL-logged (as structural-txn
 * records, so splits survive recovery even when the triggering
 * transaction does not commit — a split without its insert is still a
 * valid tree). Inner nodes carry a +inf sentinel entry for the
 * rightmost child; leaves are chained through the page `extra` link.
 * Deletion is lazy (no rebalancing), which is what most production
 * OLTP engines do too.
 */

namespace spikesim::db {

/** Allocates page ids; recovery re-seeds the counter. */
class PageAllocator
{
  public:
    explicit PageAllocator(PageId first = 1) : next_(first) {}

    PageId alloc() { return next_++; }
    PageId next() const { return next_; }
    void seed(PageId next) { next_ = next; }

  private:
    PageId next_;
};

/** B+tree over (int64 key -> RowId). */
class BTree
{
  public:
    /** Key sentinel for the rightmost inner entry. */
    static constexpr std::int64_t kMaxKey =
        std::numeric_limits<std::int64_t>::max();

    /**
     * Create a fresh tree: formats an anchor page and an empty root
     * leaf. The anchor records the root page and height so the tree
     * can be reopened after recovery.
     */
    static BTree create(BufferPool& pool, Wal& wal, PageAllocator& alloc,
                        PageId anchor_page, EngineHooks* hooks = nullptr);

    /** Open an existing tree from its anchor page. */
    static BTree open(BufferPool& pool, Wal& wal, PageAllocator& alloc,
                      PageId anchor_page, EngineHooks* hooks = nullptr);

    /** Point lookup. */
    std::optional<RowId> search(std::int64_t key);

    /** Insert (duplicate keys are rejected with false). */
    bool insert(TxnId txn, std::int64_t key, RowId rid);

    /** Lazy delete; true if the key existed. */
    bool remove(TxnId txn, std::int64_t key);

    /** Visit entries with lo <= key <= hi in key order. */
    void scan(std::int64_t lo, std::int64_t hi,
              const std::function<void(std::int64_t, RowId)>& fn);

    /** Tree height in levels (1 = root is a leaf). */
    int height() const { return height_; }
    PageId rootPage() const { return root_; }
    PageId anchorPage() const { return anchor_; }
    std::uint64_t numEntries();

    /**
     * Structural self-check: keys sorted in every node, children
     * consistent with separators, all leaves at the same depth,
     * leaf chain ordered. Returns empty string when healthy.
     */
    std::string check();

  private:
    BTree(BufferPool& pool, Wal& wal, PageAllocator& alloc,
          PageId anchor_page, EngineHooks* hooks);

    struct LeafEntry
    {
        std::int64_t key;
        RowId rid;
    };
    struct InnerEntry
    {
        std::int64_t key;
        PageId child;
        std::uint32_t pad = 0;
    };
    static_assert(sizeof(LeafEntry) == 16, "leaf entry layout");
    static_assert(sizeof(InnerEntry) == 16, "inner entry layout");

    /** Anchor page payload. */
    struct AnchorRecord
    {
        PageId root;
        std::int32_t height;
    };

    PageId newLeaf(PageId next_link);
    PageId newInner();
    void writeAnchor();
    /** Grow a new root above the current one (root was full). */
    void growRoot();
    /**
     * Split the full child at parent slot `idx` (preemptive splitting:
     * the parent is guaranteed non-full).
     */
    void splitChild(PageId parent_id, std::uint16_t idx);
    std::string checkNode(PageId id, int depth, std::int64_t lo,
                          std::int64_t hi, int& leaf_depth,
                          PageId& leftmost_leaf);

    BufferPool& pool_;
    Wal& wal_;
    PageAllocator& alloc_;
    EngineHooks* hooks_;
    PageId anchor_;
    PageId root_ = kInvalidPage;
    int height_ = 1;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_BTREE_HH
