#include "db/wal.hh"

#include "obs/registry.hh"

#include <cstring>

#include "support/panic.hh"

namespace spikesim::db {

Wal::Wal(SimDisk& disk, const Config& config, EngineHooks* hooks)
    : disk_(disk), config_(config), hooks_(hooks)
{
    buffer_.reserve(config.flush_threshold_bytes * 2);
}

Lsn
Wal::append(WalKind kind, TxnId txn, PageId page, std::uint32_t aux,
            std::uint64_t aux64, const void* payload,
            std::uint16_t payload_len)
{
    WalRecordHeader hdr;
    hdr.lsn = next_lsn_++;
    hdr.txn = txn;
    hdr.page = page;
    hdr.aux = aux;
    hdr.aux64 = aux64;
    hdr.payload_len = payload_len;
    hdr.kind = kind;
    const auto* h = reinterpret_cast<const std::uint8_t*>(&hdr);
    buffer_.insert(buffer_.end(), h, h + sizeof(hdr));
    if (payload_len > 0) {
        const auto* p = static_cast<const std::uint8_t*>(payload);
        buffer_.insert(buffer_.end(), p, p + payload_len);
    }
    if (hooks_ != nullptr) {
        // log_append's hinted loop copies the record in 64B chunks;
        // each chunk is a store into the circular log buffer.
        int chunks =
            1 + static_cast<int>((sizeof(hdr) + payload_len) / 64);
        hooks_->onOp("log_append", {&chunks, 1});
        std::uint64_t at = buffer_.size();
        for (int c = 0; c < chunks; ++c)
            hooks_->onData(addrmap::kLogBase +
                           ((at + static_cast<std::uint64_t>(c) * 64) &
                            0xfffffu));
    }
    return hdr.lsn;
}

Lsn
Wal::logBegin(TxnId txn)
{
    return append(WalKind::Begin, txn, kInvalidPage, 0, 0, nullptr, 0);
}

Lsn
Wal::logCommitRecord(TxnId txn)
{
    return append(WalKind::Commit, txn, kInvalidPage, 0, 0, nullptr, 0);
}

Lsn
Wal::logAbort(TxnId txn)
{
    return append(WalKind::Abort, txn, kInvalidPage, 0, 0, nullptr, 0);
}

Lsn
Wal::logFormat(TxnId txn, PageId page, std::uint32_t page_type,
               std::uint16_t slot_bytes)
{
    return append(WalKind::Format, txn, page, page_type, slot_bytes,
                  nullptr, 0);
}

Lsn
Wal::logAppend(TxnId txn, PageId page, const void* bytes,
               std::uint16_t len)
{
    return append(WalKind::Append, txn, page, 0, 0, bytes, len);
}

Lsn
Wal::logUpdate(TxnId txn, PageId page, std::uint16_t slot,
               const void* after, const void* before, std::uint16_t len)
{
    std::vector<std::uint8_t> both(static_cast<std::size_t>(len) * 2);
    std::memcpy(both.data(), after, len);
    std::memcpy(both.data() + len, before, len);
    if (txn != kStructuralTxn) {
        UndoEntry u;
        u.page = page;
        u.slot = slot;
        u.before.assign(static_cast<const std::uint8_t*>(before),
                        static_cast<const std::uint8_t*>(before) + len);
        undo_[txn].push_back(std::move(u));
    }
    return append(WalKind::Update, txn, page, slot, 0, both.data(),
                  static_cast<std::uint16_t>(both.size()));
}

Lsn
Wal::logInsertAt(TxnId txn, PageId page, std::uint16_t slot,
                 const void* bytes, std::uint16_t len)
{
    return append(WalKind::InsertAt, txn, page, slot, 0, bytes, len);
}

Lsn
Wal::logRemoveAt(TxnId txn, PageId page, std::uint16_t slot)
{
    return append(WalKind::RemoveAt, txn, page, slot, 0, nullptr, 0);
}

Lsn
Wal::logSetSlotCount(TxnId txn, PageId page, std::uint16_t count)
{
    return append(WalKind::SetSlotCount, txn, page, count, 0, nullptr, 0);
}

Lsn
Wal::logSetExtra(TxnId txn, PageId page, std::uint64_t value)
{
    return append(WalKind::SetExtra, txn, page, 0, value, nullptr, 0);
}

bool
Wal::commit(TxnId txn)
{
    logCommitRecord(txn);
    dropUndoChain(txn);
    ++commits_;
    static obs::Counter& c_commits = obs::counter("db.wal.commits");
    c_commits.add(1);
    ++pending_commits_;
    bool lead = pending_commits_ >= config_.group_commit_batch ||
                buffer_.size() >= config_.flush_threshold_bytes;
    if (lead) {
        int batch = static_cast<int>(pending_commits_);
        if (hooks_ != nullptr)
            hooks_->onOp("log_flush", {&batch, 1});
        flush();
    } else {
        if (hooks_ != nullptr)
            hooks_->onOp("log_wait");
    }
    return lead;
}

void
Wal::flush()
{
    if (buffer_.empty())
        return;
    if (hooks_ != nullptr) {
        int blocks =
            1 + static_cast<int>(buffer_.size() / kPageBytes);
        hooks_->onSyscall("sys_write", {&blocks, 1});
        hooks_->onSyscall("sys_fsync", {&blocks, 1});
    }
    disk_.appendLog(buffer_.data(), static_cast<std::uint32_t>(
                                        buffer_.size()));
    flushed_lsn_ = next_lsn_ - 1;
    buffered_from_lsn_ = next_lsn_;
    buffer_.clear();
    static obs::Counter& c_flushes = obs::counter("db.wal.flushes");
    static obs::Histogram& h_batch =
        obs::histogram("db.wal.group_commit_size");
    c_flushes.add(1);
    if (pending_commits_ > 0)
        h_batch.record(pending_commits_);
    pending_commits_ = 0;
    ++flushes_;
}

void
Wal::discardBuffer()
{
    buffer_.clear();
    pending_commits_ = 0;
    next_lsn_ = buffered_from_lsn_;
    undo_.clear();
}

const std::vector<Wal::UndoEntry>&
Wal::undoChain(TxnId txn) const
{
    static const std::vector<UndoEntry> kEmpty;
    auto it = undo_.find(txn);
    return it == undo_.end() ? kEmpty : it->second;
}

void
Wal::dropUndoChain(TxnId txn)
{
    undo_.erase(txn);
}

std::vector<WalRecord>
Wal::readAll(const SimDisk& disk)
{
    std::vector<WalRecord> out;
    std::uint64_t off = 0;
    for (;;) {
        WalRecordHeader hdr;
        std::uint32_t n = disk.readLog(off, &hdr, sizeof(hdr));
        if (n < sizeof(hdr))
            break;
        off += sizeof(hdr);
        WalRecord rec;
        rec.hdr = hdr;
        if (hdr.payload_len > 0) {
            rec.payload.resize(hdr.payload_len);
            std::uint32_t m =
                disk.readLog(off, rec.payload.data(), hdr.payload_len);
            SPIKESIM_ASSERT(m == hdr.payload_len, "truncated log record");
            off += hdr.payload_len;
        }
        out.push_back(std::move(rec));
    }
    return out;
}

} // namespace spikesim::db
