#include "db/recovery.hh"

#include <cstring>
#include <unordered_set>

#include "db/page.hh"
#include "db/wal.hh"
#include "support/panic.hh"

namespace spikesim::db {

namespace {

/** Apply one redo record to its page. Returns true if applied. */
bool
redoRecord(BufferPool& pool, const WalRecord& rec)
{
    const WalRecordHeader& h = rec.hdr;
    if (h.page == kInvalidPage)
        return false; // Begin/Commit/Abort carry no page change
    FrameRef ref = pool.fetch(h.page);
    Page& page = *ref.page;
    bool applied = false;
    // Format must apply to unformatted pages regardless of LSN (a
    // fresh page reads back with lsn 0 but also with no geometry).
    if (h.kind == WalKind::Format) {
        if (page.header().type == PageType::Free) {
            page.format(h.page, static_cast<PageType>(h.aux),
                        static_cast<std::uint16_t>(h.aux64));
            page.header().lsn = h.lsn;
            applied = true;
        }
    } else if (page.header().lsn < h.lsn) {
        switch (h.kind) {
          case WalKind::Append:
            page.appendSlot(rec.payload.data());
            break;
          case WalKind::Update: {
            std::uint16_t len =
                static_cast<std::uint16_t>(rec.payload.size() / 2);
            SPIKESIM_ASSERT(h.aux < page.header().num_slots,
                            "redo update of missing slot");
            std::memcpy(page.slot(static_cast<std::uint16_t>(h.aux)),
                        rec.payload.data(), len);
            break;
          }
          case WalKind::InsertAt:
            page.insertSlotAt(static_cast<std::uint16_t>(h.aux),
                              rec.payload.data());
            break;
          case WalKind::RemoveAt:
            page.removeSlotAt(static_cast<std::uint16_t>(h.aux));
            break;
          case WalKind::SetSlotCount:
            page.setSlotCount(static_cast<std::uint16_t>(h.aux));
            break;
          case WalKind::SetExtra:
            page.header().extra = h.aux64;
            break;
          default:
            SPIKESIM_PANIC("unexpected redo record kind");
        }
        page.header().lsn = h.lsn;
        applied = true;
    }
    pool.release(ref, applied);
    return applied;
}

} // namespace

RecoveryResult
recover(SimDisk& disk, BufferPool& pool)
{
    RecoveryResult result;
    std::vector<WalRecord> records = Wal::readAll(disk);
    result.records_scanned = records.size();

    // Pass 1: find winners (committed transactions).
    std::unordered_set<TxnId> committed;
    std::unordered_set<TxnId> seen;
    for (const WalRecord& rec : records) {
        const WalRecordHeader& h = rec.hdr;
        if (h.txn != kStructuralTxn)
            seen.insert(h.txn);
        if (h.kind == WalKind::Commit)
            committed.insert(h.txn);
        if (h.txn > result.max_txn)
            result.max_txn = h.txn;
        if (h.page != kInvalidPage && h.page > result.max_page)
            result.max_page = h.page;
        if (h.lsn > result.max_lsn)
            result.max_lsn = h.lsn;
    }
    result.txns_committed = committed.size();

    // Pass 2: redo structural records and winners, in LSN order.
    for (const WalRecord& rec : records) {
        const WalRecordHeader& h = rec.hdr;
        bool winner =
            h.txn == kStructuralTxn || committed.count(h.txn) != 0;
        if (!winner)
            continue;
        if (redoRecord(pool, rec))
            ++result.records_redone;
    }

    // Pass 3: undo losers newest-first. Their redo records were
    // skipped, so the only loser effects that can be present are dirty
    // pages that reached disk before the crash; before-images repair
    // updates, and content-guarded removal repairs inserts.
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
        const WalRecordHeader& h = it->hdr;
        if (h.txn == kStructuralTxn || committed.count(h.txn) != 0)
            continue;
        if (h.page == kInvalidPage)
            continue;
        FrameRef ref = pool.fetch(h.page);
        Page& page = *ref.page;
        bool applied = false;
        switch (h.kind) {
          case WalKind::Update: {
            std::uint16_t len =
                static_cast<std::uint16_t>(it->payload.size() / 2);
            auto slot = static_cast<std::uint16_t>(h.aux);
            if (slot < page.header().num_slots &&
                std::memcmp(page.slot(slot), it->payload.data(), len) ==
                    0) {
                // Page shows the loser's after-image: restore before.
                std::memcpy(page.slot(slot), it->payload.data() + len,
                            len);
                applied = true;
            }
            break;
          }
          case WalKind::Append: {
            std::uint16_t n = page.header().num_slots;
            if (n > 0 &&
                std::memcmp(page.slot(static_cast<std::uint16_t>(n - 1)),
                            it->payload.data(),
                            it->payload.size()) == 0) {
                page.removeSlotAt(static_cast<std::uint16_t>(n - 1));
                applied = true;
            }
            break;
          }
          case WalKind::InsertAt: {
            auto slot = static_cast<std::uint16_t>(h.aux);
            if (slot < page.header().num_slots &&
                std::memcmp(page.slot(slot), it->payload.data(),
                            it->payload.size()) == 0) {
                page.removeSlotAt(slot);
                applied = true;
            }
            break;
          }
          default:
            break; // loser RemoveAt/structural kinds: nothing to undo
        }
        if (applied) {
            page.header().lsn = result.max_lsn + 1;
            ++result.records_undone;
        }
        pool.release(ref, applied);
    }

    for (TxnId t : seen)
        if (committed.count(t) == 0)
            ++result.txns_lost;
    return result;
}

} // namespace spikesim::db
