#include "db/txn.hh"

#include "obs/registry.hh"

#include <cstring>

#include "support/panic.hh"

namespace spikesim::db {

TransactionManager::TransactionManager(Wal& wal, LockManager& locks,
                                       BufferPool& pool,
                                       EngineHooks* hooks)
    : wal_(wal), locks_(locks), pool_(pool), hooks_(hooks)
{
}

TxnId
TransactionManager::begin()
{
    TxnId txn = next_txn_++;
    states_[txn] = TxnState::Active;
    if (hooks_ != nullptr)
        hooks_->onOp("txn_begin");
    wal_.logBegin(txn);
    return txn;
}

void
TransactionManager::commit(TxnId txn)
{
    auto it = states_.find(txn);
    SPIKESIM_ASSERT(it != states_.end() &&
                        it->second == TxnState::Active,
                    "commit of non-active txn " << txn);
    if (hooks_ != nullptr)
        hooks_->onOp("txn_commit");
    wal_.commit(txn);
    int held = 4; // typical TPC-B lock count per txn
    if (hooks_ != nullptr)
        hooks_->onOp("lock_release_all", {&held, 1});
    locks_.releaseAll(txn);
    it->second = TxnState::Committed;
    ++committed_;
    static obs::Counter& c_commits = obs::counter("db.txn.commits");
    c_commits.add(1);
}

void
TransactionManager::abort(TxnId txn)
{
    auto it = states_.find(txn);
    SPIKESIM_ASSERT(it != states_.end() &&
                        it->second == TxnState::Active,
                    "abort of non-active txn " << txn);
    // Roll back newest-first, logging compensating updates so redo of
    // a committed-later state stays correct.
    const auto& chain = wal_.undoChain(txn);
    for (auto u = chain.rbegin(); u != chain.rend(); ++u) {
        FrameRef ref = pool_.fetch(u->page);
        std::vector<std::uint8_t> cur(u->before.size());
        std::memcpy(cur.data(), ref.page->slot(u->slot), cur.size());
        std::memcpy(ref.page->slot(u->slot), u->before.data(),
                    u->before.size());
        ref.page->header().lsn = wal_.logUpdate(
            kStructuralTxn, u->page, u->slot, u->before.data(),
            cur.data(), static_cast<std::uint16_t>(u->before.size()));
        pool_.release(ref, true);
    }
    wal_.dropUndoChain(txn);
    wal_.logAbort(txn);
    locks_.releaseAll(txn);
    it->second = TxnState::Aborted;
    ++aborted_;
    static obs::Counter& c_aborts = obs::counter("db.txn.aborts");
    c_aborts.add(1);
}

TxnState
TransactionManager::state(TxnId txn) const
{
    auto it = states_.find(txn);
    SPIKESIM_ASSERT(it != states_.end(), "unknown txn " << txn);
    return it->second;
}

std::uint64_t
TransactionManager::numActive() const
{
    std::uint64_t n = 0;
    for (const auto& [id, st] : states_)
        if (st == TxnState::Active)
            ++n;
    return n;
}

} // namespace spikesim::db
