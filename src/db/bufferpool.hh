#ifndef SPIKESIM_DB_BUFFERPOOL_HH
#define SPIKESIM_DB_BUFFERPOOL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "db/disk.hh"
#include "db/page.hh"
#include "db/types.hh"

/**
 * @file
 * Buffer pool: a fixed set of page frames with LRU replacement,
 * pinning, and dirty-page writeback. Every fetch reports the code path
 * it took (buf_get_hit / buf_get_miss) and the simulated frame address
 * through EngineHooks, which is how buffer behaviour reaches the
 * instruction and data traces.
 */

namespace spikesim::db {

/** Pin handle; unpin through the pool. */
struct FrameRef
{
    Page* page = nullptr;
    std::uint32_t frame = 0;
    /** Simulated address of the frame (for data-trace purposes). */
    std::uint64_t sim_addr = 0;
};

/** LRU buffer pool over SimDisk. */
class BufferPool
{
  public:
    /**
     * @param disk backing store (borrowed).
     * @param num_frames pool capacity in pages.
     * @param hooks simulation hooks (borrowed; may be null).
     */
    BufferPool(SimDisk& disk, std::uint32_t num_frames,
               EngineHooks* hooks = nullptr);

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /**
     * Write-ahead rule: called with a page's LSN immediately before
     * its dirty frame is written to disk; the callback must make the
     * log durable at least up to that LSN. Installed by the engine
     * once its Wal exists.
     */
    void
    setWalBarrier(std::function<void(Lsn)> barrier)
    {
        wal_barrier_ = std::move(barrier);
    }

    /** Fetch and pin a page (reading from disk on a miss). */
    FrameRef fetch(PageId id);

    /** Unpin; `dirty` marks the frame as modified. */
    void release(const FrameRef& ref, bool dirty);

    /** Write all dirty frames back to disk (checkpoint). */
    void flushAll();

    /** Drop the entire cache without writeback (crash simulation). */
    void dropAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint32_t numFrames() const
    {
        return static_cast<std::uint32_t>(frames_.size());
    }
    std::uint32_t pinnedFrames() const;

  private:
    struct Frame
    {
        Page page;
        PageId id = kInvalidPage;
        std::uint64_t stamp = 0;
        std::uint32_t pins = 0;
        bool dirty = false;
        bool valid = false;
    };

    std::uint32_t pickVictim();

    /** Apply the WAL rule, then write the frame back. */
    void writeBack(Frame& frame);

    std::function<void(Lsn)> wal_barrier_;
    SimDisk& disk_;
    EngineHooks* hooks_;
    std::vector<Frame> frames_;
    std::unordered_map<PageId, std::uint32_t> map_;
    std::uint64_t now_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_BUFFERPOOL_HH
