#ifndef SPIKESIM_DB_TPCB_HH
#define SPIKESIM_DB_TPCB_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "db/btree.hh"
#include "db/bufferpool.hh"
#include "db/disk.hh"
#include "db/heap.hh"
#include "db/lockmgr.hh"
#include "db/recovery.hh"
#include "db/txn.hh"
#include "db/types.hh"
#include "db/wal.hh"
#include "support/rng.hh"

/**
 * @file
 * TPC-B banking workload on top of the engine: branches, tellers,
 * accounts and a history table, with B+tree indexes on the three
 * keyed tables. Each transaction updates one account, its teller and
 * branch balances, and appends a history row — the classic debit/credit
 * transaction the paper's OLTP workload models. The driver also owns
 * the contention model that decides when a lock acquisition takes the
 * slow (wait) code path.
 */

namespace spikesim::db {

/** Scale and tuning parameters. */
struct TpcbConfig
{
    int branches = 40;
    int tellers_per_branch = 10;
    int accounts_per_branch = 2'500;
    std::uint32_t buffer_frames = 1'400;
    std::uint64_t seed = 7;
    /** Probability the chosen account belongs to a different branch
     *  than the teller (TPC-B remote transactions). */
    double remote_account_prob = 0.15;
    /** A branch updated again within this many transactions takes the
     *  lock-wait path (stand-in for real inter-process contention). */
    std::uint64_t contention_window = 8;
    Wal::Config wal;
};

/** Result of one TPC-B transaction. */
struct TpcbOutcome
{
    TxnId txn = 0;
    std::int64_t account = 0;
    std::int64_t teller = 0;
    std::int64_t branch = 0;
    std::int64_t delta = 0;
    bool lock_waited = false;
    bool flush_leader = false;
};

/** TPC-B rows: the spec's 100 bytes, rounded to 104 for alignment. */
struct AccountRow
{
    std::int64_t id;
    std::int64_t branch;
    std::int64_t balance;
    char pad[80];
};
struct TellerRow
{
    std::int64_t id;
    std::int64_t branch;
    std::int64_t balance;
    char pad[80];
};
struct BranchRow
{
    std::int64_t id;
    std::int64_t balance;
    char pad[88];
};
struct HistoryRow
{
    std::int64_t account;
    std::int64_t teller;
    std::int64_t branch;
    std::int64_t delta;
    std::int64_t txn;
    char pad[64];
};
static_assert(sizeof(AccountRow) == 104 && sizeof(TellerRow) == 104 &&
                  sizeof(BranchRow) == 104 && sizeof(HistoryRow) == 104,
              "TPC-B rows are ~100 bytes (104 with alignment)");

/** The database instance running the TPC-B workload. */
class TpcbDatabase
{
  public:
    /**
     * @param config scale parameters.
     * @param hooks simulation hooks (borrowed; may be null for tests).
     */
    explicit TpcbDatabase(const TpcbConfig& config,
                          EngineHooks* hooks = nullptr);

    /** Create tables/indexes and load the initial rows. */
    void setup();

    /** Execute one TPC-B transaction for the given client process. */
    TpcbOutcome runTransaction(std::uint16_t process);

    /** Force log + dirty pages to disk. */
    void checkpoint();

    /** Drop all volatile state (buffer pool, unflushed log). */
    void crash();

    /** Redo/undo from the log and reopen the tables. */
    RecoveryResult recover();

    /**
     * Consistency check: account, teller, and branch balance sums must
     * all equal the sum of history deltas. Empty string when holding.
     */
    std::string verify();

    std::int64_t numAccounts() const
    {
        return static_cast<std::int64_t>(config_.branches) *
               config_.accounts_per_branch;
    }
    std::int64_t numTellers() const
    {
        return static_cast<std::int64_t>(config_.branches) *
               config_.tellers_per_branch;
    }

    BufferPool& pool() { return *pool_; }
    Wal& wal() { return *wal_; }
    LockManager& locks() { return locks_; }
    TransactionManager& txns() { return *txns_; }
    BTree& accountIndex() { return *account_idx_; }
    HeapTable& accounts() { return *accounts_; }
    HeapTable& history() { return *history_; }
    EngineHooks* hooks() { return hooks_; }
    SimDisk& disk() { return disk_; }
    const TpcbConfig& config() const { return config_; }
    std::uint64_t transactionsRun() const { return txn_seq_; }

  private:
    /** Look up + lock + apply a balance delta to one indexed row. */
    template <typename Row>
    void updateBalance(TxnId txn, BTree& index, HeapTable& table,
                       std::uint32_t lock_space, std::int64_t key,
                       std::int64_t delta, bool hot_branch);

    TpcbConfig config_;
    EngineHooks* hooks_;
    support::Pcg32 rng_;
    SimDisk disk_;
    std::unique_ptr<BufferPool> pool_;
    std::unique_ptr<Wal> wal_;
    LockManager locks_;
    std::unique_ptr<TransactionManager> txns_;
    PageAllocator alloc_;

    std::unique_ptr<HeapTable> accounts_;
    std::unique_ptr<HeapTable> tellers_;
    std::unique_ptr<HeapTable> branches_;
    std::unique_ptr<HeapTable> history_;
    std::unique_ptr<BTree> account_idx_;
    std::unique_ptr<BTree> teller_idx_;
    std::unique_ptr<BTree> branch_idx_;

    /** First pages / anchors, remembered for reopen after recovery. */
    PageId accounts_first_ = kInvalidPage;
    PageId tellers_first_ = kInvalidPage;
    PageId branches_first_ = kInvalidPage;
    PageId history_first_ = kInvalidPage;
    PageId account_anchor_ = kInvalidPage;
    PageId teller_anchor_ = kInvalidPage;
    PageId branch_anchor_ = kInvalidPage;

    /** Contention model state: branch -> last txn sequence that wrote. */
    std::vector<std::uint64_t> branch_last_write_;
    std::uint64_t txn_seq_ = 0;
    bool last_update_waited_ = false;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_TPCB_HH
