#ifndef SPIKESIM_DB_TXN_HH
#define SPIKESIM_DB_TXN_HH

#include <cstdint>
#include <unordered_map>

#include "db/bufferpool.hh"
#include "db/lockmgr.hh"
#include "db/types.hh"
#include "db/wal.hh"

/**
 * @file
 * Transaction manager: id allocation, begin/commit/abort, strict 2PL
 * (locks released at commit/abort), and rollback via the WAL's
 * in-memory undo chains (aborts re-apply before-images as compensating
 * logged updates, so recovery never needs to know about them).
 */

namespace spikesim::db {

enum class TxnState : std::uint8_t { Active, Committed, Aborted };

/** Manages transaction lifecycles. */
class TransactionManager
{
  public:
    TransactionManager(Wal& wal, LockManager& locks, BufferPool& pool,
                       EngineHooks* hooks = nullptr);

    /** Start a transaction. */
    TxnId begin();

    /** Commit: group-commit the log, release locks. */
    void commit(TxnId txn);

    /** Abort: roll back updates via before-images, release locks. */
    void abort(TxnId txn);

    TxnState state(TxnId txn) const;
    std::uint64_t numCommitted() const { return committed_; }
    std::uint64_t numAborted() const { return aborted_; }
    std::uint64_t numActive() const;

    /** Continue id allocation after recovery. */
    void seedNextTxn(TxnId next) { next_txn_ = next; }

    LockManager& locks() { return locks_; }

  private:
    Wal& wal_;
    LockManager& locks_;
    BufferPool& pool_;
    EngineHooks* hooks_;
    TxnId next_txn_ = 1;
    std::unordered_map<TxnId, TxnState> states_;
    std::uint64_t committed_ = 0;
    std::uint64_t aborted_ = 0;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_TXN_HH
