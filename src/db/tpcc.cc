#include "db/tpcc.hh"

#include <cstring>
#include <unordered_map>

#include "support/panic.hh"

namespace spikesim::db {

namespace {
/** Lock spaces. */
constexpr std::uint32_t kWarehouseSpace = 10;
constexpr std::uint32_t kDistrictSpace = 11;
constexpr std::uint32_t kCustomerSpace = 12;
constexpr std::uint32_t kStockSpace = 13;

/** Orders are keyed district * kOrderStride + sequence. */
constexpr std::int64_t kOrderStride = 1'000'000;
} // namespace

TpccDatabase::TpccDatabase(const TpccConfig& config, EngineHooks* hooks)
    : config_(config), hooks_(hooks), rng_(config.seed, 0x7ccULL)
{
    pool_ = std::make_unique<BufferPool>(disk_, config.buffer_frames,
                                         hooks);
    wal_ = std::make_unique<Wal>(disk_, config.wal, hooks);
    txns_ = std::make_unique<TransactionManager>(*wal_, locks_, *pool_,
                                                 hooks);
    // Enforce the write-ahead rule: the log reaches disk before any
    // page that depends on it.
    pool_->setWalBarrier([this](Lsn lsn) {
        if (lsn > wal_->flushedLsn())
            wal_->flush();
    });
}

std::int64_t
TpccDatabase::customerKey(std::int64_t district, std::int64_t c) const
{
    return district * config_.customers_per_district + c;
}

void
TpccDatabase::setup()
{
    warehouses_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(WarehouseRow), hooks_));
    districts_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(DistrictRow), hooks_));
    customers_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(CustomerRow), hooks_));
    items_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(ItemRow), hooks_));
    stock_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(StockRow), hooks_));
    orders_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(OrderRow), hooks_));
    order_lines_ = std::make_unique<HeapTable>(HeapTable::create(
        *pool_, *wal_, alloc_, sizeof(OrderLineRow), hooks_));

    district_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, alloc_.alloc(), hooks_));
    customer_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, alloc_.alloc(), hooks_));
    item_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, alloc_.alloc(), hooks_));
    stock_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, alloc_.alloc(), hooks_));
    order_idx_ = std::make_unique<BTree>(
        BTree::create(*pool_, *wal_, alloc_, alloc_.alloc(), hooks_));

    TxnId txn = txns_->begin();
    for (std::int64_t w = 0; w < config_.warehouses; ++w) {
        WarehouseRow row{};
        row.id = w;
        warehouses_->insert(txn, &row);
    }
    for (std::int64_t d = 0; d < numDistricts(); ++d) {
        DistrictRow row{};
        row.id = d;
        row.next_order_id = 0;
        RowId rid = districts_->insert(txn, &row);
        district_idx_->insert(txn, d, rid);
    }
    for (std::int64_t c = 0; c < numCustomers(); ++c) {
        CustomerRow row{};
        row.id = c;
        row.district = c / config_.customers_per_district;
        RowId rid = customers_->insert(txn, &row);
        customer_idx_->insert(txn, c, rid);
    }
    for (std::int64_t i = 0; i < config_.items; ++i) {
        ItemRow row{};
        row.id = i;
        row.price = 100 + (i % 900);
        RowId rid = items_->insert(txn, &row);
        item_idx_->insert(txn, i, rid);
    }
    for (std::int64_t w = 0; w < config_.warehouses; ++w) {
        for (std::int64_t i = 0; i < config_.items; ++i) {
            StockRow row{};
            row.id = w * config_.items + i;
            row.quantity = 50 + (i % 50);
            RowId rid = stock_->insert(txn, &row);
            stock_idx_->insert(txn, row.id, rid);
        }
    }
    txns_->commit(txn);
    wal_->flush();
    pool_->flushAll();
}

TpccOutcome
TpccDatabase::runTransaction(std::uint16_t process)
{
    std::uint32_t pick = rng_.nextBounded(100);
    if (pick < 45)
        return runNewOrder(process);
    if (pick < 88)
        return runPayment(process);
    return runStockLevel(process);
}

TpccOutcome
TpccDatabase::runNewOrder(std::uint16_t process)
{
    SPIKESIM_ASSERT(orders_ != nullptr, "setup() was not called");
    ++new_orders_;
    TpccOutcome out;
    out.kind = TpccKind::NewOrder;
    std::int64_t district = rng_.nextRange(0, numDistricts() - 1);
    std::int64_t customer = customerKey(
        district, rng_.nextRange(0, config_.customers_per_district - 1));
    out.warehouse = district / config_.districts_per_warehouse;
    out.district = district;

    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc");
        hooks_->onOp("net_recv");
        hooks_->onData(addrmap::pga(process));
    }
    TxnId txn = txns_->begin();
    out.txn = txn;

    // District: allocate the order id (the hot row of New-Order).
    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_update");
    RowId drid = *district_idx_->search(district);
    locks_.acquire(txn, {kDistrictSpace,
                         static_cast<std::uint64_t>(district)},
                   LockMode::Exclusive);
    if (hooks_ != nullptr)
        hooks_->onOp("lock_acquire_fast");
    DistrictRow drow;
    districts_->fetch(drid, &drow);
    std::int64_t order_seq = drow.next_order_id++;
    districts_->update(txn, drid, &drow);

    // Customer credit check (read).
    RowId crid = *customer_idx_->search(customer);
    CustomerRow crow;
    customers_->fetch(crid, &crow);

    // 5-15 order lines: item lookup, stock update, line insert.
    int lines = 5 + static_cast<int>(rng_.nextBounded(11));
    out.order_lines = lines;
    std::int64_t order_id = district * kOrderStride + order_seq;
    for (int l = 0; l < lines; ++l) {
        std::int64_t item = rng_.nextRange(0, config_.items - 1);
        if (hooks_ != nullptr)
            hooks_->onOp("sql_exec_update");
        RowId irid = *item_idx_->search(item);
        ItemRow irow;
        items_->fetch(irid, &irow);

        std::int64_t stock_key = out.warehouse * config_.items + item;
        RowId srid = *stock_idx_->search(stock_key);
        locks_.acquire(txn, {kStockSpace,
                             static_cast<std::uint64_t>(stock_key)},
                       LockMode::Exclusive);
        if (hooks_ != nullptr)
            hooks_->onOp("lock_acquire_fast");
        StockRow srow;
        stock_->fetch(srid, &srow);
        std::int64_t qty = 1 + rng_.nextRange(0, 9);
        srow.quantity -= qty;
        if (srow.quantity < 10)
            srow.quantity += 91; // restock
        srow.ytd += qty;
        stock_->update(txn, srid, &srow);

        if (hooks_ != nullptr)
            hooks_->onOp("sql_exec_insert");
        OrderLineRow ol{};
        ol.order_id = order_id;
        ol.number = l;
        ol.item = item;
        ol.quantity = qty;
        ol.amount = qty * irow.price;
        order_lines_->insert(txn, &ol);
    }

    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_insert");
    OrderRow orow{};
    orow.id = order_id;
    orow.customer = customer;
    orow.line_count = lines;
    RowId orid = orders_->insert(txn, &orow);
    order_idx_->insert(txn, order_id, orid);

    txns_->commit(txn);
    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc");
    }
    return out;
}

TpccOutcome
TpccDatabase::runPayment(std::uint16_t process)
{
    SPIKESIM_ASSERT(orders_ != nullptr, "setup() was not called");
    ++payments_;
    TpccOutcome out;
    out.kind = TpccKind::Payment;
    std::int64_t district = rng_.nextRange(0, numDistricts() - 1);
    std::int64_t warehouse = district / config_.districts_per_warehouse;
    std::int64_t customer = customerKey(
        district, rng_.nextRange(0, config_.customers_per_district - 1));
    std::int64_t amount = rng_.nextRange(1, 5'000);
    out.warehouse = warehouse;
    out.district = district;
    out.amount = amount;

    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc");
        hooks_->onOp("net_recv");
        hooks_->onData(addrmap::pga(process));
    }
    TxnId txn = txns_->begin();
    out.txn = txn;

    // Warehouse YTD (heap row w is at slot w of the first page).
    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_update");
    locks_.acquire(txn, {kWarehouseSpace,
                         static_cast<std::uint64_t>(warehouse)},
                   LockMode::Exclusive);
    if (hooks_ != nullptr)
        hooks_->onOp("lock_acquire_fast");
    RowId wrid{warehouses_->firstPage(),
               static_cast<std::uint16_t>(warehouse)};
    WarehouseRow wrow;
    warehouses_->fetch(wrid, &wrow);
    wrow.ytd += amount;
    warehouses_->update(txn, wrid, &wrow);

    // District YTD.
    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_update");
    RowId drid = *district_idx_->search(district);
    locks_.acquire(txn, {kDistrictSpace,
                         static_cast<std::uint64_t>(district)},
                   LockMode::Exclusive);
    if (hooks_ != nullptr)
        hooks_->onOp("lock_acquire_fast");
    DistrictRow drow;
    districts_->fetch(drid, &drow);
    drow.ytd += amount;
    districts_->update(txn, drid, &drow);

    // Customer balance.
    if (hooks_ != nullptr)
        hooks_->onOp("sql_exec_update");
    RowId crid = *customer_idx_->search(customer);
    locks_.acquire(txn, {kCustomerSpace,
                         static_cast<std::uint64_t>(customer)},
                   LockMode::Exclusive);
    if (hooks_ != nullptr)
        hooks_->onOp("lock_acquire_fast");
    CustomerRow crow;
    customers_->fetch(crid, &crow);
    crow.balance -= amount;
    crow.payments += amount;
    customers_->update(txn, crid, &crow);

    txns_->commit(txn);
    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc");
    }
    return out;
}

TpccOutcome
TpccDatabase::runStockLevel(std::uint16_t process)
{
    SPIKESIM_ASSERT(orders_ != nullptr, "setup() was not called");
    ++stock_levels_;
    TpccOutcome out;
    out.kind = TpccKind::StockLevel;
    std::int64_t district = rng_.nextRange(0, numDistricts() - 1);
    out.warehouse = district / config_.districts_per_warehouse;
    out.district = district;

    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc");
        hooks_->onOp("net_recv");
        int batches = 1;
        hooks_->onOp("sql_exec_scan", {&batches, 1});
    }

    // Read the district's recent orders (read-only; no txn state).
    RowId drid = *district_idx_->search(district);
    DistrictRow drow;
    districts_->fetch(drid, &drow);
    std::int64_t hi = district * kOrderStride + drow.next_order_id - 1;
    std::int64_t lo = hi - 19;
    if (lo < district * kOrderStride)
        lo = district * kOrderStride;

    int rows = 0;
    int low = 0;
    order_idx_->scan(lo, hi, [&](std::int64_t, RowId orid) {
        OrderRow orow;
        orders_->fetch(orid, &orow);
        rows += static_cast<int>(orow.line_count);
        // Proxy for the stock join: count lines on orders with many
        // lines (full TPC-C joins order lines against stock < 15).
        if (orow.line_count >= 10)
            ++low;
    });
    if (hooks_ != nullptr && rows > 0)
        hooks_->onOp("row_scan_next", {&rows, 1});
    if (hooks_ != nullptr)
        hooks_->onOp("agg_update");
    out.low_stock = low;

    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc");
    }
    (void)process;
    return out;
}

std::string
TpccDatabase::verify()
{
    // Order ids allocated == orders inserted, per district.
    std::unordered_map<std::int64_t, std::int64_t> orders_per_district;
    std::int64_t total_lines_declared = 0;
    orders_->scan([&](RowId, const void* p) {
        OrderRow row;
        std::memcpy(&row, p, sizeof(row));
        ++orders_per_district[row.id / kOrderStride];
        total_lines_declared += row.line_count;
    });
    std::int64_t allocated = 0;
    std::string err;
    districts_->scan([&](RowId, const void* p) {
        DistrictRow row;
        std::memcpy(&row, p, sizeof(row));
        allocated += row.next_order_id;
        if (orders_per_district[row.id] != row.next_order_id)
            err = "district " + std::to_string(row.id) +
                  " order count mismatch";
    });
    if (!err.empty())
        return err;
    if (allocated != static_cast<std::int64_t>(new_orders_))
        return "allocated order ids != new-order transactions";

    std::int64_t lines = 0;
    std::int64_t line_amount = 0;
    order_lines_->scan([&](RowId, const void* p) {
        OrderLineRow row;
        std::memcpy(&row, p, sizeof(row));
        ++lines;
        line_amount += row.amount;
    });
    if (lines != total_lines_declared)
        return "order line rows do not match order headers";
    (void)line_amount;

    // Payment conservation: warehouse YTD == district YTD ==
    // customer payment sums (= -balance sums).
    std::int64_t w_ytd = 0, d_ytd = 0, c_pay = 0, c_bal = 0;
    warehouses_->scan([&](RowId, const void* p) {
        WarehouseRow row;
        std::memcpy(&row, p, sizeof(row));
        w_ytd += row.ytd;
    });
    districts_->scan([&](RowId, const void* p) {
        DistrictRow row;
        std::memcpy(&row, p, sizeof(row));
        d_ytd += row.ytd;
    });
    customers_->scan([&](RowId, const void* p) {
        CustomerRow row;
        std::memcpy(&row, p, sizeof(row));
        c_pay += row.payments;
        c_bal += row.balance;
    });
    if (w_ytd != d_ytd || d_ytd != c_pay || c_bal != -c_pay)
        return "payment sums diverge: warehouse=" + std::to_string(w_ytd) +
               " district=" + std::to_string(d_ytd) +
               " customers=" + std::to_string(c_pay);
    return "";
}

} // namespace spikesim::db
