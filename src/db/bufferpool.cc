#include "db/bufferpool.hh"

#include "obs/registry.hh"

#include "support/panic.hh"

namespace spikesim::db {

BufferPool::BufferPool(SimDisk& disk, std::uint32_t num_frames,
                       EngineHooks* hooks)
    : disk_(disk), hooks_(hooks)
{
    SPIKESIM_ASSERT(num_frames > 0, "buffer pool needs frames");
    frames_.resize(num_frames);
    map_.reserve(num_frames * 2);
}

FrameRef
BufferPool::fetch(PageId id)
{
    ++now_;
    auto it = map_.find(id);
    if (it != map_.end()) {
        Frame& f = frames_[it->second];
        f.stamp = now_;
        ++f.pins;
        ++hits_;
        static obs::Counter& c_hits = obs::counter("db.bufferpool.hits");
        c_hits.add(1);
        if (hooks_ != nullptr) {
            hooks_->onOp("buf_get_hit");
            hooks_->onData(addrmap::bufferFrame(it->second));
        }
        return {&f.page, it->second, addrmap::bufferFrame(it->second)};
    }

    ++misses_;
    static obs::Counter& c_misses = obs::counter("db.bufferpool.misses");
    c_misses.add(1);
    std::uint32_t victim = pickVictim();
    Frame& f = frames_[victim];
    if (f.valid) {
        if (f.dirty)
            writeBack(f);
        map_.erase(f.id);
    }
    // The miss path does real I/O: report the long code path and the
    // kernel read before the frame contents are available.
    if (hooks_ != nullptr) {
        hooks_->onOp("buf_get_miss");
        int pages = 1;
        hooks_->onSyscall("sys_read", {&pages, 1});
    }
    disk_.readPage(id, f.page);
    f.id = id;
    f.stamp = now_;
    f.pins = 1;
    f.dirty = false;
    f.valid = true;
    map_[id] = victim;
    if (hooks_ != nullptr)
        hooks_->onData(addrmap::bufferFrame(victim));
    return {&f.page, victim, addrmap::bufferFrame(victim)};
}

void
BufferPool::release(const FrameRef& ref, bool dirty)
{
    SPIKESIM_ASSERT(ref.frame < frames_.size(), "bad frame in release");
    Frame& f = frames_[ref.frame];
    SPIKESIM_ASSERT(f.pins > 0, "release of unpinned frame");
    --f.pins;
    if (dirty)
        f.dirty = true;
}

void
BufferPool::flushAll()
{
    int dirty = 0;
    for (Frame& f : frames_)
        if (f.valid && f.dirty)
            ++dirty;
    if (dirty == 0)
        return;
    // One writer pass: the dbwr loop walks all dirty frames, then a
    // single (vectored) kernel write pushes them out.
    if (hooks_ != nullptr) {
        hooks_->onOp("dbwr_flush", {&dirty, 1});
        hooks_->onSyscall("sys_write", {&dirty, 1});
    }
    for (Frame& f : frames_) {
        if (f.valid && f.dirty)
            writeBack(f);
    }
}

void
BufferPool::writeBack(Frame& frame)
{
    if (wal_barrier_)
        wal_barrier_(frame.page.header().lsn);
    disk_.writePage(frame.id, frame.page);
    frame.dirty = false;
}

void
BufferPool::dropAll()
{
    for (Frame& f : frames_)
        f = Frame();
    map_.clear();
}

std::uint32_t
BufferPool::pinnedFrames() const
{
    std::uint32_t n = 0;
    for (const Frame& f : frames_)
        if (f.pins > 0)
            ++n;
    return n;
}

std::uint32_t
BufferPool::pickVictim()
{
    // First fill invalid frames, then evict the LRU unpinned frame.
    std::uint32_t victim = kInvalidPage;
    for (std::uint32_t i = 0; i < frames_.size(); ++i) {
        Frame& f = frames_[i];
        if (!f.valid)
            return i;
        if (f.pins == 0 &&
            (victim == kInvalidPage || f.stamp < frames_[victim].stamp))
            victim = i;
    }
    SPIKESIM_ASSERT(victim != kInvalidPage,
                    "all buffer frames pinned; pool too small");
    return victim;
}

} // namespace spikesim::db
