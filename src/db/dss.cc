#include "db/dss.hh"

#include <cstring>
#include <unordered_map>

#include "support/panic.hh"

namespace spikesim::db {

DssDriver::DssDriver(TpcbDatabase& db, EngineHooks* hooks,
                     std::uint64_t seed)
    : db_(db), hooks_(hooks), rng_(seed, 0xd55ULL)
{
}

DssOutcome
DssDriver::scanAggregate(std::uint16_t process)
{
    ++queries_;
    DssOutcome out;
    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc");
        hooks_->onOp("net_recv");
        hooks_->onData(addrmap::pga(process));
        int batches = 1;
        hooks_->onOp("sql_exec_scan", {&batches, 1});
    }

    std::unordered_map<std::int64_t, std::int64_t> groups;
    PageId cur_page = kInvalidPage;
    int rows_in_page = 0;
    auto flush_page = [&]() {
        if (rows_in_page > 0 && hooks_ != nullptr)
            hooks_->onOp("row_scan_next", {&rows_in_page, 1});
        rows_in_page = 0;
    };
    db_.accounts().scan([&](RowId rid, const void* p) {
        if (rid.page != cur_page) {
            flush_page();
            cur_page = rid.page;
        }
        ++rows_in_page;
        AccountRow row;
        std::memcpy(&row, p, sizeof(row));
        groups[row.branch] += row.balance;
        out.aggregate += row.balance;
        ++out.rows_scanned;
    });
    flush_page();

    for (const auto& [branch, sum] : groups) {
        (void)branch;
        (void)sum;
        if (hooks_ != nullptr) {
            hooks_->onOp("agg_update");
            hooks_->onData(addrmap::pga(process) + 0x8000 +
                           (static_cast<std::uint64_t>(branch) % 64) *
                               64);
        }
        ++out.groups;
    }

    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc");
    }
    return out;
}

DssOutcome
DssDriver::rangeQuery(std::uint16_t process, double selectivity)
{
    SPIKESIM_ASSERT(selectivity > 0.0 && selectivity <= 1.0,
                    "selectivity out of range");
    ++queries_;
    DssOutcome out;
    std::int64_t n = db_.numAccounts();
    auto span = static_cast<std::int64_t>(
        static_cast<double>(n) * selectivity);
    if (span < 1)
        span = 1;
    std::int64_t lo = rng_.nextRange(0, n - span);
    std::int64_t hi = lo + span - 1;

    if (hooks_ != nullptr) {
        hooks_->onSyscall("sys_ipc");
        hooks_->onOp("net_recv");
        int batches = 1;
        hooks_->onOp("sql_exec_scan", {&batches, 1});
    }

    int rows_since_op = 0;
    db_.accountIndex().scan(lo, hi, [&](std::int64_t, RowId rid) {
        AccountRow row;
        db_.accounts().fetch(rid, &row);
        out.aggregate += row.balance;
        ++out.rows_scanned;
        if (++rows_since_op == 64) {
            if (hooks_ != nullptr)
                hooks_->onOp("row_scan_next", {&rows_since_op, 1});
            rows_since_op = 0;
        }
    });
    if (rows_since_op > 0 && hooks_ != nullptr)
        hooks_->onOp("row_scan_next", {&rows_since_op, 1});
    out.groups = 1;
    if (hooks_ != nullptr)
        hooks_->onOp("agg_update");

    if (hooks_ != nullptr) {
        hooks_->onOp("net_reply");
        hooks_->onSyscall("sys_ipc");
    }
    return out;
}

} // namespace spikesim::db
