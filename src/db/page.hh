#ifndef SPIKESIM_DB_PAGE_HH
#define SPIKESIM_DB_PAGE_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "db/types.hh"
#include "support/panic.hh"

/**
 * @file
 * Fixed-size database page with a small header and a slot area for
 * fixed-width records. Both the heap tables and the B+tree nodes store
 * their payloads in pages so that everything flows through the buffer
 * pool and write-ahead log like a real engine.
 */

namespace spikesim::db {

/** What a page stores. */
enum class PageType : std::uint8_t {
    Free = 0,
    Heap,
    BtreeInner,
    BtreeLeaf,
    Meta,
};

/** On-"disk" page image. */
class Page
{
  public:
    struct Header
    {
        PageId id = kInvalidPage;
        Lsn lsn = 0;
        PageType type = PageType::Free;
        std::uint16_t num_slots = 0;
        std::uint16_t slot_bytes = 0;
        /** Structure-specific field: next-leaf pointer for B+tree
         *  leaves, next-page link for heap pages. */
        std::uint64_t extra = 0;
    };

    Page() { std::memset(payload_.data(), 0, payload_.size()); }

    Header& header() { return header_; }
    const Header& header() const { return header_; }

    /** Configure the slot geometry (once, when formatting the page). */
    void
    format(PageId id, PageType type, std::uint16_t slot_bytes)
    {
        SPIKESIM_ASSERT(slot_bytes > 0 && slot_bytes <= kPayloadBytes,
                        "bad slot size " << slot_bytes);
        header_.id = id;
        header_.type = type;
        header_.slot_bytes = slot_bytes;
        header_.num_slots = 0;
    }

    /** Max slots the geometry allows. */
    std::uint16_t
    capacity() const
    {
        return static_cast<std::uint16_t>(kPayloadBytes /
                                          header_.slot_bytes);
    }

    bool full() const { return header_.num_slots >= capacity(); }

    /** Raw bytes of a slot (read/write). */
    std::uint8_t*
    slot(std::uint16_t s)
    {
        SPIKESIM_ASSERT(s < capacity(), "slot out of range");
        return payload_.data() +
               static_cast<std::size_t>(s) * header_.slot_bytes;
    }

    const std::uint8_t*
    slot(std::uint16_t s) const
    {
        SPIKESIM_ASSERT(s < capacity(), "slot out of range");
        return payload_.data() +
               static_cast<std::size_t>(s) * header_.slot_bytes;
    }

    /** Append a slot; returns its index. Page must not be full. */
    std::uint16_t
    appendSlot(const void* bytes)
    {
        SPIKESIM_ASSERT(!full(), "append to full page " << header_.id);
        std::uint16_t s = header_.num_slots++;
        std::memcpy(slot(s), bytes, header_.slot_bytes);
        return s;
    }

    /** Insert a slot at position `s`, shifting later slots up. */
    void
    insertSlotAt(std::uint16_t s, const void* bytes)
    {
        SPIKESIM_ASSERT(!full(), "insert into full page " << header_.id);
        SPIKESIM_ASSERT(s <= header_.num_slots, "insert past end");
        std::uint16_t n = header_.num_slots;
        if (s < n)
            std::memmove(slot(s) + header_.slot_bytes, slot(s),
                         static_cast<std::size_t>(n - s) *
                             header_.slot_bytes);
        ++header_.num_slots;
        std::memcpy(slot(s), bytes, header_.slot_bytes);
    }

    /** Remove the slot at position `s`, shifting later slots down. */
    void
    removeSlotAt(std::uint16_t s)
    {
        SPIKESIM_ASSERT(s < header_.num_slots, "remove of missing slot");
        std::uint16_t n = header_.num_slots;
        if (s + 1 < n)
            std::memmove(slot(s), slot(s) + header_.slot_bytes,
                         static_cast<std::size_t>(n - s - 1) *
                             header_.slot_bytes);
        --header_.num_slots;
    }

    /** Truncate to the first `n` slots (B+tree splits). */
    void
    setSlotCount(std::uint16_t n)
    {
        SPIKESIM_ASSERT(n <= capacity(), "slot count beyond capacity");
        header_.num_slots = n;
    }

    /** Read a fixed-width record out of a slot. */
    template <typename T>
    void
    readSlot(std::uint16_t s, T& out) const
    {
        SPIKESIM_ASSERT(sizeof(T) <= header_.slot_bytes,
                        "record larger than slot");
        std::memcpy(&out, slot(s), sizeof(T));
    }

    /** Write a fixed-width record into an existing slot. */
    template <typename T>
    void
    writeSlot(std::uint16_t s, const T& in)
    {
        SPIKESIM_ASSERT(sizeof(T) <= header_.slot_bytes,
                        "record larger than slot");
        SPIKESIM_ASSERT(s < header_.num_slots, "write to missing slot");
        std::memcpy(slot(s), &in, sizeof(T));
    }

    static constexpr std::uint32_t kPayloadBytes = kPageBytes - 64;

  private:
    Header header_;
    std::array<std::uint8_t, kPayloadBytes> payload_;
};

} // namespace spikesim::db

#endif // SPIKESIM_DB_PAGE_HH
