#ifndef SPIKESIM_PROFILE_PROFILE_HH
#define SPIKESIM_PROFILE_PROFILE_HH

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "program/program.hh"
#include "trace/trace.hh"

/**
 * @file
 * Execution profiles: exact basic-block, flow-edge, and call-edge
 * counts for one image, collected Pixie-style by instrumenting the CFG
 * walk. This is the input to every layout optimization in src/core.
 */

namespace spikesim::profile {

/** Packs an ordered id pair into a hash-map key. */
inline std::uint64_t
pairKey(std::uint32_t a, std::uint32_t b)
{
    return (static_cast<std::uint64_t>(a) << 32) | b;
}

/** Block/edge/call counts for one program image. */
class Profile
{
  public:
    /** Create an empty profile sized for the given program. */
    explicit Profile(const program::Program& prog);

    const program::Program& prog() const { return *prog_; }

    /** Execution count of a block (by global id). */
    std::uint64_t blockCount(program::GlobalBlockId g) const;

    /** Execution count of the flow edge from -> to (global ids). */
    std::uint64_t edgeCount(program::GlobalBlockId from,
                            program::GlobalBlockId to) const;

    /** Number of calls from caller_block to callee procedure. */
    std::uint64_t callCount(program::GlobalBlockId caller_block,
                            program::ProcId callee) const;

    /** Invocation count of a procedure (its entry block count). */
    std::uint64_t procCount(program::ProcId p) const;

    /** Total dynamic instructions implied by the block counts. */
    std::uint64_t dynamicInstrs() const;

    void addBlock(program::GlobalBlockId g, std::uint64_t n = 1);
    void addEdge(program::GlobalBlockId from, program::GlobalBlockId to,
                 std::uint64_t n = 1);
    void addCall(program::GlobalBlockId caller_block,
                 program::ProcId callee, std::uint64_t n = 1);

    /** All flow edges with non-zero counts, as (from, to, count). */
    std::vector<std::tuple<program::GlobalBlockId, program::GlobalBlockId,
                           std::uint64_t>>
    edges() const;

    /** All call edges with non-zero counts (callerBlock, callee, count). */
    std::vector<
        std::tuple<program::GlobalBlockId, program::ProcId, std::uint64_t>>
    calls() const;

    /** Merge another profile over the same program. */
    void merge(const Profile& other);

    /** Text serialization (round-trips through load()). */
    void save(std::ostream& os) const;

    /** Load a profile saved by save(); program must match block count. */
    static Profile load(const program::Program& prog, std::istream& is);

  private:
    const program::Program* prog_;
    std::vector<std::uint64_t> block_counts_;
    std::unordered_map<std::uint64_t, std::uint64_t> edge_counts_;
    std::unordered_map<std::uint64_t, std::uint64_t> call_counts_;
};

/**
 * TraceSink that accumulates a Profile for one image, ignoring events
 * from other images.
 */
class ProfileRecorder : public trace::TraceSink
{
  public:
    ProfileRecorder(trace::ImageId image, Profile& profile);

    void onBlock(const trace::ExecContext& ctx, trace::ImageId image,
                 program::GlobalBlockId block) override;
    void onEdge(trace::ImageId image, program::GlobalBlockId from,
                program::GlobalBlockId to) override;
    void onCall(trace::ImageId image, program::GlobalBlockId caller_block,
                program::ProcId callee) override;

  private:
    trace::ImageId image_;
    Profile& profile_;
};

/** Procedure-level call multigraph collapsed to simple weighted edges. */
class CallGraph
{
  public:
    /** Build the proc-level call graph from a profile. */
    static CallGraph fromProfile(const Profile& profile);

    std::size_t numNodes() const { return num_nodes_; }

    /** Weight of the (directed) edge caller -> callee; 0 if absent. */
    std::uint64_t weight(program::ProcId caller,
                         program::ProcId callee) const;

    /** All directed edges (caller, callee, weight), weight > 0. */
    const std::vector<
        std::tuple<program::ProcId, program::ProcId, std::uint64_t>>&
    edges() const
    {
        return edges_;
    }

  private:
    std::size_t num_nodes_ = 0;
    std::vector<std::tuple<program::ProcId, program::ProcId, std::uint64_t>>
        edges_;
    std::unordered_map<std::uint64_t, std::uint64_t> weight_;
};

} // namespace spikesim::profile

#endif // SPIKESIM_PROFILE_PROFILE_HH
