#ifndef SPIKESIM_PROFILE_SERIALIZE_HH
#define SPIKESIM_PROFILE_SERIALIZE_HH

#include <cstdint>
#include <vector>

#include "profile/profile.hh"
#include "support/varint.hh"

/**
 * @file
 * Compact binary (de)serialization of Profile — the corpus counterpart
 * of the line-oriented Profile::save()/load() text format. Block counts
 * are stored as (index-delta, count) pairs over the non-zero entries;
 * edge and call maps are key-sorted and delta-encoded, which makes the
 * output deterministic for a given profile (hash-map iteration order
 * never leaks into the file).
 *
 * Section layout (all varints):
 *
 *   varint num_blocks              (must match the program on read)
 *   varint num_nonzero_blocks, pairs: (index_delta, count)
 *   varint num_edges,  pairs sorted by key: (key_delta, count)
 *   varint num_calls,  pairs sorted by key: (key_delta, count)
 */

namespace spikesim::profile {

/** Append the profile's binary section to `out`. */
void appendProfile(const Profile& p, std::vector<std::uint8_t>& out);

/**
 * Read a profile section written by appendProfile(). fatal()s if the
 * section is corrupt or does not match `prog`'s block count.
 */
Profile readProfile(const program::Program& prog, support::ByteReader& r);

} // namespace spikesim::profile

#endif // SPIKESIM_PROFILE_SERIALIZE_HH
