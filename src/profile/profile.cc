#include "profile/profile.hh"

#include <istream>
#include <ostream>
#include <string>

#include "support/panic.hh"

namespace spikesim::profile {

Profile::Profile(const program::Program& prog)
    : prog_(&prog), block_counts_(prog.numBlocks(), 0)
{
}

std::uint64_t
Profile::blockCount(program::GlobalBlockId g) const
{
    SPIKESIM_ASSERT(g < block_counts_.size(), "block id out of range");
    return block_counts_[g];
}

std::uint64_t
Profile::edgeCount(program::GlobalBlockId from,
                   program::GlobalBlockId to) const
{
    auto it = edge_counts_.find(pairKey(from, to));
    return it == edge_counts_.end() ? 0 : it->second;
}

std::uint64_t
Profile::callCount(program::GlobalBlockId caller_block,
                   program::ProcId callee) const
{
    auto it = call_counts_.find(pairKey(caller_block, callee));
    return it == call_counts_.end() ? 0 : it->second;
}

std::uint64_t
Profile::procCount(program::ProcId p) const
{
    return blockCount(prog_->globalBlockId(p, 0));
}

std::uint64_t
Profile::dynamicInstrs() const
{
    std::uint64_t total = 0;
    for (program::GlobalBlockId g = 0; g < block_counts_.size(); ++g)
        if (block_counts_[g] != 0)
            total += block_counts_[g] * prog_->block(g).sizeInstrs;
    return total;
}

void
Profile::addBlock(program::GlobalBlockId g, std::uint64_t n)
{
    SPIKESIM_ASSERT(g < block_counts_.size(), "block id out of range");
    block_counts_[g] += n;
}

void
Profile::addEdge(program::GlobalBlockId from, program::GlobalBlockId to,
                 std::uint64_t n)
{
    edge_counts_[pairKey(from, to)] += n;
}

void
Profile::addCall(program::GlobalBlockId caller_block, program::ProcId callee,
                 std::uint64_t n)
{
    call_counts_[pairKey(caller_block, callee)] += n;
}

std::vector<std::tuple<program::GlobalBlockId, program::GlobalBlockId,
                       std::uint64_t>>
Profile::edges() const
{
    std::vector<std::tuple<program::GlobalBlockId, program::GlobalBlockId,
                           std::uint64_t>>
        out;
    out.reserve(edge_counts_.size());
    for (const auto& [key, count] : edge_counts_)
        out.emplace_back(static_cast<program::GlobalBlockId>(key >> 32),
                         static_cast<program::GlobalBlockId>(key), count);
    return out;
}

std::vector<std::tuple<program::GlobalBlockId, program::ProcId,
                       std::uint64_t>>
Profile::calls() const
{
    std::vector<
        std::tuple<program::GlobalBlockId, program::ProcId, std::uint64_t>>
        out;
    out.reserve(call_counts_.size());
    for (const auto& [key, count] : call_counts_)
        out.emplace_back(static_cast<program::GlobalBlockId>(key >> 32),
                         static_cast<program::ProcId>(key), count);
    return out;
}

void
Profile::merge(const Profile& other)
{
    SPIKESIM_ASSERT(block_counts_.size() == other.block_counts_.size(),
                    "profiles are for different programs");
    for (std::size_t i = 0; i < block_counts_.size(); ++i)
        block_counts_[i] += other.block_counts_[i];
    for (const auto& [k, v] : other.edge_counts_)
        edge_counts_[k] += v;
    for (const auto& [k, v] : other.call_counts_)
        call_counts_[k] += v;
}

void
Profile::save(std::ostream& os) const
{
    os << "spikesim-profile 1\n";
    os << "blocks " << block_counts_.size() << "\n";
    for (std::size_t i = 0; i < block_counts_.size(); ++i)
        if (block_counts_[i] != 0)
            os << "b " << i << " " << block_counts_[i] << "\n";
    for (const auto& [key, count] : edge_counts_)
        os << "e " << (key >> 32) << " " << (key & 0xffffffffu) << " "
           << count << "\n";
    for (const auto& [key, count] : call_counts_)
        os << "c " << (key >> 32) << " " << (key & 0xffffffffu) << " "
           << count << "\n";
    os << "end\n";
}

Profile
Profile::load(const program::Program& prog, std::istream& is)
{
    Profile p(prog);
    std::string tag;
    int version = 0;
    is >> tag >> version;
    if (tag != "spikesim-profile" || version != 1)
        support::fatal("bad profile header");
    std::size_t nblocks = 0;
    is >> tag >> nblocks;
    if (tag != "blocks" || nblocks != prog.numBlocks())
        support::fatal("profile does not match program");
    while (is >> tag) {
        if (tag == "end")
            break;
        std::uint64_t a = 0, b = 0, n = 0;
        if (tag == "b") {
            is >> a >> n;
            p.addBlock(static_cast<program::GlobalBlockId>(a), n);
        } else if (tag == "e") {
            is >> a >> b >> n;
            p.addEdge(static_cast<program::GlobalBlockId>(a),
                      static_cast<program::GlobalBlockId>(b), n);
        } else if (tag == "c") {
            is >> a >> b >> n;
            p.addCall(static_cast<program::GlobalBlockId>(a),
                      static_cast<program::ProcId>(b), n);
        } else {
            support::fatal("bad profile record '" + tag + "'");
        }
    }
    return p;
}

ProfileRecorder::ProfileRecorder(trace::ImageId image, Profile& profile)
    : image_(image), profile_(profile)
{
}

void
ProfileRecorder::onBlock(const trace::ExecContext&, trace::ImageId image,
                         program::GlobalBlockId block)
{
    if (image == image_)
        profile_.addBlock(block);
}

void
ProfileRecorder::onEdge(trace::ImageId image, program::GlobalBlockId from,
                        program::GlobalBlockId to)
{
    if (image == image_)
        profile_.addEdge(from, to);
}

void
ProfileRecorder::onCall(trace::ImageId image,
                        program::GlobalBlockId caller_block,
                        program::ProcId callee)
{
    if (image == image_)
        profile_.addCall(caller_block, callee);
}

CallGraph
CallGraph::fromProfile(const Profile& profile)
{
    CallGraph g;
    const auto& prog = profile.prog();
    g.num_nodes_ = prog.numProcs();
    for (const auto& [caller_block, callee, count] : profile.calls()) {
        auto [caller_proc, local] = prog.locateBlock(caller_block);
        (void)local;
        std::uint64_t key = pairKey(caller_proc, callee);
        g.weight_[key] += count;
    }
    g.edges_.reserve(g.weight_.size());
    for (const auto& [key, w] : g.weight_)
        g.edges_.emplace_back(static_cast<program::ProcId>(key >> 32),
                              static_cast<program::ProcId>(key), w);
    return g;
}

std::uint64_t
CallGraph::weight(program::ProcId caller, program::ProcId callee) const
{
    auto it = weight_.find(pairKey(caller, callee));
    return it == weight_.end() ? 0 : it->second;
}

} // namespace spikesim::profile
