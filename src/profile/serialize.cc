#include "profile/serialize.hh"

#include <algorithm>

#include "support/panic.hh"

namespace spikesim::profile {

using support::ByteReader;
using support::putVarint;

namespace {

/** Append a key-sorted (key, count) map section with delta-coded keys. */
void
appendSortedPairs(std::vector<std::pair<std::uint64_t, std::uint64_t>> kv,
                  std::vector<std::uint8_t>& out)
{
    std::sort(kv.begin(), kv.end());
    putVarint(out, kv.size());
    std::uint64_t prev = 0;
    for (const auto& [key, count] : kv) {
        putVarint(out, key - prev);
        putVarint(out, count);
        prev = key;
    }
}

} // namespace

void
appendProfile(const Profile& p, std::vector<std::uint8_t>& out)
{
    const std::uint32_t num_blocks = p.prog().numBlocks();
    putVarint(out, num_blocks);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> nonzero;
    for (std::uint32_t g = 0; g < num_blocks; ++g)
        if (std::uint64_t n = p.blockCount(g))
            nonzero.emplace_back(g, n);
    putVarint(out, nonzero.size());
    std::uint64_t prev = 0;
    for (const auto& [g, n] : nonzero) {
        putVarint(out, g - prev);
        putVarint(out, n);
        prev = g;
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> kv;
    for (const auto& [from, to, n] : p.edges())
        kv.emplace_back(pairKey(from, to), n);
    appendSortedPairs(std::move(kv), out);

    kv.clear();
    for (const auto& [caller, callee, n] : p.calls())
        kv.emplace_back(pairKey(caller, callee), n);
    appendSortedPairs(std::move(kv), out);
}

Profile
readProfile(const program::Program& prog, ByteReader& r)
{
    const std::uint64_t num_blocks = r.varint();
    if (num_blocks != prog.numBlocks())
        support::fatal("profile section does not match program: " +
                       std::to_string(num_blocks) + " blocks vs " +
                       std::to_string(prog.numBlocks()));
    Profile p(prog);

    const std::uint64_t nonzero = r.varint();
    std::uint64_t g = 0;
    for (std::uint64_t i = 0; i < nonzero; ++i) {
        g += r.varint();
        if (g >= num_blocks)
            support::fatal("profile section corrupt: block id out of "
                           "range");
        const std::uint64_t n = r.varint();
        if (n == 0)
            support::fatal("profile section corrupt: zero block count "
                           "stored");
        p.addBlock(static_cast<program::GlobalBlockId>(g), n);
    }

    const std::uint64_t num_edges = r.varint();
    std::uint64_t key = 0;
    for (std::uint64_t i = 0; i < num_edges; ++i) {
        key += r.varint();
        p.addEdge(static_cast<program::GlobalBlockId>(key >> 32),
                  static_cast<program::GlobalBlockId>(key), r.varint());
    }

    const std::uint64_t num_calls = r.varint();
    key = 0;
    for (std::uint64_t i = 0; i < num_calls; ++i) {
        key += r.varint();
        p.addCall(static_cast<program::GlobalBlockId>(key >> 32),
                  static_cast<program::ProcId>(key), r.varint());
    }
    return p;
}

} // namespace spikesim::profile
