#include "oskern/kernel.hh"

namespace spikesim::oskern {

KernelModel::KernelModel(const synth::SynthParams& params)
    : image_(synth::buildSyntheticProgram(params)),
      walker_(image_.prog, trace::ImageId::Kernel, params.seed ^ 0xf00dULL)
{
}

synth::WalkStats
KernelModel::enter(const std::string& service,
                   const trace::ExecContext& ctx, trace::TraceSink& sink,
                   std::span<const int> hints)
{
    ++service_counts_[service];
    return walker_.run(image_.entry(service), ctx, sink, hints);
}

synth::WalkStats
KernelModel::timerInterrupt(const trace::ExecContext& ctx,
                            trace::TraceSink& sink)
{
    return enter("intr_timer", ctx, sink);
}

synth::WalkStats
KernelModel::contextSwitch(const trace::ExecContext& ctx,
                           trace::TraceSink& sink)
{
    return enter("sched_switch", ctx, sink);
}

} // namespace spikesim::oskern
