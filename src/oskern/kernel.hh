#ifndef SPIKESIM_OSKERN_KERNEL_HH
#define SPIKESIM_OSKERN_KERNEL_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

/**
 * @file
 * Operating system model: a synthetic Tru64-like kernel image plus a
 * walker that executes its services. The database engine's I/O layer
 * enters it for reads, log writes and fsyncs; the scheduler quantum
 * injects timer interrupts and context switches. Interleaving this
 * stream with the application stream is what creates the kernel/app
 * cache interference the paper studies in Figures 12-13.
 */

namespace spikesim::oskern {

/** The kernel image and its execution state. */
class KernelModel
{
  public:
    explicit KernelModel(
        const synth::SynthParams& params = synth::SynthParams::kernelLike());

    const program::Program& prog() const { return image_.prog; }
    const synth::SyntheticProgram& image() const { return image_; }

    /** Execute a named kernel service (syscall or handler). */
    synth::WalkStats enter(const std::string& service,
                           const trace::ExecContext& ctx,
                           trace::TraceSink& sink,
                           std::span<const int> hints = {});

    /** Timer interrupt handler. */
    synth::WalkStats timerInterrupt(const trace::ExecContext& ctx,
                                    trace::TraceSink& sink);

    /** Scheduler context switch. */
    synth::WalkStats contextSwitch(const trace::ExecContext& ctx,
                                   trace::TraceSink& sink);

    /** Total kernel instructions executed. */
    std::uint64_t totalInstrs() const { return walker_.totalInstrs(); }

    /** Executions per service name (for reporting). */
    const std::unordered_map<std::string, std::uint64_t>&
    serviceCounts() const
    {
        return service_counts_;
    }

  private:
    synth::SyntheticProgram image_;
    synth::CfgWalker walker_;
    std::unordered_map<std::string, std::uint64_t> service_counts_;
};

} // namespace spikesim::oskern

#endif // SPIKESIM_OSKERN_KERNEL_HH
