#ifndef SPIKESIM_SPIKESIM_HH
#define SPIKESIM_SPIKESIM_HH

/**
 * @file
 * Umbrella header: everything a downstream user of the spikesim library
 * needs. The individual module headers remain the canonical include
 * points for code that cares about compile times.
 */

#include "core/chain.hh"
#include "core/coloring.hh"
#include "core/layout.hh"
#include "core/pipeline.hh"
#include "core/porder.hh"
#include "core/split.hh"
#include "core/temporal.hh"
#include "db/dss.hh"
#include "db/recovery.hh"
#include "db/tpcb.hh"
#include "db/tpcc.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/instrumented.hh"
#include "mem/itlb.hh"
#include "mem/streambuf.hh"
#include "mem/threec.hh"
#include "metrics/footprint.hh"
#include "metrics/sequence.hh"
#include "oskern/kernel.hh"
#include "profile/profile.hh"
#include "program/builder.hh"
#include "program/program.hh"
#include "program/serialize.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "sim/timing.hh"
#include "support/histogram.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

#endif // SPIKESIM_SPIKESIM_HH
