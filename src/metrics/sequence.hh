#ifndef SPIKESIM_METRICS_SEQUENCE_HH
#define SPIKESIM_METRICS_SEQUENCE_HH

#include <cstdint>

#include "core/layout.hh"
#include "support/histogram.hh"
#include "trace/trace.hh"

/**
 * @file
 * Instruction sequentiality analysis (Figure 8): the number of
 * sequentially executed instructions between control breaks, measured
 * by replaying the block trace under a layout and watching for fetch
 * address discontinuities.
 */

namespace spikesim::metrics {

/** Results of a sequence-length analysis. */
struct SequenceStats
{
    /** Histogram of run lengths (bucket i = runs of i instructions;
     *  bucket 0 unused; last bucket clamps, like the paper's x-axis). */
    support::Histogram lengths;
    /** Mean run length in instructions. */
    double mean = 0.0;
    /** Mean dynamic basic block size (common to all layouts). */
    double mean_block_size = 0.0;

    SequenceStats() : lengths(34) {}
};

/**
 * Measure sequential run lengths for one image's stream in the trace.
 * Runs are tracked per CPU (each CPU has its own fetch unit); events
 * from other images break the run on that CPU, as a kernel entry or a
 * context switch breaks real fetch sequentiality.
 */
SequenceStats
sequenceLengths(const trace::TraceBuffer& buf, const core::Layout& layout,
                trace::ImageId image);

} // namespace spikesim::metrics

#endif // SPIKESIM_METRICS_SEQUENCE_HH
