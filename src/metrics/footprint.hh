#ifndef SPIKESIM_METRICS_FOOTPRINT_HH
#define SPIKESIM_METRICS_FOOTPRINT_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "profile/profile.hh"

/**
 * @file
 * Static/dynamic footprint analyses: the execution-profile CDF of
 * Figure 3 ("a 50KB footprint captures 60% of executed instructions")
 * and the packed footprint in unique cache lines ("optimized binary
 * footprint in 128B lines is 37% smaller: 315KB vs 500KB").
 */

namespace spikesim::metrics {

/** One point of the execution-profile CDF. */
struct FootprintPoint
{
    std::uint64_t code_bytes = 0;  ///< cumulative static code size
    double exec_fraction = 0.0;    ///< cumulative dynamic coverage
};

/** Execution-profile CDF over executed blocks, hottest-first. */
class FootprintCdf
{
  public:
    /** Build from a profile (block granularity, hottest block first,
     *  ties by block id). */
    explicit FootprintCdf(const profile::Profile& profile);

    /** Total executed (touched at least once) code bytes. */
    std::uint64_t totalBytes() const;

    /** Smallest footprint capturing at least `fraction` of dynamic
     *  instructions. */
    std::uint64_t bytesForCoverage(double fraction) const;

    /** Dynamic coverage of the hottest `bytes` of code. */
    double coverageAtBytes(std::uint64_t bytes) const;

    /** The full curve (one point per executed block). */
    const std::vector<FootprintPoint>& points() const { return points_; }

  private:
    std::vector<FootprintPoint> points_;
};

/**
 * Packed footprint: bytes of unique cache lines touched when executing
 * the profiled blocks under the given layout (the paper's 500KB vs
 * 315KB comparison at 128-byte lines).
 */
std::uint64_t packedFootprintBytes(const profile::Profile& profile,
                                   const core::Layout& layout,
                                   std::uint32_t line_bytes);

} // namespace spikesim::metrics

#endif // SPIKESIM_METRICS_FOOTPRINT_HH
