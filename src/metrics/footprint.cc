#include "metrics/footprint.hh"

#include <algorithm>
#include <unordered_set>

#include "support/panic.hh"

namespace spikesim::metrics {

FootprintCdf::FootprintCdf(const profile::Profile& profile)
{
    const program::Program& prog = profile.prog();
    struct Item
    {
        program::GlobalBlockId block;
        std::uint64_t count;
        std::uint32_t size_instrs;
    };
    std::vector<Item> items;
    double total_dyn = 0.0;
    for (program::GlobalBlockId g = 0; g < prog.numBlocks(); ++g) {
        std::uint64_t c = profile.blockCount(g);
        if (c == 0)
            continue;
        std::uint32_t s = prog.block(g).sizeInstrs;
        items.push_back({g, c, s});
        total_dyn += static_cast<double>(c) * s;
    }
    // Hottest instruction first: sort by per-instruction execution
    // count (a block's instructions all execute `count` times).
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
        if (a.count != b.count)
            return a.count > b.count;
        return a.block < b.block;
    });

    points_.reserve(items.size());
    std::uint64_t bytes = 0;
    double dyn = 0.0;
    for (const Item& it : items) {
        bytes += static_cast<std::uint64_t>(it.size_instrs) *
                 program::kInstrBytes;
        dyn += static_cast<double>(it.count) * it.size_instrs;
        points_.push_back({bytes, total_dyn == 0 ? 0.0 : dyn / total_dyn});
    }
}

std::uint64_t
FootprintCdf::totalBytes() const
{
    return points_.empty() ? 0 : points_.back().code_bytes;
}

std::uint64_t
FootprintCdf::bytesForCoverage(double fraction) const
{
    for (const FootprintPoint& p : points_)
        if (p.exec_fraction >= fraction)
            return p.code_bytes;
    return totalBytes();
}

double
FootprintCdf::coverageAtBytes(std::uint64_t bytes) const
{
    double best = 0.0;
    for (const FootprintPoint& p : points_) {
        if (p.code_bytes > bytes)
            break;
        best = p.exec_fraction;
    }
    return best;
}

std::uint64_t
packedFootprintBytes(const profile::Profile& profile,
                     const core::Layout& layout, std::uint32_t line_bytes)
{
    SPIKESIM_ASSERT(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0,
                    "line size must be a power of two");
    const program::Program& prog = profile.prog();
    std::unordered_set<std::uint64_t> lines;
    for (program::GlobalBlockId g = 0; g < prog.numBlocks(); ++g) {
        if (profile.blockCount(g) == 0)
            continue;
        std::uint64_t bytes = layout.blockBytes(g);
        if (bytes == 0)
            continue;
        std::uint64_t first = layout.blockAddr(g) / line_bytes;
        std::uint64_t last =
            (layout.blockAddr(g) + bytes - 1) / line_bytes;
        for (std::uint64_t l = first; l <= last; ++l)
            lines.insert(l);
    }
    return static_cast<std::uint64_t>(lines.size()) * line_bytes;
}

} // namespace spikesim::metrics
