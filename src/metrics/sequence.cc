#include "metrics/sequence.hh"

#include "support/panic.hh"

namespace spikesim::metrics {

SequenceStats
sequenceLengths(const trace::TraceBuffer& buf, const core::Layout& layout,
                trace::ImageId image)
{
    SequenceStats stats;
    static constexpr int kMaxCpus = 64;
    std::uint64_t expected[kMaxCpus];
    std::uint64_t run[kMaxCpus];
    for (int i = 0; i < kMaxCpus; ++i) {
        expected[i] = ~0ULL;
        run[i] = 0;
    }

    std::uint64_t blocks = 0;
    std::uint64_t instrs = 0;

    auto close_run = [&](int cpu) {
        if (run[cpu] > 0)
            stats.lengths.record(run[cpu]);
        run[cpu] = 0;
        expected[cpu] = ~0ULL;
    };

    for (const trace::TraceEvent& e : buf.events()) {
        int cpu = e.cpu;
        SPIKESIM_ASSERT(cpu < kMaxCpus, "cpu id out of range");
        if (e.image != image) {
            // Another stream (kernel entry, data event does not count)
            // takes over the fetch unit: the run is broken.
            if (e.image != trace::ImageId::Data)
                close_run(cpu);
            continue;
        }
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t size = layout.blockSize(e.block);
        ++blocks;
        instrs += size;
        if (size == 0)
            continue; // deleted-branch block: no fetch, run unaffected
        if (addr != expected[cpu])
            close_run(cpu);
        run[cpu] += size;
        expected[cpu] = addr + size * program::kInstrBytes;
    }
    for (int i = 0; i < kMaxCpus; ++i)
        close_run(i);

    stats.mean = stats.lengths.mean();
    stats.mean_block_size =
        blocks == 0 ? 0.0
                    : static_cast<double>(instrs) /
                          static_cast<double>(blocks);
    return stats;
}

} // namespace spikesim::metrics
