#include "opt/search.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "sim/engine.hh"
#include "support/panic.hh"

namespace spikesim::opt {

namespace {

/** RNG stream ids (Pcg32 sequence selectors). Candidate generation
 *  uses streams >= kCandidateStreamBase so acceptance draws and
 *  candidate draws can never alias. */
constexpr std::uint64_t kAcceptStream = 0xacce97ULL;
constexpr std::uint64_t kCandidateStreamBase = 0x10000ULL;

struct ScoredCandidate
{
    Candidate cand;
    std::uint64_t fp = 0;
    double score = 0.0;
};

/** Ground-truth evaluator: engine replay on the recorded trace with a
 *  fingerprint-keyed result cache. */
class GroundTruth
{
  public:
    GroundTruth(const trace::TraceBuffer* trace,
                const program::Program& prog,
                const core::AssignOptions& aopts,
                const core::Layout* kernel, const SearchOptions& sopts)
        : trace_(trace),
          prog_(prog),
          aopts_(aopts),
          kernel_(kernel),
          config_(sopts.rerank_config),
          filter_(sopts.filter)
    {
    }

    /** Misses for every entry (cached or freshly replayed; uncached
     *  entries replay concurrently on the pool). */
    std::vector<std::uint64_t>
    misses(const std::vector<const ScoredCandidate*>& entries,
           support::ThreadPool* pool)
    {
        std::vector<std::uint64_t> out(entries.size(), 0);
        std::vector<std::size_t> todo;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            auto it = cache_.find(entries[i]->fp);
            if (it != cache_.end()) {
                out[i] = it->second;
                ++hits_;
            } else {
                todo.push_back(i);
            }
        }
        SPIKESIM_ASSERT(trace_ != nullptr || todo.empty(),
                        "ground-truth evaluation needs a trace");
        auto replay = [&](std::size_t i) {
            const core::Layout layout =
                materialize(entries[i]->cand, prog_, aopts_);
            const sim::Replayer rep(*trace_, layout, kernel_);
            const sim::ResolvedTrace rt = rep.resolve(filter_);
            out[i] = sim::replayICache(rt, {&config_, 1}, nullptr)[0]
                         .misses;
        };
        if (pool != nullptr && todo.size() > 1) {
            for (std::size_t i : todo)
                pool->submit([&replay, i] { replay(i); });
            pool->wait();
        } else {
            for (std::size_t i : todo)
                replay(i);
        }
        for (std::size_t i : todo)
            cache_.emplace(entries[i]->fp, out[i]);
        evals_ += todo.size();
        return out;
    }

    std::uint64_t evals() const { return evals_; }
    std::uint64_t hits() const { return hits_; }

  private:
    const trace::TraceBuffer* trace_;
    const program::Program& prog_;
    core::AssignOptions aopts_;
    const core::Layout* kernel_;
    mem::CacheConfig config_;
    sim::StreamFilter filter_;
    std::unordered_map<std::uint64_t, std::uint64_t> cache_;
    std::uint64_t evals_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace

SearchResult
searchLayout(const program::Program& prog,
             const profile::Profile& profile,
             const core::PipelineOptions& popts,
             const SearchOptions& sopts, const trace::TraceBuffer* trace,
             const core::Layout* kernel_layout, support::ThreadPool* pool)
{
    SPIKESIM_ASSERT(sopts.epochs >= 0 && sopts.batch > 0 &&
                        sopts.max_ops > 0,
                    "bad search budget");
    core::AssignOptions aopts;
    aopts.text_base = popts.text_base;
    aopts.segment_align = popts.segment_align;

    // Seed: the greedy pipeline's layout, re-materialized tight.
    ScoredCandidate seed;
    seed.cand =
        candidateFromLayout(core::buildLayout(prog, profile, popts));
    seed.fp = fingerprint(seed.cand);
    seed.score = extTspScore(materialize(seed.cand, prog, aopts), profile,
                             sopts.exttsp);

    SearchResult result{materialize(seed.cand, prog, aopts)};
    result.seed_score = seed.score;
    result.best_score = seed.score;

    ScoredCandidate incumbent = seed;
    ScoredCandidate best_proxy = seed;

    const bool rerank = trace != nullptr && sopts.rerank_every > 0;
    GroundTruth gt(trace, prog, aopts, kernel_layout, sopts);
    bool have_gt = false;
    ScoredCandidate best_gt = seed;
    std::uint64_t best_gt_misses = 0;

    const double temp0 =
        sopts.init_temp_frac * std::max(std::abs(seed.score), 1.0);
    support::Pcg32 accept_rng(sopts.seed, kAcceptStream);

    /** Ground-truth re-rank of the survivor set; the winner becomes
     *  the incumbent. The seed always participates, so the champion
     *  can never be worse than the seed on the re-rank config. */
    auto rerankSurvivors = [&](const std::vector<ScoredCandidate>& batch,
                               int epochs_done) {
        obs::Span span("search.rerank", "opt");
        std::vector<const ScoredCandidate*> survivors{&seed, &incumbent,
                                                      &best_proxy};
        std::vector<std::size_t> order(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return batch[a].score > batch[b].score;
                         });
        for (std::size_t i = 0;
             i < std::min(sopts.rerank_top, order.size()); ++i)
            survivors.push_back(&batch[order[i]]);
        // Dedup by fingerprint, keeping first occurrence.
        std::vector<const ScoredCandidate*> uniq;
        for (const ScoredCandidate* s : survivors) {
            bool dup = false;
            for (const ScoredCandidate* u : uniq)
                dup = dup || u->fp == s->fp;
            if (!dup)
                uniq.push_back(s);
        }
        const std::vector<std::uint64_t> m = gt.misses(uniq, pool);
        // Winner: fewest misses; ties go to the higher proxy score,
        // then the earlier survivor (seed < incumbent < ...).
        std::size_t win = 0;
        for (std::size_t i = 1; i < uniq.size(); ++i)
            if (m[i] < m[win] ||
                (m[i] == m[win] && uniq[i]->score > uniq[win]->score))
                win = i;
        if (!have_gt || m[win] < best_gt_misses ||
            (m[win] == best_gt_misses &&
             uniq[win]->score > best_gt.score)) {
            best_gt = *uniq[win];
            best_gt_misses = m[win];
        }
        result.seed_misses = gt.misses({&seed}, nullptr)[0];
        have_gt = true;
        incumbent = *uniq[win];
        if (!result.rerank_curve.empty() &&
            result.rerank_curve.back().epoch == epochs_done)
            result.rerank_curve.back().misses = best_gt_misses;
        else
            result.rerank_curve.push_back({epochs_done, best_gt_misses});
    };

    static obs::Counter& c_accepted = obs::counter("opt.search.accepted");
    static obs::Counter& c_proxy = obs::counter("opt.search.proxy_evals");

    std::vector<ScoredCandidate> batch;
    for (int e = 0; e < sopts.epochs; ++e) {
        obs::Span epoch_span("search.epoch", "opt");
        batch.resize(static_cast<std::size_t>(sopts.batch));
        // Generate the batch sequentially (seeded per-candidate
        // streams), then score it in parallel; scores are pure
        // per-candidate functions, so pool width cannot change them.
        for (int i = 0; i < sopts.batch; ++i) {
            support::Pcg32 rng(
                sopts.seed,
                kCandidateStreamBase +
                    static_cast<std::uint64_t>(e) *
                        static_cast<std::uint64_t>(sopts.batch) +
                    static_cast<std::uint64_t>(i));
            ScoredCandidate& c = batch[static_cast<std::size_t>(i)];
            c.cand = incumbent.cand;
            const int ops =
                1 + static_cast<int>(rng.nextBounded(
                        static_cast<std::uint32_t>(sopts.max_ops)));
            perturb(c.cand, rng, ops, &result.perturb_counts);
            c.fp = fingerprint(c.cand);
        }
        auto score = [&](std::size_t i) {
            batch[i].score = extTspScore(
                materialize(batch[i].cand, prog, aopts), profile,
                sopts.exttsp);
        };
        if (pool != nullptr) {
            for (std::size_t i = 0; i < batch.size(); ++i)
                pool->submit([&score, i] { score(i); });
            pool->wait();
        } else {
            for (std::size_t i = 0; i < batch.size(); ++i)
                score(i);
        }
        result.proxy_evals += batch.size();
        c_proxy.add(batch.size());

        // Acceptance (sequential, deterministic).
        if (sopts.algorithm == SearchOptions::Algorithm::HillClimb) {
            for (const ScoredCandidate& c : batch)
                if (c.score > incumbent.score) {
                    incumbent = c;
                    c_accepted.add(1);
                    break;
                }
        } else {
            std::size_t bi = 0;
            for (std::size_t i = 1; i < batch.size(); ++i)
                if (batch[i].score > batch[bi].score)
                    bi = i;
            const ScoredCandidate& c = batch[bi];
            if (c.score > incumbent.score) {
                incumbent = c;
                c_accepted.add(1);
            } else {
                const double temp =
                    temp0 * std::pow(sopts.cooling, static_cast<double>(e));
                if (temp > 0.0 &&
                    accept_rng.nextDouble() <
                        std::exp((c.score - incumbent.score) / temp)) {
                    incumbent = c;
                    c_accepted.add(1);
                }
            }
        }
        if (incumbent.score > best_proxy.score)
            best_proxy = incumbent;
        result.epoch_best.push_back(best_proxy.score);

        if (rerank && (e + 1) % sopts.rerank_every == 0)
            rerankSurvivors(batch, e + 1);
    }

    if (rerank) {
        // Final re-rank so the last epochs' progress is measured too.
        rerankSurvivors(batch, sopts.epochs);
        result.best_misses = best_gt_misses;
        result.best_score = best_proxy.score;
        result.layout = materialize(best_gt.cand, prog, aopts);
    } else {
        result.best_score = best_proxy.score;
        result.layout = materialize(best_proxy.cand, prog, aopts);
    }
    result.sim_evals = gt.evals();
    result.sim_cache_hits = gt.hits();
    static obs::Counter& c_sim = obs::counter("opt.search.sim_evals");
    static obs::Counter& c_rerank_hits =
        obs::counter("opt.search.rerank_cache_hits");
    c_sim.add(gt.evals());
    c_rerank_hits.add(gt.hits());
    return result;
}

} // namespace spikesim::opt
