#include "opt/search.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <unordered_map>

#include "core/split.hh"
#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "opt/hierarchy.hh"
#include "sim/engine.hh"
#include "support/panic.hh"

namespace spikesim::opt {

namespace {

/** RNG stream ids (Pcg32 sequence selectors). Candidate generation
 *  uses streams >= kCandidateStreamBase so acceptance draws and
 *  candidate draws can never alias. */
constexpr std::uint64_t kAcceptStream = 0xacce97ULL;
constexpr std::uint64_t kCandidateStreamBase = 0x10000ULL;

struct ScoredCandidate
{
    Candidate cand;
    std::uint64_t fp = 0;
    double score = 0.0;
};

/** One ground-truth measurement (iTLB columns only in page mode). */
struct GtResult
{
    std::uint64_t misses = 0;
    std::uint64_t itlb4k = 0;
    std::uint64_t itlb2m = 0;
};

/** Ground-truth evaluator: engine replay on the recorded trace with a
 *  fingerprint-keyed result cache. */
class GroundTruth
{
  public:
    GroundTruth(const trace::TraceBuffer* trace,
                const program::Program& prog,
                const core::AssignOptions& aopts,
                const core::Layout* kernel, const SearchOptions& sopts)
        : trace_(trace),
          prog_(prog),
          aopts_(aopts),
          kernel_(kernel),
          config_(sopts.rerank_config),
          filter_(sopts.filter)
    {
        if (sopts.page.enabled)
            specs_ = {{sopts.page.itlb_entries, 4096,
                       sopts.rerank_config.line_bytes},
                      {sopts.page.itlb_entries, 2u * 1024 * 1024,
                       sopts.rerank_config.line_bytes}};
    }

    /** Measurements for every entry (cached or freshly replayed;
     *  uncached entries replay concurrently on the pool). */
    std::vector<GtResult>
    evaluate(const std::vector<const ScoredCandidate*>& entries,
             support::ThreadPool* pool)
    {
        std::vector<GtResult> out(entries.size());
        std::vector<std::size_t> todo;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            auto it = cache_.find(entries[i]->fp);
            if (it != cache_.end()) {
                out[i] = it->second;
                ++hits_;
            } else {
                todo.push_back(i);
            }
        }
        SPIKESIM_ASSERT(trace_ != nullptr || todo.empty(),
                        "ground-truth evaluation needs a trace");
        auto replay = [&](std::size_t i) {
            const core::Layout layout =
                materialize(entries[i]->cand, prog_, aopts_);
            const sim::Replayer rep(*trace_, layout, kernel_);
            const sim::ResolvedTrace rt = rep.resolve(filter_);
            out[i].misses =
                sim::replayICache(rt, {&config_, 1}, nullptr)[0].misses;
            if (!specs_.empty()) {
                const auto tlb = sim::replayITlb(rt, specs_, nullptr);
                out[i].itlb4k = tlb[0].misses;
                out[i].itlb2m = tlb[1].misses;
            }
        };
        if (pool != nullptr && todo.size() > 1) {
            for (std::size_t i : todo)
                pool->submit([&replay, i] { replay(i); });
            pool->wait();
        } else {
            for (std::size_t i : todo)
                replay(i);
        }
        for (std::size_t i : todo)
            cache_.emplace(entries[i]->fp, out[i]);
        evals_ += todo.size();
        return out;
    }

    std::uint64_t evals() const { return evals_; }
    std::uint64_t hits() const { return hits_; }

  private:
    const trace::TraceBuffer* trace_;
    const program::Program& prog_;
    core::AssignOptions aopts_;
    const core::Layout* kernel_;
    mem::CacheConfig config_;
    sim::StreamFilter filter_;
    std::vector<sim::ITlbSpec> specs_;
    std::unordered_map<std::uint64_t, GtResult> cache_;
    std::uint64_t evals_ = 0;
    std::uint64_t hits_ = 0;
};

/** Segment byte size under tight packing (no branch adjustment). */
std::uint64_t
candidateBytes(const program::Program& prog, const core::CodeSegment& seg)
{
    const program::Procedure& p = prog.proc(seg.proc);
    std::uint64_t bytes = 0;
    for (program::BlockLocalId b : seg.blocks)
        bytes += static_cast<std::uint64_t>(p.blocks[b].sizeInstrs) *
                 program::kInstrBytes;
    return bytes;
}

SearchResult::RegionSummary
summarizeRegions(const program::Program& prog, const Candidate& cand)
{
    SearchResult::RegionSummary s;
    if (cand.regions.empty())
        return s;
    s.num_regions = cand.regions.num_regions;
    s.num_hot = cand.regions.num_hot;
    for (std::size_t i = 0; i < cand.segments.size(); ++i) {
        const std::uint64_t bytes = candidateBytes(prog, cand.segments[i]);
        if (cand.regions.seg_region[i] < cand.regions.num_hot) {
            ++s.hot_segments;
            s.hot_bytes += bytes;
        } else {
            ++s.cold_segments;
            s.cold_bytes += bytes;
        }
    }
    return s;
}

} // namespace

SearchResult
searchLayout(const program::Program& prog,
             const profile::Profile& profile,
             const core::PipelineOptions& popts,
             const SearchOptions& sopts, const trace::TraceBuffer* trace,
             const core::Layout* kernel_layout, support::ThreadPool* pool)
{
    SPIKESIM_ASSERT(sopts.epochs >= 0 && sopts.batch > 0 &&
                        sopts.max_ops > 0,
                    "bad search budget");
    core::AssignOptions aopts;
    aopts.text_base = popts.text_base;
    aopts.segment_align = popts.segment_align;

    // Seed: the greedy pipeline's layout, re-materialized tight.
    ScoredCandidate seed;
    seed.cand =
        candidateFromLayout(core::buildLayout(prog, profile, popts));
    seed.fp = fingerprint(seed.cand);
    seed.score = extTspScore(materialize(seed.cand, prog, aopts), profile,
                             sopts.exttsp);

    SearchResult result{materialize(seed.cand, prog, aopts)};
    result.seed_score = seed.score;
    result.best_score = seed.score;

    // Page-aware starting candidates: a hot/cold split of the greedy
    // seed and the hierarchical distance-bounded merge, each carrying
    // the region map that switches perturbation to the region ops.
    const bool page = sopts.page.enabled;
    std::vector<ScoredCandidate> hotcolds;
    ScoredCandidate hier;
    if (page) {
        // Classic coarse hot/cold pipeline order expressed as a
        // permutation of the seed's fine-grain segments: run the
        // per-procedure splitHotCold + Pettis-Hansen pipeline to get
        // the coarse slot order, then bucket the seed's segments into
        // their (procedure, hotness) slot. Coarse granularity is what
        // packs pages -- whole-procedure hot chunks stay contiguous,
        // so the hot working set spans far fewer 4KB pages than any
        // fine-grain shuffle -- while keeping the seed's fine split
        // boundaries for the region-respecting annealer to exploit.
        const auto makeHotCold = [&](std::uint64_t threshold) {
            ScoredCandidate hc;
            core::PipelineOptions hc_popts = popts;
            hc_popts.combo = core::OptCombo::HotCold;
            hc_popts.hot_threshold = threshold;
            const core::Layout coarse =
                core::buildLayout(prog, profile, hc_popts);
            const auto segIsHot = [&](const core::CodeSegment& seg) {
                std::uint64_t peak = 0;
                for (program::BlockLocalId b : seg.blocks)
                    peak = std::max(
                        peak, profile.blockCount(
                                  prog.globalBlockId(seg.proc, b)));
                return peak >= threshold;
            };
            std::vector<std::vector<std::size_t>> hot_of(
                prog.numProcs());
            std::vector<std::vector<std::size_t>> cold_of(
                prog.numProcs());
            for (std::size_t i = 0; i < seed.cand.segments.size(); ++i) {
                const core::CodeSegment& seg = seed.cand.segments[i];
                (segIsHot(seg) ? hot_of : cold_of)[seg.proc].push_back(i);
            }
            // Hot slots first (in coarse layout order), then cold
            // slots, so the hot region is a contiguous prefix for the
            // region map.
            std::size_t num_hot = 0;
            for (const bool want_hot : {true, false})
                for (const core::CodeSegment& cs : coarse.segments()) {
                    if (cs.blocks.empty() || segIsHot(cs) != want_hot)
                        continue;
                    auto& bucket =
                        (want_hot ? hot_of : cold_of)[cs.proc];
                    for (std::size_t i : bucket)
                        hc.cand.segments.push_back(
                            seed.cand.segments[i]);
                    num_hot += want_hot ? bucket.size() : 0;
                    bucket.clear();
                }
            hc.cand.regions =
                buildRegionMap(prog, hc.cand.segments, num_hot,
                               sopts.page.region_page_bytes);
            hc.fp = fingerprint(hc.cand);
            hc.score = extTspScore(materialize(hc.cand, prog, aopts),
                                   profile, sopts.exttsp);
            return hc;
        };
        // A ladder of thresholds around the configured one: where the
        // hot/cold knee sits relative to the iTLB reach is workload-
        // dependent and sharply nonlinear, so several coarse candidates
        // compete in the Pareto-guarded re-rank instead of betting on
        // one. Duplicate fingerprints collapse in the survivor dedup.
        const std::uint64_t base =
            std::max<std::uint64_t>(1, sopts.page.hot_threshold);
        for (const std::uint64_t thr :
             {base, base * 5 / 4, base * 3 / 2, base * 2})
            hotcolds.push_back(makeHotCold(std::max<std::uint64_t>(
                1, thr)));

        HierarchyParams hp;
        hp.tiers = sopts.page.merge_tiers;
        hp.hot_threshold = sopts.page.hot_threshold;
        HierarchyResult hr =
            hierarchicalOrder(prog, profile, seed.cand.segments, hp);
        hier.cand.segments = std::move(hr.segments);
        hier.cand.regions =
            buildRegionMap(prog, hier.cand.segments, hr.num_hot,
                           sopts.page.region_page_bytes);
        hier.fp = fingerprint(hier.cand);
        hier.score = extTspScore(materialize(hier.cand, prog, aopts),
                                 profile, sopts.exttsp);
    }

    ScoredCandidate incumbent = seed;
    ScoredCandidate best_proxy = seed;
    if (page) {
        // Start annealing from the best-proxy structured candidate.
        for (const ScoredCandidate& hc : hotcolds)
            if (hc.score > incumbent.score)
                incumbent = hc;
        if (hier.score > incumbent.score)
            incumbent = hier;
        best_proxy = incumbent;
    }

    const bool rerank = trace != nullptr && sopts.rerank_every > 0;
    GroundTruth gt(trace, prog, aopts, kernel_layout, sopts);
    bool have_gt = false;
    ScoredCandidate best_gt = seed;
    GtResult best_gt_res;
    double best_gt_obj = 0.0;

    auto objective = [&](const GtResult& g) {
        return sopts.page.icache_weight * static_cast<double>(g.misses) +
               sopts.page.itlb4k_weight * static_cast<double>(g.itlb4k) +
               sopts.page.itlb2m_weight * static_cast<double>(g.itlb2m);
    };

    const double temp0 =
        sopts.init_temp_frac * std::max(std::abs(seed.score), 1.0);
    support::Pcg32 accept_rng(sopts.seed, kAcceptStream);

    /** Ground-truth re-rank of the survivor set; the winner becomes
     *  the incumbent. The seed always participates, so the champion
     *  can never be worse than the seed on the re-rank config. */
    auto rerankSurvivors = [&](const std::vector<ScoredCandidate>& batch,
                               int epochs_done) {
        obs::Span span("search.rerank", "opt");
        std::vector<const ScoredCandidate*> survivors{&seed, &incumbent,
                                                      &best_proxy};
        if (page) {
            // The structured candidates always compete, so the champion
            // is never worse than hot/cold or hierarchical placement.
            for (const ScoredCandidate& hc : hotcolds)
                survivors.push_back(&hc);
            survivors.push_back(&hier);
        }
        std::vector<std::size_t> order(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return batch[a].score > batch[b].score;
                         });
        for (std::size_t i = 0;
             i < std::min(sopts.rerank_top, order.size()); ++i)
            survivors.push_back(&batch[order[i]]);
        // Dedup by fingerprint, keeping first occurrence.
        std::vector<const ScoredCandidate*> uniq;
        for (const ScoredCandidate* s : survivors) {
            bool dup = false;
            for (const ScoredCandidate* u : uniq)
                dup = dup || u->fp == s->fp;
            if (!dup)
                uniq.push_back(s);
        }
        const std::vector<GtResult> m = gt.evaluate(uniq, pool);
        if (std::getenv("SPIKESIM_SEARCH_DEBUG") != nullptr) {
            const auto label = [&](const ScoredCandidate* s) {
                if (s == &seed)
                    return "seed";
                for (const ScoredCandidate& hc : hotcolds)
                    if (s == &hc)
                        return "hotcold";
                if (page && s == &hier)
                    return "hier";
                if (s == &incumbent)
                    return "incumbent";
                if (s == &best_proxy)
                    return "best_proxy";
                return "batch";
            };
            for (std::size_t i = 0; i < uniq.size(); ++i)
                std::cerr << "[search] epoch " << epochs_done << " "
                          << label(uniq[i]) << ": misses " << m[i].misses
                          << " itlb4k " << m[i].itlb4k << " itlb2m "
                          << m[i].itlb2m << " objective "
                          << objective(m[i]) << "\n";
        }
        // Winner: lowest combined objective (== fewest misses with the
        // default weights); ties go to the higher proxy score, then the
        // earlier survivor (seed < incumbent < ...). Only candidates
        // that weakly Pareto-dominate the seed on both hardware
        // metrics are eligible: the weighted objective picks the
        // tradeoff, but it may never buy page locality with i-cache
        // misses or vice versa relative to the greedy baseline. The
        // seed is always uniq[0], so a winner always exists.
        std::size_t win = 0;
        for (std::size_t i = 1; i < uniq.size(); ++i) {
            if (m[i].misses > m[0].misses || m[i].itlb4k > m[0].itlb4k)
                continue;
            if (objective(m[i]) < objective(m[win]) ||
                (objective(m[i]) == objective(m[win]) &&
                 uniq[i]->score > uniq[win]->score))
                win = i;
        }
        if (!have_gt || objective(m[win]) < best_gt_obj ||
            (objective(m[win]) == best_gt_obj &&
             uniq[win]->score > best_gt.score)) {
            best_gt = *uniq[win];
            best_gt_res = m[win];
            best_gt_obj = objective(m[win]);
        }
        const GtResult seed_gt = gt.evaluate({&seed}, nullptr)[0];
        result.seed_misses = seed_gt.misses;
        result.seed_itlb4k = seed_gt.itlb4k;
        result.seed_itlb2m = seed_gt.itlb2m;
        result.seed_objective = objective(seed_gt);
        have_gt = true;
        incumbent = *uniq[win];
        const SearchResult::RerankPoint point{epochs_done,
                                              best_gt_res.misses,
                                              best_gt_res.itlb4k,
                                              best_gt_obj};
        if (!result.rerank_curve.empty() &&
            result.rerank_curve.back().epoch == epochs_done)
            result.rerank_curve.back() = point;
        else
            result.rerank_curve.push_back(point);
    };

    static obs::Counter& c_accepted = obs::counter("opt.search.accepted");
    static obs::Counter& c_proxy = obs::counter("opt.search.proxy_evals");

    std::vector<ScoredCandidate> batch;
    for (int e = 0; e < sopts.epochs; ++e) {
        obs::Span epoch_span("search.epoch", "opt");
        batch.resize(static_cast<std::size_t>(sopts.batch));
        // Generate the batch sequentially (seeded per-candidate
        // streams), then score it in parallel; scores are pure
        // per-candidate functions, so pool width cannot change them.
        for (int i = 0; i < sopts.batch; ++i) {
            support::Pcg32 rng(
                sopts.seed,
                kCandidateStreamBase +
                    static_cast<std::uint64_t>(e) *
                        static_cast<std::uint64_t>(sopts.batch) +
                    static_cast<std::uint64_t>(i));
            ScoredCandidate& c = batch[static_cast<std::size_t>(i)];
            c.cand = incumbent.cand;
            const int ops =
                1 + static_cast<int>(rng.nextBounded(
                        static_cast<std::uint32_t>(sopts.max_ops)));
            perturb(c.cand, rng, ops, &result.perturb_counts);
            c.fp = fingerprint(c.cand);
        }
        auto score = [&](std::size_t i) {
            batch[i].score = extTspScore(
                materialize(batch[i].cand, prog, aopts), profile,
                sopts.exttsp);
        };
        if (pool != nullptr) {
            for (std::size_t i = 0; i < batch.size(); ++i)
                pool->submit([&score, i] { score(i); });
            pool->wait();
        } else {
            for (std::size_t i = 0; i < batch.size(); ++i)
                score(i);
        }
        result.proxy_evals += batch.size();
        c_proxy.add(batch.size());

        // Acceptance (sequential, deterministic).
        if (sopts.algorithm == SearchOptions::Algorithm::HillClimb) {
            for (const ScoredCandidate& c : batch)
                if (c.score > incumbent.score) {
                    incumbent = c;
                    c_accepted.add(1);
                    break;
                }
        } else {
            std::size_t bi = 0;
            for (std::size_t i = 1; i < batch.size(); ++i)
                if (batch[i].score > batch[bi].score)
                    bi = i;
            const ScoredCandidate& c = batch[bi];
            if (c.score > incumbent.score) {
                incumbent = c;
                c_accepted.add(1);
            } else {
                const double temp =
                    temp0 * std::pow(sopts.cooling, static_cast<double>(e));
                if (temp > 0.0 &&
                    accept_rng.nextDouble() <
                        std::exp((c.score - incumbent.score) / temp)) {
                    incumbent = c;
                    c_accepted.add(1);
                }
            }
        }
        if (incumbent.score > best_proxy.score)
            best_proxy = incumbent;
        result.epoch_best.push_back(best_proxy.score);

        if (rerank && (e + 1) % sopts.rerank_every == 0)
            rerankSurvivors(batch, e + 1);
    }

    if (rerank) {
        // Final re-rank so the last epochs' progress is measured too.
        rerankSurvivors(batch, sopts.epochs);
        result.best_misses = best_gt_res.misses;
        result.best_itlb4k = best_gt_res.itlb4k;
        result.best_itlb2m = best_gt_res.itlb2m;
        result.best_objective = best_gt_obj;
        result.best_score = best_proxy.score;
        result.layout = materialize(best_gt.cand, prog, aopts);
        result.regions = summarizeRegions(prog, best_gt.cand);
    } else {
        result.best_score = best_proxy.score;
        result.layout = materialize(best_proxy.cand, prog, aopts);
        result.regions = summarizeRegions(prog, best_proxy.cand);
    }
    result.sim_evals = gt.evals();
    result.sim_cache_hits = gt.hits();
    static obs::Counter& c_sim = obs::counter("opt.search.sim_evals");
    static obs::Counter& c_rerank_hits =
        obs::counter("opt.search.rerank_cache_hits");
    c_sim.add(gt.evals());
    c_rerank_hits.add(gt.hits());
    return result;
}

} // namespace spikesim::opt
