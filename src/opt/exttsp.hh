#ifndef SPIKESIM_OPT_EXTTSP_HH
#define SPIKESIM_OPT_EXTTSP_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "profile/profile.hh"
#include "program/program.hh"

/**
 * @file
 * ExtTSP-style layout cost model (Newell & Pupyrev, "Improved Basic
 * Block Reordering"). Where the paper's greedy pipeline follows one
 * merge rule (heaviest edge becomes a fall-through), ExtTSP assigns a
 * *score* to a whole layout and lets a search optimize it directly:
 *
 *   score = sum over profiled transfer edges (s -> t, count w) of
 *           w * k(kind, distance)
 *
 * with k = 1 for an exact fall-through (the jump distance is zero),
 * a linearly decaying bonus for short forward jumps (the target is
 * likely in an already-fetched or prefetched line), a smaller, faster-
 * decaying bonus for short backward jumps (loop bodies resident in the
 * i-cache), and an additive co-residency bonus when source and target
 * share one i-cache line (a transfer inside a line can never miss).
 *
 * The model is a cheap proxy for replayed i-cache misses: evaluating it
 * is O(profiled edges) and needs no trace, so an annealer can score
 * thousands of candidate layouts per second and reserve the replay
 * engine for periodic ground-truth re-ranks (opt/search.hh).
 */

namespace spikesim::opt {

/** Knobs of the ExtTSP score. Defaults follow Newell & Pupyrev scaled
 *  to this repo's 4-byte instructions, plus the line-co-residency term
 *  (AI-PROPELLER-style) that ties the proxy to i-cache geometry. */
struct ExtTspParams
{
    /** Weight of an exact fall-through (distance 0). */
    double fallthrough_weight = 1.0;
    /** Peak weight of a short forward jump, decaying linearly to zero
     *  at forward_window_bytes. */
    double forward_weight = 0.1;
    std::uint32_t forward_window_bytes = 1024;
    /** Peak weight of a short backward jump, decaying linearly to zero
     *  at backward_window_bytes. */
    double backward_weight = 0.1;
    std::uint32_t backward_window_bytes = 640;
    /** Additive bonus when source branch and target live in the same
     *  i-cache line of line_bytes. */
    double coline_weight = 0.05;
    std::uint32_t line_bytes = 64;
    /** Score inter-procedure call edges (caller block -> callee entry)
     *  too; this is what lets the model see segment-ordering quality,
     *  not just intra-procedure chaining. */
    bool include_calls = true;

    // --- Page-aware terms (all off by default; the flat search and
    // --- the PR 4 tests see the identical classic model). ---

    /** Distance-bucketed gap penalty: jumps of >= gap_start_bytes are
     *  charged gap_weight scaled by which power-of-two distance bucket
     *  the gap lands in (1KB..2KB -> 1/12, 2KB..4KB -> 2/12, ...,
     *  saturating at 12/12 for >= 2MB jumps). Distance-blind windows
     *  above stop caring past 1KB; this term keeps pressure on long
     *  transfers all the way up to huge-page scale. */
    double gap_weight = 0.0;
    std::uint32_t gap_start_bytes = 1024;
    /** Additive bonus when source and target share one 4KB page (the
     *  transfer cannot take an iTLB miss at base pages). */
    double page4k_weight = 0.0;
    std::uint32_t page4k_bytes = 4096;
    /** Additive bonus when source and target share one 2MB region
     *  (co-residency under a huge-page mapping). */
    double page2m_weight = 0.0;
    std::uint32_t page2m_bytes = 2u * 1024 * 1024;
    /** Subtractive per-edge iTLB proxy: each execution of an edge whose
     *  endpoints live on different itlb_page_bytes pages is charged
     *  itlb_weight. extTspITlbCost() exposes the raw page-cross sum so
     *  tests can differentially compare it with replayed iTLB misses. */
    double itlb_weight = 0.0;
    std::uint32_t itlb_page_bytes = 4096;
};

/**
 * Score one transfer of `count` executions from a branch ending at
 * byte `src_end` to a target at byte `dst_addr` (the edge kernel;
 * exposed so tests can cross-check the whole-layout sums).
 */
double extTspEdgeScore(std::uint64_t src_end, std::uint64_t dst_addr,
                       std::uint64_t count, const ExtTspParams& params);

/**
 * ExtTSP score of a full layout under a profile: flow edges of every
 * procedure plus (optionally) call edges, each scored by the kernel
 * above at the layout's addresses. Higher is better. Deterministic:
 * edges are accumulated in a fixed program order, so equal layouts
 * produce bit-equal scores.
 */
double extTspScore(const core::Layout& layout,
                   const profile::Profile& profile,
                   const ExtTspParams& params = {});

/**
 * Weighted page-cross count of a layout: sum over profiled transfer
 * edges (flow + optional calls, same fixed order as extTspScore) of
 * `count` for every edge whose source end and target addresses fall on
 * different `itlb_page_bytes` pages. This is the raw quantity behind
 * the itlb_weight term — a trace-free proxy for standalone-iTLB
 * pressure. Lower is better. Deterministic fixed-order integer sum.
 */
double extTspITlbCost(const core::Layout& layout,
                      const profile::Profile& profile,
                      const ExtTspParams& params = {});

/**
 * Shared layout-quality helper, the ExtTSP sibling of
 * core::fallThroughWeight: score a single procedure's intra-procedure
 * block order as if the procedure were laid out alone (blocks packed
 * tight from address 0, layout-adjusted sizes). Call edges are ignored
 * — there is no "rest of the program" to have distances to.
 */
double extTspOrderScore(const program::Program& prog,
                        program::ProcId proc,
                        const profile::Profile& profile,
                        const std::vector<program::BlockLocalId>& order,
                        const ExtTspParams& params = {});

/** Result of the brute-force permutation oracle. */
struct ExhaustiveBest
{
    std::vector<program::BlockLocalId> order;
    double score = 0.0;
    std::uint64_t permutations = 0;
};

/**
 * Brute-force tiny-CFG oracle: enumerate every permutation of one
 * procedure's blocks (entry pinned first — layouts never move a
 * procedure's entry) and return the best extTspOrderScore. Intended
 * for CFGs of <= 8 blocks (5040 permutations); panics above 9.
 */
ExhaustiveBest bestOrderExhaustive(const program::Program& prog,
                                   program::ProcId proc,
                                   const profile::Profile& profile,
                                   const ExtTspParams& params = {});

} // namespace spikesim::opt

#endif // SPIKESIM_OPT_EXTTSP_HH
