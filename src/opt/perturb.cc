#include "opt/perturb.hh"

#include <algorithm>

#include "support/panic.hh"

namespace spikesim::opt {

using program::BlockLocalId;

const char*
perturbOpName(PerturbOp op)
{
    switch (op) {
      case PerturbOp::SegmentSwap: return "segment_swap";
      case PerturbOp::SegmentMove: return "segment_move";
      case PerturbOp::SegmentReverse: return "segment_reverse";
      case PerturbOp::SegmentRotate: return "segment_rotate";
      case PerturbOp::SplitShift: return "split_shift";
      case PerturbOp::SplitCut: return "split_cut";
      case PerturbOp::BlockSwap: return "block_swap";
    }
    return "?";
}

Candidate
candidateFromLayout(const core::Layout& layout)
{
    return Candidate{layout.segments()};
}

core::Layout
materialize(const Candidate& cand, const program::Program& prog,
            const core::AssignOptions& opts)
{
    return core::Layout(prog, cand.segments, opts);
}

std::uint64_t
fingerprint(const Candidate& cand)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a 64 offset basis
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const core::CodeSegment& seg : cand.segments) {
        mix(0x5e65e65e65e65e65ULL); // segment separator
        mix(seg.proc);
        for (BlockLocalId b : seg.blocks)
            mix(b + 1);
    }
    return h;
}

namespace {

/** Bounded rejection sampling keeps draws deterministic and cheap. */
constexpr int kSiteTries = 8;

bool
opSegmentSwap(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    const std::uint32_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
    const std::uint32_t j = rng.nextBounded(static_cast<std::uint32_t>(n));
    if (i == j)
        return false;
    std::swap(c.segments[i], c.segments[j]);
    return true;
}

bool
opSegmentMove(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    const std::uint32_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
    const std::uint32_t j = rng.nextBounded(static_cast<std::uint32_t>(n));
    if (i == j)
        return false;
    core::CodeSegment seg = std::move(c.segments[i]);
    c.segments.erase(c.segments.begin() + i);
    c.segments.insert(c.segments.begin() + j, std::move(seg));
    return true;
}

/** Random run [begin, begin+len) of 2..8 segments. */
bool
pickRun(const Candidate& c, support::Pcg32& rng, std::size_t& begin,
        std::size_t& len)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    len = 2 + rng.nextBounded(
                  static_cast<std::uint32_t>(std::min<std::size_t>(7, n - 1)));
    begin = rng.nextBounded(static_cast<std::uint32_t>(n - len + 1));
    return true;
}

bool
opSegmentReverse(Candidate& c, support::Pcg32& rng)
{
    std::size_t begin = 0, len = 0;
    if (!pickRun(c, rng, begin, len))
        return false;
    std::reverse(c.segments.begin() + begin,
                 c.segments.begin() + begin + len);
    return true;
}

bool
opSegmentRotate(Candidate& c, support::Pcg32& rng)
{
    std::size_t begin = 0, len = 0;
    if (!pickRun(c, rng, begin, len))
        return false;
    const std::uint32_t k =
        1 + rng.nextBounded(static_cast<std::uint32_t>(len - 1));
    std::rotate(c.segments.begin() + begin,
                c.segments.begin() + begin + k,
                c.segments.begin() + begin + len);
    return true;
}

bool
opSplitShift(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i =
            rng.nextBounded(static_cast<std::uint32_t>(n - 1));
        core::CodeSegment& a = c.segments[i];
        core::CodeSegment& b = c.segments[i + 1];
        if (a.proc != b.proc)
            continue;
        if (rng.nextBool(0.5)) {
            // Last block of a moves to the front of b.
            b.blocks.insert(b.blocks.begin(), a.blocks.back());
            a.blocks.pop_back();
            if (a.blocks.empty())
                c.segments.erase(c.segments.begin() + i);
        } else {
            // First block of b moves to the end of a.
            a.blocks.push_back(b.blocks.front());
            b.blocks.erase(b.blocks.begin());
            if (b.blocks.empty())
                c.segments.erase(c.segments.begin() + i + 1);
        }
        return true;
    }
    return false;
}

bool
opSplitCut(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
        core::CodeSegment& seg = c.segments[i];
        if (seg.blocks.size() < 2)
            continue;
        const std::uint32_t cut =
            1 + rng.nextBounded(
                    static_cast<std::uint32_t>(seg.blocks.size() - 1));
        core::CodeSegment tail;
        tail.proc = seg.proc;
        tail.blocks.assign(seg.blocks.begin() + cut, seg.blocks.end());
        seg.blocks.resize(cut);
        c.segments.insert(c.segments.begin() + i + 1, std::move(tail));
        return true;
    }
    return false;
}

bool
opBlockSwap(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
        core::CodeSegment& seg = c.segments[i];
        if (seg.blocks.size() < 2)
            continue;
        const std::uint32_t j = rng.nextBounded(
            static_cast<std::uint32_t>(seg.blocks.size() - 1));
        std::swap(seg.blocks[j], seg.blocks[j + 1]);
        return true;
    }
    return false;
}

} // namespace

PerturbOp
perturbOnce(Candidate& cand, support::Pcg32& rng, PerturbCounts* counts)
{
    SPIKESIM_ASSERT(!cand.segments.empty(), "empty candidate");
    const auto op = static_cast<PerturbOp>(
        rng.nextBounded(static_cast<std::uint32_t>(kNumPerturbOps)));
    bool applied = false;
    switch (op) {
      case PerturbOp::SegmentSwap: applied = opSegmentSwap(cand, rng); break;
      case PerturbOp::SegmentMove: applied = opSegmentMove(cand, rng); break;
      case PerturbOp::SegmentReverse:
        applied = opSegmentReverse(cand, rng);
        break;
      case PerturbOp::SegmentRotate:
        applied = opSegmentRotate(cand, rng);
        break;
      case PerturbOp::SplitShift: applied = opSplitShift(cand, rng); break;
      case PerturbOp::SplitCut: applied = opSplitCut(cand, rng); break;
      case PerturbOp::BlockSwap: applied = opBlockSwap(cand, rng); break;
    }
    if (counts != nullptr) {
        const auto idx = static_cast<std::size_t>(op);
        if (applied)
            ++counts->applied[idx];
        else
            ++counts->noop[idx];
    }
    return op;
}

void
perturb(Candidate& cand, support::Pcg32& rng, int ops,
        PerturbCounts* counts)
{
    for (int i = 0; i < ops; ++i)
        perturbOnce(cand, rng, counts);
}

} // namespace spikesim::opt
