#include "opt/perturb.hh"

#include <algorithm>

#include "support/panic.hh"

namespace spikesim::opt {

using program::BlockLocalId;

const char*
perturbOpName(PerturbOp op)
{
    switch (op) {
      case PerturbOp::SegmentSwap: return "segment_swap";
      case PerturbOp::SegmentMove: return "segment_move";
      case PerturbOp::SegmentReverse: return "segment_reverse";
      case PerturbOp::SegmentRotate: return "segment_rotate";
      case PerturbOp::SplitShift: return "split_shift";
      case PerturbOp::SplitCut: return "split_cut";
      case PerturbOp::BlockSwap: return "block_swap";
      case PerturbOp::RegionIntraMove: return "region_intra_move";
      case PerturbOp::RegionReorder: return "region_reorder";
      case PerturbOp::HotColdShift: return "hot_cold_shift";
    }
    return "?";
}

Candidate
candidateFromLayout(const core::Layout& layout)
{
    return Candidate{layout.segments()};
}

core::Layout
materialize(const Candidate& cand, const program::Program& prog,
            const core::AssignOptions& opts)
{
    return core::Layout(prog, cand.segments, opts);
}

std::uint64_t
fingerprint(const Candidate& cand)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a 64 offset basis
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
    };
    for (const core::CodeSegment& seg : cand.segments) {
        mix(0x5e65e65e65e65e65ULL); // segment separator
        mix(seg.proc);
        for (BlockLocalId b : seg.blocks)
            mix(b + 1);
    }
    return h;
}

namespace {

/** Bounded rejection sampling keeps draws deterministic and cheap. */
constexpr int kSiteTries = 8;

bool
opSegmentSwap(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    const std::uint32_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
    const std::uint32_t j = rng.nextBounded(static_cast<std::uint32_t>(n));
    if (i == j)
        return false;
    std::swap(c.segments[i], c.segments[j]);
    return true;
}

bool
opSegmentMove(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    const std::uint32_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
    const std::uint32_t j = rng.nextBounded(static_cast<std::uint32_t>(n));
    if (i == j)
        return false;
    core::CodeSegment seg = std::move(c.segments[i]);
    c.segments.erase(c.segments.begin() + i);
    c.segments.insert(c.segments.begin() + j, std::move(seg));
    return true;
}

/** Random run [begin, begin+len) of 2..8 segments. */
bool
pickRun(const Candidate& c, support::Pcg32& rng, std::size_t& begin,
        std::size_t& len)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    len = 2 + rng.nextBounded(
                  static_cast<std::uint32_t>(std::min<std::size_t>(7, n - 1)));
    begin = rng.nextBounded(static_cast<std::uint32_t>(n - len + 1));
    return true;
}

bool
opSegmentReverse(Candidate& c, support::Pcg32& rng)
{
    std::size_t begin = 0, len = 0;
    if (!pickRun(c, rng, begin, len))
        return false;
    std::reverse(c.segments.begin() + begin,
                 c.segments.begin() + begin + len);
    return true;
}

bool
opSegmentRotate(Candidate& c, support::Pcg32& rng)
{
    std::size_t begin = 0, len = 0;
    if (!pickRun(c, rng, begin, len))
        return false;
    const std::uint32_t k =
        1 + rng.nextBounded(static_cast<std::uint32_t>(len - 1));
    std::rotate(c.segments.begin() + begin,
                c.segments.begin() + begin + k,
                c.segments.begin() + begin + len);
    return true;
}

/** Erase segment `i` and (in region mode) its map entry. */
void
eraseSegment(Candidate& c, std::size_t i)
{
    c.segments.erase(c.segments.begin() + i);
    if (!c.regions.empty())
        c.regions.seg_region.erase(c.regions.seg_region.begin() + i);
}

bool
opSplitShift(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    if (n < 2)
        return false;
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i =
            rng.nextBounded(static_cast<std::uint32_t>(n - 1));
        core::CodeSegment& a = c.segments[i];
        core::CodeSegment& b = c.segments[i + 1];
        if (a.proc != b.proc)
            continue;
        // Region mode: a split point only shifts inside one region.
        if (!c.regions.empty() &&
            c.regions.seg_region[i] != c.regions.seg_region[i + 1])
            continue;
        if (rng.nextBool(0.5)) {
            // Last block of a moves to the front of b.
            b.blocks.insert(b.blocks.begin(), a.blocks.back());
            a.blocks.pop_back();
            if (a.blocks.empty())
                eraseSegment(c, i);
        } else {
            // First block of b moves to the end of a.
            a.blocks.push_back(b.blocks.front());
            b.blocks.erase(b.blocks.begin());
            if (b.blocks.empty())
                eraseSegment(c, i + 1);
        }
        return true;
    }
    return false;
}

bool
opSplitCut(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
        core::CodeSegment& seg = c.segments[i];
        if (seg.blocks.size() < 2)
            continue;
        const std::uint32_t cut =
            1 + rng.nextBounded(
                    static_cast<std::uint32_t>(seg.blocks.size() - 1));
        core::CodeSegment tail;
        tail.proc = seg.proc;
        tail.blocks.assign(seg.blocks.begin() + cut, seg.blocks.end());
        seg.blocks.resize(cut);
        c.segments.insert(c.segments.begin() + i + 1, std::move(tail));
        if (!c.regions.empty()) // the tail stays in the cut's region
            c.regions.seg_region.insert(
                c.regions.seg_region.begin() + i + 1,
                c.regions.seg_region[i]);
        return true;
    }
    return false;
}

/** Region run [begin, end) containing segment `i`. */
void
regionRun(const Candidate& c, std::size_t i, std::size_t& begin,
          std::size_t& end)
{
    const auto& reg = c.regions.seg_region;
    const std::uint32_t id = reg[i];
    begin = i;
    while (begin > 0 && reg[begin - 1] == id)
        --begin;
    end = i + 1;
    while (end < reg.size() && reg[end] == id)
        ++end;
}

bool
opRegionIntraMove(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
        std::size_t begin = 0, end = 0;
        regionRun(c, i, begin, end);
        if (end - begin < 2)
            continue;
        const std::size_t j =
            begin + rng.nextBounded(static_cast<std::uint32_t>(end - begin));
        if (i == j)
            continue;
        core::CodeSegment seg = std::move(c.segments[i]);
        c.segments.erase(c.segments.begin() + i);
        c.segments.insert(c.segments.begin() + j, std::move(seg));
        return true; // seg_region untouched: same id throughout the run
    }
    return false;
}

bool
opRegionReorder(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
        const std::size_t j = rng.nextBounded(static_cast<std::uint32_t>(n));
        const auto& reg = c.regions.seg_region;
        if (reg[i] == reg[j])
            continue;
        // Only reorder regions on the same side of the boundary.
        if ((reg[i] < c.regions.num_hot) != (reg[j] < c.regions.num_hot))
            continue;
        std::size_t ab = 0, ae = 0, bb = 0, be = 0;
        regionRun(c, i, ab, ae);
        regionRun(c, j, bb, be);
        if (ab > bb) {
            std::swap(ab, bb);
            std::swap(ae, be);
        }
        // Rebuild [ab, be) as: run B, middle, run A.
        std::vector<core::CodeSegment> segs;
        std::vector<std::uint32_t> ids;
        segs.reserve(be - ab);
        ids.reserve(be - ab);
        auto take = [&](std::size_t from, std::size_t to) {
            for (std::size_t k = from; k < to; ++k) {
                segs.push_back(std::move(c.segments[k]));
                ids.push_back(reg[k]);
            }
        };
        take(bb, be);
        take(ae, bb);
        take(ab, ae);
        std::move(segs.begin(), segs.end(), c.segments.begin() + ab);
        std::copy(ids.begin(), ids.end(),
                  c.regions.seg_region.begin() + ab);
        return true;
    }
    return false;
}

bool
opHotColdShift(Candidate& c, support::Pcg32& rng)
{
    RegionMap& m = c.regions;
    const std::size_t n = c.segments.size();
    // Boundary: hot-region segments form a prefix.
    std::size_t b = 0;
    while (b < n && m.seg_region[b] < m.num_hot)
        ++b;
    for (int t = 0; t < kSiteTries; ++t) {
        if (rng.nextBool(0.5)) {
            // Hot -> cold: demote the last hot segment (keep >= 1 hot).
            if (b < 2 || m.num_regions <= m.num_hot)
                continue;
            m.seg_region[b - 1] =
                b < n ? m.seg_region[b] : m.num_hot;
            return true;
        }
        // Cold -> hot: promote the first cold segment.
        if (b == n || b == 0)
            continue;
        m.seg_region[b] = m.seg_region[b - 1];
        return true;
    }
    return false;
}

bool
opBlockSwap(Candidate& c, support::Pcg32& rng)
{
    const std::size_t n = c.segments.size();
    for (int t = 0; t < kSiteTries; ++t) {
        const std::size_t i = rng.nextBounded(static_cast<std::uint32_t>(n));
        core::CodeSegment& seg = c.segments[i];
        if (seg.blocks.size() < 2)
            continue;
        const std::uint32_t j = rng.nextBounded(
            static_cast<std::uint32_t>(seg.blocks.size() - 1));
        std::swap(seg.blocks[j], seg.blocks[j + 1]);
        return true;
    }
    return false;
}

/** Region-mode draw set: structure-local edits plus the region ops;
 *  whole-layout segment shuffles would tear regions apart. */
constexpr PerturbOp kRegionOps[] = {
    PerturbOp::SplitShift,      PerturbOp::SplitCut,
    PerturbOp::BlockSwap,       PerturbOp::RegionIntraMove,
    PerturbOp::RegionReorder,   PerturbOp::HotColdShift,
};

} // namespace

RegionMap
buildRegionMap(const program::Program& prog,
               const std::vector<core::CodeSegment>& segments,
               std::size_t num_hot, std::uint64_t page_bytes)
{
    SPIKESIM_ASSERT(num_hot <= segments.size(),
                    "num_hot exceeds the segment count");
    RegionMap map;
    map.seg_region.reserve(segments.size());
    std::uint32_t region = 0;
    std::uint64_t fill = 0;
    for (std::size_t i = 0; i < num_hot; ++i) {
        const program::Procedure& p = prog.proc(segments[i].proc);
        std::uint64_t bytes = 0;
        for (BlockLocalId blk : segments[i].blocks)
            bytes += static_cast<std::uint64_t>(p.blocks[blk].sizeInstrs) *
                     program::kInstrBytes;
        if (fill > 0 && fill + bytes > page_bytes) {
            ++region;
            fill = 0;
        }
        map.seg_region.push_back(region);
        fill += bytes;
    }
    map.num_hot = num_hot == 0 ? 0 : region + 1;
    // One cold region; its id exists even when the tail is empty so
    // HotColdShift can always demote into it.
    for (std::size_t i = num_hot; i < segments.size(); ++i)
        map.seg_region.push_back(map.num_hot);
    map.num_regions = map.num_hot + 1;
    return map;
}

std::string
validateRegions(const Candidate& cand)
{
    const RegionMap& m = cand.regions;
    if (m.empty())
        return "";
    if (m.seg_region.size() != cand.segments.size())
        return "region map size != segment count";
    if (m.num_hot > m.num_regions)
        return "num_hot exceeds num_regions";
    std::vector<bool> closed(m.num_regions, false);
    std::uint32_t last = m.seg_region.front();
    bool seen_cold = last >= m.num_hot;
    for (std::size_t i = 0; i < m.seg_region.size(); ++i) {
        const std::uint32_t id = m.seg_region[i];
        if (id >= m.num_regions)
            return "region id out of range";
        if (i > 0 && id != last) {
            closed[last] = true;
            if (closed[id])
                return "region " + std::to_string(id) +
                       " is not contiguous";
            last = id;
        }
        if (id >= m.num_hot)
            seen_cold = true;
        else if (seen_cold)
            return "hot segment after the hot/cold boundary";
    }
    return "";
}

PerturbOp
perturbOnce(Candidate& cand, support::Pcg32& rng, PerturbCounts* counts)
{
    SPIKESIM_ASSERT(!cand.segments.empty(), "empty candidate");
    PerturbOp op;
    if (cand.regions.empty()) {
        // Flat candidates draw exactly the PR 4 stream: bounded by the
        // flat operator count, so seeds reproduce bit-identically.
        op = static_cast<PerturbOp>(
            rng.nextBounded(static_cast<std::uint32_t>(kNumFlatOps)));
    } else {
        op = kRegionOps[rng.nextBounded(
            static_cast<std::uint32_t>(std::size(kRegionOps)))];
    }
    bool applied = false;
    switch (op) {
      case PerturbOp::SegmentSwap: applied = opSegmentSwap(cand, rng); break;
      case PerturbOp::SegmentMove: applied = opSegmentMove(cand, rng); break;
      case PerturbOp::SegmentReverse:
        applied = opSegmentReverse(cand, rng);
        break;
      case PerturbOp::SegmentRotate:
        applied = opSegmentRotate(cand, rng);
        break;
      case PerturbOp::SplitShift: applied = opSplitShift(cand, rng); break;
      case PerturbOp::SplitCut: applied = opSplitCut(cand, rng); break;
      case PerturbOp::BlockSwap: applied = opBlockSwap(cand, rng); break;
      case PerturbOp::RegionIntraMove:
        applied = opRegionIntraMove(cand, rng);
        break;
      case PerturbOp::RegionReorder:
        applied = opRegionReorder(cand, rng);
        break;
      case PerturbOp::HotColdShift:
        applied = opHotColdShift(cand, rng);
        break;
    }
    if (counts != nullptr) {
        const auto idx = static_cast<std::size_t>(op);
        if (applied)
            ++counts->applied[idx];
        else
            ++counts->noop[idx];
    }
    return op;
}

void
perturb(Candidate& cand, support::Pcg32& rng, int ops,
        PerturbCounts* counts)
{
    for (int i = 0; i < ops; ++i)
        perturbOnce(cand, rng, counts);
}

} // namespace spikesim::opt
