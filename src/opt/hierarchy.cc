#include "opt/hierarchy.hh"

#include <algorithm>
#include <tuple>

#include "support/panic.hh"

namespace spikesim::opt {

using core::CodeSegment;
using program::kInstrBytes;

namespace {

/** Approximate placed byte size of one segment (branch materialization
 *  ignored — the bound is a locality heuristic, not an address map). */
std::uint64_t
segmentBytes(const program::Program& prog, const CodeSegment& seg)
{
    const program::Procedure& p = prog.proc(seg.proc);
    std::uint64_t bytes = 0;
    for (program::BlockLocalId b : seg.blocks)
        bytes += static_cast<std::uint64_t>(p.blocks[b].sizeInstrs) *
                 kInstrBytes;
    return bytes;
}

std::uint64_t
segmentHeat(const program::Program& prog,
            const profile::Profile& profile, const CodeSegment& seg)
{
    std::uint64_t heat = 0;
    for (program::BlockLocalId b : seg.blocks)
        heat += profile.blockCount(prog.globalBlockId(seg.proc, b));
    return heat;
}

} // namespace

HierarchyResult
hierarchicalOrder(const program::Program& prog,
                  const profile::Profile& profile,
                  const std::vector<CodeSegment>& segments,
                  const HierarchyParams& params)
{
    const core::HotColdPartition part =
        partitionHotCold(prog, profile, segments, params.hot_threshold);
    const std::size_t num_hot = part.hot.size();

    // Full list, hot first: segment indices below num_hot are hot.
    std::vector<CodeSegment> full = part.hot;
    full.insert(full.end(), part.cold.begin(), part.cold.end());

    HierarchyResult out;
    out.num_hot = num_hot;
    out.merges_per_tier.assign(params.tiers.size(), 0);
    if (num_hot == 0) {
        out.segments = std::move(full);
        return out;
    }

    const core::SegmentGraph graph =
        core::buildSegmentGraph(prog, profile, full);

    std::vector<std::uint64_t> bytes(full.size());
    for (std::size_t i = 0; i < full.size(); ++i)
        bytes[i] = segmentBytes(prog, full[i]);

    // Chains over hot segments only; cold text stays a flat tail.
    std::vector<std::vector<std::uint32_t>> chains(num_hot);
    std::vector<std::uint64_t> chain_bytes(num_hot);
    std::vector<std::uint32_t> chain_of(num_hot);
    for (std::size_t i = 0; i < num_hot; ++i) {
        chains[i] = {static_cast<std::uint32_t>(i)};
        chain_bytes[i] = bytes[i];
        chain_of[i] = static_cast<std::uint32_t>(i);
    }

    // Hot-to-hot transfer edges, heaviest first (deterministic ties).
    std::vector<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>
        edges;
    for (const auto& [from, to, w] : graph.edges)
        if (from < num_hot && to < num_hot)
            edges.emplace_back(w, from, to);
    std::sort(edges.begin(), edges.end(), [](const auto& a, const auto& b) {
        if (std::get<0>(a) != std::get<0>(b))
            return std::get<0>(a) > std::get<0>(b);
        if (std::get<1>(a) != std::get<1>(b))
            return std::get<1>(a) < std::get<1>(b);
        return std::get<2>(a) < std::get<2>(b);
    });

    // Byte offset of one segment inside its chain.
    auto offsetIn = [&](const std::vector<std::uint32_t>& chain,
                        std::uint32_t seg) {
        std::uint64_t off = 0;
        for (std::uint32_t s : chain) {
            if (s == seg)
                return off;
            off += bytes[s];
        }
        SPIKESIM_ASSERT(false, "segment not in its chain");
        return off;
    };

    for (std::size_t t = 0; t < params.tiers.size(); ++t) {
        const std::uint64_t bound = params.tiers[t];
        for (const auto& [w, from, to] : edges) {
            const std::uint32_t a = chain_of[from];
            const std::uint32_t b = chain_of[to];
            if (a == b)
                continue;
            // Gap from the edge's source end to its target if chain b
            // is concatenated after chain a.
            const std::uint64_t src_end =
                offsetIn(chains[a], from) + bytes[from];
            const std::uint64_t dst =
                chain_bytes[a] + offsetIn(chains[b], to);
            if (dst - src_end > bound)
                continue;
            chains[a].insert(chains[a].end(), chains[b].begin(),
                             chains[b].end());
            chain_bytes[a] += chain_bytes[b];
            for (std::uint32_t s : chains[b])
                chain_of[s] = a;
            chains[b].clear();
            chain_bytes[b] = 0;
            ++out.merges_per_tier[t];
        }
    }

    // Emit surviving chains densest-first (heat per byte, the
    // Codestitcher order): the hottest bytes concentrate in the fewest
    // leading pages, which is what shrinks the iTLB working set. Ties
    // break on total heat, then earliest segment. The comparison
    // cross-multiplies to stay in exact integer arithmetic.
    std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>>
        order;
    for (std::size_t c = 0; c < chains.size(); ++c) {
        if (chains[c].empty())
            continue;
        std::uint64_t heat = 0;
        for (std::uint32_t s : chains[c])
            heat += segmentHeat(prog, profile, full[s]);
        order.emplace_back(heat, chain_bytes[c],
                           static_cast<std::uint32_t>(c));
    }
    std::sort(order.begin(), order.end(), [&](const auto& x, const auto& y) {
        const auto& [hx, bx, cx] = x;
        const auto& [hy, by, cy] = y;
        const unsigned __int128 dx =
            static_cast<unsigned __int128>(hx) * std::max<std::uint64_t>(by, 1);
        const unsigned __int128 dy =
            static_cast<unsigned __int128>(hy) * std::max<std::uint64_t>(bx, 1);
        if (dx != dy)
            return dx > dy;
        if (hx != hy)
            return hx > hy;
        return chains[cx].front() < chains[cy].front();
    });

    out.segments.reserve(full.size());
    for (const auto& [heat, cbytes, c] : order)
        for (std::uint32_t s : chains[c])
            out.segments.push_back(full[s]);
    for (std::size_t i = num_hot; i < full.size(); ++i)
        out.segments.push_back(full[i]);
    return out;
}

} // namespace spikesim::opt
