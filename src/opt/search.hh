#ifndef SPIKESIM_OPT_SEARCH_HH
#define SPIKESIM_OPT_SEARCH_HH

#include <cstdint>
#include <vector>

#include "core/pipeline.hh"
#include "mem/cache.hh"
#include "opt/exttsp.hh"
#include "opt/perturb.hh"
#include "sim/replay.hh"
#include "support/threadpool.hh"
#include "trace/trace.hh"

/**
 * @file
 * Budgeted layout search over the greedy pipeline's output. The greedy
 * combos (core/pipeline.hh) each make one pass of locally-optimal
 * decisions; the search treats any combo's layout as a *seed* and
 * explores the neighbourhood its tie-breaks and merge order never
 * visited:
 *
 *   - Candidates are perturbed segment sequences (opt/perturb.hh).
 *   - Each epoch, a batch of candidates is scored with the cheap
 *     ExtTSP proxy (opt/exttsp.hh) in parallel on a ThreadPool; batch
 *     generation and acceptance are sequential and seeded, so the
 *     result is byte-identical for a given seed regardless of the
 *     pool's width (proxy scores are pure per-candidate functions).
 *   - Acceptance is either first-improvement hill climbing or
 *     simulated annealing with a geometric temperature schedule.
 *   - Every `rerank_every` epochs (and once at the end), the survivors
 *     — seed, incumbent, proxy-best, and the top of the current batch
 *     — are re-ranked against ground truth: each candidate's layout is
 *     resolved and replayed through the sim/engine i-cache path on the
 *     recorded trace, with results cached by candidate fingerprint so
 *     a layout is never replayed twice. The returned layout is the
 *     ground-truth winner, which by construction is never worse than
 *     the seed on the re-rank cache configuration.
 *
 * This is the first subsystem where the simulator runs *inside* the
 * optimizer loop rather than only after it.
 */

namespace spikesim::opt {

/** Search configuration. */
struct SearchOptions
{
    /** RNG seed; equal seeds give byte-identical results. */
    std::uint64_t seed = 1;

    enum class Algorithm {
        /** First-improvement hill climbing (scan batch in index
         *  order, take the first candidate beating the incumbent). */
        HillClimb,
        /** Simulated annealing (batch best; Metropolis acceptance). */
        Anneal,
    };
    Algorithm algorithm = Algorithm::Anneal;

    /** Search budget: epochs x batch candidate evaluations. */
    int epochs = 48;
    int batch = 24;
    /** Each candidate applies 1..max_ops perturbation operators. */
    int max_ops = 4;

    /** Initial annealing temperature as a fraction of |seed score|. */
    double init_temp_frac = 0.02;
    /** Geometric cooling factor per epoch. */
    double cooling = 0.92;

    /** Ground-truth re-rank period in epochs; 0 disables re-ranking
     *  (proxy-only search; also disabled when no trace is given). */
    int rerank_every = 12;
    /** How many of the current batch's proxy-best candidates join the
     *  survivors at each re-rank. */
    std::size_t rerank_top = 3;
    /** Cache configuration ground truth is measured on (the paper's
     *  Figure 7 setup: 64KB, 128B lines, 4-way). */
    mem::CacheConfig rerank_config{64 * 1024, 128, 4};
    /** Stream replayed for ground truth. */
    sim::StreamFilter filter = sim::StreamFilter::AppOnly;

    ExtTspParams exttsp;

    /**
     * Page-aware, multi-objective mode. When enabled the search (a)
     * seeds the annealer from the best of three candidates — the flat
     * greedy layout, a hot/cold split of it (compact hot prefix, cold
     * tail), and the Codestitcher-style hierarchical merge
     * (opt/hierarchy.hh) — with the latter two carrying a page RegionMap
     * so perturbation uses the region-respecting operators, (b) keeps
     * all three as permanent re-rank survivors, and (c) re-ranks on a
     * combined objective: icache_weight x fused-i-cache misses +
     * itlb4k_weight x standalone-iTLB misses at 4KB pages +
     * itlb2m_weight x the same at 2MB pages. With weights (1, 0, 0)
     * the objective degenerates to the PR 4 miss count.
     */
    struct PageSearchOptions
    {
        bool enabled = false;
        /** Block count at or above which a segment is hot. */
        std::uint64_t hot_threshold = 1;
        /** Hierarchical merge distance tiers (line, page, huge page). */
        std::vector<std::uint64_t> merge_tiers = {64, 4096,
                                                  2ull * 1024 * 1024};
        /** Page size used to bin hot segments into regions. */
        std::uint64_t region_page_bytes = 4096;
        /** Combined-objective weights. */
        double icache_weight = 1.0;
        double itlb4k_weight = 0.0;
        double itlb2m_weight = 0.0;
        /** iTLB geometry for the standalone-iTLB re-rank replays. */
        std::uint32_t itlb_entries = 64;
    };
    PageSearchOptions page;
};

/** Search outcome plus the audit trail the benches report. */
struct SearchResult
{
    explicit SearchResult(core::Layout seed_layout)
        : layout(std::move(seed_layout))
    {
    }

    /** The winning layout (ground-truth winner when re-ranking ran,
     *  else the proxy-best). */
    core::Layout layout;

    /** ExtTSP score of the (re-materialized) seed layout. */
    double seed_score = 0.0;
    /** Best ExtTSP score found (>= seed_score always). */
    double best_score = 0.0;

    /** Ground-truth misses on rerank_config (0 when never re-ranked). */
    std::uint64_t seed_misses = 0;
    std::uint64_t best_misses = 0;

    /** Standalone-iTLB misses at 4KB / 2MB pages (page-aware mode
     *  only; 0 otherwise). */
    std::uint64_t seed_itlb4k = 0, best_itlb4k = 0;
    std::uint64_t seed_itlb2m = 0, best_itlb2m = 0;
    /** Combined objective (== misses when weights are (1, 0, 0)). */
    double seed_objective = 0.0;
    double best_objective = 0.0;

    /** Region map of the winning candidate (all zero when flat). */
    struct RegionSummary
    {
        std::uint32_t num_regions = 0;
        std::uint32_t num_hot = 0; ///< hot region count
        std::size_t hot_segments = 0;
        std::size_t cold_segments = 0;
        std::uint64_t hot_bytes = 0;
        std::uint64_t cold_bytes = 0;
    };
    RegionSummary regions;

    /** Proxy evaluations performed (excludes the seed's). */
    std::uint64_t proxy_evals = 0;
    /** Ground-truth replays performed / avoided by the cache. */
    std::uint64_t sim_evals = 0;
    std::uint64_t sim_cache_hits = 0;

    /** Best-so-far proxy score after each epoch (non-decreasing). */
    std::vector<double> epoch_best;

    /** Champion ground-truth misses at each re-rank — the search-budget
     *  vs miss-count curve. One point per re-rank; non-increasing. */
    struct RerankPoint
    {
        int epoch = 0;            ///< epochs completed at this point
        std::uint64_t misses = 0; ///< champion misses on rerank_config
        std::uint64_t itlb4k = 0; ///< champion 4KB-page iTLB misses
        double objective = 0.0;   ///< champion combined objective
    };
    std::vector<RerankPoint> rerank_curve;

    PerturbCounts perturb_counts;
};

/**
 * Search for an improved layout, seeded from the greedy pipeline's
 * layout for `popts.combo`. Candidate layouts are materialized with
 * popts.text_base / popts.segment_align (tight packing, like the
 * split-based combos), so seeding from a non-split combo first
 * re-materializes its segments tightly.
 *
 * @param trace when non-null, enables periodic ground-truth re-ranking
 *        on this trace (sopts.rerank_every).
 * @param kernel_layout kernel image layout, needed only when
 *        sopts.filter selects kernel events.
 * @param pool parallel proxy evaluation; null = serial. The result is
 *        byte-identical either way.
 */
SearchResult searchLayout(const program::Program& prog,
                          const profile::Profile& profile,
                          const core::PipelineOptions& popts,
                          const SearchOptions& sopts,
                          const trace::TraceBuffer* trace = nullptr,
                          const core::Layout* kernel_layout = nullptr,
                          support::ThreadPool* pool = nullptr);

} // namespace spikesim::opt

#endif // SPIKESIM_OPT_SEARCH_HH
