#ifndef SPIKESIM_OPT_PERTURB_HH
#define SPIKESIM_OPT_PERTURB_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "support/rng.hh"

/**
 * @file
 * Deterministic seeded perturbation operators over a layout candidate.
 * A candidate is just a segment sequence (the same representation
 * core::Layout is built from); every operator preserves the layout
 * invariants — segments stay non-empty, each segment stays within one
 * procedure, and the multiset of blocks is untouched — so any reachable
 * candidate materializes into a valid core::Layout.
 *
 * The operator set spans the space the greedy pipeline commits to in
 * one pass: segment-level moves/swaps/reversals/rotations revisit
 * Pettis-Hansen ordering decisions (including its arbitrary
 * tie-breaks), split shifts and cuts revisit the fine-grain split
 * points, and intra-segment block swaps revisit individual chain-join
 * decisions.
 *
 * All randomness flows through the caller's Pcg32, so a (seed, call
 * sequence) pair reproduces candidates bit-exactly on any host.
 */

namespace spikesim::opt {

/** A layout candidate: segments in placement order. */
struct Candidate
{
    std::vector<core::CodeSegment> segments;
};

/** Perturbation operators (see file comment). */
enum class PerturbOp : std::uint8_t {
    /** Swap two segments (revisits porder ties). */
    SegmentSwap,
    /** Remove one segment and reinsert it elsewhere. */
    SegmentMove,
    /** Reverse a short run of segments. */
    SegmentReverse,
    /** Rotate a short run of segments. */
    SegmentRotate,
    /** Move one block across the boundary of two adjacent same-proc
     *  segments (shifts a split point; may erase an emptied segment,
     *  i.e. re-join a split). */
    SplitShift,
    /** Cut one multi-block segment in two (introduces a split point). */
    SplitCut,
    /** Swap two adjacent blocks inside a segment (revisits one
     *  chain-join decision). */
    BlockSwap,
};

inline constexpr std::size_t kNumPerturbOps = 7;

/** Operator name for reports ("segment_swap", ...). */
const char* perturbOpName(PerturbOp op);

/** Per-operator application counters (no-ops = the drawn operator had
 *  no legal site, e.g. SplitShift with no same-proc boundary). */
struct PerturbCounts
{
    std::array<std::uint64_t, kNumPerturbOps> applied{};
    std::array<std::uint64_t, kNumPerturbOps> noop{};
};

/** Candidate from an existing layout's segment order. */
Candidate candidateFromLayout(const core::Layout& layout);

/** Materialize a candidate into an addressed layout. */
core::Layout materialize(const Candidate& cand,
                         const program::Program& prog,
                         const core::AssignOptions& opts);

/**
 * Content fingerprint of a candidate (FNV-1a over the segment/block
 * sequence). Equal fingerprints are used as "same layout" keys by the
 * search's ground-truth cache and by determinism tests.
 */
std::uint64_t fingerprint(const Candidate& cand);

/**
 * Apply one randomly drawn operator to the candidate. Returns the
 * operator drawn (counted in `counts` when given), whether or not a
 * legal application site existed.
 */
PerturbOp perturbOnce(Candidate& cand, support::Pcg32& rng,
                      PerturbCounts* counts = nullptr);

/** Apply `ops` drawn operators in sequence. */
void perturb(Candidate& cand, support::Pcg32& rng, int ops,
             PerturbCounts* counts = nullptr);

} // namespace spikesim::opt

#endif // SPIKESIM_OPT_PERTURB_HH
