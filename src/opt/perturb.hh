#ifndef SPIKESIM_OPT_PERTURB_HH
#define SPIKESIM_OPT_PERTURB_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/layout.hh"
#include "support/rng.hh"

/**
 * @file
 * Deterministic seeded perturbation operators over a layout candidate.
 * A candidate is just a segment sequence (the same representation
 * core::Layout is built from); every operator preserves the layout
 * invariants — segments stay non-empty, each segment stays within one
 * procedure, and the multiset of blocks is untouched — so any reachable
 * candidate materializes into a valid core::Layout.
 *
 * The operator set spans the space the greedy pipeline commits to in
 * one pass: segment-level moves/swaps/reversals/rotations revisit
 * Pettis-Hansen ordering decisions (including its arbitrary
 * tie-breaks), split shifts and cuts revisit the fine-grain split
 * points, and intra-segment block swaps revisit individual chain-join
 * decisions.
 *
 * All randomness flows through the caller's Pcg32, so a (seed, call
 * sequence) pair reproduces candidates bit-exactly on any host.
 */

namespace spikesim::opt {

/**
 * Page-region annotation over a candidate's segment sequence. Empty
 * (`seg_region` empty) means the candidate is *flat* and perturbation
 * draws from the classic whole-layout operator set. Non-empty, it maps
 * every segment to a region id with two invariants the region-aware
 * operators preserve: segments sharing an id are contiguous, and every
 * hot-region segment (id < num_hot) precedes every cold-region one —
 * so the hot text always stays one compact prefix. Region ids are a
 * bound, not a surjection: an id may own zero segments after boundary
 * shifts.
 */
struct RegionMap
{
    /** Region id per segment (parallel to Candidate::segments). */
    std::vector<std::uint32_t> seg_region;
    /** Total region id space. */
    std::uint32_t num_regions = 0;
    /** Region ids below this are hot; at or above, cold. */
    std::uint32_t num_hot = 0;

    bool empty() const { return seg_region.empty(); }
};

/** A layout candidate: segments in placement order, plus an optional
 *  page-region annotation steering the perturbation operators. */
struct Candidate
{
    std::vector<core::CodeSegment> segments;
    RegionMap regions;
};

/** Perturbation operators (see file comment). */
enum class PerturbOp : std::uint8_t {
    /** Swap two segments (revisits porder ties). */
    SegmentSwap,
    /** Remove one segment and reinsert it elsewhere. */
    SegmentMove,
    /** Reverse a short run of segments. */
    SegmentReverse,
    /** Rotate a short run of segments. */
    SegmentRotate,
    /** Move one block across the boundary of two adjacent same-proc
     *  segments (shifts a split point; may erase an emptied segment,
     *  i.e. re-join a split). */
    SplitShift,
    /** Cut one multi-block segment in two (introduces a split point). */
    SplitCut,
    /** Swap two adjacent blocks inside a segment (revisits one
     *  chain-join decision). */
    BlockSwap,
    /** Move one segment to another position inside its own region
     *  (region mode only). */
    RegionIntraMove,
    /** Swap the segment runs of two whole regions on the same side of
     *  the hot/cold boundary (region mode only). */
    RegionReorder,
    /** Reassign the boundary segment across the hot/cold boundary,
     *  growing one side by one segment (region mode only). */
    HotColdShift,
};

inline constexpr std::size_t kNumPerturbOps = 10;

/** The flat operator set (the first kNumFlatOps enum values); region
 *  mode draws from a different subset (see perturbOnce). */
inline constexpr std::size_t kNumFlatOps = 7;

/** Operator name for reports ("segment_swap", ...). */
const char* perturbOpName(PerturbOp op);

/** Per-operator application counters (no-ops = the drawn operator had
 *  no legal site, e.g. SplitShift with no same-proc boundary). */
struct PerturbCounts
{
    std::array<std::uint64_t, kNumPerturbOps> applied{};
    std::array<std::uint64_t, kNumPerturbOps> noop{};
};

/** Candidate from an existing layout's segment order. */
Candidate candidateFromLayout(const core::Layout& layout);

/** Materialize a candidate into an addressed layout. */
core::Layout materialize(const Candidate& cand,
                         const program::Program& prog,
                         const core::AssignOptions& opts);

/**
 * Content fingerprint of a candidate (FNV-1a over the segment/block
 * sequence). Equal fingerprints are used as "same layout" keys by the
 * search's ground-truth cache and by determinism tests.
 */
std::uint64_t fingerprint(const Candidate& cand);

/**
 * Pack a candidate's leading `num_hot` segments into page-sized bins
 * (a new region starts whenever adding the next segment would push
 * the bin past `page_bytes`) and its cold tail into one region,
 * producing the RegionMap the region-aware operators respect. With
 * num_hot == 0 every segment lands in the single cold region.
 */
RegionMap buildRegionMap(const program::Program& prog,
                         const std::vector<core::CodeSegment>& segments,
                         std::size_t num_hot,
                         std::uint64_t page_bytes = 4096);

/**
 * Check the RegionMap invariants of a candidate: map parallel to the
 * segment list (or both absent), ids in range, equal ids contiguous,
 * and every hot-region segment before every cold-region one. Returns
 * "" when valid, else a description of the violation.
 */
std::string validateRegions(const Candidate& cand);

/**
 * Apply one randomly drawn operator to the candidate. Returns the
 * operator drawn (counted in `counts` when given), whether or not a
 * legal application site existed.
 *
 * Flat candidates (no region map) draw uniformly from the first
 * kNumFlatOps operators — the exact PR 4 behaviour, bit-for-bit.
 * Region-annotated candidates draw from {SplitShift, SplitCut,
 * BlockSwap, RegionIntraMove, RegionReorder, HotColdShift}, with
 * SplitShift additionally confined to same-region boundaries, so no
 * operator ever moves code across a region boundary except the
 * explicit HotColdShift.
 */
PerturbOp perturbOnce(Candidate& cand, support::Pcg32& rng,
                      PerturbCounts* counts = nullptr);

/** Apply `ops` drawn operators in sequence. */
void perturb(Candidate& cand, support::Pcg32& rng, int ops,
             PerturbCounts* counts = nullptr);

} // namespace spikesim::opt

#endif // SPIKESIM_OPT_PERTURB_HH
