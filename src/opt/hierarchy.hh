#ifndef SPIKESIM_OPT_HIERARCHY_HH
#define SPIKESIM_OPT_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "core/split.hh"
#include "profile/profile.hh"
#include "program/program.hh"

/**
 * @file
 * Codestitcher-style hierarchical layout candidate generation
 * (Lavaee et al., PAPERS.md): split the program's placement units into
 * hot and cold text, then merge hot chains under a *distance bound*
 * that grows through the memory hierarchy — first only merges whose
 * transfer gap fits inside one 64B i-cache line, then inside one 4KB
 * page, then inside one 2MB huge page. Each tier consumes the heaviest
 * profitable inter-chain edges first, so the tightest co-residency
 * (line sharing) is claimed by the hottest transfers and page-scale
 * locality is built from already-line-local chains. The result is a
 * full segment permutation — compact hot text first, cold tail after —
 * used to seed the annealer alongside the greedy pipeline
 * (opt/search.hh), giving it a starting point the flat greedy ordering
 * structurally cannot reach.
 */

namespace spikesim::opt {

struct HierarchyParams
{
    /** Merge distance tiers in bytes, ascending: line, page, huge page. */
    std::vector<std::uint64_t> tiers = {64, 4096, 2ull * 1024 * 1024};
    /** Block execution count at or above which a segment is hot. */
    std::uint64_t hot_threshold = 1;
};

/** One merged chain plus its bookkeeping (exposed for tests). */
struct HierarchyResult
{
    /** The full candidate order: merged hot chains, then cold tail. */
    std::vector<core::CodeSegment> segments;
    /** Number of leading hot segments in `segments`. */
    std::size_t num_hot = 0;
    /** Number of merge operations performed per tier. */
    std::vector<std::size_t> merges_per_tier;
};

/**
 * Build the hierarchical candidate from a flat segment list: hot/cold
 * partition (core::partitionHotCold), then tiered distance-bounded
 * chain merging over the segment graph's transfer weights. The output
 * places every input block exactly once. Deterministic: edges are
 * processed in (weight desc, from, to) order and chain output order is
 * (chain heat desc, first segment index asc).
 */
HierarchyResult
hierarchicalOrder(const program::Program& prog,
                  const profile::Profile& profile,
                  const std::vector<core::CodeSegment>& segments,
                  const HierarchyParams& params = {});

} // namespace spikesim::opt

#endif // SPIKESIM_OPT_HIERARCHY_HH
