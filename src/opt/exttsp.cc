#include "opt/exttsp.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "support/panic.hh"

namespace spikesim::opt {

using program::BasicBlock;
using program::BlockLocalId;
using program::EdgeKind;
using program::FlowEdge;
using program::GlobalBlockId;
using program::kInstrBytes;
using program::kInvalidId;
using program::ProcId;
using program::Procedure;
using program::Terminator;

double
extTspEdgeScore(std::uint64_t src_end, std::uint64_t dst_addr,
                std::uint64_t count, const ExtTspParams& params)
{
    if (count == 0)
        return 0.0;
    const double w = static_cast<double>(count);
    double k = 0.0;
    if (dst_addr == src_end) {
        k = params.fallthrough_weight;
    } else if (dst_addr > src_end) {
        const std::uint64_t d = dst_addr - src_end;
        if (d < params.forward_window_bytes)
            k = params.forward_weight *
                (1.0 - static_cast<double>(d) /
                           static_cast<double>(params.forward_window_bytes));
    } else {
        const std::uint64_t d = src_end - dst_addr;
        if (d < params.backward_window_bytes)
            k = params.backward_weight *
                (1.0 -
                 static_cast<double>(d) /
                     static_cast<double>(params.backward_window_bytes));
    }
    // Co-residency: the next sequential byte and the target byte share
    // one i-cache line, so taking this transfer cannot fetch a new line.
    if (params.coline_weight > 0.0 &&
        src_end / params.line_bytes == dst_addr / params.line_bytes)
        k += params.coline_weight;
    // Distance-bucketed gap penalty: the decay windows above are blind
    // past ~1KB, so long transfers are charged by the power-of-two
    // bucket their gap lands in, saturating at huge-page scale.
    if (params.gap_weight > 0.0) {
        const std::uint64_t d =
            dst_addr > src_end ? dst_addr - src_end : src_end - dst_addr;
        if (d >= params.gap_start_bytes) {
            const int bucket = std::min<int>(
                std::bit_width(d / params.gap_start_bytes), 12);
            k -= params.gap_weight * (static_cast<double>(bucket) / 12.0);
        }
    }
    // Page co-residency: a transfer inside one 4KB page can never take
    // a base-page iTLB miss; inside one 2MB region it stays within a
    // single huge-page mapping.
    if (params.page4k_weight > 0.0 &&
        src_end / params.page4k_bytes == dst_addr / params.page4k_bytes)
        k += params.page4k_weight;
    if (params.page2m_weight > 0.0 &&
        src_end / params.page2m_bytes == dst_addr / params.page2m_bytes)
        k += params.page2m_weight;
    // iTLB proxy: executions crossing a page boundary are charged.
    if (params.itlb_weight > 0.0 &&
        src_end / params.itlb_page_bytes != dst_addr / params.itlb_page_bytes)
        k -= params.itlb_weight;
    return w * k;
}

namespace {

/**
 * Layout-adjusted sizes for one procedure laid out alone in `order`
 * (the same trailing-branch rules as core::Layout pass 1, but local:
 * every block's neighbour is the next order entry, packed tight).
 */
std::vector<std::uint32_t>
localAdjustedSizes(const Procedure& proc,
                   const std::vector<BlockLocalId>& order)
{
    const std::size_t n = proc.blocks.size();
    // Successor summary per local block.
    std::vector<BlockLocalId> fall(n, kInvalidId), taken(n, kInvalidId),
        uncond(n, kInvalidId);
    for (const FlowEdge& e : proc.edges) {
        switch (e.kind) {
          case EdgeKind::FallThrough: fall[e.from] = e.to; break;
          case EdgeKind::CondTaken: taken[e.from] = e.to; break;
          case EdgeKind::UncondTarget: uncond[e.from] = e.to; break;
          case EdgeKind::IndirectTarget: break;
        }
    }
    std::vector<std::uint32_t> size(n, 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
        const BlockLocalId b = order[i];
        const BasicBlock& blk = proc.blocks[b];
        const BlockLocalId next =
            i + 1 < order.size() ? order[i + 1] : kInvalidId;
        std::uint32_t sz = blk.sizeInstrs;
        switch (blk.term) {
          case Terminator::FallThrough:
          case Terminator::Call:
            if (fall[b] != next)
                ++sz;
            break;
          case Terminator::CondBranch:
            if (fall[b] != next && taken[b] != next)
                ++sz;
            break;
          case Terminator::UncondBranch:
            if (uncond[b] == next)
                --sz;
            break;
          case Terminator::IndirectJump:
          case Terminator::Return:
            break;
        }
        size[b] = sz;
    }
    return size;
}

} // namespace

double
extTspScore(const core::Layout& layout, const profile::Profile& profile,
            const ExtTspParams& params)
{
    const program::Program& prog = layout.prog();
    double total = 0.0;
    // Flow edges in fixed program order (proc id, then edge index) so
    // the floating-point sum is bit-reproducible for equal layouts.
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        const Procedure& proc = prog.proc(p);
        for (const FlowEdge& e : proc.edges) {
            const GlobalBlockId from = prog.globalBlockId(p, e.from);
            const GlobalBlockId to = prog.globalBlockId(p, e.to);
            const std::uint64_t w = profile.edgeCount(from, to);
            if (w == 0)
                continue;
            total += extTspEdgeScore(layout.blockAddr(from) +
                                         layout.blockBytes(from),
                                     layout.blockAddr(to), w, params);
        }
    }
    if (params.include_calls) {
        // Call edges: caller block -> callee entry. profile.calls()
        // iterates a hash map, so sort into a canonical order first.
        auto calls = profile.calls();
        std::sort(calls.begin(), calls.end());
        for (const auto& [caller_block, callee, w] : calls) {
            const GlobalBlockId entry = prog.globalBlockId(callee, 0);
            total += extTspEdgeScore(layout.blockAddr(caller_block) +
                                         layout.blockBytes(caller_block),
                                     layout.blockAddr(entry), w, params);
        }
    }
    return total;
}

double
extTspITlbCost(const core::Layout& layout,
               const profile::Profile& profile,
               const ExtTspParams& params)
{
    const program::Program& prog = layout.prog();
    const std::uint64_t page = params.itlb_page_bytes;
    std::uint64_t total = 0;
    auto crossings = [&](GlobalBlockId from, GlobalBlockId to,
                         std::uint64_t w) {
        const std::uint64_t src_end =
            layout.blockAddr(from) + layout.blockBytes(from);
        const std::uint64_t dst = layout.blockAddr(to);
        if (src_end / page != dst / page)
            total += w;
    };
    // Same fixed edge order as extTspScore, integer accumulation.
    for (ProcId p = 0; p < prog.numProcs(); ++p) {
        const Procedure& proc = prog.proc(p);
        for (const FlowEdge& e : proc.edges) {
            const GlobalBlockId from = prog.globalBlockId(p, e.from);
            const GlobalBlockId to = prog.globalBlockId(p, e.to);
            const std::uint64_t w = profile.edgeCount(from, to);
            if (w != 0)
                crossings(from, to, w);
        }
    }
    if (params.include_calls) {
        auto calls = profile.calls();
        std::sort(calls.begin(), calls.end());
        for (const auto& [caller_block, callee, w] : calls)
            if (w != 0)
                crossings(caller_block, prog.globalBlockId(callee, 0),
                          w);
    }
    return static_cast<double>(total);
}

double
extTspOrderScore(const program::Program& prog, ProcId proc,
                 const profile::Profile& profile,
                 const std::vector<BlockLocalId>& order,
                 const ExtTspParams& params)
{
    const Procedure& p = prog.proc(proc);
    SPIKESIM_ASSERT(order.size() == p.blocks.size(),
                    "order must cover the procedure");
    const std::vector<std::uint32_t> size = localAdjustedSizes(p, order);
    std::vector<std::uint64_t> addr(p.blocks.size(), 0);
    std::uint64_t cur = 0;
    for (BlockLocalId b : order) {
        addr[b] = cur;
        cur += static_cast<std::uint64_t>(size[b]) * kInstrBytes;
    }
    double total = 0.0;
    for (const FlowEdge& e : p.edges) {
        const std::uint64_t w =
            profile.edgeCount(prog.globalBlockId(proc, e.from),
                              prog.globalBlockId(proc, e.to));
        if (w == 0)
            continue;
        total += extTspEdgeScore(
            addr[e.from] +
                static_cast<std::uint64_t>(size[e.from]) * kInstrBytes,
            addr[e.to], w, params);
    }
    return total;
}

ExhaustiveBest
bestOrderExhaustive(const program::Program& prog, ProcId proc,
                    const profile::Profile& profile,
                    const ExtTspParams& params)
{
    const Procedure& p = prog.proc(proc);
    const std::size_t n = p.blocks.size();
    SPIKESIM_ASSERT(n >= 1 && n <= 9,
                    "exhaustive oracle is for tiny CFGs (<= 9 blocks), "
                    "got " << n);
    // Entry stays first: no layout pipeline ever moves a procedure's
    // entry block, so the oracle searches the same space.
    std::vector<BlockLocalId> rest;
    for (BlockLocalId b = 1; b < n; ++b)
        rest.push_back(b);

    ExhaustiveBest best;
    std::vector<BlockLocalId> order(n);
    order[0] = 0;
    do {
        std::copy(rest.begin(), rest.end(), order.begin() + 1);
        const double s = extTspOrderScore(prog, proc, profile, order,
                                          params);
        ++best.permutations;
        if (best.order.empty() || s > best.score) {
            best.score = s;
            best.order = order;
        }
    } while (std::next_permutation(rest.begin(), rest.end()));
    return best;
}

} // namespace spikesim::opt
