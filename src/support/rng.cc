#include "support/rng.hh"

#include <cmath>

namespace spikesim::support {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t seq)
    : state_(0), inc_((seq << 1u) | 1u)
{
    next();
    state_ += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    SPIKESIM_ASSERT(bound > 0, "nextBounded requires a positive bound");
    // Lemire-style rejection to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Pcg32::nextRange(std::int64_t lo, std::int64_t hi)
{
    SPIKESIM_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {
        // Full 64-bit span: compose two 32-bit draws.
        std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
        return static_cast<std::int64_t>(r);
    }
    if (span <= 0xffffffffULL)
        return lo + nextBounded(static_cast<std::uint32_t>(span));
    // Wide span: rejection on a 64-bit draw.
    std::uint64_t limit = ~0ULL - (~0ULL % span);
    for (;;) {
        std::uint64_t r = (static_cast<std::uint64_t>(next()) << 32) | next();
        if (r < limit)
            return lo + static_cast<std::int64_t>(r % span);
    }
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::nextBool(double p)
{
    return nextDouble() < p;
}

int
Pcg32::nextGeometric(double mean, int max)
{
    SPIKESIM_ASSERT(mean >= 1.0, "geometric mean must be >= 1");
    SPIKESIM_ASSERT(max >= 1, "geometric max must be >= 1");
    if (mean <= 1.0)
        return 1;
    // Geometric on {1, 2, ...} with success probability 1/mean.
    double p = 1.0 / mean;
    double u = nextDouble();
    // Guard against u == 0 which would yield -inf.
    if (u <= 0.0)
        u = 1e-12;
    int k = 1 + static_cast<int>(std::log(u) / std::log(1.0 - p));
    if (k < 1)
        k = 1;
    if (k > max)
        k = max;
    return k;
}

Pcg32
Pcg32::split()
{
    std::uint64_t seed = (static_cast<std::uint64_t>(next()) << 32) | next();
    std::uint64_t seq = (static_cast<std::uint64_t>(next()) << 32) | next();
    return Pcg32(seed, seq);
}

namespace {

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    SPIKESIM_ASSERT(n >= 1, "ZipfSampler requires n >= 1");
    SPIKESIM_ASSERT(theta >= 0.0 && theta < 1.0,
                    "ZipfSampler supports theta in [0, 1)");
    zeta2_ = zeta(2, theta);
    zetan_ = zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfSampler::sample(Pcg32& rng) const
{
    // Classic YCSB-style Zipfian generator (Gray et al.).
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (idx >= n_)
        idx = n_ - 1;
    return idx;
}

} // namespace spikesim::support
