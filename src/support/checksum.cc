#include "support/checksum.hh"

#include <cstring>

namespace spikesim::support {

void
Fnv1a64::update(const void* data, std::size_t n)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint64_t h = h_;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    h_ = h;
}

void
Fnv1a64::update64(std::uint64_t v)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    update(bytes, 8);
}

std::uint64_t
fnv1a64(const void* data, std::size_t n)
{
    Fnv1a64 h;
    h.update(data, n);
    return h.digest();
}

std::uint64_t
fnv1a64Words(const void* data, std::size_t n)
{
    const auto* p = static_cast<const std::uint8_t*>(data);
    // Four independent lanes: a single FNV chain is bound by multiply
    // latency (~1.5GB/s); four chains keep the multiplier pipelined and
    // run ~4x faster. Lane offsets are decorrelated so swapping words
    // between lanes changes the digest.
    std::uint64_t h[4];
    for (std::uint64_t l = 0; l < 4; ++l)
        h[l] = Fnv1a64::kOffsetBasis ^ (l * 0x9e3779b97f4a7c15ULL);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        for (std::size_t l = 0; l < 4; ++l) {
            std::uint64_t w;
            // little-endian hosts only (x86/arm)
            std::memcpy(&w, p + i + 8 * l, 8);
            h[l] = (h[l] ^ w) * Fnv1a64::kPrime;
        }
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, p + i, 8);
        h[0] = (h[0] ^ w) * Fnv1a64::kPrime;
    }
    if (i < n) {
        std::uint64_t w = 0;
        std::memcpy(&w, p + i, n - i);
        h[0] = (h[0] ^ w) * Fnv1a64::kPrime;
    }
    std::uint64_t hh = h[0];
    for (std::size_t l = 1; l < 4; ++l)
        hh = (hh ^ h[l]) * Fnv1a64::kPrime;
    // Fold in the length so "abc" and "abc\0" cannot collide via the
    // zero-padded tail.
    return (hh ^ n) * Fnv1a64::kPrime;
}

} // namespace spikesim::support
