#ifndef SPIKESIM_SUPPORT_PANIC_HH
#define SPIKESIM_SUPPORT_PANIC_HH

#include <sstream>
#include <string>

/**
 * @file
 * Error-reporting helpers, modeled after the gem5 panic()/fatal() split:
 * panic() is for internal invariant violations (a spikesim bug), fatal()
 * is for user errors (bad configuration or arguments).
 */

namespace spikesim::support {

/** Abort the program due to an internal invariant violation. */
[[noreturn]] void panic(const std::string& msg, const char* file, int line);

/** Exit the program due to a user/configuration error. */
[[noreturn]] void fatal(const std::string& msg);

} // namespace spikesim::support

/** Panic with a streamed message when an internal invariant breaks. */
#define SPIKESIM_PANIC(msg_expr)                                          \
    do {                                                                   \
        std::ostringstream spikesim_panic_os_;                             \
        spikesim_panic_os_ << msg_expr;                                    \
        ::spikesim::support::panic(spikesim_panic_os_.str(), __FILE__,     \
                                   __LINE__);                              \
    } while (false)

/** Always-on assertion (simulation correctness beats raw speed here). */
#define SPIKESIM_ASSERT(cond, msg_expr)                                    \
    do {                                                                   \
        if (!(cond)) {                                                     \
            SPIKESIM_PANIC("assertion failed: " #cond ": " << msg_expr);   \
        }                                                                  \
    } while (false)

#endif // SPIKESIM_SUPPORT_PANIC_HH
