#ifndef SPIKESIM_SUPPORT_CPUFEAT_HH
#define SPIKESIM_SUPPORT_CPUFEAT_HH

/**
 * @file
 * Runtime CPU feature detection for the SIMD replay kernels. The
 * binary is built without any global -march bump (only the dedicated
 * AVX2 translation unit gets -mavx2), so whether the vector kernels
 * may run is strictly a runtime question answered here.
 */

namespace spikesim::support {

/** True when the host CPU executes AVX2 (checked once, cached). */
bool cpuHasAvx2();

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_CPUFEAT_HH
