#ifndef SPIKESIM_SUPPORT_CPUFEAT_HH
#define SPIKESIM_SUPPORT_CPUFEAT_HH

/**
 * @file
 * Runtime CPU feature detection for the SIMD replay kernels. The
 * binary is built without any global -march bump (only the dedicated
 * vector translation units get -mavx2 / -mavx512f), so whether the
 * vector kernels may run is strictly a runtime question answered here.
 */

namespace spikesim::support {

/** True when the host CPU executes AVX2 (checked once, cached). */
bool cpuHasAvx2();

/** True when the host CPU executes AVX-512F (checked once, cached). */
bool cpuHasAvx512f();

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_CPUFEAT_HH
