#include "support/histogram.hh"

#include <bit>

#include "support/panic.hh"

namespace spikesim::support {

Histogram::Histogram(std::size_t num_buckets)
    : counts_(num_buckets, 0), total_samples_(0), sum_(0.0)
{
    SPIKESIM_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::record(std::uint64_t value, std::uint64_t count)
{
    std::size_t i = value;
    if (i >= counts_.size())
        i = counts_.size() - 1;
    counts_[i] += count;
    total_samples_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    SPIKESIM_ASSERT(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
Histogram::mean() const
{
    if (total_samples_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(total_samples_);
}

double
Histogram::fraction(std::size_t i) const
{
    if (total_samples_ == 0)
        return 0.0;
    return static_cast<double>(bucket(i)) /
           static_cast<double>(total_samples_);
}

void
Histogram::merge(const Histogram& other)
{
    SPIKESIM_ASSERT(counts_.size() == other.counts_.size(),
                    "histogram bucket counts differ");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_samples_ += other.total_samples_;
    sum_ += other.sum_;
}

void
Histogram::clear()
{
    for (auto& c : counts_)
        c = 0;
    total_samples_ = 0;
    sum_ = 0.0;
}

Log2Histogram::Log2Histogram(std::size_t num_buckets)
    : counts_(num_buckets, 0), total_samples_(0), sum_(0.0)
{
    SPIKESIM_ASSERT(num_buckets > 0, "histogram needs at least one bucket");
}

void
Log2Histogram::record(std::uint64_t value, std::uint64_t count)
{
    std::size_t i = 0;
    if (value > 0)
        i = static_cast<std::size_t>(std::bit_width(value) - 1);
    if (i >= counts_.size())
        i = counts_.size() - 1;
    counts_[i] += count;
    total_samples_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
}

std::uint64_t
Log2Histogram::bucket(std::size_t i) const
{
    SPIKESIM_ASSERT(i < counts_.size(), "bucket index out of range");
    return counts_[i];
}

double
Log2Histogram::fraction(std::size_t i) const
{
    if (total_samples_ == 0)
        return 0.0;
    return static_cast<double>(bucket(i)) /
           static_cast<double>(total_samples_);
}

void
Log2Histogram::merge(const Log2Histogram& other)
{
    SPIKESIM_ASSERT(counts_.size() == other.counts_.size(),
                    "histogram bucket counts differ");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_samples_ += other.total_samples_;
    sum_ += other.sum_;
}

double
Log2Histogram::mean() const
{
    if (total_samples_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(total_samples_);
}

} // namespace spikesim::support
