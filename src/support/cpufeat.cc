#include "support/cpufeat.hh"

namespace spikesim::support {

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports caches the cpuid probe internally; the
    // static local just skips the call after the first query.
    static const bool has = __builtin_cpu_supports("avx2") != 0;
    return has;
#else
    return false;
#endif
}

bool
cpuHasAvx512f()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool has = __builtin_cpu_supports("avx512f") != 0;
    return has;
#else
    return false;
#endif
}

} // namespace spikesim::support
