#ifndef SPIKESIM_SUPPORT_TABLE_HH
#define SPIKESIM_SUPPORT_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/**
 * @file
 * Fixed-width table printing for bench/example output. Every figure
 * harness prints its series through this so the output stays uniform
 * and diffable.
 */

namespace spikesim::support {

/** Builds an aligned text table: header row + data rows. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a full row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment to the stream. */
    void print(std::ostream& os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format an integer with thousands separators ("1,234,567"). */
std::string withCommas(std::uint64_t value);

/** Format a double with fixed decimals. */
std::string fixed(double value, int decimals);

/** Format a fraction as a percentage string with given decimals. */
std::string percent(double fraction, int decimals = 1);

/** Format a byte count compactly ("64KB", "1.5MB", "37B"). */
std::string bytesHuman(std::uint64_t bytes);

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_TABLE_HH
