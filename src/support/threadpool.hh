#ifndef SPIKESIM_SUPPORT_THREADPOOL_HH
#define SPIKESIM_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/**
 * @file
 * Fixed-size worker-thread pool for the parallel sweep executor. The
 * replay workloads are embarrassingly parallel — independent
 * (layout x filter x line-size) jobs over a shared read-only trace —
 * so a plain task queue with a drain barrier is all the machinery
 * needed. Tasks must not throw (simulation errors panic/abort).
 */

namespace spikesim::support {

/** Fixed pool of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 picks the hardware
     *        concurrency (at least 1).
     */
    explicit ThreadPool(int num_threads = 0);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    /** Hardware concurrency, clamped to at least 1. */
    static int defaultThreads();

    /**
     * Point-in-time copy of this pool's execution stats. The counts
     * are also published to the obs registry (`support.pool.*`), where
     * they aggregate across pools; this per-pool view backs the
     * pool-width invariance assertions in tests.
     */
    struct Stats {
        std::uint64_t submitted = 0;
        std::uint64_t executed = 0;
        /** Nanoseconds workers spent parked waiting for work. */
        std::uint64_t idle_ns = 0;
        /** Deepest the queue has been since construction. */
        std::uint64_t max_queue_depth = 0;
    };

    /** Exact when no submits are racing (e.g. right after wait()). */
    Stats stats() const;

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mu_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::size_t unfinished_ = 0; ///< queued + currently running
    bool stopping_ = false;
    // Stats below are guarded by mu_ except idle_ns_, which workers
    // accumulate after reacquiring the lock anyway.
    std::uint64_t submitted_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t idle_ns_ = 0;
    std::uint64_t max_queue_depth_ = 0;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_THREADPOOL_HH
