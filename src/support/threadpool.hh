#ifndef SPIKESIM_SUPPORT_THREADPOOL_HH
#define SPIKESIM_SUPPORT_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/**
 * @file
 * Fixed-size worker-thread pool for the parallel sweep executor. The
 * replay workloads are embarrassingly parallel — independent
 * (layout x filter x line-size) jobs over a shared read-only trace —
 * so a plain task queue with a drain barrier is all the machinery
 * needed. Tasks must not throw (simulation errors panic/abort).
 */

namespace spikesim::support {

/** Fixed pool of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param num_threads worker count; 0 picks the hardware
     *        concurrency (at least 1).
     */
    explicit ThreadPool(int num_threads = 0);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished executing. */
    void wait();

    /** Hardware concurrency, clamped to at least 1. */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable task_ready_;
    std::condition_variable all_done_;
    std::size_t unfinished_ = 0; ///< queued + currently running
    bool stopping_ = false;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_THREADPOOL_HH
