#ifndef SPIKESIM_SUPPORT_CHECKSUM_HH
#define SPIKESIM_SUPPORT_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

/**
 * @file
 * FNV-1a 64-bit hashing: the corpus file checksum and the workload
 * fingerprint both use it. Not cryptographic — it guards against
 * truncation and bit rot, not adversaries.
 */

namespace spikesim::support {

/** Streaming FNV-1a 64-bit hasher. */
class Fnv1a64
{
  public:
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    /** Mix n bytes into the hash. */
    void update(const void* data, std::size_t n);

    /** Mix one 64-bit value (as 8 little-endian bytes). */
    void update64(std::uint64_t v);

    std::uint64_t digest() const { return h_; }

  private:
    std::uint64_t h_ = kOffsetBasis;
};

/** One-shot FNV-1a 64 of a byte range. */
std::uint64_t fnv1a64(const void* data, std::size_t n);

/**
 * FNV-1a 64 folding 8 little-endian bytes per step (the tail is
 * zero-padded) across four interleaved lanes, so checksumming a
 * multi-megabyte corpus payload pipelines the multiplies instead of
 * serializing on their latency. NOT byte-compatible with fnv1a64();
 * the corpus format uses this variant for the payload checksum. Any
 * single-bit flip still changes the digest.
 */
std::uint64_t fnv1a64Words(const void* data, std::size_t n);

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_CHECKSUM_HH
