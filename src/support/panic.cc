#include "support/panic.hh"

#include <cstdlib>
#include <iostream>

namespace spikesim::support {

void
panic(const std::string& msg, const char* file, int line)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatal(const std::string& msg)
{
    std::cerr << "fatal: " << msg << "\n";
    std::exit(1);
}

} // namespace spikesim::support
