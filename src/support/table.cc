#include "support/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/panic.hh"

namespace spikesim::support {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SPIKESIM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    SPIKESIM_ASSERT(cells.size() == headers_.size(),
                    "row arity " << cells.size() << " != header arity "
                                 << headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
               << (c == 0 ? std::left : std::right) << row[c];
            os << std::right;
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        print_row(row);
}

std::string
withCommas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int since = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since == 3) {
            out.push_back(',');
            since = 0;
        }
        out.push_back(*it);
        ++since;
    }
    return {out.rbegin(), out.rend()};
}

std::string
fixed(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
percent(double fraction, int decimals)
{
    return fixed(fraction * 100.0, decimals) + "%";
}

std::string
bytesHuman(std::uint64_t bytes)
{
    if (bytes >= 1024ULL * 1024 && bytes % (1024ULL * 1024) == 0)
        return std::to_string(bytes / (1024ULL * 1024)) + "MB";
    if (bytes >= 1024ULL * 1024)
        return fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 1) +
               "MB";
    if (bytes >= 1024 && bytes % 1024 == 0)
        return std::to_string(bytes / 1024) + "KB";
    if (bytes >= 1024)
        return fixed(static_cast<double>(bytes) / 1024.0, 1) + "KB";
    return std::to_string(bytes) + "B";
}

} // namespace spikesim::support
