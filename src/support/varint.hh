#ifndef SPIKESIM_SUPPORT_VARINT_HH
#define SPIKESIM_SUPPORT_VARINT_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/panic.hh"

/**
 * @file
 * LEB128 variable-length integers, zigzag signed mapping, and a
 * bounds-checked byte-stream reader. These are the primitives of the
 * corpus file format (trace/serialize, profile/serialize, sim/corpus):
 * small values cost one byte, so delta-encoded block ids and
 * run-length-encoded contexts compress the 8-byte TraceEvent stream by
 * several times.
 */

namespace spikesim::support {

/** Append v as an LEB128 varint (1..10 bytes). */
inline void
putVarint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** Map a signed value to an unsigned one with small |v| staying small. */
inline std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
inline std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Append a signed value as a zigzag varint. */
inline void
putSignedVarint(std::vector<std::uint8_t>& out, std::int64_t v)
{
    putVarint(out, zigzagEncode(v));
}

/** Append v as 4 little-endian bytes. */
inline void
putFixed32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/** Append v as 8 little-endian bytes. */
inline void
putFixed64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/**
 * Sequential decoder over a byte span. Every read is bounds-checked and
 * fatal()s on overrun ("truncated"), so corrupt or cut-short corpus
 * files fail cleanly instead of replaying garbage.
 */
class ByteReader
{
  public:
    ByteReader() = default;

    ByteReader(const std::uint8_t* data, std::size_t size)
        : p_(data), end_(data + size)
    {
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    bool done() const { return p_ == end_; }

    /** Current read position (for sub-span extraction). */
    const std::uint8_t* pos() const { return p_; }

    std::uint64_t
    varint()
    {
        // Fast path: one-byte values dominate delta-encoded streams.
        if (p_ != end_ && *p_ < 0x80)
            return *p_++;
        return varintSlow();
    }

    std::int64_t svarint() { return zigzagDecode(varint()); }

    std::uint32_t
    fixed32()
    {
        const std::uint8_t* b = raw(4);
        return static_cast<std::uint32_t>(b[0]) |
               static_cast<std::uint32_t>(b[1]) << 8 |
               static_cast<std::uint32_t>(b[2]) << 16 |
               static_cast<std::uint32_t>(b[3]) << 24;
    }

    std::uint64_t
    fixed64()
    {
        const std::uint8_t* b = raw(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
        return v;
    }

    /** Consume n raw bytes; fatal() if fewer remain. */
    const std::uint8_t*
    raw(std::size_t n)
    {
        if (remaining() < n)
            fatal("byte stream truncated: fewer bytes than expected");
        const std::uint8_t* b = p_;
        p_ += n;
        return b;
    }

    /** Consume n bytes and return them as a sub-reader. */
    ByteReader
    subReader(std::size_t n)
    {
        const std::uint8_t* b = raw(n);
        return ByteReader(b, n);
    }

    /** Advance past n bytes already consumed externally (see pos()). */
    void skip(std::size_t n) { raw(n); }

  private:
    std::uint64_t
    varintSlow()
    {
        std::uint64_t v = 0;
        int shift = 0;
        while (true) {
            if (p_ == end_)
                fatal("varint truncated: byte stream ended mid-value");
            std::uint8_t b = *p_++;
            if (shift == 63 && b > 1)
                fatal("varint overflow: value does not fit in 64 bits");
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if ((b & 0x80) == 0)
                return v;
            shift += 7;
            if (shift > 63)
                fatal("varint overflow: value does not fit in 64 bits");
        }
    }

    const std::uint8_t* p_ = nullptr;
    const std::uint8_t* end_ = nullptr;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_VARINT_HH
