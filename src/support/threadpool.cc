#include "support/threadpool.hh"

#include "support/panic.hh"

namespace spikesim::support {

int
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0)
        num_threads = defaultThreads();
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    SPIKESIM_ASSERT(task != nullptr, "null task submitted to pool");
    {
        std::unique_lock<std::mutex> lock(mu_);
        SPIKESIM_ASSERT(!stopping_, "submit after pool shutdown began");
        queue_.push_back(std::move(task));
        ++unfinished_;
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            task_ready_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu_);
            if (--unfinished_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace spikesim::support
