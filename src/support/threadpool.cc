#include "support/threadpool.hh"

#include <chrono>

#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

namespace spikesim::support {

int
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads <= 0)
        num_threads = defaultThreads();
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    SPIKESIM_ASSERT(task != nullptr, "null task submitted to pool");
    std::uint64_t depth;
    {
        std::unique_lock<std::mutex> lock(mu_);
        SPIKESIM_ASSERT(!stopping_, "submit after pool shutdown began");
        queue_.push_back(std::move(task));
        ++unfinished_;
        ++submitted_;
        depth = queue_.size();
        if (depth > max_queue_depth_)
            max_queue_depth_ = depth;
    }
    static obs::Counter& c_submitted =
        obs::counter("support.pool.submitted");
    static obs::Gauge& g_depth =
        obs::gauge("support.pool.queue_depth");
    c_submitted.add(1);
    g_depth.max(static_cast<std::int64_t>(depth));
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return unfinished_ == 0; });
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return {submitted_, executed_, idle_ns_, max_queue_depth_};
}

void
ThreadPool::workerLoop()
{
    static obs::Counter& c_executed =
        obs::counter("support.pool.executed");
    static obs::Counter& c_idle_ns =
        obs::counter("support.pool.idle_ns");
    using clock = std::chrono::steady_clock;
    for (;;) {
        std::function<void()> task;
        std::uint64_t idle_ns;
        {
            std::unique_lock<std::mutex> lock(mu_);
            clock::time_point park = clock::now();
            task_ready_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            idle_ns = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - park)
                    .count());
            idle_ns_ += idle_ns;
            if (queue_.empty())
                return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        c_idle_ns.add(idle_ns);
        {
            obs::Span span("pool.task", "support");
            task();
        }
        c_executed.add(1);
        {
            std::unique_lock<std::mutex> lock(mu_);
            ++executed_;
            if (--unfinished_ == 0)
                all_done_.notify_all();
        }
    }
}

} // namespace spikesim::support
