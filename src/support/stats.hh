#ifndef SPIKESIM_SUPPORT_STATS_HH
#define SPIKESIM_SUPPORT_STATS_HH

#include <cstdint>
#include <limits>

/**
 * @file
 * Running statistical accumulators (Welford) used throughout the metric
 * collectors.
 */

namespace spikesim::support {

/**
 * Access/miss counter pair shared by every cache-like simulator
 * (SetAssocCache, the 3C classifier, stream buffers, the full
 * hierarchy, the iTLB replay). One snapshot-able shape instead of a
 * per-simulator struct: hits are derived, merge is operator+=, and
 * the common miss-rate arithmetic lives in one place.
 */
struct AccessStats {
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    std::uint64_t hits() const { return accesses - misses; }

    double missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }

    /** Count one access; `miss` says whether it missed. */
    void record(bool miss)
    {
        ++accesses;
        misses += miss ? 1 : 0;
    }

    AccessStats& operator+=(const AccessStats& o)
    {
        accesses += o.accesses;
        misses += o.misses;
        return *this;
    }

    void clear() { *this = AccessStats{}; }
};

/** Streaming mean/variance/min/max accumulator. */
class StatAccumulator
{
  public:
    StatAccumulator();

    /** Record one observation. */
    void record(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

    void clear();

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const StatAccumulator& other);

  private:
    std::uint64_t count_;
    double sum_;
    double mean_;
    double m2_;
    double min_;
    double max_;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_STATS_HH
