#ifndef SPIKESIM_SUPPORT_STATS_HH
#define SPIKESIM_SUPPORT_STATS_HH

#include <cstdint>
#include <limits>

/**
 * @file
 * Running statistical accumulators (Welford) used throughout the metric
 * collectors.
 */

namespace spikesim::support {

/** Streaming mean/variance/min/max accumulator. */
class StatAccumulator
{
  public:
    StatAccumulator();

    /** Record one observation. */
    void record(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

    void clear();

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const StatAccumulator& other);

  private:
    std::uint64_t count_;
    double sum_;
    double mean_;
    double m2_;
    double min_;
    double max_;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_STATS_HH
