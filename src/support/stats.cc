#include "support/stats.hh"

#include <cmath>

namespace spikesim::support {

StatAccumulator::StatAccumulator()
{
    clear();
}

void
StatAccumulator::record(double value)
{
    ++count_;
    sum_ += value;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
}

double
StatAccumulator::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
StatAccumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

double
StatAccumulator::min() const
{
    return count_ == 0 ? 0.0 : min_;
}

double
StatAccumulator::max() const
{
    return count_ == 0 ? 0.0 : max_;
}

void
StatAccumulator::clear()
{
    count_ = 0;
    sum_ = 0.0;
    mean_ = 0.0;
    m2_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

void
StatAccumulator::merge(const StatAccumulator& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    auto n1 = static_cast<double>(count_);
    auto n2 = static_cast<double>(other.count_);
    double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

} // namespace spikesim::support
