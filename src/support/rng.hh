#ifndef SPIKESIM_SUPPORT_RNG_HH
#define SPIKESIM_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

#include "support/panic.hh"

/**
 * @file
 * Deterministic pseudo-random number generation. Everything in spikesim
 * that needs randomness takes a Pcg32 (or a seed) explicitly so that runs
 * are exactly reproducible; no global RNG state exists.
 */

namespace spikesim::support {

/**
 * PCG-XSH-RR 32-bit generator (O'Neill 2014). Small, fast, and good
 * statistical quality; streams are selected via the seed/sequence pair.
 */
class Pcg32
{
  public:
    /** Construct a generator from a seed and an optional stream id. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t seq = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit value. */
    std::uint32_t next();

    /** Uniform integer in [0, bound) without modulo bias. bound > 0. */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-like positive integer with the given mean (>= 1), capped
     * at max. Used for basic-block sizes and loop trip counts.
     */
    int nextGeometric(double mean, int max);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBounded(static_cast<std::uint32_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Split off an independent child generator (for parallel structures). */
    Pcg32 split();

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Zipf-distributed integer sampler over [0, n). Uses the rejection-
 * inversion method of Hormann and Derflinger, so sampling is O(1) and
 * setup is O(1); suitable for large n (e.g., account selection skew).
 */
class ZipfSampler
{
  public:
    /** @param n number of items, @param theta skew (0 = uniform-ish). */
    ZipfSampler(std::uint64_t n, double theta);

    /** Sample an item index in [0, n). */
    std::uint64_t sample(Pcg32& rng) const;

    std::uint64_t n() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2_;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_RNG_HH
