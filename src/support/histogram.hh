#ifndef SPIKESIM_SUPPORT_HISTOGRAM_HH
#define SPIKESIM_SUPPORT_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

/**
 * @file
 * Simple counting histograms used by the locality metrics (sequence
 * lengths, word usage, line lifetimes).
 */

namespace spikesim::support {

/**
 * Integer-bucketed histogram over [0, numBuckets). Samples beyond the
 * last bucket are clamped into it (an explicit overflow bucket), which
 * matches how the paper's figures clip their x-axes.
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t num_buckets);

    /** Record one sample of the given value. */
    void record(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t bucket(std::size_t i) const;
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalSamples() const { return total_samples_; }

    /** Sum of value*count over all recorded samples (pre-clamping). */
    double sum() const { return sum_; }

    /** Mean of the recorded samples (pre-clamping), 0 if empty. */
    double mean() const;

    /** Fraction of all samples in bucket i, 0 if empty. */
    double fraction(std::size_t i) const;

    /** Merge another histogram (must have the same bucket count). */
    void merge(const Histogram& other);

    void clear();

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_samples_;
    double sum_;
};

/**
 * Log2-bucketed histogram: bucket i counts samples with
 * floor(log2(value)) == i (value 0 goes to bucket 0). Used for cache
 * line lifetimes (Fig 11).
 */
class Log2Histogram
{
  public:
    explicit Log2Histogram(std::size_t num_buckets);

    void record(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t bucket(std::size_t i) const;
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t totalSamples() const { return total_samples_; }
    double fraction(std::size_t i) const;
    double mean() const;

    /** Merge another histogram (must have the same bucket count). */
    void merge(const Log2Histogram& other);

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_samples_;
    double sum_;
};

} // namespace spikesim::support

#endif // SPIKESIM_SUPPORT_HISTOGRAM_HH
