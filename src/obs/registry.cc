#include "obs/registry.hh"

namespace spikesim::obs {

namespace detail {

std::size_t shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace detail

std::uint64_t Counter::value() const
{
    std::uint64_t sum = 0;
    for (const auto& c : cells_)
        sum += c.v.load(std::memory_order_relaxed);
    return sum;
}

void Counter::reset()
{
    for (auto& c : cells_)
        c.v.store(0, std::memory_order_relaxed);
}

void Gauge::max(std::int64_t v)
{
#if SPIKESIM_OBS
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v,
                                     std::memory_order_relaxed))
        ;
#else
    (void)v;
#endif
}

support::Log2Histogram Histogram::snapshot() const
{
    support::Log2Histogram h(kBuckets);
    for (const auto& s : shards_)
        for (std::size_t b = 0; b < kBuckets; ++b) {
            std::uint64_t n =
                s.bucket[b].load(std::memory_order_relaxed);
            if (n)
                h.record(std::uint64_t(1) << b, n);
        }
    return h;
}

std::uint64_t Histogram::totalSamples() const
{
    std::uint64_t sum = 0;
    for (const auto& s : shards_)
        for (std::size_t b = 0; b < kBuckets; ++b)
            sum += s.bucket[b].load(std::memory_order_relaxed);
    return sum;
}

void Histogram::reset()
{
    for (auto& s : shards_)
        for (std::size_t b = 0; b < kBuckets; ++b)
            s.bucket[b].store(0, std::memory_order_relaxed);
}

QuantileSketch SketchMetric::snapshot() const
{
    QuantileSketch merged;
    for (const Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        merged.merge(s.sketch);
    }
    return merged;
}

std::uint64_t SketchMetric::totalSamples() const
{
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        sum += s.sketch.count();
    }
    return sum;
}

void SketchMetric::reset()
{
    for (Shard& s : shards_) {
        std::lock_guard<std::mutex> lk(s.mu);
        s.sketch.clear();
    }
}

Registry& Registry::instance()
{
    static Registry r;
    return r;
}

Counter& Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

SketchMetric& Registry::sketch(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sketches_.find(name);
    if (it == sketches_.end())
        it = sketches_
                 .emplace(std::string(name),
                          std::make_unique<SketchMetric>())
                 .first;
    return *it->second;
}

Snapshot Registry::snapshot() const
{
    std::lock_guard<std::mutex> lk(mu_);
    Snapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        s.counters.emplace_back(name, c->value());
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        s.gauges.emplace_back(name, g->value());
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_)
        s.histograms.emplace_back(name, h->snapshot());
    s.sketches.reserve(sketches_.size());
    for (const auto& [name, q] : sketches_)
        s.sketches.emplace_back(name, q->snapshot());
    return s;
}

void Registry::resetValues()
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, g] : gauges_)
        g->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
    for (auto& [name, q] : sketches_)
        q->reset();
}

} // namespace spikesim::obs
