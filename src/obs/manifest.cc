#include "obs/manifest.hh"

#include <chrono>
#include <ctime>
#include <fstream>

#include "obs/json.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

namespace spikesim::obs {

namespace {

void appendString(std::string& out, std::string_view s)
{
    out += '"';
    out += jsonEscape(s);
    out += '"';
}

/** Append a pre-rendered JSON object, degrading to null when it does
 *  not parse (same contract as artifacts). */
void appendEmbedded(std::string& out, const std::string& json)
{
    JsonValue v;
    if (!json.empty() && parseJson(json, v))
        out += v.dump();
    else
        out += "null";
}

} // namespace

std::string renderManifest(const Manifest& m)
{
    std::string out = "{\"spikesim_manifest\":1,\"binary\":";
    appendString(out, m.binary);
    out += ",\"args\":[";
    for (std::size_t i = 0; i < m.args.size(); ++i) {
        if (i)
            out += ',';
        appendString(out, m.args[i]);
    }
    out += "],\"seed\":" + std::to_string(m.seed);
    out += ",\"threads\":" + std::to_string(m.threads);
    out += ",\"info\":{";
    for (std::size_t i = 0; i < m.info.size(); ++i) {
        if (i)
            out += ',';
        appendString(out, m.info[i].first);
        out += ':';
        appendString(out, m.info[i].second);
    }
    out += "},\"phases\":[";
    for (std::size_t i = 0; i < m.phases.size(); ++i) {
        const PhaseTime& p = m.phases[i];
        if (i)
            out += ',';
        out += "{\"name\":";
        appendString(out, p.name);
        out += ",\"wall_s\":" + jsonNumber(p.wall_s);
        out += ",\"cpu_s\":" + jsonNumber(p.cpu_s);
        out += '}';
    }
    out += "],\"artifacts\":{";
    for (std::size_t i = 0; i < m.artifacts.size(); ++i) {
        if (i)
            out += ',';
        appendString(out, m.artifacts[i].name);
        out += ':';
        // Re-parse before embedding: a malformed BENCH_*.json must
        // degrade to null, not corrupt the whole manifest document.
        appendEmbedded(out, m.artifacts[i].json);
    }
    out += "},\"timeline\":[";
    for (std::size_t i = 0; i < m.timelines.size(); ++i) {
        if (i)
            out += ',';
        appendEmbedded(out, m.timelines[i]);
    }
    out += "],\"slo\":[";
    for (std::size_t i = 0; i < m.slos.size(); ++i) {
        if (i)
            out += ',';
        appendEmbedded(out, m.slos[i]);
    }
    out += "],\"metrics\":{\"counters\":{";
    Snapshot snap = Registry::instance().snapshot();
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
        if (!first)
            out += ',';
        first = false;
        appendString(out, name);
        out += ':' + std::to_string(v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
        if (!first)
            out += ',';
        first = false;
        appendString(out, name);
        out += ':' + std::to_string(v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
        if (!first)
            out += ',';
        first = false;
        appendString(out, name);
        out += ":{\"total\":" + std::to_string(h.totalSamples());
        out += ",\"mean\":" + jsonNumber(h.mean());
        out += ",\"log2_buckets\":[";
        std::size_t last = 0;
        for (std::size_t b = 0; b < h.numBuckets(); ++b)
            if (h.bucket(b))
                last = b + 1;
        for (std::size_t b = 0; b < last; ++b) {
            if (b)
                out += ',';
            out += std::to_string(h.bucket(b));
        }
        out += "]}";
    }
    out += "},\"sketches\":{";
    first = true;
    for (const auto& [name, q] : snap.sketches) {
        if (!first)
            out += ',';
        first = false;
        appendString(out, name);
        out += ":{\"count\":" + std::to_string(q.count());
        out += ",\"sum\":" + std::to_string(q.sum());
        out += ",\"min\":" + std::to_string(q.min());
        out += ",\"max\":" + std::to_string(q.max());
        out += ",\"p50\":" + std::to_string(q.quantile(0.50));
        out += ",\"p90\":" + std::to_string(q.quantile(0.90));
        out += ",\"p99\":" + std::to_string(q.quantile(0.99));
        out += ",\"p999\":" + std::to_string(q.quantile(0.999));
        out += ",\"relative_error\":" +
               jsonNumber(QuantileSketch::kRelativeError);
        out += '}';
    }
    out += "}}}";
    return out;
}

void writeManifest(const Manifest& m, const std::string& path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        support::fatal("cannot open manifest output file: " + path);
    f << renderManifest(m) << '\n';
    f.close();
    if (!f)
        support::fatal("failed writing manifest output file: " + path);
}

struct PhaseClock::Impl {
    Manifest& m;
    std::string name;
    std::chrono::steady_clock::time_point wall0;
    std::clock_t cpu0;
    Span span;

    Impl(Manifest& mf, std::string n)
        : m(mf),
          name(std::move(n)),
          wall0(std::chrono::steady_clock::now()),
          cpu0(std::clock()),
          // Interned: the event buffer keeps raw pointers past this
          // object's lifetime.
          span(internName(name), "phase")
    {
    }
};

PhaseClock::PhaseClock(Manifest& m, std::string name)
    : impl_(new Impl(m, std::move(name)))
{
}

PhaseClock::~PhaseClock()
{
    PhaseTime p;
    p.name = impl_->name;
    p.wall_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - impl_->wall0)
                   .count();
    std::clock_t cpu1 = std::clock();
    if (impl_->cpu0 != std::clock_t(-1) && cpu1 != std::clock_t(-1))
        p.cpu_s = double(cpu1 - impl_->cpu0) / CLOCKS_PER_SEC;
    impl_->m.phases.push_back(std::move(p));
    delete impl_;
}

} // namespace spikesim::obs
