#include "obs/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spikesim::obs {

JsonValue JsonValue::makeBool(bool b)
{
    JsonValue v(Kind::Bool);
    v.bool_ = b;
    return v;
}

JsonValue JsonValue::makeNumber(double n)
{
    JsonValue v(Kind::Number);
    v.num_ = n;
    return v;
}

JsonValue JsonValue::makeString(std::string s)
{
    JsonValue v(Kind::String);
    v.str_ = std::move(s);
    return v;
}

const JsonValue* JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto& [k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

bool JsonValue::operator==(const JsonValue& o) const
{
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
    case Kind::Null:
        return true;
    case Kind::Bool:
        return bool_ == o.bool_;
    case Kind::Number:
        return num_ == o.num_;
    case Kind::String:
        return str_ == o.str_;
    case Kind::Array:
        return arr_ == o.arr_;
    case Kind::Object:
        return obj_ == o.obj_;
    }
    return false;
}

std::string jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string jsonNumber(double v)
{
    // Integers (the common case for counters and timestamps) print
    // without an exponent or trailing ".0"; everything else uses
    // shortest-round-trip formatting.
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        return buf;
    }
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN; never emitted in practice.
    char buf[64];
    auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc())
        return "0";
    return std::string(buf, end);
}

namespace {

void dumpTo(const JsonValue& v, std::string& out)
{
    switch (v.kind()) {
    case JsonValue::Kind::Null:
        out += "null";
        break;
    case JsonValue::Kind::Bool:
        out += v.boolean() ? "true" : "false";
        break;
    case JsonValue::Kind::Number:
        out += jsonNumber(v.number());
        break;
    case JsonValue::Kind::String:
        out += '"';
        out += jsonEscape(v.str());
        out += '"';
        break;
    case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const auto& e : v.array()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(e, out);
        }
        out += ']';
        break;
    }
    case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto& [k, e] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(k);
            out += "\":";
            dumpTo(e, out);
        }
        out += '}';
        break;
    }
    }
}

class Parser
{
  public:
    Parser(std::string_view text, std::string* err)
        : text_(text), err_(err)
    {
    }

    bool parse(JsonValue& out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 200;

    bool fail(const char* msg)
    {
        if (err_ && err_->empty())
            *err_ = std::string(msg) + " at byte " +
                    std::to_string(pos_);
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool parseValue(JsonValue& out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case 'n':
            out = JsonValue();
            return literal("null");
        case 't':
            out = JsonValue::makeBool(true);
            return literal("true");
        case 'f':
            out = JsonValue::makeBool(false);
            return literal("false");
        case '"':
            return parseString(out);
        case '[':
            return parseArray(out, depth);
        case '{':
            return parseObject(out, depth);
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    bool parseNumber(JsonValue& out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        auto digits = [&] {
            size_t n = 0;
            while (pos_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            return fail("malformed number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (digits() == 0)
                return fail("malformed number");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                return fail("malformed number");
        }
        std::string tok(text_.substr(start, pos_ - start));
        out = JsonValue::makeNumber(std::strtod(tok.c_str(), nullptr));
        return true;
    }

    bool parseString(JsonValue& out)
    {
        std::string s;
        if (!parseRawString(s))
            return false;
        out = JsonValue::makeString(std::move(s));
        return true;
    }

    bool parseRawString(std::string& s)
    {
        ++pos_; // opening quote
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                case '"':
                    s += '"';
                    break;
                case '\\':
                    s += '\\';
                    break;
                case '/':
                    s += '/';
                    break;
                case 'b':
                    s += '\b';
                    break;
                case 'f':
                    s += '\f';
                    break;
                case 'n':
                    s += '\n';
                    break;
                case 'r':
                    s += '\r';
                    break;
                case 't':
                    s += '\t';
                    break;
                case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // Encode the code point as UTF-8 (surrogate pairs
                    // are passed through as-is; we never emit them).
                    if (cp < 0x80) {
                        s += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        s += static_cast<char>(0xc0 | (cp >> 6));
                        s += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        s += static_cast<char>(0xe0 | (cp >> 12));
                        s += static_cast<char>(0x80 |
                                               ((cp >> 6) & 0x3f));
                        s += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                }
                default:
                    return fail("bad escape");
                }
            } else {
                s += c;
            }
        }
    }

    bool parseArray(JsonValue& out, int depth)
    {
        ++pos_; // '['
        out = JsonValue(JsonValue::Kind::Array);
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            skipWs();
            if (!parseValue(elem, depth + 1))
                return false;
            out.array().push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']'");
        }
    }

    bool parseObject(JsonValue& out, int depth)
    {
        ++pos_; // '{'
        out = JsonValue(JsonValue::Kind::Object);
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':'");
            JsonValue val;
            skipWs();
            if (!parseValue(val, depth + 1))
                return false;
            out.members().emplace_back(std::move(key),
                                       std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::string* err_;
    size_t pos_ = 0;
};

} // namespace

std::string JsonValue::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

bool parseJson(std::string_view text, JsonValue& out, std::string* err)
{
    if (err)
        err->clear();
    Parser p(text, err);
    return p.parse(out);
}

} // namespace spikesim::obs
