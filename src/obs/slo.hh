#ifndef SPIKESIM_OBS_SLO_HH
#define SPIKESIM_OBS_SLO_HH

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

/**
 * @file
 * Declarative latency SLOs with multi-window burn-rate alerting (the
 * SRE-workbook fast/slow window pairs), evaluated over a flight
 * recorder timeline. An SLO says "`target` of requests finish within
 * `threshold`"; each timeline window reports how many requests were
 * good (within threshold) and bad. The burn rate of a span of windows
 * is its bad fraction divided by the error budget (1 - target): burn 1
 * spends the budget exactly, burn 14.4 spends a 30-day budget in ~2
 * days. An alert pair (short, long, factor) fires at a window when the
 * burn over BOTH trailing spans reaches the factor — the short span
 * makes the alert fast to clear, the long one keeps one bursty window
 * from paging. Verdicts land in the run manifest and in
 * BENCH_serving.json; everything is integer-count arithmetic, so
 * verdicts are byte-identical across thread-pool widths.
 */

namespace spikesim::obs {

/** One latency objective plus its two alert window pairs (in timeline
 *  windows, not wall time — the serving bench's windows are virtual). */
struct SloSpec
{
    std::string name;
    /** Fraction of requests that must be good (e.g. 0.99). */
    double target = 0.99;
    /** Good/bad latency threshold, in the sketch's ticks (cycles). */
    std::uint64_t threshold_ticks = 0;
    /** Fast-burn pair: pages quickly on a hard outage. */
    std::size_t fast_short = 3;
    std::size_t fast_long = 12;
    double fast_factor = 14.4;
    /** Slow-burn pair: catches a simmering budget leak. */
    std::size_t slow_short = 12;
    std::size_t slow_long = 48;
    double slow_factor = 6.0;
};

/** One timeline window's good/bad request counts. */
struct SloWindow
{
    std::uint64_t good = 0;
    std::uint64_t bad = 0;
};

struct SloVerdict
{
    std::uint64_t total = 0; ///< requests over the whole run
    std::uint64_t bad = 0;
    double attainment = 1.0;  ///< good fraction (1.0 when empty)
    double budget_burn = 0.0; ///< whole-run bad fraction / budget
    bool met = true;          ///< attainment >= target
    /** Max trailing-long-window burn at any evaluated position. */
    double max_fast_burn = 0.0;
    double max_slow_burn = 0.0;
    /** Windows where the pair alerted (both spans >= factor). */
    std::size_t fast_alert_windows = 0;
    std::size_t slow_alert_windows = 0;
    /** "ok", "slow_burn", "fast_burn", or "breach". */
    std::string verdict = "ok";
};

/**
 * Evaluate a spec over per-window counts. Alert pairs are evaluated at
 * every window w >= long - 1 (a full long span must exist); empty
 * spans burn 0. The verdict is "breach" when overall attainment misses
 * the target, else the most urgent pair that alerted, else "ok".
 */
SloVerdict evaluateSlo(const SloSpec& spec,
                       std::span<const SloWindow> windows);

/** Render spec + verdict as one compact JSON object (for the manifest
 *  "slo" section and BENCH artifacts). */
std::string renderSloVerdict(const SloSpec& spec,
                             const SloVerdict& verdict);

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_SLO_HH
