#ifndef SPIKESIM_OBS_SKETCH_HH
#define SPIKESIM_OBS_SKETCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

/**
 * @file
 * Deterministic bounded-relative-error streaming quantile sketch
 * (DDSketch/HDR-histogram family, log-linear buckets over uint64
 * samples). The bucket for a value keeps its top kSubBits+1 significant
 * bits, so every bucket spans at most a 1/2^kSubBits relative range and
 * any quantile estimate lands within that factor of the true sample.
 * Values below 2^kSubBits get a bucket each and are exact.
 *
 * Everything is integer counts: merging sketches is commutative and
 * associative bucket-wise addition, so per-shard sketches merged in
 * shard order produce byte-identical quantiles on any thread-pool
 * width — the repo's determinism convention, which is why this replaces
 * the sort-every-latency percentile path in serve/queueing and backs
 * the registry's sketch metric kind.
 */

namespace spikesim::obs {

class QuantileSketch
{
  public:
    /** Sub-bucket resolution bits; 7 = at most 1/128 (~0.8%) relative
     *  error on any quantile. */
    static constexpr unsigned kSubBits = 7;

    /** Upper bound on the relative error of quantile(). */
    static constexpr double kRelativeError =
        1.0 / double(1u << kSubBits);

    /**
     * Bucket index of a value: values < 2^kSubBits index themselves
     * (exact); larger values keep their top kSubBits+1 bits. The map is
     * monotone and contiguous, max index 7423 for kSubBits = 7.
     */
    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < (std::uint64_t(1) << kSubBits))
            return static_cast<std::size_t>(v);
        unsigned e = 63;
        while ((v >> e) == 0)
            --e;
        const unsigned s = e - kSubBits;
        return (static_cast<std::size_t>(s) << kSubBits) +
               static_cast<std::size_t>(v >> s);
    }

    /** Smallest value mapping to bucket `index`. */
    static std::uint64_t bucketLowerBound(std::size_t index);
    /** Largest value mapping to bucket `index`. */
    static std::uint64_t bucketUpperBound(std::size_t index);

    /** Record `count` occurrences of `v`. */
    void record(std::uint64_t v, std::uint64_t count = 1);

    /** Bucket-wise addition; min/max/sum fold in too. */
    void merge(const QuantileSketch& other);

    bool empty() const { return count_ == 0; }
    std::uint64_t count() const { return count_; }
    /** Exact sum of every recorded value (wraps mod 2^64 like any
     *  uint64 accumulation). */
    std::uint64_t sum() const { return sum_; }
    /** Exact extrema; 0 on an empty sketch. */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Nearest-rank quantile estimate, q in [0, 1]: the upper bound of
     * the bucket holding the ceil(q*n)-th smallest sample, clamped to
     * [min, max]. Always >= the true sample and <= true * (1 +
     * kRelativeError); exact for samples < 2^kSubBits. 0 on empty.
     */
    std::uint64_t quantile(double q) const;

    /**
     * Samples recorded in buckets strictly above the bucket of
     * `threshold` — i.e. "latency > threshold" with the threshold
     * rounded up to its bucket's upper bound. Deterministic; the SLO
     * evaluator's bad-event count.
     */
    std::uint64_t countAbove(std::uint64_t threshold) const;

    /** Bucket counts, index 0..highest non-empty bucket. */
    const std::vector<std::uint64_t>&
    buckets() const
    {
        return counts_;
    }

    void clear();

  private:
    std::vector<std::uint64_t> counts_; ///< grown lazily on record
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_SKETCH_HH
