#ifndef SPIKESIM_OBS_JSON_HH
#define SPIKESIM_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/**
 * @file
 * Minimal JSON value model, parser, and writer for the observability
 * layer: run manifests and Chrome trace-event files are written through
 * it, tools/obs_dump and tests/obs_test.cc parse them back, and the
 * trace schema validator walks the parsed tree. Deliberately small —
 * strict enough to round-trip everything this repo emits (objects,
 * arrays, strings with escapes, doubles, bools, null), with no
 * dependencies beyond the standard library.
 */

namespace spikesim::obs {

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;
    explicit JsonValue(Kind k) : kind_(k) {}

    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string& str() const { return str_; }

    std::vector<JsonValue>& array() { return arr_; }
    const std::vector<JsonValue>& array() const { return arr_; }

    /** Object members in insertion order (duplicates preserved). */
    std::vector<std::pair<std::string, JsonValue>>& members()
    {
        return obj_;
    }
    const std::vector<std::pair<std::string, JsonValue>>&
    members() const
    {
        return obj_;
    }

    /** First member with the given key, or null. Objects only. */
    const JsonValue* find(std::string_view key) const;

    /** Serialize compactly (no insignificant whitespace). */
    std::string dump() const;

    /**
     * Structural equality: same kind and contents, with numbers
     * compared exactly (round-trip checks re-parse our own output, and
     * the writer emits shortest-exact doubles).
     */
    bool operator==(const JsonValue& o) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;
};

/**
 * Parse a complete JSON document. Returns false on malformed input
 * (trailing junk included) and, when `err` is non-null, stores a
 * human-readable complaint with the byte offset.
 */
bool parseJson(std::string_view text, JsonValue& out,
               std::string* err = nullptr);

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(std::string_view s);

/** Format a double the way the writer does (shortest exact form). */
std::string jsonNumber(double v);

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_JSON_HH
