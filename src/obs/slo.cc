#include "obs/slo.hh"

#include <algorithm>
#include <vector>

#include "obs/json.hh"
#include "support/panic.hh"

namespace spikesim::obs {

namespace {

/** Burn rate over windows [w - span + 1, w] via prefix sums; 0 when
 *  the span saw no requests. */
double
burnOver(const std::vector<std::uint64_t>& good_pfx,
         const std::vector<std::uint64_t>& bad_pfx, std::size_t w,
         std::size_t span, double budget)
{
    const std::size_t lo = w + 1 - span;
    const std::uint64_t good = good_pfx[w + 1] - good_pfx[lo];
    const std::uint64_t bad = bad_pfx[w + 1] - bad_pfx[lo];
    const std::uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    const double bad_frac =
        static_cast<double>(bad) / static_cast<double>(total);
    return bad_frac / budget;
}

} // namespace

SloVerdict
evaluateSlo(const SloSpec& spec, std::span<const SloWindow> windows)
{
    SPIKESIM_ASSERT(spec.target > 0.0 && spec.target < 1.0,
                    "SLO target must be in (0, 1)");
    SPIKESIM_ASSERT(spec.fast_short >= 1 &&
                        spec.fast_short <= spec.fast_long &&
                        spec.slow_short >= 1 &&
                        spec.slow_short <= spec.slow_long,
                    "SLO window pairs must satisfy 1 <= short <= long");
    const double budget = 1.0 - spec.target;

    SloVerdict v;
    std::vector<std::uint64_t> good_pfx(windows.size() + 1, 0);
    std::vector<std::uint64_t> bad_pfx(windows.size() + 1, 0);
    for (std::size_t w = 0; w < windows.size(); ++w) {
        good_pfx[w + 1] = good_pfx[w] + windows[w].good;
        bad_pfx[w + 1] = bad_pfx[w] + windows[w].bad;
        v.total += windows[w].good + windows[w].bad;
        v.bad += windows[w].bad;
    }
    if (v.total > 0) {
        const double bad_frac = static_cast<double>(v.bad) /
                                static_cast<double>(v.total);
        v.attainment = 1.0 - bad_frac;
        v.budget_burn = bad_frac / budget;
    }
    v.met = v.attainment >= spec.target;

    const auto pair = [&](std::size_t sshort, std::size_t slong,
                          double factor, double& max_burn,
                          std::size_t& alerts) {
        for (std::size_t w = slong - 1; w < windows.size(); ++w) {
            const double b_long =
                burnOver(good_pfx, bad_pfx, w, slong, budget);
            const double b_short =
                burnOver(good_pfx, bad_pfx, w, sshort, budget);
            max_burn = std::max(max_burn, b_long);
            if (b_long >= factor && b_short >= factor)
                ++alerts;
        }
    };
    pair(spec.fast_short, spec.fast_long, spec.fast_factor,
         v.max_fast_burn, v.fast_alert_windows);
    pair(spec.slow_short, spec.slow_long, spec.slow_factor,
         v.max_slow_burn, v.slow_alert_windows);

    if (!v.met)
        v.verdict = "breach";
    else if (v.fast_alert_windows > 0)
        v.verdict = "fast_burn";
    else if (v.slow_alert_windows > 0)
        v.verdict = "slow_burn";
    else
        v.verdict = "ok";
    return v;
}

std::string
renderSloVerdict(const SloSpec& spec, const SloVerdict& v)
{
    std::string out = "{\"name\":\"";
    out += jsonEscape(spec.name);
    out += "\",\"target\":" + jsonNumber(spec.target);
    out += ",\"threshold_ticks\":" +
           std::to_string(spec.threshold_ticks);
    out += ",\"total\":" + std::to_string(v.total);
    out += ",\"bad\":" + std::to_string(v.bad);
    out += ",\"attainment\":" + jsonNumber(v.attainment);
    out += ",\"budget_burn\":" + jsonNumber(v.budget_burn);
    out += std::string(",\"met\":") + (v.met ? "true" : "false");
    out += ",\"max_fast_burn\":" + jsonNumber(v.max_fast_burn);
    out += ",\"max_slow_burn\":" + jsonNumber(v.max_slow_burn);
    out += ",\"fast_alert_windows\":" +
           std::to_string(v.fast_alert_windows);
    out += ",\"slow_alert_windows\":" +
           std::to_string(v.slow_alert_windows);
    out += ",\"verdict\":\"" + jsonEscape(v.verdict) + "\"}";
    return out;
}

} // namespace spikesim::obs
