#ifndef SPIKESIM_OBS_TRACING_HH
#define SPIKESIM_OBS_TRACING_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/json.hh"

/**
 * @file
 * Phase-scoped tracing: RAII spans collected into an in-memory event
 * buffer and flushed as Chrome trace-event JSON ("X" complete events,
 * one per span), loadable in Perfetto or chrome://tracing. Collection
 * is off by default — `Span` costs one relaxed atomic load when
 * tracing is inactive — and is switched on per run by `--trace-out`.
 *
 * Also hosts the progress heartbeat (`--progress N`): a background
 * thread that prints selected registry counters to stderr every N
 * seconds so multi-hour sweeps and searches are not silent.
 */

namespace spikesim::obs {

/** True while a trace collection is active (relaxed load). */
bool tracingActive();

/**
 * Begin collecting span events. Resets the buffer and the trace epoch
 * (spans get timestamps relative to this call).
 */
void startTracing();

/**
 * Stop collecting and render the buffered events as a Chrome
 * trace-event document: {"traceEvents":[...]}. No-op ("" events) if
 * tracing was never started.
 */
std::string stopTracingToString();

/** stopTracingToString() + write to a file; fatal() on I/O failure. */
void stopTracing(const std::string& path);

/** Number of events dropped because the buffer cap was reached. */
std::uint64_t droppedEvents();

/**
 * Copy a dynamically built name into a process-lifetime pool and
 * return a stable pointer (deduplicated). Cold path only — use for
 * span names that are not string literals (e.g. phase names).
 */
const char* internName(std::string_view s);

/**
 * RAII span. Name and category must be string literals (or otherwise
 * outlive the trace collection) — the buffer stores the pointers.
 *
 *     { obs::Span s("replay.shard", "sim"); ... }
 */
class Span
{
  public:
    Span(const char* name, const char* cat)
    {
        if (tracingActive())
            begin(name, cat);
    }
    ~Span()
    {
        if (armed_)
            end();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

  private:
    void begin(const char* name, const char* cat);
    void end();

    const char* name_ = nullptr;
    const char* cat_ = nullptr;
    std::uint64_t start_ns_ = 0;
    bool armed_ = false;
};

/**
 * Validate a parsed Chrome trace-event document: top-level object with
 * a "traceEvents" array; every event has string name/cat, numeric
 * pid/tid/ts, and one of the supported phases — "X" with numeric dur
 * >= 0, balanced "B"/"E" per tid, or counter "C" with an args object
 * of one or more numeric series values (the flight recorder's
 * timeline form). Returns false and fills `err` on the first
 * violation.
 */
bool validateChromeTrace(const JsonValue& doc, std::string* err);

/**
 * Background heartbeat: every `interval_s` seconds prints one
 * "[progress] t=...s key=val ..." line (counter deltas since the last
 * beat) to `out`. Goes to stderr in the benches so stdout stays
 * byte-identical with observability off.
 */
class ProgressMeter
{
  public:
    ProgressMeter(double interval_s, std::ostream& out);
    ~ProgressMeter();

    ProgressMeter(const ProgressMeter&) = delete;
    ProgressMeter& operator=(const ProgressMeter&) = delete;

  private:
    struct Impl;
    Impl* impl_;
};

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_TRACING_HH
