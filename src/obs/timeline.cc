#include "obs/timeline.hh"

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "support/panic.hh"

namespace spikesim::obs {

Timeline::Timeline(TimelineConfig config) : config_(std::move(config))
{
    SPIKESIM_ASSERT(config_.capacity >= 1,
                    "timeline capacity must be >= 1");
}

std::size_t
Timeline::addSeries(std::string name)
{
    Series s;
    s.name = std::move(name);
    // Retained windows predate this series; they read 0.
    s.ring.assign(config_.capacity, 0.0);
    series_.push_back(std::move(s));
    return series_.size() - 1;
}

std::size_t
Timeline::findSeries(std::string_view name) const
{
    for (std::size_t i = 0; i < series_.size(); ++i)
        if (series_[i].name == name)
            return i;
    return npos;
}

void
Timeline::appendWindow(std::span<const double> values)
{
    const std::size_t slot = total_windows_ % config_.capacity;
    for (std::size_t i = 0; i < series_.size(); ++i)
        series_[i].ring[slot] = i < values.size() ? values[i] : 0.0;
    ++total_windows_;
}

std::size_t
Timeline::firstWindow() const
{
    return total_windows_ > config_.capacity
               ? total_windows_ - config_.capacity
               : 0;
}

double
Timeline::value(std::size_t id, std::size_t w) const
{
    SPIKESIM_ASSERT(w >= firstWindow() && w < total_windows_,
                    "timeline window not retained");
    return series_[id].ring[w % config_.capacity];
}

std::string
Timeline::renderSection() const
{
    std::string out = "{\"name\":\"";
    out += jsonEscape(config_.name);
    out += "\",\"window_ticks\":" + jsonNumber(config_.window_ticks);
    out += ",\"us_per_tick\":" + jsonNumber(config_.us_per_tick);
    out += ",\"capacity\":" + std::to_string(config_.capacity);
    out += ",\"total_windows\":" + std::to_string(total_windows_);
    out += ",\"first_window\":" + std::to_string(firstWindow());
    out += ",\"series\":{";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += jsonEscape(series_[i].name);
        out += "\":[";
        for (std::size_t w = firstWindow(); w < total_windows_; ++w) {
            if (w != firstWindow())
                out += ',';
            out += jsonNumber(value(i, w));
        }
        out += ']';
    }
    out += "}}";
    return out;
}

std::string
renderTimelineTrace(std::span<const Timeline> timelines)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t t = 0; t < timelines.size(); ++t) {
        const Timeline& tl = timelines[t];
        const double window_us =
            tl.config().window_ticks * tl.config().us_per_tick;
        for (std::size_t w = tl.firstWindow(); w < tl.totalWindows();
             ++w) {
            const double ts = static_cast<double>(w) * window_us;
            for (std::size_t s = 0; s < tl.numSeries(); ++s) {
                if (!first)
                    out += ',';
                first = false;
                out += "{\"name\":\"";
                out += jsonEscape(tl.seriesName(s));
                out += "\",\"cat\":\"timeline\",\"ph\":\"C\",\"pid\":";
                out += std::to_string(t + 1);
                out += ",\"tid\":0,\"ts\":";
                out += jsonNumber(ts);
                out += ",\"args\":{\"value\":";
                out += jsonNumber(tl.value(s, w));
                out += "}}";
            }
        }
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void
writeTimelineTrace(std::span<const Timeline> timelines,
                   const std::string& path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        support::fatal("cannot open timeline output file: " + path);
    f << renderTimelineTrace(timelines) << '\n';
    f.close();
    if (!f)
        support::fatal("failed writing timeline output file: " + path);
}

struct TimelineSampler::Impl {
    Timeline timeline;
    double interval_s;
    std::map<std::string, std::uint64_t> last;
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;

    explicit Impl(double s, std::size_t capacity)
        : timeline(TimelineConfig{"wall", s, 1e6, capacity}),
          interval_s(s)
    {
    }

    void
    run()
    {
        std::unique_lock<std::mutex> lk(mu);
        while (!stop) {
            cv.wait_for(lk, std::chrono::duration<double>(interval_s),
                        [&] { return stop; });
            if (stop)
                break;
            beat();
        }
    }

    /** One window: per-counter deltas since the previous beat. Caller
     *  holds mu (the ring and series list are shared with stop()). */
    void
    beat()
    {
        const Snapshot snap = Registry::instance().snapshot();
        std::vector<double> values(timeline.numSeries(), 0.0);
        for (const auto& [name, v] : snap.counters) {
            std::size_t id = timeline.findSeries(name);
            if (id == Timeline::npos) {
                if (v == 0)
                    continue; // don't open series that never move
                id = timeline.addSeries(name);
            }
            if (id >= values.size())
                values.resize(id + 1, 0.0);
            values[id] = static_cast<double>(v - last[name]);
            last[name] = v;
        }
        timeline.appendWindow(values);
    }
};

TimelineSampler::TimelineSampler(double interval_s, std::size_t capacity)
    : impl_(std::make_unique<Impl>(interval_s, capacity))
{
    impl_->thread = std::thread([this] { impl_->run(); });
}

TimelineSampler::~TimelineSampler()
{
    stop();
}

void
TimelineSampler::stop()
{
    if (!impl_->thread.joinable())
        return;
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    impl_->thread.join();
    // Final partial window so short runs still record something.
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->beat();
}

const Timeline&
TimelineSampler::timeline() const
{
    return impl_->timeline;
}

} // namespace spikesim::obs
