#include "obs/perf.hh"

#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace spikesim::obs {

namespace {

double
ratio(const PerfSample::Value& num, const PerfSample::Value& den,
      double scale)
{
    if (!num.ok || !den.ok || den.count <= 0.0)
        return 0.0;
    return num.count / den.count * scale;
}

} // namespace

double
PerfSample::ipc() const
{
    return ratio(instructions, cycles, 1.0);
}

double
PerfSample::branchMissPct() const
{
    return ratio(branch_misses, branches, 100.0);
}

double
PerfSample::l1iMpki() const
{
    return ratio(l1i_misses, instructions, 1000.0);
}

double
PerfSample::l1dMpki() const
{
    return ratio(l1d_misses, instructions, 1000.0);
}

double
PerfSample::itlbMpki() const
{
    return ratio(itlb_misses, instructions, 1000.0);
}

double
PerfSample::frontendBoundPct() const
{
    return ratio(stalled_frontend, cycles, 100.0);
}

#if defined(__linux__)

namespace {

/** Hardware-cache config encoding per perf_event_open(2). */
constexpr std::uint64_t
hwCache(std::uint64_t cache, std::uint64_t op, std::uint64_t result)
{
    return cache | (op << 8) | (result << 16);
}

struct EventSpec {
    const char* name;
    std::uint32_t type;
    std::uint64_t config;
    PerfSample::Value PerfSample::* slot;
};

constexpr EventSpec kEvents[] = {
    {"cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES,
     &PerfSample::cycles},
    {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
     &PerfSample::instructions},
    {"branches", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS,
     &PerfSample::branches},
    {"branch-misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES,
     &PerfSample::branch_misses},
    {"stalled-cycles-frontend", PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_STALLED_CYCLES_FRONTEND,
     &PerfSample::stalled_frontend},
    {"L1-icache-load-misses", PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_L1I, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS),
     &PerfSample::l1i_misses},
    {"L1-dcache-load-misses", PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS),
     &PerfSample::l1d_misses},
    {"iTLB-load-misses", PERF_TYPE_HW_CACHE,
     hwCache(PERF_COUNT_HW_CACHE_ITLB, PERF_COUNT_HW_CACHE_OP_READ,
             PERF_COUNT_HW_CACHE_RESULT_MISS),
     &PerfSample::itlb_misses},
};

} // namespace

struct PerfCounters::Impl {
    struct Open {
        const EventSpec* spec = nullptr;
        int fd = -1;
    };
    std::vector<Open> open;
    std::string reason;
};

PerfCounters::PerfCounters() : impl_(std::make_unique<Impl>())
{
    std::string first_err;
    for (const EventSpec& ev : kEvents) {
        perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = ev.type;
        attr.config = ev.config;
        attr.disabled = 1;
        // Count only our own user-space work: stays openable at
        // perf_event_paranoid == 2 and measures exactly the simulator.
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        // Child threads inherit the counter — the replay pool's workers
        // are created after construction and must be counted.
        attr.inherit = 1;
        attr.read_format = PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
        const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                                /*cpu=*/-1, /*group_fd=*/-1,
                                /*flags=*/0UL);
        if (fd < 0) {
            if (first_err.empty())
                first_err = std::string(ev.name) + ": " +
                            std::strerror(errno);
            continue;
        }
        impl_->open.push_back({&ev, static_cast<int>(fd)});
    }
    if (impl_->open.empty())
        impl_->reason = first_err.empty()
                            ? "no events attempted"
                            : "perf_event_open failed (" + first_err +
                                  ")";
}

PerfCounters::~PerfCounters()
{
    for (const Impl::Open& o : impl_->open)
        close(o.fd);
}

bool
PerfCounters::available() const
{
    return !impl_->open.empty();
}

const std::string&
PerfCounters::reason() const
{
    return impl_->reason;
}

void
PerfCounters::start()
{
    for (const Impl::Open& o : impl_->open) {
        ioctl(o.fd, PERF_EVENT_IOC_RESET, 0);
        ioctl(o.fd, PERF_EVENT_IOC_ENABLE, 0);
    }
}

void
PerfCounters::stop()
{
    for (const Impl::Open& o : impl_->open)
        ioctl(o.fd, PERF_EVENT_IOC_DISABLE, 0);
}

PerfSample
PerfCounters::sample() const
{
    PerfSample s;
    for (const Impl::Open& o : impl_->open) {
        // value, time_enabled, time_running (per read_format above).
        std::uint64_t buf[3] = {0, 0, 0};
        const ssize_t n = read(o.fd, buf, sizeof(buf));
        if (n != static_cast<ssize_t>(sizeof(buf)))
            continue;
        double count = static_cast<double>(buf[0]);
        // Standard multiplex scaling: extrapolate to the full enabled
        // window when the PMU timesliced this counter.
        if (buf[2] != 0 && buf[2] < buf[1])
            count *= static_cast<double>(buf[1]) /
                     static_cast<double>(buf[2]);
        PerfSample::Value& v = s.*(o.spec->slot);
        v.count = count;
        v.ok = true;
        s.available = true;
    }
    return s;
}

#else // !__linux__

struct PerfCounters::Impl {
    std::string reason = "perf_event_open requires Linux";
};

PerfCounters::PerfCounters() : impl_(std::make_unique<Impl>()) {}
PerfCounters::~PerfCounters() = default;

bool
PerfCounters::available() const
{
    return false;
}

const std::string&
PerfCounters::reason() const
{
    return impl_->reason;
}

void
PerfCounters::start()
{
}

void
PerfCounters::stop()
{
}

PerfSample
PerfCounters::sample() const
{
    return {};
}

#endif // __linux__

} // namespace spikesim::obs
