#include "obs/sketch.hh"

#include <algorithm>
#include <cmath>

namespace spikesim::obs {

std::uint64_t
QuantileSketch::bucketLowerBound(std::size_t index)
{
    if (index < (std::size_t(1) << kSubBits))
        return index;
    const unsigned s =
        static_cast<unsigned>(index >> kSubBits) - 1;
    const std::uint64_t t =
        index - (static_cast<std::size_t>(s) << kSubBits);
    return t << s;
}

std::uint64_t
QuantileSketch::bucketUpperBound(std::size_t index)
{
    if (index < (std::size_t(1) << kSubBits))
        return index;
    const unsigned s =
        static_cast<unsigned>(index >> kSubBits) - 1;
    const std::uint64_t t =
        index - (static_cast<std::size_t>(s) << kSubBits);
    return ((t + 1) << s) - 1;
}

void
QuantileSketch::record(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    const std::size_t b = bucketIndex(v);
    if (b >= counts_.size())
        counts_.resize(b + 1, 0);
    counts_[b] += count;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += count;
    sum_ += v * count;
}

void
QuantileSketch::merge(const QuantileSketch& other)
{
    if (other.count_ == 0)
        return;
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t b = 0; b < other.counts_.size(); ++b)
        counts_[b] += other.counts_[b];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

std::uint64_t
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        cum += counts_[b];
        if (cum >= rank)
            return std::clamp(bucketUpperBound(b), min_, max_);
    }
    return max_;
}

std::uint64_t
QuantileSketch::countAbove(std::uint64_t threshold) const
{
    const std::size_t first = bucketIndex(threshold) + 1;
    std::uint64_t n = 0;
    for (std::size_t b = first; b < counts_.size(); ++b)
        n += counts_[b];
    return n;
}

void
QuantileSketch::clear()
{
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

} // namespace spikesim::obs
