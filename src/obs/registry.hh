#ifndef SPIKESIM_OBS_REGISTRY_HH
#define SPIKESIM_OBS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.hh"
#include "support/histogram.hh"

/**
 * @file
 * Process-wide metrics registry: hierarchical dotted names
 * (`db.bufferpool.hits`, `sim.replay.refs`, `opt.search.accepted`, ...)
 * mapped to counters, gauges, and log2 histograms. The hot path is
 * lock-free: each metric owns a small array of cache-line-padded atomic
 * shards and a recording thread picks one by a thread-local index, so
 * concurrent writers from the replay engine's thread pool touch
 * different cache lines. Merging happens only on snapshot().
 *
 * Compile-time gate: building with -DSPIKESIM_OBS=0 turns every record
 * call into a no-op (the types stay so call sites don't ifdef), which
 * is how bench/micro_obs measures the compiled-out floor.
 */

#ifndef SPIKESIM_OBS
#define SPIKESIM_OBS 1
#endif

namespace spikesim::obs {

namespace detail {

/// Shard count per metric; power of two so the pick is a mask.
inline constexpr std::size_t kShards = 16;

struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
};

/// Stable per-thread shard index (dense ids, wrapped by the mask).
std::size_t shardIndex();

} // namespace detail

/**
 * Monotonic counter. add() is a single relaxed fetch_add on this
 * thread's shard; value() sums the shards (approximate only while
 * writers are live, exact at any quiescent point such as after
 * ThreadPool::wait()).
 */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
#if SPIKESIM_OBS
        cells_[detail::shardIndex() & (detail::kShards - 1)]
            .v.fetch_add(n, std::memory_order_relaxed);
#else
        (void)n;
#endif
    }

    std::uint64_t value() const;
    void reset();

  private:
    detail::Cell cells_[detail::kShards];
};

/** Last-writer-wins signed gauge (queue depths, sizes). */
class Gauge
{
  public:
    void set(std::int64_t v)
    {
#if SPIKESIM_OBS
        v_.store(v, std::memory_order_relaxed);
#else
        (void)v;
#endif
    }

    void add(std::int64_t d)
    {
#if SPIKESIM_OBS
        v_.fetch_add(d, std::memory_order_relaxed);
#else
        (void)d;
#endif
    }

    /** Raise the stored maximum to at least v. */
    void max(std::int64_t v);

    std::int64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * Log2-bucketed histogram with sharded atomic buckets; snapshot()
 * materializes a support::Log2Histogram.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void record(std::uint64_t value, std::uint64_t count = 1)
    {
#if SPIKESIM_OBS
        std::size_t b = 0;
        while ((value >> b) > 1)
            ++b;
        shards_[detail::shardIndex() & (detail::kShards - 1)]
            .bucket[b]
            .fetch_add(count, std::memory_order_relaxed);
#else
        (void)value;
        (void)count;
#endif
    }

    support::Log2Histogram snapshot() const;
    std::uint64_t totalSamples() const;
    void reset();

  private:
    struct Shard {
        std::atomic<std::uint64_t> bucket[kBuckets]{};
    };
    Shard shards_[detail::kShards];
};

/**
 * Bounded-relative-error quantile metric (obs/sketch.hh) behind the
 * registry's sharding convention: each shard is a mutex + lazily grown
 * QuantileSketch, a recording thread locks only its own shard (the
 * sketch's bucket vector can grow, so plain atomics don't fit), and
 * snapshot() merges shards in shard order — deterministic totals at
 * any quiescent point. Use where a log2 histogram is too coarse: p99
 * within ~0.8% instead of within 2x.
 */
class SketchMetric
{
  public:
    void record(std::uint64_t value, std::uint64_t count = 1)
    {
#if SPIKESIM_OBS
        Shard& s =
            shards_[detail::shardIndex() & (detail::kShards - 1)];
        std::lock_guard<std::mutex> lk(s.mu);
        s.sketch.record(value, count);
#else
        (void)value;
        (void)count;
#endif
    }

    /** Fold a whole pre-built sketch in (one lock, bucket-wise add). */
    void merge(const QuantileSketch& other)
    {
#if SPIKESIM_OBS
        Shard& s =
            shards_[detail::shardIndex() & (detail::kShards - 1)];
        std::lock_guard<std::mutex> lk(s.mu);
        s.sketch.merge(other);
#else
        (void)other;
#endif
    }

    /** Shard-order merge of every shard's sketch. */
    QuantileSketch snapshot() const;
    std::uint64_t totalSamples() const;
    void reset();

  private:
    struct Shard {
        mutable std::mutex mu;
        QuantileSketch sketch;
    };
    Shard shards_[detail::kShards];
};

/** Point-in-time copy of every registered metric. */
struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, support::Log2Histogram>>
        histograms;
    std::vector<std::pair<std::string, QuantileSketch>> sketches;
};

/**
 * Name → metric map. Registration takes a mutex (cold: at most once per
 * call site thanks to static locals at the call sites); returned
 * references are stable for the process lifetime.
 */
class Registry
{
  public:
    static Registry& instance();

    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name);
    SketchMetric& sketch(std::string_view name);

    Snapshot snapshot() const;

    /** Zero every metric's value (names stay registered). Tests only. */
    void resetValues();

  private:
    Registry() = default;

    mutable std::mutex mu_;
    // std::map: node-based, so references survive later insertions.
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
    std::map<std::string, std::unique_ptr<SketchMetric>, std::less<>>
        sketches_;
};

/** Shorthands for the common "static local reference" idiom. */
inline Counter& counter(std::string_view name)
{
    return Registry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name)
{
    return Registry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name)
{
    return Registry::instance().histogram(name);
}
inline SketchMetric& sketch(std::string_view name)
{
    return Registry::instance().sketch(name);
}

/**
 * Always-disabled counter with the same call shape as Counter; lets
 * bench/micro_obs measure what a compiled-out call site costs without
 * rebuilding the tree with SPIKESIM_OBS=0.
 */
class NullCounter
{
  public:
    void add(std::uint64_t n = 1) { (void)n; }
    std::uint64_t value() const { return 0; }
};

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_REGISTRY_HH
