#ifndef SPIKESIM_OBS_MANIFEST_HH
#define SPIKESIM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/registry.hh"

/**
 * @file
 * Run manifests: a structured JSON record of one bench invocation —
 * binary, arguments, seed, thread count, wall/cpu time per phase, the
 * BENCH_*.json artifacts it produced, and a final snapshot of every
 * registry metric. Written by `--manifest-out file.json` through
 * bench/common's ObsRun and pretty-printed by tools/obs_dump, so the
 * perf numbers in a BENCH file are never separated from the
 * configuration that produced them.
 */

namespace spikesim::obs {

/** One timed phase (wall via steady_clock, cpu via std::clock). */
struct PhaseTime {
    std::string name;
    double wall_s = 0.0;
    double cpu_s = 0.0;
};

/** One artifact the run produced (name + raw JSON payload). */
struct Artifact {
    std::string name;
    std::string json; ///< verbatim document, embedded on write
};

struct Manifest {
    std::string binary;
    std::vector<std::string> args;
    std::uint64_t seed = 0;
    std::size_t threads = 0;
    /// Free-form key/value metadata (config labels, corpus state...).
    std::vector<std::pair<std::string, std::string>> info;
    std::vector<PhaseTime> phases;
    std::vector<Artifact> artifacts;
    /// Flight recorder sections, pre-rendered as JSON objects
    /// (Timeline::renderSection / renderSloVerdict); emitted as the
    /// top-level "timeline" and "slo" arrays. Malformed entries
    /// degrade to null like artifacts.
    std::vector<std::string> timelines;
    std::vector<std::string> slos;
};

/**
 * Render the manifest (plus the current registry snapshot) as a JSON
 * document. Histograms are emitted as {total, mean, buckets:[...]}
 * with trailing zero buckets trimmed.
 */
std::string renderManifest(const Manifest& m);

/** renderManifest() + write to a file; fatal() on I/O failure. */
void writeManifest(const Manifest& m, const std::string& path);

/**
 * RAII phase timer: appends one PhaseTime to `m.phases` on
 * destruction and doubles as a trace span (same name, cat "phase").
 */
class PhaseClock
{
  public:
    PhaseClock(Manifest& m, std::string name);
    ~PhaseClock();

    PhaseClock(const PhaseClock&) = delete;
    PhaseClock& operator=(const PhaseClock&) = delete;

  private:
    struct Impl;
    Impl* impl_;
};

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_MANIFEST_HH
