#ifndef SPIKESIM_OBS_TIMELINE_HH
#define SPIKESIM_OBS_TIMELINE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/**
 * @file
 * Flight-recorder timelines: fixed-interval windowed samples of named
 * series (throughput, queue depth, window quantiles, ...) held in
 * preallocated ring buffers. The serving simulation drives windows on
 * its virtual clock (one window per `window_cycles`); benches can run a
 * wall-time TimelineSampler that snapshots registry counter deltas on a
 * background beat. Either way the result renders two ways: a compact
 * `timeline` section in the run manifest, and a Chrome trace-event
 * document of counter ("C") events (`--timeline-out`) that Perfetto
 * plots as per-window counter tracks.
 *
 * The counter trace is a separate document from the span trace on
 * purpose: spans are stamped in wall nanoseconds since the trace epoch
 * while serving windows live on the simulated cycle clock, and merging
 * the two time axes into one file would make both unreadable.
 */

namespace spikesim::obs {

struct TimelineConfig
{
    /** Display name (one Perfetto "process" per timeline). */
    std::string name;
    /** Ticks (e.g. simulated cycles, or seconds) per window. */
    double window_ticks = 1.0;
    /** Microseconds one tick maps to in the counter trace. */
    double us_per_tick = 1.0;
    /** Ring capacity in windows; older windows are evicted. */
    std::size_t capacity = 512;
};

/**
 * One timeline: N named series sampled once per window into rings of
 * `capacity` windows. Windows are appended in order; when the ring is
 * full the oldest window falls off (evicted() counts them). Copyable —
 * ObsRun snapshots timelines by value at registration.
 */
class Timeline
{
  public:
    explicit Timeline(TimelineConfig config);

    const TimelineConfig& config() const { return config_; }

    /**
     * Register a series and return its id. Allowed after windows were
     * appended: retained windows read 0 for the new series.
     */
    std::size_t addSeries(std::string name);

    /** Series id by name, or npos. */
    static constexpr std::size_t npos = std::size_t(-1);
    std::size_t findSeries(std::string_view name) const;

    std::size_t numSeries() const { return series_.size(); }
    const std::string&
    seriesName(std::size_t id) const
    {
        return series_[id].name;
    }

    /**
     * Append one window: `values[i]` is series i's sample (missing
     * trailing series read 0). Evicts the oldest window when full.
     */
    void appendWindow(std::span<const double> values);

    /** Windows ever appended (retained + evicted). */
    std::size_t totalWindows() const { return total_windows_; }
    /** Index of the oldest retained window. */
    std::size_t firstWindow() const;
    std::size_t
    evictedWindows() const
    {
        return firstWindow();
    }

    /** Value of series `id` at absolute window `w` (must be
     *  retained). */
    double value(std::size_t id, std::size_t w) const;

    /**
     * Render the manifest section: {"name", "window_ticks",
     * "us_per_tick", "capacity", "total_windows", "first_window",
     * "series": {name: [...retained values...]}}.
     */
    std::string renderSection() const;

  private:
    struct Series {
        std::string name;
        std::vector<double> ring; ///< slot = window % capacity
    };

    TimelineConfig config_;
    std::vector<Series> series_;
    std::size_t total_windows_ = 0;
};

/**
 * Render timelines as one Chrome trace-event document of counter ("C")
 * events: per retained window, one event per series with ts = window
 * start in microseconds and args {"value": sample}. Each timeline gets
 * its own pid so Perfetto groups its counter tracks together.
 */
std::string renderTimelineTrace(std::span<const Timeline> timelines);

/** renderTimelineTrace() + write to a file; fatal() on I/O failure. */
void writeTimelineTrace(std::span<const Timeline> timelines,
                        const std::string& path);

/**
 * Wall-time sampler: a background thread that once per `interval_s`
 * appends a window to its Timeline with one series per registry
 * counter (created on first appearance), holding the counter's delta
 * since the previous beat. stop() (or destruction) joins the thread
 * and takes a final partial window. The wall-clock sibling of the
 * serving path's virtual-time windows.
 */
class TimelineSampler
{
  public:
    TimelineSampler(double interval_s, std::size_t capacity = 512);
    ~TimelineSampler();

    TimelineSampler(const TimelineSampler&) = delete;
    TimelineSampler& operator=(const TimelineSampler&) = delete;

    /** Join the beat thread and record the final window. Idempotent. */
    void stop();

    /** The collected timeline (stable reference; stop() first if the
     *  sampler may still be beating). */
    const Timeline& timeline() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_TIMELINE_HH
