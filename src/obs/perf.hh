#ifndef SPIKESIM_OBS_PERF_HH
#define SPIKESIM_OBS_PERF_HH

#include <memory>
#include <string>

/**
 * @file
 * Hardware self-profiling via perf_event_open: the process counts its
 * own cycles, instructions, branches and cache/TLB misses while a bench
 * runs, and folds the derived rates (IPC, branch-miss %, L1I/L1D/iTLB
 * MPKI, a topdown-style front-end-bound estimate) into the metrics
 * registry and run manifests. For a simulator whose subject is i-cache
 * behaviour, this closes the loop: the replay engine's own front-end
 * profile lands next to the miss curves it produces.
 *
 * Counters are opened per-process (pid 0, all CPUs) with inherit set,
 * so worker threads created *after* the open are counted too —
 * bench/common starts the counters before building its thread pool.
 * Each counter is an individual fd (inherit does not compose with
 * group reads) read with TOTAL_TIME_ENABLED/RUNNING so multiplexed
 * values are scaled the standard way.
 *
 * Availability is strictly best-effort: unprivileged containers
 * (perf_event_paranoid >= 2 without CAP_PERFMON), kernels without a
 * PMU driver, and non-Linux hosts all simply yield available() ==
 * false with a human-readable reason, and every consumer keeps
 * running — manifests then record perf.available = 0 and no rates.
 * Individual counters can also fail (e.g. no stalled-cycles event on
 * this PMU) while the rest work; each sampled value carries its own
 * ok flag.
 */

namespace spikesim::obs {

/** One read of every counter, multiplex-scaled. */
struct PerfSample {
    struct Value {
        double count = 0.0; ///< scaled event count
        bool ok = false;    ///< counter opened and read successfully
    };

    bool available = false; ///< at least one counter delivered
    Value cycles;
    Value instructions;
    Value branches;
    Value branch_misses;
    Value stalled_frontend; ///< stalled-cycles-frontend (may be absent)
    Value l1i_misses;       ///< L1I read misses
    Value l1d_misses;       ///< L1D read misses
    Value itlb_misses;      ///< iTLB read misses

    /** Derived rates; 0.0 whenever an input is missing or zero. */
    double ipc() const;
    double branchMissPct() const;
    double l1iMpki() const;
    double l1dMpki() const;
    double itlbMpki() const;
    /** Topdown-style front-end-bound estimate:
     *  stalled-cycles-frontend / cycles, in percent. */
    double frontendBoundPct() const;
};

/**
 * Owns the counter fds. Construct, then start() immediately before the
 * measured region (resets and enables), then sample() at any point
 * after. Never fatal: when nothing can be opened the object is inert.
 */
class PerfCounters
{
  public:
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    /** True when at least one hardware counter is open. */
    bool available() const;

    /** Why available() is false ("" while it is true). */
    const std::string& reason() const;

    /** Zero and enable every open counter. */
    void start();

    /** Disable counting (sample() still works afterwards). */
    void stop();

    /** Read every counter, scaling for multiplexing. */
    PerfSample sample() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace spikesim::obs

#endif // SPIKESIM_OBS_PERF_HH
