#include "obs/tracing.hh"

#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "obs/registry.hh"
#include "support/panic.hh"

namespace spikesim::obs {

namespace {

struct Event {
    const char* name;
    const char* cat;
    std::uint32_t tid;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
};

// Hard cap on buffered events so a runaway span site can't eat the
// heap; overflow is counted and reported instead of silently dropped.
constexpr std::size_t kMaxEvents = 1u << 22;

std::atomic<bool> g_active{false};
std::mutex g_mu;
std::vector<Event> g_events;
std::atomic<std::uint64_t> g_dropped{0};
std::chrono::steady_clock::time_point g_epoch;

std::uint64_t nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_epoch)
            .count());
}

std::uint32_t threadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

} // namespace

bool tracingActive()
{
    return g_active.load(std::memory_order_relaxed);
}

void startTracing()
{
    std::lock_guard<std::mutex> lk(g_mu);
    g_events.clear();
    g_events.reserve(1u << 16);
    g_dropped.store(0, std::memory_order_relaxed);
    g_epoch = std::chrono::steady_clock::now();
    g_active.store(true, std::memory_order_relaxed);
}

void Span::begin(const char* name, const char* cat)
{
    name_ = name;
    cat_ = cat;
    start_ns_ = nowNs();
    armed_ = true;
}

void Span::end()
{
    armed_ = false;
    if (!tracingActive())
        return; // collection stopped while the span was open
    Event e{name_, cat_, threadId(), start_ns_,
            nowNs() - start_ns_};
    std::lock_guard<std::mutex> lk(g_mu);
    if (g_events.size() >= kMaxEvents) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    g_events.push_back(e);
}

std::uint64_t droppedEvents()
{
    return g_dropped.load(std::memory_order_relaxed);
}

const char* internName(std::string_view s)
{
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<std::string>,
                    std::less<>>
        pool;
    std::lock_guard<std::mutex> lk(mu);
    auto it = pool.find(s);
    if (it == pool.end())
        it = pool.emplace(std::string(s),
                          std::make_unique<std::string>(s))
                 .first;
    return it->second->c_str();
}

std::string stopTracingToString()
{
    g_active.store(false, std::memory_order_relaxed);
    std::vector<Event> events;
    {
        std::lock_guard<std::mutex> lk(g_mu);
        events.swap(g_events);
    }
    // Chrome trace-event JSON: ts/dur are microseconds (fractional
    // allowed); "X" complete events carry their own duration so no
    // B/E pairing is needed.
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const Event& e : events) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":\"";
        out += jsonEscape(e.name);
        out += "\",\"cat\":\"";
        out += jsonEscape(e.cat);
        out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":";
        out += jsonNumber(static_cast<double>(e.ts_ns) / 1000.0);
        out += ",\"dur\":";
        out += jsonNumber(static_cast<double>(e.dur_ns) / 1000.0);
        out += '}';
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void stopTracing(const std::string& path)
{
    std::uint64_t dropped = droppedEvents();
    std::string doc = stopTracingToString();
    std::ofstream f(path, std::ios::binary);
    if (!f)
        support::fatal("cannot open trace output file: " + path);
    f << doc << '\n';
    f.close();
    if (!f)
        support::fatal("failed writing trace output file: " + path);
    if (dropped)
        std::fprintf(stderr,
                     "[trace] warning: %llu events dropped (buffer "
                     "cap %zu)\n",
                     static_cast<unsigned long long>(dropped),
                     kMaxEvents);
}

bool validateChromeTrace(const JsonValue& doc, std::string* err)
{
    auto fail = [&](const std::string& msg) {
        if (err)
            *err = msg;
        return false;
    };
    if (!doc.isObject())
        return fail("top level is not an object");
    const JsonValue* events = doc.find("traceEvents");
    if (!events || !events->isArray())
        return fail("missing traceEvents array");
    // Balanced-B/E bookkeeping per tid (we only emit X, but the
    // validator accepts the other legal phase encoding too).
    std::map<double, std::int64_t> open_per_tid;
    std::size_t i = 0;
    for (const JsonValue& e : events->array()) {
        std::string at = " in event " + std::to_string(i++);
        if (!e.isObject())
            return fail("event is not an object" + at);
        const JsonValue* name = e.find("name");
        const JsonValue* cat = e.find("cat");
        const JsonValue* ph = e.find("ph");
        const JsonValue* pid = e.find("pid");
        const JsonValue* tid = e.find("tid");
        const JsonValue* ts = e.find("ts");
        if (!name || !name->isString())
            return fail("missing string name" + at);
        if (!cat || !cat->isString())
            return fail("missing string cat" + at);
        if (!ph || !ph->isString() || ph->str().size() != 1)
            return fail("missing one-char ph" + at);
        if (!pid || !pid->isNumber())
            return fail("missing numeric pid" + at);
        if (!tid || !tid->isNumber())
            return fail("missing numeric tid" + at);
        if (!ts || !ts->isNumber() || ts->number() < 0)
            return fail("missing numeric ts >= 0" + at);
        char phase = ph->str()[0];
        if (phase == 'X') {
            const JsonValue* dur = e.find("dur");
            if (!dur || !dur->isNumber() || dur->number() < 0)
                return fail("X event missing numeric dur >= 0" + at);
        } else if (phase == 'C') {
            // Counter event: args is an object of one or more numeric
            // series values (what Perfetto plots as counter tracks).
            const JsonValue* args = e.find("args");
            if (!args || !args->isObject())
                return fail("C event missing args object" + at);
            if (args->members().empty())
                return fail("C event args object is empty" + at);
            for (const auto& [key, val] : args->members())
                if (!val.isNumber())
                    return fail("C event args \"" + key +
                                "\" is not a number" + at);
        } else if (phase == 'B') {
            ++open_per_tid[tid->number()];
        } else if (phase == 'E') {
            if (--open_per_tid[tid->number()] < 0)
                return fail("E without matching B" + at);
        } else {
            return fail(std::string("unsupported phase '") + phase +
                        "'" + at);
        }
    }
    for (const auto& [tid, open] : open_per_tid)
        if (open != 0)
            return fail("unbalanced B/E on tid " +
                        std::to_string(static_cast<long long>(tid)));
    return true;
}

struct ProgressMeter::Impl {
    std::ostream& out;
    double interval_s;
    std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;

    explicit Impl(double s, std::ostream& o) : out(o), interval_s(s) {}

    void run()
    {
        auto t0 = std::chrono::steady_clock::now();
        std::map<std::string, std::uint64_t> last;
        std::unique_lock<std::mutex> lk(mu);
        while (!stop) {
            cv.wait_for(lk,
                        std::chrono::duration<double>(interval_s),
                        [&] { return stop; });
            if (stop)
                break;
            lk.unlock();
            beat(t0, last);
            lk.lock();
        }
    }

    void beat(std::chrono::steady_clock::time_point t0,
              std::map<std::string, std::uint64_t>& last)
    {
        double t = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        Snapshot snap = Registry::instance().snapshot();
        std::string line =
            "[progress] t=" + jsonNumber(std::floor(t * 10) / 10) +
            "s";
        for (const auto& [name, v] : snap.counters) {
            std::uint64_t prev = last[name];
            last[name] = v;
            if (v == 0)
                continue;
            line += " " + name + "=" + std::to_string(v);
            if (v > prev)
                line += "(+" + std::to_string(v - prev) + ")";
        }
        line += '\n';
        out << line << std::flush;
    }
};

ProgressMeter::ProgressMeter(double interval_s, std::ostream& out)
    : impl_(new Impl(interval_s, out))
{
    impl_->thread = std::thread([this] { impl_->run(); });
}

ProgressMeter::~ProgressMeter()
{
    {
        std::lock_guard<std::mutex> lk(impl_->mu);
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    impl_->thread.join();
    delete impl_;
}

} // namespace spikesim::obs
