#include "mem/itlb.hh"

#include <bit>

#include "support/panic.hh"

namespace spikesim::mem {

ITlb::ITlb(std::uint32_t num_entries, std::uint32_t page_bytes)
{
    SPIKESIM_ASSERT(num_entries > 0, "TLB needs at least one entry");
    SPIKESIM_ASSERT(page_bytes > 0 && (page_bytes & (page_bytes - 1)) == 0,
                    "page size must be a power of two");
    entries_.resize(num_entries);
    page_shift_ =
        static_cast<std::uint32_t>(std::bit_width(page_bytes) - 1);
}

bool
ITlb::access(std::uint64_t addr)
{
    std::uint64_t page = addr >> page_shift_;
    ++now_;
    if (page == last_page_ && last_entry_ != nullptr) {
        last_entry_->stamp = now_;
        ++hits_;
        return true;
    }
    last_page_ = page;

    Entry* victim = &entries_[0];
    for (auto& e : entries_) {
        if (e.valid && e.page == page) {
            e.stamp = now_;
            last_entry_ = &e;
            ++hits_;
            return true;
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.stamp < victim->stamp)
            victim = &e;
    }
    ++misses_;
    victim->valid = true;
    victim->page = page;
    victim->stamp = now_;
    last_entry_ = victim;
    return false;
}

void
ITlb::reset()
{
    for (auto& e : entries_)
        e = Entry();
    now_ = 0;
    hits_ = 0;
    misses_ = 0;
    last_page_ = ~0ULL;
    last_entry_ = nullptr;
}

} // namespace spikesim::mem
