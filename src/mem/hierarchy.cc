#include "mem/hierarchy.hh"

#include "support/panic.hh"

namespace spikesim::mem {

HierarchyStats&
HierarchyStats::operator+=(const HierarchyStats& o)
{
    l1i += o.l1i;
    l1d += o.l1d;
    l2i += o.l2i;
    l2d += o.l2d;
    itlb_misses += o.itlb_misses;
    comm_misses += o.comm_misses;
    return *this;
}

std::uint64_t
pseudoPhysical(std::uint64_t addr, std::uint32_t page_bytes)
{
    std::uint64_t off_mask = page_bytes - 1;
    std::uint64_t page = addr / page_bytes;
    std::uint64_t hashed = page * 0x9e3779b97f4a7c15ULL;
    hashed ^= hashed >> 29;
    return (hashed * page_bytes) | (addr & off_mask);
}

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      itlb_(config.itlb_entries, config.page_bytes)
{
    SPIKESIM_ASSERT(config.l1i.check().empty(),
                    "bad L1I config: " << config.l1i.check());
    SPIKESIM_ASSERT(config.l1d.check().empty(),
                    "bad L1D config: " << config.l1d.check());
    SPIKESIM_ASSERT(config.l2.check().empty(),
                    "bad L2 config: " << config.l2.check());
}

void
MemoryHierarchy::fetchLine(std::uint64_t addr, Owner owner)
{
    if (!itlb_.access(addr))
        ++stats_.itlb_misses;
    if (l1i_.access(addr, owner).hit) {
        stats_.l1i.record(false);
        return;
    }
    stats_.l1i.record(true);
    stats_.l2i.record(
        !l2_.access(pseudoPhysical(addr, config_.page_bytes), owner)
             .hit);
}

void
MemoryHierarchy::dataLine(std::uint64_t addr)
{
    if (l1d_.access(addr, Owner::Data).hit) {
        stats_.l1d.record(false);
        return;
    }
    stats_.l1d.record(true);
    stats_.l2d.record(
        !l2_.access(pseudoPhysical(addr, config_.page_bytes),
                    Owner::Data)
             .hit);
}

} // namespace spikesim::mem
