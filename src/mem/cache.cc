#include "mem/cache.hh"

#include <bit>

#include "support/panic.hh"

namespace spikesim::mem {

std::string
CacheConfig::check() const
{
    if (line_bytes == 0 || (line_bytes & (line_bytes - 1)) != 0)
        return "line size must be a power of two";
    if (assoc == 0)
        return "associativity must be positive";
    if (size_bytes == 0 || size_bytes % (line_bytes * assoc) != 0)
        return "size must be a multiple of line*assoc";
    std::uint32_t sets = numSets();
    if ((sets & (sets - 1)) != 0)
        return "number of sets must be a power of two";
    return "";
}

std::string
CacheConfig::label() const
{
    std::string s;
    if (size_bytes >= 1024 * 1024 && size_bytes % (1024 * 1024) == 0)
        s = std::to_string(size_bytes / (1024 * 1024)) + "MB";
    else
        s = std::to_string(size_bytes / 1024) + "KB";
    s += "/" + std::to_string(line_bytes) + "B/";
    s += assoc == 1 ? "DM" : std::to_string(assoc) + "-way";
    return s;
}

SetAssocCache::SetAssocCache(const CacheConfig& config) : config_(config)
{
    std::string err = config.check();
    SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
    entries_.resize(static_cast<std::size_t>(config.numSets()) *
                    config.assoc);
    line_shift_ = static_cast<std::uint32_t>(
        std::bit_width(config.line_bytes) - 1);
    set_mask_ = config.numSets() - 1;
}

AccessResult
SetAssocCache::access(std::uint64_t addr, Owner owner)
{
    ++now_;
    std::uint64_t line = addr >> line_shift_;
    std::uint32_t set = static_cast<std::uint32_t>(line) & set_mask_;
    Entry* ways = &entries_[static_cast<std::size_t>(set) * config_.assoc];

    Entry* victim = &ways[0];
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Entry& e = ways[w];
        if (e.valid && e.tag == line) {
            e.stamp = now_;
            stats_.record(false);
            return {true, Owner::None};
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.stamp < victim->stamp) {
            victim = &e;
        }
    }

    stats_.record(true);
    ++misses_by_[static_cast<std::size_t>(owner)];
    AccessResult r;
    r.hit = false;
    r.victim = victim->valid ? victim->owner : Owner::None;
    victim->valid = true;
    victim->tag = line;
    victim->owner = owner;
    victim->stamp = now_;
    return r;
}

std::uint64_t
SetAssocCache::missesBy(Owner owner) const
{
    return misses_by_[static_cast<std::size_t>(owner)];
}

void
SetAssocCache::reset()
{
    for (auto& e : entries_)
        e = Entry();
    now_ = 0;
    stats_.clear();
    for (auto& m : misses_by_)
        m = 0;
}

} // namespace spikesim::mem
