#ifndef SPIKESIM_MEM_THREEC_HH
#define SPIKESIM_MEM_THREEC_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/cache.hh"

/**
 * @file
 * Three-C miss classification (Hill): every miss of a real cache is
 * labeled compulsory (first touch ever), capacity (a fully associative
 * LRU cache of the same size would also miss), or conflict (only the
 * set-mapped cache misses). The paper's Figure 6 analysis rests on
 * this decomposition — "capacity issues dominate at these sizes" and
 * layout optimization "not only reduces conflicts ... but also reduces
 * capacity misses by better packing"; bench/ablation_three_cs measures
 * exactly that.
 */

namespace spikesim::mem {

/**
 * Miss counts by cause. The base access/miss pair is the shared
 * support::AccessStats shape (base.misses == compulsory + capacity +
 * conflict by construction); the three classes refine it.
 */
struct ThreeCStats
{
    support::AccessStats base;
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;

    std::uint64_t accesses() const { return base.accesses; }

    std::uint64_t totalMisses() const { return base.misses; }

    ThreeCStats&
    operator+=(const ThreeCStats& o)
    {
        base += o.base;
        compulsory += o.compulsory;
        capacity += o.capacity;
        conflict += o.conflict;
        return *this;
    }
};

/** O(1) fully-associative LRU cache over line numbers. */
class FullyAssocLru
{
  public:
    /** @param num_lines capacity in cache lines. */
    explicit FullyAssocLru(std::uint32_t num_lines);

    /** Touch a line; true on hit. */
    bool access(std::uint64_t line);

  private:
    std::uint32_t capacity_;
    std::list<std::uint64_t> lru_; ///< front = most recent
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        where_;
};

/**
 * Classifying cache: a real set-associative cache shadowed by a
 * fully-associative LRU of the same capacity and a first-touch set.
 */
class ClassifyingICache
{
  public:
    explicit ClassifyingICache(const CacheConfig& config);

    /** Access the line containing `addr`. */
    void access(std::uint64_t addr);

    const ThreeCStats& stats() const { return stats_; }

  private:
    CacheConfig config_;
    SetAssocCache real_;
    FullyAssocLru ideal_;
    std::unordered_map<std::uint64_t, bool> touched_;
    std::uint32_t line_shift_;
    ThreeCStats stats_;
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_THREEC_HH
