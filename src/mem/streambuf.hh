#ifndef SPIKESIM_MEM_STREAMBUF_HH
#define SPIKESIM_MEM_STREAMBUF_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"

/**
 * @file
 * Instruction cache fronted by sequential stream buffers (Jouppi'90,
 * as used for database workloads by Ranganathan et al. ASPLOS'98 — the
 * paper's section 6 argues code layout should make stream buffers more
 * effective by lengthening sequential runs; this model lets the
 * benches test that claim).
 *
 * On an L1I miss the heads of the stream buffers are checked; a hit
 * promotes the line into the cache and the buffer prefetches the next
 * sequential line. A miss everywhere allocates the least-recently-used
 * buffer to the new stream. Only misses that escape both the cache and
 * the buffers count as demand fetches from L2/memory.
 */

namespace spikesim::mem {

/**
 * Statistics of a stream-buffered i-cache run: two chained
 * support::AccessStats levels. `l1` counts every fetch against the
 * cache itself; `stream` counts the L1 misses against the stream
 * buffers (its hits were buffer-supplied, its misses went to the next
 * level).
 */
struct StreamBufferStats
{
    support::AccessStats l1;
    support::AccessStats stream;

    std::uint64_t accesses() const { return l1.accesses; }
    std::uint64_t l1Misses() const { return l1.misses; }
    std::uint64_t streamHits() const { return stream.hits(); }
    std::uint64_t demandMisses() const { return stream.misses; }

    StreamBufferStats&
    operator+=(const StreamBufferStats& o)
    {
        l1 += o.l1;
        stream += o.stream;
        return *this;
    }

    double
    coverage() const
    {
        return l1.misses == 0 ? 0.0
                              : static_cast<double>(streamHits()) /
                                    static_cast<double>(l1.misses);
    }
};

/** L1 instruction cache plus N sequential stream buffers. */
class StreamBufferICache
{
  public:
    /**
     * @param config L1I geometry.
     * @param num_buffers number of stream buffers (paper cites a
     *        4-element buffer as effective).
     */
    StreamBufferICache(const CacheConfig& config, int num_buffers = 4);

    /** Fetch the line containing `addr`. */
    void fetchLine(std::uint64_t addr);

    const StreamBufferStats& stats() const { return stats_; }

  private:
    struct Buffer
    {
        std::uint64_t next_line = 0; ///< line number the head holds
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    SetAssocCache cache_;
    std::vector<Buffer> buffers_;
    std::uint32_t line_shift_;
    std::uint64_t now_ = 0;
    StreamBufferStats stats_;
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_STREAMBUF_HH
