#ifndef SPIKESIM_MEM_HIERARCHY_HH
#define SPIKESIM_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/itlb.hh"

/**
 * @file
 * Two-level memory hierarchy for one processor: split L1 I/D caches, a
 * unified L2, and an instruction TLB. Matches the paper's base SimOS
 * configuration (64KB 2-way L1s with 64B lines, 1.5MB 6-way unified
 * L2, 64-entry fully associative iTLB, 8KB pages). Used for the Figure
 * 14 (iTLB + L2) and Figure 15 (execution time) experiments.
 */

namespace spikesim::mem {

/** Per-CPU hierarchy geometry. */
struct HierarchyConfig
{
    CacheConfig l1i{64 * 1024, 64, 2};
    CacheConfig l1d{64 * 1024, 64, 2};
    CacheConfig l2{1536 * 1024, 64, 6};
    std::uint32_t itlb_entries = 64;
    std::uint32_t page_bytes = 8 * 1024;
};

/**
 * Aggregate miss counters for one hierarchy: one support::AccessStats
 * per cache view (l1i.accesses = instruction fetches, l1d.accesses =
 * data refs, l2i/l2d = the L2 split by requester), plus the two
 * counters with no hit notion.
 */
struct HierarchyStats
{
    support::AccessStats l1i;
    support::AccessStats l1d;
    support::AccessStats l2i;
    support::AccessStats l2d;
    std::uint64_t itlb_misses = 0;
    /** Coherence (communication) misses on shared data lines; filled
     *  by the multi-CPU replayer, not by a single hierarchy. */
    std::uint64_t comm_misses = 0;

    HierarchyStats& operator+=(const HierarchyStats& o);
};

/**
 * Pseudo-physical address: virtual pages are scattered by a fixed hash,
 * the way an OS's physical page allocator scatters them. The L2/board
 * cache is physically indexed, so without this every image and data
 * region would collide at the same cache offsets merely because their
 * virtual bases are aligned.
 */
std::uint64_t pseudoPhysical(std::uint64_t addr,
                             std::uint32_t page_bytes = 8 * 1024);

/** One processor's caches + iTLB. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig& config);

    /**
     * Fetch the instruction cache line at `addr` (one access per line
     * the caller touches). Owner distinguishes App/Kernel text.
     */
    void fetchLine(std::uint64_t addr, Owner owner);

    /** Reference the data cache line at `addr`. */
    void dataLine(std::uint64_t addr);

    const HierarchyStats& stats() const { return stats_; }
    const HierarchyConfig& config() const { return config_; }

  private:
    HierarchyConfig config_;
    SetAssocCache l1i_;
    SetAssocCache l1d_;
    SetAssocCache l2_;
    ITlb itlb_;
    HierarchyStats stats_;
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_HIERARCHY_HH
