#include "mem/streambuf.hh"

#include <bit>

#include "support/panic.hh"

namespace spikesim::mem {

StreamBufferICache::StreamBufferICache(const CacheConfig& config,
                                       int num_buffers)
    : cache_(config)
{
    std::string err = config.check();
    SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
    SPIKESIM_ASSERT(num_buffers > 0, "need at least one stream buffer");
    buffers_.resize(static_cast<std::size_t>(num_buffers));
    line_shift_ = static_cast<std::uint32_t>(
        std::bit_width(config.line_bytes) - 1);
}

void
StreamBufferICache::fetchLine(std::uint64_t addr)
{
    ++now_;
    if (cache_.access(addr, Owner::App).hit) {
        stats_.l1.record(false);
        return;
    }
    stats_.l1.record(true);

    std::uint64_t line = addr >> line_shift_;
    // Head check: a buffer whose head holds this line supplies it and
    // streams ahead.
    for (Buffer& b : buffers_) {
        if (b.valid && b.next_line == line) {
            stats_.stream.record(false);
            b.next_line = line + 1;
            b.stamp = now_;
            return;
        }
    }

    // Demand miss: fetch from the next level and (re)allocate the LRU
    // buffer to stream the successor lines.
    stats_.stream.record(true);
    Buffer* victim = &buffers_[0];
    for (Buffer& b : buffers_) {
        if (!b.valid) {
            victim = &b;
            break;
        }
        if (b.stamp < victim->stamp)
            victim = &b;
    }
    victim->valid = true;
    victim->next_line = line + 1;
    victim->stamp = now_;
}

} // namespace spikesim::mem
