#ifndef SPIKESIM_MEM_LRUSTACK_HH
#define SPIKESIM_MEM_LRUSTACK_HH

#include <cstdint>
#include <vector>

/**
 * @file
 * Single-pass multi-configuration cache simulation via Mattson's LRU
 * stack-distance algorithm (Mattson et al., IBM Systems Journal 1970),
 * applied per cache set. For a fixed number of sets, one pass over a
 * line-address stream yields hit/miss counts for *every* associativity
 * simultaneously: an access hits an A-way set-associative true-LRU
 * cache iff its per-set stack distance is < A (the inclusion
 * property). The figure benches sweep dozens of cache geometries over
 * the same trace; this turns each sweep's N full replays into one.
 */

namespace spikesim::mem {

/**
 * Per-set LRU stack-distance simulator for one set count. Stacks are
 * truncated at `max_assoc` entries — distances >= max_assoc are
 * indistinguishable (they miss in every tracked associativity), so the
 * truncation keeps the per-access cost bounded while staying exact for
 * every associativity up to the cap.
 */
class LruStackSim
{
  public:
    /**
     * @param num_sets number of cache sets (power of two).
     * @param max_assoc deepest associativity that will be queried.
     */
    LruStackSim(std::uint32_t num_sets, std::uint32_t max_assoc);

    /** Record one access to the given line number. */
    void
    access(std::uint64_t line)
    {
        std::uint64_t set = line & set_mask_;
        std::uint64_t* stack = &stack_[set * max_assoc_];
        std::uint32_t depth = depth_[set];
        std::uint32_t d = 0;
        while (d < depth && stack[d] != line)
            ++d;
        ++dist_hist_[d < depth ? d : max_assoc_];
        ++accesses_;
        // Move-to-front; entries past the cap fall off (they are LRU).
        std::uint32_t shift = d < depth ? d : max_assoc_ - 1;
        if (d >= depth && depth < max_assoc_) {
            shift = depth;
            depth_[set] = static_cast<std::uint8_t>(depth + 1);
        }
        for (std::uint32_t i = shift; i > 0; --i)
            stack[i] = stack[i - 1];
        stack[0] = line;
    }

    std::uint64_t accesses() const { return accesses_; }

    /** Hits in an `assoc`-way cache of numSets() sets (assoc <= cap). */
    std::uint64_t hitsUpTo(std::uint32_t assoc) const;

    /** Misses in an `assoc`-way cache of numSets() sets (assoc <= cap). */
    std::uint64_t
    missesAt(std::uint32_t assoc) const
    {
        return accesses_ - hitsUpTo(assoc);
    }

    /** Accesses with stack distance exactly d (d == maxAssoc() bucket
     *  collects all deeper/cold accesses). */
    std::uint64_t distanceCount(std::uint32_t d) const;

    std::uint32_t numSets() const { return set_mask_ + 1; }
    std::uint32_t maxAssoc() const { return max_assoc_; }

  private:
    std::uint64_t set_mask_;
    std::uint32_t max_assoc_;
    std::vector<std::uint64_t> stack_;     ///< num_sets * max_assoc, MRU-first
    std::vector<std::uint8_t> depth_;      ///< valid entries per set
    std::vector<std::uint64_t> dist_hist_; ///< [0, max_assoc]; last = beyond
    std::uint64_t accesses_ = 0;
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_LRUSTACK_HH
