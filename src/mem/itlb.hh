#ifndef SPIKESIM_MEM_ITLB_HH
#define SPIKESIM_MEM_ITLB_HH

#include <cstdint>
#include <vector>

/**
 * @file
 * Fully-associative LRU instruction TLB (SimOS-Alpha config: 64
 * entries, 8KB pages; the 21164 hardware study uses 48 entries).
 */

namespace spikesim::mem {

/** Fully-associative LRU TLB over virtual page numbers. */
class ITlb
{
  public:
    /** @param num_entries TLB capacity; @param page_bytes page size. */
    explicit ITlb(std::uint32_t num_entries,
                  std::uint32_t page_bytes = 8 * 1024);

    /** Translate the page containing the byte address; true on hit. */
    bool access(std::uint64_t addr);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    void reset();

  private:
    struct Entry
    {
        std::uint64_t page = 0;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    std::vector<Entry> entries_;
    std::uint32_t page_shift_;
    std::uint64_t now_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    /** One-entry filter: consecutive fetches hit the same page. */
    std::uint64_t last_page_ = ~0ULL;
    Entry* last_entry_ = nullptr;
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_ITLB_HH
