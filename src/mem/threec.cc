#include "mem/threec.hh"

#include <bit>

#include "support/panic.hh"

namespace spikesim::mem {

FullyAssocLru::FullyAssocLru(std::uint32_t num_lines)
    : capacity_(num_lines)
{
    SPIKESIM_ASSERT(num_lines > 0, "LRU needs capacity");
    where_.reserve(num_lines * 2);
}

bool
FullyAssocLru::access(std::uint64_t line)
{
    auto it = where_.find(line);
    if (it != where_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    lru_.push_front(line);
    where_[line] = lru_.begin();
    if (lru_.size() > capacity_) {
        where_.erase(lru_.back());
        lru_.pop_back();
    }
    return false;
}

ClassifyingICache::ClassifyingICache(const CacheConfig& config)
    : config_(config),
      real_(config),
      ideal_(config.numLines()),
      line_shift_(static_cast<std::uint32_t>(
          std::bit_width(config.line_bytes) - 1))
{
    std::string err = config.check();
    SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
}

void
ClassifyingICache::access(std::uint64_t addr)
{
    std::uint64_t line = addr >> line_shift_;
    bool real_hit = real_.access(addr, Owner::App).hit;
    bool ideal_hit = ideal_.access(line);
    stats_.base.record(!real_hit);
    bool& seen = touched_[line];
    if (real_hit) {
        seen = true;
        return;
    }
    if (!seen)
        ++stats_.compulsory;
    else if (!ideal_hit)
        ++stats_.capacity;
    else
        ++stats_.conflict;
    seen = true;
}

} // namespace spikesim::mem
