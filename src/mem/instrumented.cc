#include "mem/instrumented.hh"

#include <bit>

#include "support/panic.hh"

namespace spikesim::mem {

namespace {
/** Cap for the per-word reuse histogram (paper's Fig 10 x-axis: 0-15). */
constexpr std::size_t kReuseBuckets = 16;
/** Lifetime histogram covers 2^0 .. 2^31 cache cycles. */
constexpr std::size_t kLifetimeBuckets = 32;
} // namespace

InstrumentedICache::InstrumentedICache(const CacheConfig& config)
    : config_(config),
      words_per_line_(config.line_bytes / 4),
      words_used_(config.line_bytes / 4 + 1),
      word_reuse_(kReuseBuckets),
      lifetimes_(kLifetimeBuckets)
{
    std::string err = config.check();
    SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
    SPIKESIM_ASSERT(words_per_line_ <= 64,
                    "line too wide for 64-bit word masks");
    entries_.resize(static_cast<std::size_t>(config.numSets()) *
                    config.assoc);
    word_counts_.assign(entries_.size() * words_per_line_, 0);
    line_shift_ = static_cast<std::uint32_t>(
        std::bit_width(config.line_bytes) - 1);
    set_mask_ = config.numSets() - 1;
}

void
InstrumentedICache::retire(std::size_t entry_index)
{
    Entry& e = entries_[entry_index];
    if (!e.valid)
        return;
    words_used_.record(static_cast<std::uint64_t>(
        std::popcount(e.word_mask)));
    lifetimes_.record(now_ - e.fill_time);
    std::uint16_t* counts = &word_counts_[entry_index * words_per_line_];
    for (std::uint32_t w = 0; w < words_per_line_; ++w) {
        word_reuse_.record(counts[w]);
        ++words_fetched_;
        if (counts[w] == 0)
            ++words_unused_;
        counts[w] = 0;
    }
    e.valid = false;
    e.word_mask = 0;
}

void
InstrumentedICache::fetchWord(std::uint64_t addr, Owner owner)
{
    (void)owner;
    ++now_;
    std::uint64_t line = addr >> line_shift_;
    std::uint32_t word =
        static_cast<std::uint32_t>((addr >> 2)) & (words_per_line_ - 1);
    std::uint32_t set = static_cast<std::uint32_t>(line) & set_mask_;
    std::size_t base = static_cast<std::size_t>(set) * config_.assoc;

    std::size_t victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Entry& e = entries_[base + w];
        if (e.valid && e.tag == line) {
            e.stamp = now_;
            e.word_mask |= 1ULL << word;
            std::uint16_t& c =
                word_counts_[(base + w) * words_per_line_ + word];
            if (c < 0xffff)
                ++c;
            ++hits_;
            return;
        }
        if (!e.valid) {
            victim = base + w;
        } else if (entries_[victim].valid &&
                   e.stamp < entries_[victim].stamp) {
            victim = base + w;
        }
    }

    ++misses_;
    retire(victim);
    Entry& e = entries_[victim];
    e.valid = true;
    e.tag = line;
    e.stamp = now_;
    e.fill_time = now_;
    e.word_mask = 1ULL << word;
    word_counts_[victim * words_per_line_ + word] = 1;
}

void
InstrumentedICache::flush()
{
    for (std::size_t i = 0; i < entries_.size(); ++i)
        retire(i);
}

double
InstrumentedICache::unusedWordFraction() const
{
    if (words_fetched_ == 0)
        return 0.0;
    return static_cast<double>(words_unused_) /
           static_cast<double>(words_fetched_);
}

} // namespace spikesim::mem
