#include "mem/lrustack.hh"

#include "support/panic.hh"

namespace spikesim::mem {

LruStackSim::LruStackSim(std::uint32_t num_sets, std::uint32_t max_assoc)
    : set_mask_(num_sets - 1), max_assoc_(max_assoc)
{
    SPIKESIM_ASSERT(num_sets > 0 && (num_sets & (num_sets - 1)) == 0,
                    "number of sets must be a power of two");
    SPIKESIM_ASSERT(max_assoc > 0 && max_assoc <= 255,
                    "associativity cap must be in [1, 255]");
    stack_.assign(static_cast<std::size_t>(num_sets) * max_assoc, 0);
    depth_.assign(num_sets, 0);
    dist_hist_.assign(static_cast<std::size_t>(max_assoc) + 1, 0);
}

std::uint64_t
LruStackSim::hitsUpTo(std::uint32_t assoc) const
{
    SPIKESIM_ASSERT(assoc > 0 && assoc <= max_assoc_,
                    "associativity " << assoc << " beyond stack cap "
                                     << max_assoc_);
    std::uint64_t hits = 0;
    for (std::uint32_t d = 0; d < assoc; ++d)
        hits += dist_hist_[d];
    return hits;
}

std::uint64_t
LruStackSim::distanceCount(std::uint32_t d) const
{
    SPIKESIM_ASSERT(d <= max_assoc_, "distance beyond stack cap");
    return dist_hist_[d];
}

} // namespace spikesim::mem
