#ifndef SPIKESIM_MEM_CACHE_HH
#define SPIKESIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/stats.hh"

/**
 * @file
 * Trace-driven set-associative cache simulator with true-LRU
 * replacement and per-line owner tags. This is deliberately a *simple*
 * cache model — the paper's instruction-cache studies feed address
 * traces to simple cache simulators, and so do we. The owner tags
 * support the application/kernel interference attribution of Figure 13.
 */

namespace spikesim::mem {

/** Owner tag attached to cache lines (who filled the line). */
enum class Owner : std::uint8_t {
    App = 0,
    Kernel = 1,
    Data = 2,
    None = 3, ///< invalid / cold fill victim
};

inline constexpr std::size_t kNumOwners = 3;

/** Geometry of one cache. */
struct CacheConfig
{
    std::uint32_t size_bytes = 64 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t assoc = 1;

    std::uint32_t
    numSets() const
    {
        return size_bytes / (line_bytes * assoc);
    }

    std::uint32_t numLines() const { return size_bytes / line_bytes; }

    /** Empty when the geometry is consistent, else a complaint. */
    std::string check() const;

    /** "64KB/128B/4-way" style label. */
    std::string label() const;
};

/** Result of one cache access. */
struct AccessResult
{
    bool hit = false;
    /** Owner of the line this fill displaced (None if cold fill or hit). */
    Owner victim = Owner::None;
};

/**
 * Set-associative LRU cache over byte addresses. The simulator tracks
 * tags and owner labels only (no data). Accesses count "cache cycles"
 * for the lifetime metrics.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig& config);

    /** Look up / fill the line containing byte address `addr`. */
    AccessResult access(std::uint64_t addr, Owner owner);

    const CacheConfig& config() const { return config_; }
    std::uint64_t hits() const { return stats_.hits(); }
    std::uint64_t misses() const { return stats_.misses; }
    std::uint64_t accesses() const { return stats_.accesses; }
    const support::AccessStats& stats() const { return stats_; }
    /** Misses broken down by accessing owner. */
    std::uint64_t missesBy(Owner owner) const;

    void reset();

  private:
    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
        Owner owner = Owner::None;
        bool valid = false;
    };

    CacheConfig config_;
    std::vector<Entry> entries_; ///< sets * assoc, set-major
    std::uint32_t line_shift_;
    std::uint32_t set_mask_;
    std::uint64_t now_ = 0;
    support::AccessStats stats_;
    std::uint64_t misses_by_[kNumOwners] = {0, 0, 0};
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_CACHE_HH
