#ifndef SPIKESIM_MEM_INSTRUMENTED_HH
#define SPIKESIM_MEM_INSTRUMENTED_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"
#include "support/histogram.hh"

/**
 * @file
 * Instruction cache with per-word instrumentation, used for the
 * locality analyses of Figures 9-11: how many distinct words of a line
 * are used before it is replaced, how many times each fetched word is
 * used, and how long lines live (in cache accesses). Much slower than
 * SetAssocCache; used only for single-configuration studies.
 */

namespace spikesim::mem {

/** Per-word-instrumented LRU instruction cache. */
class InstrumentedICache
{
  public:
    explicit InstrumentedICache(const CacheConfig& config);

    /** Fetch one 4-byte instruction word at the given byte address. */
    void fetchWord(std::uint64_t addr, Owner owner = Owner::App);

    /**
     * Evict everything still resident, folding the remaining lines into
     * the histograms. Call once at end of trace if end-of-run residency
     * should be counted; the paper's "before replacement" metrics do
     * not require it.
     */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Histogram over replacements: distinct words used (1..words/line).
     *  Index 0 is unused. */
    const support::Histogram& wordsUsed() const { return words_used_; }

    /** Histogram over fetched words: times used before replacement
     *  (bucket 0 = fetched but never used; last bucket clamps). */
    const support::Histogram& wordReuse() const { return word_reuse_; }

    /** Log2 histogram of line lifetimes in cache accesses. */
    const support::Log2Histogram& lifetimes() const { return lifetimes_; }

    /** Fraction of fetched words never used (paper: 46% base / 21% opt). */
    double unusedWordFraction() const;

    std::uint32_t wordsPerLine() const { return words_per_line_; }

  private:
    void retire(std::size_t entry_index);

    struct Entry
    {
        std::uint64_t tag = 0;
        std::uint64_t stamp = 0;
        std::uint64_t fill_time = 0;
        std::uint64_t word_mask = 0;
        bool valid = false;
    };

    CacheConfig config_;
    std::vector<Entry> entries_;
    std::vector<std::uint16_t> word_counts_; ///< entries * wordsPerLine
    std::uint32_t words_per_line_;
    std::uint32_t line_shift_;
    std::uint32_t set_mask_;
    std::uint64_t now_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t words_fetched_ = 0;
    std::uint64_t words_unused_ = 0;
    support::Histogram words_used_;
    support::Histogram word_reuse_;
    support::Log2Histogram lifetimes_;
};

} // namespace spikesim::mem

#endif // SPIKESIM_MEM_INSTRUMENTED_HH
