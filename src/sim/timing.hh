#ifndef SPIKESIM_SIM_TIMING_HH
#define SPIKESIM_SIM_TIMING_HH

#include <cstdint>
#include <string>

#include "mem/hierarchy.hh"

/**
 * @file
 * In-order execution-time model: non-idle cycles as base CPI plus miss
 * penalties, the metric the paper uses for Figure 15 (elapsed time is
 * meaningless once the optimized binary becomes more I/O bound, so the
 * paper — and we — count non-idle cycles). Three platform presets
 * mirror the paper's machines: a 21264-class and a 21164-class server
 * plus the SimOS-simulated 21364-class system with its published
 * latencies (12ns L2, 80ns memory at 1GHz).
 */

namespace spikesim::sim {

/** Machine description for the timing model. */
struct PlatformParams
{
    std::string name;
    mem::HierarchyConfig hierarchy;
    double cpi_base = 1.0;
    double l2_hit_cycles = 12.0;  ///< L1 miss, L2 hit penalty
    double mem_cycles = 80.0;     ///< L2 miss penalty
    double itlb_cycles = 30.0;    ///< iTLB refill penalty
    /** Fetch-bubble cycles per taken control transfer (in-order
     *  front end); chaining converts taken branches to fall-throughs,
     *  which is where part of the paper's time win comes from. */
    double fetch_break_cycles = 2.0;
    /** 2/3-hop remote (communication) miss penalty. */
    double remote_cycles = 175.0;
    /** Core clock in GHz; converts model cycles to wall time for the
     *  serving model's throughput/latency reporting. */
    double clock_ghz = 1.0;

    /** 21264-class (AlphaServer DS20-like): 64KB 2-way L1s. */
    static PlatformParams alpha21264();
    /** 21164-class (AlphaServer 4100-like): 8KB direct-mapped L1s,
     *  2MB direct-mapped board cache. */
    static PlatformParams alpha21164();
    /** SimOS 21364-class system (the paper's simulation platform). */
    static PlatformParams sim21364();
};

/**
 * Non-idle cycles split by cause. total() sums the components in a
 * fixed order, so nonIdleCycles() == (uint64_t)breakdown.total() and
 * benches can report the same number they attribute.
 */
struct CycleBreakdown
{
    double base = 0.0;        ///< instrs * CPI
    double fetch_break = 0.0; ///< front-end bubbles on broken runs
    double l2_hit = 0.0;      ///< L1 misses served by the L2
    double memory = 0.0;      ///< L2 misses to local memory
    double itlb = 0.0;        ///< iTLB refills
    double remote = 0.0;      ///< communication misses

    double
    total() const
    {
        double cycles = base;
        cycles += fetch_break;
        cycles += l2_hit;
        cycles += memory;
        cycles += itlb;
        cycles += remote;
        return cycles;
    }
};

/** Attribute a replayed trace's cycles to their causes. */
CycleBreakdown cycleBreakdown(const mem::HierarchyStats& stats,
                              std::uint64_t instrs,
                              const PlatformParams& platform,
                              std::uint64_t fetch_breaks = 0);

/** Non-idle execution cycles for a replayed trace. */
std::uint64_t nonIdleCycles(const mem::HierarchyStats& stats,
                            std::uint64_t instrs,
                            const PlatformParams& platform,
                            std::uint64_t fetch_breaks = 0);

/** Model cycles -> microseconds at the platform's clock. */
inline double
cyclesToMicros(std::uint64_t cycles, const PlatformParams& platform)
{
    return static_cast<double>(cycles) / (platform.clock_ghz * 1e3);
}

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_TIMING_HH
