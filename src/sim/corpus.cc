#include "sim/corpus.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <vector>

#include "core/pipeline.hh"
#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "profile/serialize.hh"
#include "sim/replay.hh"
#include "support/checksum.hh"
#include "support/panic.hh"
#include "support/varint.hh"
#include "trace/serialize.hh"

namespace spikesim::sim {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'K', 'C', 'O', 'R', 'P', '1'};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Read-only mmap of a whole file, with a buffered-read fallback when
 * mmap is unavailable (e.g. an exotic filesystem). data() stays valid
 * for the object's lifetime.
 */
class MappedFile
{
  public:
    explicit MappedFile(const std::string& path)
    {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return;
        struct stat st = {};
        if (::fstat(fd, &st) != 0 || st.st_size < 0) {
            ::close(fd);
            return;
        }
        size_ = static_cast<std::size_t>(st.st_size);
        opened_ = true;
        if (size_ == 0) {
            ::close(fd);
            return;
        }
        int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
        flags |= MAP_POPULATE; // pre-fault: the whole file is read once
#endif
        void* p = ::mmap(nullptr, size_, PROT_READ, flags, fd, 0);
        if (p != MAP_FAILED) {
            map_ = p;
            data_ = static_cast<const std::uint8_t*>(p);
        } else {
            fallback_.resize(size_);
            std::size_t off = 0;
            while (off < size_) {
                ssize_t n = ::read(fd, fallback_.data() + off,
                                   size_ - off);
                if (n <= 0) {
                    opened_ = false;
                    break;
                }
                off += static_cast<std::size_t>(n);
            }
            data_ = fallback_.data();
        }
        ::close(fd);
    }

    ~MappedFile()
    {
        if (map_ != nullptr)
            ::munmap(map_, size_);
    }

    MappedFile(const MappedFile&) = delete;
    MappedFile& operator=(const MappedFile&) = delete;

    bool opened() const { return opened_; }
    const std::uint8_t* data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    bool opened_ = false;
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    void* map_ = nullptr;
    std::vector<std::uint8_t> fallback_;
};

} // namespace

std::uint64_t
corpusFingerprint(const CorpusParams& params)
{
    const SystemConfig& c = params.config;
    std::vector<std::uint8_t> bytes;
    auto u = [&bytes](std::uint64_t v) { support::putVarint(bytes, v); };
    auto d = [&u](double v) { u(std::bit_cast<std::uint64_t>(v)); };

    u(kCorpusVersion);
    u(1); // workload kind: the standard TPC-B OLTP sequence
    u(static_cast<std::uint64_t>(c.num_cpus));
    u(static_cast<std::uint64_t>(c.processes_per_cpu));
    u(c.quantum_instrs);
    u(c.app_seed);
    u(c.kernel_seed);
    u(c.workload_seed);
    u(c.app_text_base);
    u(c.kernel_text_base);
    d(c.app_image_scale);
    u(static_cast<std::uint64_t>(c.tpcb.branches));
    u(static_cast<std::uint64_t>(c.tpcb.tellers_per_branch));
    u(static_cast<std::uint64_t>(c.tpcb.accounts_per_branch));
    u(c.tpcb.buffer_frames);
    d(c.tpcb.remote_account_prob);
    u(c.tpcb.contention_window);
    u(c.tpcb.wal.group_commit_batch);
    u(c.tpcb.wal.flush_threshold_bytes);
    u(params.warmup_txns);
    u(params.profile_txns);
    u(params.trace_txns);
    return support::fnv1a64(bytes.data(), bytes.size());
}

std::string
corpusFileName(const CorpusParams& params)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      corpusFingerprint(params)));
    return std::string("corpus-") + hex + ".spkc";
}

GeneratedWorkload
generateWorkload(const CorpusParams& params, std::ostream* log)
{
    GeneratedWorkload g;
    g.system = std::make_unique<System>(params.config);
    if (log)
        *log << "[workload] loading database ("
             << g.system->database().numAccounts() << " accounts)...\n";
    {
        obs::Span span("workload.setup", "sim");
        g.system->setup();
    }
    if (log)
        *log << "[workload] warmup + profiling " << params.profile_txns
             << " transactions...\n";
    {
        obs::Span span("workload.warmup", "sim");
        g.system->warmup(params.warmup_txns);
    }
    {
        obs::Span span("workload.profile", "sim");
        g.profiles = g.system->collectProfiles(params.profile_txns);
    }
    if (log)
        *log << "[workload] tracing " << params.trace_txns
             << " transactions...\n";
    {
        obs::Span span("workload.trace", "sim");
        g.system->run(params.trace_txns, g.buf);
    }
    if (log)
        *log << "[workload] trace: " << g.buf.size() << " events ("
             << g.buf.imageEvents(trace::ImageId::Kernel) << " kernel, "
             << g.buf.imageEvents(trace::ImageId::Data) << " data)\n\n";
    g.db_ready = true;
    return g;
}

CorpusStats
saveCorpus(const CorpusParams& params, const System::Profiles& profiles,
           const trace::TraceBuffer& buf, const std::string& path)
{
    std::vector<std::uint8_t> payload;
    support::putVarint(payload, params.warmup_txns);
    support::putVarint(payload, params.profile_txns);
    support::putVarint(payload, params.trace_txns);

    const std::size_t trace_start = payload.size();
    trace::TraceWriter writer;
    writer.addAll(buf);
    writer.finish(payload);
    const std::size_t trace_bytes = payload.size() - trace_start;

    profile::appendProfile(profiles.app, payload);
    profile::appendProfile(profiles.kernel, payload);

    std::vector<std::uint8_t> header;
    header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
    support::putFixed32(header, kCorpusVersion);
    support::putFixed32(header,
                        static_cast<std::uint32_t>(buf.numCpus()));
    support::putFixed64(header, corpusFingerprint(params));
    support::putFixed64(header, payload.size());
    support::putFixed64(
        header, support::fnv1a64Words(payload.data(), payload.size()));
    SPIKESIM_ASSERT(header.size() == kCorpusHeaderBytes,
                    "corpus header layout drifted");

    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            support::fatal("cannot write corpus file " + tmp);
        os.write(reinterpret_cast<const char*>(header.data()),
                 static_cast<std::streamsize>(header.size()));
        os.write(reinterpret_cast<const char*>(payload.data()),
                 static_cast<std::streamsize>(payload.size()));
        if (!os)
            support::fatal("short write to corpus file " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        support::fatal("cannot rename corpus file into place: " +
                       ec.message());

    CorpusStats stats;
    stats.events = buf.size();
    stats.raw_bytes = buf.size() * sizeof(trace::TraceEvent);
    stats.file_bytes = header.size() + payload.size();
    stats.ratio = trace_bytes == 0
                      ? 0.0
                      : static_cast<double>(stats.raw_bytes) /
                            static_cast<double>(trace_bytes);
    return stats;
}

bool
loadCorpus(const std::string& path, const CorpusParams& params,
           System& system, std::optional<System::Profiles>& profiles,
           trace::TraceBuffer& buf)
{
    MappedFile file(path);
    if (!file.opened())
        return false;
    if (file.size() < kCorpusHeaderBytes)
        support::fatal("corpus file truncated: " + path + " is " +
                       std::to_string(file.size()) +
                       " bytes, smaller than the header");

    support::ByteReader header(file.data(), kCorpusHeaderBytes);
    const std::uint8_t* magic = header.raw(sizeof(kMagic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        support::fatal("not a spikesim corpus file: " + path);
    const std::uint32_t version = header.fixed32();
    if (version != kCorpusVersion)
        support::fatal("unsupported corpus version " +
                       std::to_string(version) + " in " + path +
                       " (this build reads version " +
                       std::to_string(kCorpusVersion) + ")");
    const std::uint32_t header_cpus = header.fixed32();
    const std::uint64_t fingerprint = header.fixed64();
    const std::uint64_t payload_len = header.fixed64();
    const std::uint64_t checksum = header.fixed64();

    if (payload_len != file.size() - kCorpusHeaderBytes)
        support::fatal("corpus file truncated: payload of " + path +
                       " is " +
                       std::to_string(file.size() - kCorpusHeaderBytes) +
                       " bytes, header promises " +
                       std::to_string(payload_len));
    const std::uint8_t* payload = file.data() + kCorpusHeaderBytes;
    if (support::fnv1a64Words(payload, payload_len) != checksum)
        support::fatal("corpus checksum mismatch in " + path +
                       " (file is corrupt)");
    if (fingerprint != corpusFingerprint(params))
        return false; // a different workload's corpus

    support::ByteReader r(payload, payload_len);
    if (r.varint() != params.warmup_txns ||
        r.varint() != params.profile_txns ||
        r.varint() != params.trace_txns)
        support::fatal("corpus parameter echo disagrees with its "
                       "fingerprint in " + path);

    buf.clear();
    trace::TraceReader trace_reader(r);
    trace_reader.readAll(buf);
    // Files written before the cpu-count field carry 0 there (it was
    // reserved); otherwise the recorded count must match the decoded
    // events — a disagreement means the file is corrupt.
    if (header_cpus != 0 &&
        header_cpus != static_cast<std::uint32_t>(buf.numCpus()))
        support::fatal("corpus cpu count mismatch in " + path +
                       ": header records " +
                       std::to_string(header_cpus) +
                       " cpus, decoded trace has " +
                       std::to_string(buf.numCpus()));

    profiles.emplace(System::Profiles{
        profile::readProfile(system.appProg(), r),
        profile::readProfile(system.kernelProg(), r)});
    if (!r.done())
        support::fatal("corpus file corrupt: " +
                       std::to_string(r.remaining()) +
                       " trailing bytes after the profile sections");
    return true;
}

GeneratedWorkload
loadOrCapture(const CorpusParams& params, const std::string& dir,
              std::ostream* log)
{
    using clock = std::chrono::steady_clock;
    const std::string path =
        (std::filesystem::path(dir) / corpusFileName(params)).string();

    static obs::Counter& c_hits = obs::counter("sim.corpus.cache_hits");
    static obs::Counter& c_misses =
        obs::counter("sim.corpus.cache_misses");

    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        GeneratedWorkload g;
        g.system = std::make_unique<System>(params.config);
        // No setup(): replay only needs the images; consumers that run
        // extra transactions load the database lazily (db_ready).
        const auto t0 = clock::now();
        bool loaded;
        {
            obs::Span span("corpus.load", "sim");
            loaded = loadCorpus(path, params, *g.system, g.profiles,
                                g.buf);
        }
        if (loaded) {
            c_hits.add(1);
            if (log)
                *log << "[corpus] hit: " << g.buf.size()
                     << " events + profiles from " << path << " in "
                     << seconds(t0, clock::now()) * 1e3 << " ms\n\n";
            return g;
        }
        if (log)
            *log << "[corpus] " << path
                 << " is for a different workload; regenerating\n";
    }

    c_misses.add(1);
    if (log)
        *log << "[corpus] miss: generating workload for "
             << corpusFileName(params) << "\n";
    GeneratedWorkload g = generateWorkload(params, log);
    std::filesystem::create_directories(dir, ec);
    CorpusStats stats;
    {
        obs::Span span("corpus.save", "sim");
        stats = saveCorpus(params, *g.profiles, g.buf, path);
    }
    if (log)
        *log << "[corpus] saved " << stats.events << " events + profiles"
             << " to " << path << " (" << stats.file_bytes << " bytes, "
             << stats.ratio << "x trace compression)\n\n";
    return g;
}

void
verifyCorpusAgainstFresh(const CorpusParams& params,
                         const System::Profiles& profiles,
                         const trace::TraceBuffer& buf, std::ostream* log)
{
    if (log)
        *log << "[corpus] verify: regenerating workload from scratch "
                "for the differential check...\n";
    GeneratedWorkload fresh = generateWorkload(params, nullptr);

    if (buf.size() != fresh.buf.size())
        support::fatal("corpus verify failed: " +
                       std::to_string(buf.size()) +
                       " loaded events vs " +
                       std::to_string(fresh.buf.size()) + " regenerated");
    const auto& a = buf.events();
    const auto& b = fresh.buf.events();
    for (std::size_t i = 0; i < a.size(); ++i)
        if (a[i].block != b[i].block || a[i].process != b[i].process ||
            a[i].cpu != b[i].cpu || a[i].image != b[i].image)
            support::fatal("corpus verify failed: event " +
                           std::to_string(i) +
                           " differs from the regenerated trace");
    for (std::size_t img = 0; img < trace::kNumImages; ++img) {
        const auto id = static_cast<trace::ImageId>(img);
        if (buf.imageEvents(id) != fresh.buf.imageEvents(id))
            support::fatal("corpus verify failed: per-image event "
                           "counts differ");
    }

    std::vector<std::uint8_t> loaded_bytes, fresh_bytes;
    profile::appendProfile(profiles.app, loaded_bytes);
    profile::appendProfile(profiles.kernel, loaded_bytes);
    profile::appendProfile(fresh.profiles->app, fresh_bytes);
    profile::appendProfile(fresh.profiles->kernel, fresh_bytes);
    if (loaded_bytes != fresh_bytes)
        support::fatal("corpus verify failed: profiles differ from the "
                       "regenerated run");

    // Profile-driven layouts: optimize the app image from each profile
    // and demand identical block placement.
    core::PipelineOptions opts;
    opts.combo = core::OptCombo::All;
    opts.text_base = params.config.app_text_base;
    const program::Program& app_prog = fresh.system->appProg();
    core::Layout loaded_layout =
        core::buildLayout(app_prog, profiles.app, opts);
    core::Layout fresh_layout =
        core::buildLayout(app_prog, fresh.profiles->app, opts);
    for (std::uint32_t g = 0; g < app_prog.numBlocks(); ++g)
        if (loaded_layout.blockAddr(g) != fresh_layout.blockAddr(g))
            support::fatal("corpus verify failed: profile-driven layout "
                           "places block " + std::to_string(g) +
                           " differently");

    // Replay both traces through their layouts: miss counts must match.
    core::Layout kernel_layout = core::baselineLayout(
        fresh.system->kernelProg(), params.config.kernel_text_base);
    Replayer loaded_rep(buf, loaded_layout, &kernel_layout);
    Replayer fresh_rep(fresh.buf, fresh_layout, &kernel_layout);
    const mem::CacheConfig cache{64 * 1024, 128, 1};
    const auto loaded_r = loaded_rep.icache(cache, StreamFilter::Combined);
    const auto fresh_r = fresh_rep.icache(cache, StreamFilter::Combined);
    if (loaded_r.misses != fresh_r.misses ||
        loaded_r.accesses != fresh_r.accesses)
        support::fatal("corpus verify failed: icache replay differs (" +
                       std::to_string(loaded_r.misses) + " vs " +
                       std::to_string(fresh_r.misses) + " misses)");

    if (log)
        *log << "[corpus] verify OK: trace bit-identical, profiles "
                "byte-identical, layouts identical, replay misses "
                "identical (" << loaded_r.misses << " misses on "
             << loaded_r.accesses << " accesses)\n\n";
}

} // namespace spikesim::sim
