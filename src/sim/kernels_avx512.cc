#include "sim/kernels_detail.hh"

#if defined(SPIKESIM_AVX512_TU)

#include "sim/kernels_vec.hh"

/**
 * @file
 * AVX-512 instantiations of the shared vector kernels
 * (kernels_vec.hh). This TU alone is compiled with -mavx512f (see
 * src/sim/CMakeLists.txt); nothing here runs unless
 * sim::resolveKernel() confirmed the host CPU reports AVX512F. The
 * i-cache walk is the run-coalescing span kernel with 8-wide (512-bit)
 * iota tag probes — compare-to-mask yields the per-lane miss bitmask
 * directly, with no movemask round trip. The three-C and stream-buffer
 * families share the grouped walk with the whole-set vector probes
 * (compiled here under the wider ISA).
 */

namespace spikesim::sim::detail {
namespace {

struct Avx512Ops
{
    static constexpr std::size_t W = 8;

    /** Bitmask of lanes where tags[i] != ln0 + i. */
    static unsigned
    missMask(const std::uint64_t* tags, std::uint64_t ln0)
    {
        const __m512i iota = _mm512_add_epi64(
            _mm512_set1_epi64(static_cast<long long>(ln0)),
            _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7));
        const __m512i vtags = _mm512_loadu_si512(
            reinterpret_cast<const void*>(tags));
        return static_cast<unsigned>(
            _mm512_cmp_epu64_mask(vtags, iota, _MM_CMPINT_NE));
    }
};

} // namespace

void
icacheShardAvx512(const IcacheShard& shard)
{
    runIcacheShardRuns<Avx512Ops>(shard);
}

void
threeCShardAvx512(const ThreeCShard& shard)
{
    runThreeCShardImpl<VecStatsProbe>(shard);
}

void
streamBufShardAvx512(const StreamBufShard& shard)
{
    runStreamBufShardImpl<VecStatsProbe>(shard);
}

} // namespace spikesim::sim::detail

#endif // SPIKESIM_AVX512_TU
