#ifndef SPIKESIM_SIM_ENGINE_HH
#define SPIKESIM_SIM_ENGINE_HH

#include <span>
#include <vector>

#include "metrics/sequence.hh"
#include "sim/kernels.hh"
#include "sim/replay.hh"
#include "sim/soa.hh"
#include "support/threadpool.hh"

/**
 * @file
 * Unified parallel replay engine: replays one CPU-partitioned
 * ResolvedTrace (Replayer::resolve) against many cache configurations
 * in a single fused walk, sharded across a thread pool by CPU.
 *
 * Two structural facts make every result bit-identical to the scalar
 * per-config Replayer walks (which remain as differential oracles, see
 * tests/replay_parallel_test.cc):
 *
 *  - Fusion: simulators for different configurations share no state,
 *    so one walk over the refs can feed all cache sizes of a Figure 12
 *    style column instead of re-walking (and re-resolving) per config.
 *
 *  - Partitioning: every simulator instance is per-CPU (each simulated
 *    processor has private caches, TLB, stream buffers, fetch unit),
 *    so replaying CPU c's refs on their own thread and merging per-CPU
 *    stats at the barrier commutes exactly with the interleaved scalar
 *    walk. Counters and histogram buckets merge as integer sums;
 *    histogram means stay bit-identical because the accumulated sums
 *    are integer-valued doubles (exact below 2^53); the one non-
 *    trivially-ordered float — instrumented's unused_word_fraction —
 *    is merged in CPU order with the oracle's exact operation
 *    sequence.
 *
 * The single exception is the hierarchy coherence map (data_owner):
 * line-migration counting depends on the *global* order of data events
 * across CPUs. It is also independent of all cache state, so it runs
 * as its own sharded pass per configuration over
 * ResolvedTrace::data_refs, which preserves that global order.
 */

namespace spikesim::sim {

/** Line-granular i-cache replay with interference attribution, one
 *  result per config (Figures 12/13 columns). */
std::vector<ICacheReplayResult>
replayICache(const ResolvedTrace& trace,
             std::span<const mem::CacheConfig> configs,
             support::ThreadPool* pool = nullptr);

/** Three-C miss classification per config. */
std::vector<mem::ThreeCStats>
replayThreeCs(const ResolvedTrace& trace,
              std::span<const mem::CacheConfig> configs,
              support::ThreadPool* pool = nullptr);

/** Stream-buffered i-cache replay per config. */
std::vector<mem::StreamBufferStats>
replayStreamBuffer(const ResolvedTrace& trace,
                   std::span<const mem::CacheConfig> configs,
                   int num_buffers, support::ThreadPool* pool = nullptr);

/** Word-granular instrumented replay per config (Figures 9-11). */
std::vector<WordStats>
replayInstrumented(const ResolvedTrace& trace,
                   std::span<const mem::CacheConfig> configs,
                   bool flush_at_end = false,
                   support::ThreadPool* pool = nullptr);

/** Standalone iTLB replay per spec (Figure 14's TLB rows). */
std::vector<ITlbReplayResult>
replayITlb(const ResolvedTrace& trace, std::span<const ITlbSpec> specs,
           support::ThreadPool* pool = nullptr);

/**
 * Full-hierarchy replay per config. Data lines are replayed when the
 * trace was resolved with include_data (each CPU's slice interleaves
 * its data refs with its instruction refs in trace order — a CPU's
 * private L2 sees exactly that stream). With model_coherence, the
 * communication-miss count runs as a separate per-config pass over the
 * global-order data_refs (see the file comment).
 */
std::vector<HierarchyReplayResult>
replayHierarchy(const ResolvedTrace& trace,
                std::span<const mem::HierarchyConfig> configs,
                bool model_coherence = false,
                support::ThreadPool* pool = nullptr);

/**
 * Sequential-run-length analysis (Figure 8) from a resolved trace:
 * kRefRunBreak flags carry the filtered-out-image run breaks the raw
 * stream would have shown, and instr_events/instrs supply the dynamic
 * block-size mean. Bit-identical to metrics::sequenceLengths on the
 * raw trace for the matching single-image filter.
 */
metrics::SequenceStats
replaySequence(const ResolvedTrace& trace,
               support::ThreadPool* pool = nullptr);

/**
 * SoA overloads: the same seven replays over a column-major
 * ResolvedTraceSoA (sim/soa.hh). Results are bit-identical to the AoS
 * overloads — the per-CPU record sequences are the same values in the
 * same order, only the storage layout differs. The i-cache, three-C,
 * iTLB, and stream-buffer families route through the throughput
 * kernels of sim/kernels.hh and accept a SimdMode (the iTLB kernel is
 * FA-LRU-bound and runs the same scalar walk under every mode); the
 * remaining families keep their simulator objects and simply stream
 * the columns.
 */

std::vector<ICacheReplayResult>
replayICache(const ResolvedTraceSoA& soa,
             std::span<const mem::CacheConfig> configs,
             SimdMode mode = SimdMode::Auto,
             support::ThreadPool* pool = nullptr);

std::vector<mem::ThreeCStats>
replayThreeCs(const ResolvedTraceSoA& soa,
              std::span<const mem::CacheConfig> configs,
              SimdMode mode = SimdMode::Auto,
              support::ThreadPool* pool = nullptr);

std::vector<mem::StreamBufferStats>
replayStreamBuffer(const ResolvedTraceSoA& soa,
                   std::span<const mem::CacheConfig> configs,
                   int num_buffers, SimdMode mode = SimdMode::Auto,
                   support::ThreadPool* pool = nullptr);

std::vector<WordStats>
replayInstrumented(const ResolvedTraceSoA& soa,
                   std::span<const mem::CacheConfig> configs,
                   bool flush_at_end = false,
                   support::ThreadPool* pool = nullptr);

std::vector<ITlbReplayResult>
replayITlb(const ResolvedTraceSoA& soa, std::span<const ITlbSpec> specs,
           SimdMode mode = SimdMode::Auto,
           support::ThreadPool* pool = nullptr);

std::vector<HierarchyReplayResult>
replayHierarchy(const ResolvedTraceSoA& soa,
                std::span<const mem::HierarchyConfig> configs,
                bool model_coherence = false,
                support::ThreadPool* pool = nullptr);

metrics::SequenceStats
replaySequence(const ResolvedTraceSoA& soa,
               support::ThreadPool* pool = nullptr);

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_ENGINE_HH
