#include "sim/replay.hh"

#include <bit>

#include <unordered_map>

#include "support/panic.hh"

namespace spikesim::sim {

using trace::ImageId;
using trace::TraceEvent;

namespace {

bool
wantImage(StreamFilter filter, ImageId image)
{
    switch (filter) {
      case StreamFilter::AppOnly:
        return image == ImageId::App;
      case StreamFilter::KernelOnly:
        return image == ImageId::Kernel;
      case StreamFilter::Combined:
        return image == ImageId::App || image == ImageId::Kernel;
    }
    return false;
}

mem::Owner
ownerOf(ImageId image)
{
    return image == ImageId::App ? mem::Owner::App : mem::Owner::Kernel;
}

} // namespace

Replayer::Replayer(const trace::TraceBuffer& trace,
                   const core::Layout& app_layout,
                   const core::Layout* kernel_layout)
    : trace_(trace), app_(app_layout), kernel_(kernel_layout)
{
    int max_cpu = 0;
    for (const TraceEvent& e : trace.events())
        if (e.cpu > max_cpu)
            max_cpu = e.cpu;
    num_cpus_ = max_cpu + 1;
}

namespace {

/** Kernel events may only be replayed when a kernel layout exists. */
const core::Layout&
layoutFor(ImageId image, const core::Layout& app,
          const core::Layout* kernel)
{
    if (image == ImageId::App)
        return app;
    SPIKESIM_ASSERT(kernel != nullptr,
                    "replaying kernel events requires a kernel layout");
    return *kernel;
}

} // namespace

ICacheReplayResult
Replayer::icache(const mem::CacheConfig& config, StreamFilter filter) const
{
    ICacheReplayResult result;
    std::vector<mem::SetAssocCache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config);

    const std::uint64_t line = config.line_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::Owner owner = ownerOf(e.image);
        int m = owner == mem::Owner::App ? 0 : 1;
        mem::SetAssocCache& cache = caches[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line) {
            ++result.accesses;
            mem::AccessResult r = cache.access(a, owner);
            if (!r.hit) {
                ++result.misses;
                if (owner == mem::Owner::App)
                    ++result.app_misses;
                else
                    ++result.kernel_misses;
                int v = r.victim == mem::Owner::App      ? 0
                        : r.victim == mem::Owner::Kernel ? 1
                                                         : 2;
                ++result.interference.counts[m][v];
            }
        }
    }
    return result;
}

WordStats
Replayer::instrumented(const mem::CacheConfig& config, StreamFilter filter,
                       bool flush_at_end) const
{
    std::vector<mem::InstrumentedICache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config);

    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint32_t words = layout.blockSize(e.block);
        std::uint64_t addr = layout.blockAddr(e.block);
        mem::Owner owner = ownerOf(e.image);
        mem::InstrumentedICache& cache = caches[e.cpu];
        for (std::uint32_t w = 0; w < words; ++w)
            cache.fetchWord(addr + w * 4ull, owner);
    }

    WordStats out;
    out.words_used = support::Histogram(config.line_bytes / 4 + 1);
    double fetched = 0.0;
    double unused = 0.0;
    for (auto& cache : caches) {
        if (flush_at_end)
            cache.flush();
        out.words_used.merge(cache.wordsUsed());
        out.word_reuse.merge(cache.wordReuse());
        // Log2Histogram lacks merge; fold buckets manually.
        for (std::size_t b = 0; b < cache.lifetimes().numBuckets(); ++b) {
            std::uint64_t count = cache.lifetimes().bucket(b);
            if (count > 0)
                out.lifetimes.record(1ULL << b, count);
        }
        out.misses += cache.misses();
        fetched += static_cast<double>(cache.wordReuse().totalSamples());
        unused += cache.unusedWordFraction() *
                  static_cast<double>(cache.wordReuse().totalSamples());
    }
    out.unused_word_fraction = fetched == 0.0 ? 0.0 : unused / fetched;
    return out;
}

mem::ThreeCStats
Replayer::threeCs(const mem::CacheConfig& config,
                  StreamFilter filter) const
{
    std::vector<mem::ClassifyingICache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config);

    const std::uint64_t line = config.line_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::ClassifyingICache& cache = caches[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line)
            cache.access(a);
    }
    mem::ThreeCStats total;
    for (const auto& c : caches)
        total += c.stats();
    return total;
}

mem::StreamBufferStats
Replayer::streamBuffer(const mem::CacheConfig& config, int num_buffers,
                       StreamFilter filter) const
{
    std::vector<mem::StreamBufferICache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config, num_buffers);

    const std::uint64_t line = config.line_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::StreamBufferICache& cache = caches[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line)
            cache.fetchLine(a);
    }
    mem::StreamBufferStats total;
    for (const auto& c : caches) {
        total.accesses += c.stats().accesses;
        total.l1_misses += c.stats().l1_misses;
        total.stream_hits += c.stats().stream_hits;
        total.demand_misses += c.stats().demand_misses;
    }
    return total;
}

HierarchyReplayResult
Replayer::hierarchy(const mem::HierarchyConfig& config,
                    bool include_data, bool model_coherence) const
{
    // line -> last CPU that touched it (coherence model).
    std::unordered_map<std::uint64_t, std::uint8_t> data_owner;
    HierarchyReplayResult result;
    std::vector<mem::MemoryHierarchy> cpus;
    cpus.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        cpus.emplace_back(config);

    const std::uint64_t iline = config.l1i.line_bytes;
    const std::uint64_t dline = config.l1d.line_bytes;
    std::vector<std::uint64_t> expected(
        static_cast<std::size_t>(num_cpus_), ~0ULL);
    for (const TraceEvent& e : trace_.events()) {
        if (e.image == ImageId::Data) {
            if (include_data) {
                std::uint64_t line =
                    (static_cast<std::uint64_t>(e.block) << 2) &
                    ~(dline - 1);
                if (model_coherence) {
                    auto [it, fresh] = data_owner.try_emplace(line,
                                                              e.cpu);
                    if (!fresh && it->second != e.cpu) {
                        // The line migrates: remote dirty copy.
                        ++result.total.comm_misses;
                        it->second = e.cpu;
                    }
                }
                cpus[e.cpu].dataLine(line);
            }
            continue;
        }
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        result.instrs += layout.blockSize(e.block);
        if (addr != expected[e.cpu])
            ++result.fetch_breaks;
        expected[e.cpu] = end;
        mem::Owner owner = ownerOf(e.image);
        mem::MemoryHierarchy& h = cpus[e.cpu];
        for (std::uint64_t a = addr & ~(iline - 1); a < end; a += iline)
            h.fetchLine(a, owner);
    }
    for (auto& h : cpus) {
        result.per_cpu.push_back(h.stats());
        result.total += h.stats();
    }
    return result;
}

std::uint64_t
Replayer::dynamicInstrs(StreamFilter filter) const
{
    std::uint64_t total = 0;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        total += layout.blockSize(e.block);
    }
    return total;
}

} // namespace spikesim::sim
