#include "sim/replay.hh"

#include <algorithm>
#include <bit>
#include <span>
#include <unordered_map>

#include "mem/lrustack.hh"
#include "sim/soa.hh"
#include "support/panic.hh"

namespace spikesim::sim {

using trace::ImageId;
using trace::TraceEvent;

namespace {

bool
wantImage(StreamFilter filter, ImageId image)
{
    switch (filter) {
      case StreamFilter::AppOnly:
        return image == ImageId::App;
      case StreamFilter::KernelOnly:
        return image == ImageId::Kernel;
      case StreamFilter::Combined:
        return image == ImageId::App || image == ImageId::Kernel;
    }
    return false;
}

mem::Owner
ownerOf(ImageId image)
{
    return image == ImageId::App ? mem::Owner::App : mem::Owner::Kernel;
}

} // namespace

Replayer::Replayer(const trace::TraceBuffer& trace,
                   const core::Layout& app_layout,
                   const core::Layout* kernel_layout)
    : trace_(trace), app_(app_layout), kernel_(kernel_layout),
      num_cpus_(trace.numCpus())
{
}

namespace {

/** Kernel events may only be replayed when a kernel layout exists. */
const core::Layout&
layoutFor(ImageId image, const core::Layout& app,
          const core::Layout* kernel)
{
    if (image == ImageId::App)
        return app;
    SPIKESIM_ASSERT(kernel != nullptr,
                    "replaying kernel events requires a kernel layout");
    return *kernel;
}

} // namespace

ICacheReplayResult
Replayer::icache(const mem::CacheConfig& config, StreamFilter filter) const
{
    ICacheReplayResult result;
    std::vector<mem::SetAssocCache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config);

    const std::uint64_t line = config.line_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::Owner owner = ownerOf(e.image);
        int m = owner == mem::Owner::App ? 0 : 1;
        mem::SetAssocCache& cache = caches[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line) {
            ++result.accesses;
            mem::AccessResult r = cache.access(a, owner);
            if (!r.hit) {
                ++result.misses;
                if (owner == mem::Owner::App)
                    ++result.app_misses;
                else
                    ++result.kernel_misses;
                int v = r.victim == mem::Owner::App      ? 0
                        : r.victim == mem::Owner::Kernel ? 1
                                                         : 2;
                ++result.interference.counts[m][v];
            }
        }
    }
    return result;
}

std::string
SweepSpec::check() const
{
    if (size_bytes.empty() || line_bytes.empty() || assocs.empty())
        return "sweep needs at least one size, line size and assoc";
    for (std::uint32_t size : size_bytes)
        for (std::uint32_t line : line_bytes)
            for (std::uint32_t assoc : assocs) {
                mem::CacheConfig config{size, line, assoc};
                std::string err = config.check();
                if (!err.empty())
                    return config.label() + ": " + err;
            }
    return "";
}

SweepResult::SweepResult(SweepSpec spec) : spec_(std::move(spec))
{
    accesses_.assign(spec_.line_bytes.size(), 0);
    misses_.assign(spec_.numConfigs(), 0);
    // emplace keeps the first occurrence, matching what a linear scan
    // of a (degenerate) spec with duplicates would have found.
    for (std::size_t i = 0; i < spec_.size_bytes.size(); ++i)
        size_index_.emplace(spec_.size_bytes[i], i);
    for (std::size_t i = 0; i < spec_.line_bytes.size(); ++i)
        line_index_.emplace(spec_.line_bytes[i], i);
    for (std::size_t i = 0; i < spec_.assocs.size(); ++i)
        assoc_index_.emplace(spec_.assocs[i], i);
}

std::size_t
SweepResult::lineIndex(std::uint32_t line_bytes) const
{
    auto it = line_index_.find(line_bytes);
    SPIKESIM_ASSERT(it != line_index_.end(),
                    "line size " << line_bytes << "B not in sweep");
    return it->second;
}

std::size_t
SweepResult::index(std::size_t si, std::size_t li, std::size_t ai) const
{
    return (li * spec_.size_bytes.size() + si) * spec_.assocs.size() + ai;
}

std::uint64_t
SweepResult::accesses(std::uint32_t line_bytes) const
{
    return accesses_[lineIndex(line_bytes)];
}

std::uint64_t
SweepResult::misses(std::uint32_t size_bytes, std::uint32_t line_bytes,
                    std::uint32_t assoc) const
{
    auto sit = size_index_.find(size_bytes);
    SPIKESIM_ASSERT(sit != size_index_.end(),
                    "cache size " << size_bytes << "B not in sweep");
    auto ait = assoc_index_.find(assoc);
    SPIKESIM_ASSERT(ait != assoc_index_.end(),
                    "associativity " << assoc << " not in sweep");
    return misses_[index(sit->second, lineIndex(line_bytes),
                         ait->second)];
}

namespace {

/**
 * Simulation state for one line size of a sweep. Passes are mutually
 * independent, so one trace walk can drive any number of them (fused
 * serial path) or each can run on its own thread (parallel executor).
 */
struct LinePass
{
    std::uint32_t line = 0;
    std::uint32_t shift = 0;
    std::uint64_t low_mask = 0;
    std::vector<std::uint32_t> set_counts; ///< unique, insertion order
    std::vector<std::uint32_t> caps;       ///< parallel: deepest assoc
    std::vector<std::size_t> sim_of;       ///< (si, ai) -> sim index
    bool direct_mapped = false;            ///< every assoc is 1

    // Direct-mapped state: flat last-line tags, one slot per set, per
    // simulator, per CPU.
    std::vector<std::size_t> offset; ///< table start per sim index
    std::size_t bank_slots = 0;      ///< slots per CPU bank
    std::vector<std::uint64_t> tables;
    std::vector<std::uint64_t> masks;
    std::size_t k_min = 0; ///< fewest-set sim index
    std::vector<std::uint64_t> dm_hits;
    std::vector<std::uint64_t> inclusive_hits; ///< per CPU

    // General state: one stack-distance simulator per set count per
    // CPU answers every associativity of that set count at once.
    std::vector<mem::LruStackSim> sims;

    std::uint64_t accesses = 0;
    std::uint64_t repeat_hits = 0; ///< distance-0 in every config
    std::vector<std::uint64_t> last_line; ///< per CPU
};

LinePass
makeLinePass(const SweepSpec& spec, std::size_t line_index,
             std::size_t num_cpus)
{
    LinePass p;
    p.line = spec.line_bytes[line_index];
    p.shift = static_cast<std::uint32_t>(std::bit_width(p.line) - 1);
    p.low_mask = p.line - 1;

    // Configurations sharing a set count share one simulator: (size S,
    // assoc A) at this line size uses S / (line * A) sets, and one
    // per-set distance histogram answers every associativity.
    const std::size_t num_sizes = spec.size_bytes.size();
    const std::size_t num_assocs = spec.assocs.size();
    p.sim_of.resize(num_sizes * num_assocs);
    for (std::size_t si = 0; si < num_sizes; ++si) {
        for (std::size_t ai = 0; ai < num_assocs; ++ai) {
            mem::CacheConfig config{spec.size_bytes[si], p.line,
                                    spec.assocs[ai]};
            std::uint32_t sets = config.numSets();
            std::size_t k = 0;
            while (k < p.set_counts.size() && p.set_counts[k] != sets)
                ++k;
            if (k == p.set_counts.size()) {
                p.set_counts.push_back(sets);
                p.caps.push_back(config.assoc);
            } else {
                p.caps[k] = std::max(p.caps[k], config.assoc);
            }
            p.sim_of[si * num_assocs + ai] = k;
        }
    }

    const std::size_t num_sims = p.set_counts.size();
    std::uint32_t max_cap = 0;
    for (std::uint32_t cap : p.caps)
        max_cap = std::max(max_cap, cap);
    p.direct_mapped = max_cap == 1;
    p.last_line.assign(num_cpus, ~0ULL);

    if (p.direct_mapped) {
        p.offset.assign(num_sims + 1, 0);
        for (std::size_t k = 0; k < num_sims; ++k)
            p.offset[k + 1] = p.offset[k] + p.set_counts[k];
        p.bank_slots = p.offset[num_sims];
        p.tables.assign(num_cpus * p.bank_slots, ~0ULL);
        p.masks.resize(num_sims);
        for (std::size_t k = 0; k < num_sims; ++k) {
            p.masks[k] = p.set_counts[k] - 1;
            if (p.set_counts[k] < p.set_counts[p.k_min])
                p.k_min = k;
        }
        p.dm_hits.assign(num_cpus * num_sims, 0);
        p.inclusive_hits.assign(num_cpus, 0);
    } else {
        p.sims.reserve(num_cpus * num_sims);
        for (std::size_t c = 0; c < num_cpus; ++c)
            for (std::size_t k = 0; k < num_sims; ++k)
                p.sims.emplace_back(p.set_counts[k], p.caps[k]);
    }
    return p;
}

/**
 * Walk the resolved trace once, feeding every pass. The direct-mapped
 * inner loop is a one-deep LRU stack -- a flat array of line tags --
 * with two fast paths: a line equal to this CPU's previous line is the
 * most recently used entry of its set under every set mask (a hit
 * everywhere, no state change), and a hit in the fewest-set table
 * implies a hit in every table. The set masks are nested (all low-bit
 * masks), so lines sharing a set under a finer mask share one under
 * the coarser mask too: if the coarsest table's slot holds this line,
 * the line was also the last access to its set in every finer table
 * and all slots already hold it -- one compare, no stores. Instruction
 * streams are sequential enough that these two paths take the vast
 * majority of accesses.
 */
void
runLinePasses(const ResolvedTrace& trace, std::span<LinePass> passes)
{
    for (const ResolvedRef& r : trace.refs) {
        const std::uint64_t end = r.addr + r.bytes;
        const std::size_t cpu = r.cpu;
        for (LinePass& p : passes) {
            const std::uint32_t line = p.line;
            const std::uint32_t shift = p.shift;
            std::uint64_t last = p.last_line[cpu];
            std::uint64_t acc = 0;
            std::uint64_t rep = 0;
            const std::size_t num_sims = p.set_counts.size();
            if (p.direct_mapped) {
                std::uint64_t* bank = &p.tables[cpu * p.bank_slots];
                std::uint64_t* hits = &p.dm_hits[cpu * num_sims];
                const std::uint64_t* small = &bank[p.offset[p.k_min]];
                const std::uint64_t small_mask = p.masks[p.k_min];
                std::uint64_t incl = 0;
                for (std::uint64_t a = r.addr & ~p.low_mask; a < end;
                     a += line) {
                    ++acc;
                    std::uint64_t ln = a >> shift;
                    if (ln == last) {
                        ++rep;
                        continue;
                    }
                    last = ln;
                    if (small[ln & small_mask] == ln) {
                        ++incl;
                        continue;
                    }
                    for (std::size_t k = 0; k < num_sims; ++k) {
                        std::uint64_t* slot =
                            &bank[p.offset[k] + (ln & p.masks[k])];
                        hits[k] += (*slot == ln);
                        *slot = ln;
                    }
                }
                p.inclusive_hits[cpu] += incl;
            } else {
                mem::LruStackSim* bank = &p.sims[cpu * num_sims];
                for (std::uint64_t a = r.addr & ~p.low_mask; a < end;
                     a += line) {
                    ++acc;
                    std::uint64_t ln = a >> shift;
                    if (ln == last) {
                        ++rep;
                        continue;
                    }
                    last = ln;
                    for (std::size_t k = 0; k < num_sims; ++k)
                        bank[k].access(ln);
                }
            }
            p.last_line[cpu] = last;
            p.accesses += acc;
            p.repeat_hits += rep;
        }
    }
}

/**
 * Fold a finished pass into its line's slice of the result arrays.
 * `misses_out` points at the contiguous [si][ai] block for this line.
 */
void
finishLinePass(const SweepSpec& spec, const LinePass& p,
               std::size_t num_cpus, std::uint64_t* accesses_out,
               std::uint64_t* misses_out)
{
    const std::size_t num_sizes = spec.size_bytes.size();
    const std::size_t num_assocs = spec.assocs.size();
    const std::size_t num_sims = p.set_counts.size();
    *accesses_out = p.accesses;
    for (std::size_t si = 0; si < num_sizes; ++si) {
        for (std::size_t ai = 0; ai < num_assocs; ++ai) {
            std::uint64_t hits = p.repeat_hits;
            std::size_t k = p.sim_of[si * num_assocs + ai];
            for (std::size_t c = 0; c < num_cpus; ++c)
                hits += p.direct_mapped
                            ? p.dm_hits[c * num_sims + k] +
                                  p.inclusive_hits[c]
                            : p.sims[c * num_sims + k].hitsUpTo(
                                  spec.assocs[ai]);
            misses_out[si * num_assocs + ai] = p.accesses - hits;
        }
    }
}

} // namespace

void
sweepLineSize(const ResolvedTrace& trace, const SweepSpec& spec,
              std::size_t line_index, SweepResult& out)
{
    const std::size_t num_cpus =
        static_cast<std::size_t>(trace.num_cpus);
    LinePass pass = makeLinePass(spec, line_index, num_cpus);
    runLinePasses(trace, {&pass, 1});
    finishLinePass(spec, pass, num_cpus, &out.accesses_[line_index],
                   &out.misses_[out.index(0, line_index, 0)]);
}

void
sweepAllLines(const ResolvedTrace& trace, const SweepSpec& spec,
              SweepResult& out)
{
    const std::size_t num_cpus =
        static_cast<std::size_t>(trace.num_cpus);
    std::vector<LinePass> passes;
    passes.reserve(spec.line_bytes.size());
    for (std::size_t li = 0; li < spec.line_bytes.size(); ++li)
        passes.push_back(makeLinePass(spec, li, num_cpus));
    runLinePasses(trace, passes);
    for (std::size_t li = 0; li < spec.line_bytes.size(); ++li)
        finishLinePass(spec, passes[li], num_cpus, &out.accesses_[li],
                       &out.misses_[out.index(0, li, 0)]);
}

ResolvedTrace
Replayer::resolve(StreamFilter filter, bool include_data) const
{
    ResolvedTrace out;
    out.num_cpus = num_cpus_;
    const std::size_t n_cpus = static_cast<std::size_t>(num_cpus_);

    // Pass 1: per-CPU ref counts, so the partitioned vector is filled
    // in place (exact-size allocation, no grow-and-regroup step).
    std::vector<std::size_t> count(n_cpus, 0);
    for (const TraceEvent& e : trace_.events()) {
        if (e.image == ImageId::Data) {
            if (include_data)
                ++count[e.cpu];
            continue;
        }
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        ++out.instr_events;
        std::uint32_t size = layout.blockSize(e.block);
        out.instrs += size;
        if (size != 0)
            ++count[e.cpu];
    }

    out.cpu_begin.assign(n_cpus + 1, 0);
    for (std::size_t c = 0; c < n_cpus; ++c)
        out.cpu_begin[c + 1] = out.cpu_begin[c] + count[c];
    out.refs.resize(out.cpu_begin[n_cpus]);

    // Pass 2: fill each CPU's slice in trace order. A block event of a
    // filtered-out image marks a pending run break on its CPU (the
    // fetch unit was taken by the other stream); data events never
    // break runs.
    std::vector<std::size_t> cursor(out.cpu_begin.begin(),
                                    out.cpu_begin.end() - 1);
    std::vector<std::uint8_t> pending(n_cpus, 0);
    for (const TraceEvent& e : trace_.events()) {
        if (e.image == ImageId::Data) {
            if (include_data) {
                std::uint64_t addr = static_cast<std::uint64_t>(e.block)
                                     << 2;
                out.refs[cursor[e.cpu]++] = {addr, 4, e.cpu,
                                             mem::Owner::Data, 0};
                out.data_refs.push_back({addr, e.cpu});
            }
            continue;
        }
        if (!wantImage(filter, e.image)) {
            pending[e.cpu] = kRefRunBreak;
            continue;
        }
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        out.refs[cursor[e.cpu]++] = {layout.blockAddr(e.block),
                                     static_cast<std::uint32_t>(bytes),
                                     e.cpu, ownerOf(e.image),
                                     pending[e.cpu]};
        pending[e.cpu] = 0;
    }
    return out;
}

const Replayer::ResolveCounts&
Replayer::countsFor(StreamFilter filter, bool include_data) const
{
    const std::size_t key = static_cast<std::size_t>(filter) * 2 +
                            (include_data ? 1 : 0);
    SPIKESIM_ASSERT(key < counts_memo_.size(), "bad filter value");
    {
        std::lock_guard<std::mutex> lock(counts_mu_);
        if (counts_memo_[key].has_value())
            return *counts_memo_[key];
    }

    // The counting pass reads a dense one-byte emits-a-ref table per
    // image (built here in one sweep over the block ids, L2-resident)
    // instead of the 4-byte layout size table, and leaves the
    // instruction accounting to the fill pass — which touches every
    // qualifying block anyway — so this is a pure event-stream walk.
    const auto refTable = [](const core::Layout& l) {
        std::vector<std::uint8_t> t(l.prog().numBlocks());
        for (std::uint32_t g = 0; g < t.size(); ++g)
            t[g] = l.blockSize(g) != 0 ? 1 : 0;
        return t;
    };
    const std::vector<std::uint8_t> app_ref = refTable(app_);
    const std::vector<std::uint8_t> kernel_ref =
        kernel_ != nullptr ? refTable(*kernel_)
                           : std::vector<std::uint8_t>();
    ResolveCounts rc;
    rc.count.assign(static_cast<std::size_t>(num_cpus_), 0);
    for (const TraceEvent& e : trace_.events()) {
        if (e.image == ImageId::Data) {
            if (include_data) {
                ++rc.count[e.cpu];
                ++rc.n_data;
            }
            continue;
        }
        if (!wantImage(filter, e.image))
            continue;
        if (e.image == ImageId::App) {
            rc.count[e.cpu] += app_ref[e.block];
        } else {
            SPIKESIM_ASSERT(
                kernel_ != nullptr,
                "replaying kernel events requires a kernel layout");
            rc.count[e.cpu] += kernel_ref[e.block];
        }
    }

    std::lock_guard<std::mutex> lock(counts_mu_);
    if (!counts_memo_[key].has_value())
        counts_memo_[key] = std::move(rc);
    return *counts_memo_[key];
}

ResolvedTraceSoA
Replayer::resolveSoA(StreamFilter filter, bool include_data) const
{
    ResolvedTraceSoA out;
    out.num_cpus = num_cpus_;
    const std::size_t n_cpus = static_cast<std::size_t>(num_cpus_);

    // Pass 1 (memoized per filter): per-CPU ref counts plus the global
    // data-event count, so every column and data_refs get one
    // exact-size allocation (no growth reallocation anywhere in the
    // resolve phase).
    const ResolveCounts& rc = countsFor(filter, include_data);
    const std::vector<std::size_t>& count = rc.count;
    const std::size_t n_data = rc.n_data;

    out.cpu_begin.assign(n_cpus + 1, 0);
    for (std::size_t c = 0; c < n_cpus; ++c)
        out.cpu_begin[c + 1] = out.cpu_begin[c] + count[c];
    const std::size_t total = out.cpu_begin[n_cpus];
    out.addr.resize(total);
    out.bytes.resize(total);
    out.owner.resize(total);
    out.flags.resize(total);
    out.data_refs.reserve(n_data);

    // Pass 2: write each CPU's column slices in trace order — the same
    // cursor walk as resolve(), but straight into the four columns
    // (14 bytes per ref instead of a 24-byte struct plus a transpose),
    // accumulating instr_events/instrs alongside.
    std::vector<std::size_t> cursor(out.cpu_begin.begin(),
                                    out.cpu_begin.end() - 1);
    std::vector<std::uint8_t> pending(n_cpus, 0);
    for (const TraceEvent& e : trace_.events()) {
        if (e.image == ImageId::Data) {
            if (include_data) {
                const std::uint64_t addr =
                    static_cast<std::uint64_t>(e.block) << 2;
                const std::size_t i = cursor[e.cpu]++;
                out.addr[i] = addr;
                out.bytes[i] = 4;
                out.owner[i] =
                    static_cast<std::uint8_t>(mem::Owner::Data);
                out.flags[i] = 0;
                out.data_refs.push_back({addr, e.cpu});
            }
            continue;
        }
        if (!wantImage(filter, e.image)) {
            pending[e.cpu] = kRefRunBreak;
            continue;
        }
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        ++out.instr_events;
        const std::uint32_t size = layout.blockSize(e.block);
        out.instrs += size;
        if (size == 0)
            continue;
        const std::size_t i = cursor[e.cpu]++;
        out.addr[i] = layout.blockAddr(e.block);
        out.bytes[i] = size * program::kInstrBytes;
        out.owner[i] = static_cast<std::uint8_t>(ownerOf(e.image));
        out.flags[i] = pending[e.cpu];
        pending[e.cpu] = 0;
    }
    return out;
}

SweepResult
Replayer::icacheSweep(const SweepSpec& spec, StreamFilter filter) const
{
    std::string err = spec.check();
    SPIKESIM_ASSERT(err.empty(), "bad sweep spec: " << err);
    ResolvedTrace resolved = resolve(filter);
    SweepResult out(spec);
    sweepAllLines(resolved, spec, out);
    return out;
}

WordStats
Replayer::instrumented(const mem::CacheConfig& config, StreamFilter filter,
                       bool flush_at_end) const
{
    std::vector<mem::InstrumentedICache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config);

    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint32_t words = layout.blockSize(e.block);
        std::uint64_t addr = layout.blockAddr(e.block);
        mem::Owner owner = ownerOf(e.image);
        mem::InstrumentedICache& cache = caches[e.cpu];
        for (std::uint32_t w = 0; w < words; ++w)
            cache.fetchWord(addr + w * 4ull, owner);
    }

    WordStats out;
    out.words_used = support::Histogram(config.line_bytes / 4 + 1);
    double fetched = 0.0;
    double unused = 0.0;
    for (auto& cache : caches) {
        if (flush_at_end)
            cache.flush();
        out.words_used.merge(cache.wordsUsed());
        out.word_reuse.merge(cache.wordReuse());
        out.lifetimes.merge(cache.lifetimes());
        out.misses += cache.misses();
        fetched += static_cast<double>(cache.wordReuse().totalSamples());
        unused += cache.unusedWordFraction() *
                  static_cast<double>(cache.wordReuse().totalSamples());
    }
    out.unused_word_fraction = fetched == 0.0 ? 0.0 : unused / fetched;
    return out;
}

mem::ThreeCStats
Replayer::threeCs(const mem::CacheConfig& config,
                  StreamFilter filter) const
{
    std::vector<mem::ClassifyingICache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config);

    const std::uint64_t line = config.line_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::ClassifyingICache& cache = caches[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line)
            cache.access(a);
    }
    mem::ThreeCStats total;
    for (const auto& c : caches)
        total += c.stats();
    return total;
}

ITlbReplayResult
Replayer::itlb(const ITlbSpec& spec, StreamFilter filter) const
{
    std::vector<mem::ITlb> tlbs;
    tlbs.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        tlbs.emplace_back(spec.entries, spec.page_bytes);

    ITlbReplayResult result;
    const std::uint64_t line = spec.fetch_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::ITlb& tlb = tlbs[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line) {
            ++result.accesses;
            tlb.access(a);
        }
    }
    for (const mem::ITlb& t : tlbs)
        result.misses += t.misses();
    return result;
}

mem::StreamBufferStats
Replayer::streamBuffer(const mem::CacheConfig& config, int num_buffers,
                       StreamFilter filter) const
{
    std::vector<mem::StreamBufferICache> caches;
    caches.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        caches.emplace_back(config, num_buffers);

    const std::uint64_t line = config.line_bytes;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        mem::StreamBufferICache& cache = caches[e.cpu];
        for (std::uint64_t a = addr & ~(line - 1); a < end; a += line)
            cache.fetchLine(a);
    }
    mem::StreamBufferStats total;
    for (const auto& c : caches)
        total += c.stats();
    return total;
}

HierarchyReplayResult
Replayer::hierarchy(const mem::HierarchyConfig& config,
                    bool include_data, bool model_coherence) const
{
    // line -> last CPU that touched it (coherence model).
    std::unordered_map<std::uint64_t, std::uint8_t> data_owner;
    HierarchyReplayResult result;
    std::vector<mem::MemoryHierarchy> cpus;
    cpus.reserve(static_cast<std::size_t>(num_cpus_));
    for (int i = 0; i < num_cpus_; ++i)
        cpus.emplace_back(config);

    const std::uint64_t iline = config.l1i.line_bytes;
    const std::uint64_t dline = config.l1d.line_bytes;
    std::vector<std::uint64_t> expected(
        static_cast<std::size_t>(num_cpus_), ~0ULL);
    for (const TraceEvent& e : trace_.events()) {
        if (e.image == ImageId::Data) {
            if (include_data) {
                std::uint64_t line =
                    (static_cast<std::uint64_t>(e.block) << 2) &
                    ~(dline - 1);
                if (model_coherence) {
                    auto [it, fresh] = data_owner.try_emplace(line,
                                                              e.cpu);
                    if (!fresh && it->second != e.cpu) {
                        // The line migrates: remote dirty copy.
                        ++result.total.comm_misses;
                        it->second = e.cpu;
                    }
                }
                cpus[e.cpu].dataLine(line);
            }
            continue;
        }
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        std::uint64_t bytes = layout.blockBytes(e.block);
        if (bytes == 0)
            continue;
        std::uint64_t addr = layout.blockAddr(e.block);
        std::uint64_t end = addr + bytes;
        result.instrs += layout.blockSize(e.block);
        if (addr != expected[e.cpu])
            ++result.fetch_breaks;
        expected[e.cpu] = end;
        mem::Owner owner = ownerOf(e.image);
        mem::MemoryHierarchy& h = cpus[e.cpu];
        for (std::uint64_t a = addr & ~(iline - 1); a < end; a += iline)
            h.fetchLine(a, owner);
    }
    for (auto& h : cpus) {
        result.per_cpu.push_back(h.stats());
        result.total += h.stats();
    }
    return result;
}

std::uint64_t
Replayer::dynamicInstrs(StreamFilter filter) const
{
    std::uint64_t total = 0;
    for (const TraceEvent& e : trace_.events()) {
        if (!wantImage(filter, e.image))
            continue;
        const core::Layout& layout = layoutFor(e.image, app_, kernel_);
        total += layout.blockSize(e.block);
    }
    return total;
}

} // namespace spikesim::sim
