#include "sim/kernels.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <string>

#include "sim/kernels_detail.hh"
#include "support/cpufeat.hh"
#include "support/panic.hh"

namespace spikesim::sim {

bool
simdKernelsCompiled()
{
#if defined(SPIKESIM_AVX2_TU)
    return true;
#else
    return false;
#endif
}

bool
simdAvailable()
{
    return simdKernelsCompiled() && support::cpuHasAvx2();
}

bool
avx512KernelsCompiled()
{
#if defined(SPIKESIM_AVX512_TU)
    return true;
#else
    return false;
#endif
}

bool
avx512Available()
{
    return avx512KernelsCompiled() && support::cpuHasAvx512f();
}

SimdMode
simdModeFromEnv()
{
    const char* raw = std::getenv("SPIKESIM_SIMD");
    if (raw == nullptr || raw[0] == '\0')
        return SimdMode::Auto;
    const std::string val(raw);
    if (val == "0")
        return SimdMode::Scalar;
    if (val == "1")
        return SimdMode::Simd;
    if (val == "2")
        return SimdMode::Avx512;
    support::fatal("SPIKESIM_SIMD must be \"0\", \"1\" or \"2\", got \"" +
                   val + "\"");
}

namespace {

/**
 * Build a tiny deterministic single-CPU SoA trace with the shape real
 * resolved traces have — mostly sequential fetch runs with periodic
 * jumps, a minority kernel-owned stretch — for the calibration replay.
 */
ResolvedTraceSoA
makeCalibrationTrace()
{
    ResolvedTraceSoA soa;
    const std::size_t n = 32 * 1024;
    soa.addr.resize(n);
    soa.bytes.resize(n);
    soa.owner.resize(n);
    soa.flags.assign(n, 0);
    soa.num_cpus = 1;
    soa.cpu_begin = {0, n};
    soa.instr_events = n;
    soa.instrs = n;

    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    const auto rnd = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    };
    std::uint64_t addr = 0;
    std::uint8_t owner = static_cast<std::uint8_t>(mem::Owner::App);
    std::size_t run_left = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (run_left == 0) {
            run_left = 4 + rnd() % 48;
            addr = (rnd() % (1u << 18)) & ~3ULL;
            owner = static_cast<std::uint8_t>(
                rnd() % 10 == 0 ? mem::Owner::Kernel : mem::Owner::App);
        }
        const std::uint32_t bytes =
            4u * (1u + static_cast<std::uint32_t>(rnd() % 16));
        soa.addr[i] = addr;
        soa.bytes[i] = bytes;
        soa.owner[i] = owner;
        addr += bytes;
        --run_left;
    }
    return soa;
}

double
timeKernel(KernelKind kind, const ResolvedTraceSoA& soa,
           const mem::CacheConfig* configs, std::size_t n_cfg)
{
    using clock = std::chrono::steady_clock;
    std::vector<ICacheReplayResult> out(n_cfg);
    detail::IcacheShard sh;
    sh.soa = &soa;
    sh.cpu = 0;
    sh.configs = configs;
    sh.k0 = 0;
    sh.k1 = n_cfg;
    sh.out = out.data();
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto t0 = clock::now();
        detail::icacheShardRun(kind, sh);
        const double s =
            std::chrono::duration<double>(clock::now() - t0).count();
        if (rep == 0 || s < best)
            best = s;
    }
    return best;
}

/** Calibration state: an optional real-trace slice seeded by the
 *  caller, the cached choice, and its provenance. */
struct CalibState
{
    std::mutex mu;
    ResolvedTraceSoA slice; ///< empty => use the synthetic trace
    bool seeded = false;
    bool computed = false;
    KernelChoice choice;
    CalibrationInfo info;
};

CalibState&
calibState()
{
    static CalibState s;
    return s;
}

/** One-time calibration replay: time every runnable kernel on the
 *  seeded real-trace slice (else the synthetic trace), keep the
 *  fastest. Caller holds st.mu. */
const KernelChoice&
calibratedChoiceLocked(CalibState& st)
{
    if (st.computed)
        return st.choice;
    st.computed = true;
    KernelChoice& c = st.choice;
    c = KernelChoice();
    st.info = CalibrationInfo();
    if (!simdAvailable() && !avx512Available()) {
        c.kind = KernelKind::Scalar;
        c.reason = "auto: no vector kernel runnable on this host";
        return c;
    }
    const bool real = st.seeded && !st.slice.addr.empty();
    const ResolvedTraceSoA& soa =
        real ? st.slice
             : (st.slice = makeCalibrationTrace(), st.slice);
    st.info.ran = true;
    st.info.source = real ? "real-slice" : "synthetic";
    st.info.sample_refs = soa.addr.size();
    // A fig04-shaped mix: direct-mapped sizes at two line sizes
    // plus one 4-way member.
    const mem::CacheConfig configs[] = {
        {32 * 1024, 32, 1},  {64 * 1024, 32, 1},
        {128 * 1024, 64, 1}, {256 * 1024, 64, 1},
        {64 * 1024, 64, 4},
    };
    const std::size_t n_cfg = sizeof(configs) / sizeof(configs[0]);
    const double scalar_s =
        timeKernel(KernelKind::Scalar, soa, configs, n_cfg);
    c.kind = KernelKind::Scalar;
    double best_s = scalar_s;
    if (simdAvailable()) {
        const double s =
            timeKernel(KernelKind::Avx2, soa, configs, n_cfg);
        if (s < best_s) {
            best_s = s;
            c.kind = KernelKind::Avx2;
        }
    }
    if (avx512Available()) {
        const double s =
            timeKernel(KernelKind::Avx512, soa, configs, n_cfg);
        if (s < best_s) {
            best_s = s;
            c.kind = KernelKind::Avx512;
        }
    }
    std::ostringstream reason;
    if (c.kind == KernelKind::Scalar) {
        reason << "auto-calibrated (" << st.info.source
               << "): scalar (vector kernels slower on this host)";
    } else {
        reason << "auto-calibrated (" << st.info.source << "): "
               << kernelName(c.kind) << " (" << std::fixed
               << std::setprecision(2)
               << (best_s > 0.0 ? scalar_s / best_s : 0.0)
               << "x vs scalar)";
    }
    c.reason = reason.str();
    return c;
}

KernelChoice
explicitChoice(SimdMode mode, const char* source)
{
    KernelChoice c;
    switch (mode) {
    case SimdMode::Scalar:
        c.kind = KernelKind::Scalar;
        break;
    case SimdMode::Simd:
        if (!simdAvailable())
            support::fatal(
                std::string("SIMD kernels requested but unavailable: ") +
                (simdKernelsCompiled()
                     ? "host CPU does not report AVX2"
                     : "binary was built without AVX2 support"));
        c.kind = KernelKind::Avx2;
        break;
    case SimdMode::Avx512:
        if (!avx512Available())
            support::fatal(
                std::string(
                    "AVX-512 kernels requested but unavailable: ") +
                (avx512KernelsCompiled()
                     ? "host CPU does not report AVX512F"
                     : "binary was built without AVX-512 support"));
        c.kind = KernelKind::Avx512;
        break;
    case SimdMode::Auto:
        break;
    }
    c.reason = std::string(source) + ": " + kernelName(c.kind);
    return c;
}

} // namespace

KernelChoice
resolveKernel(SimdMode mode)
{
    if (mode != SimdMode::Auto)
        return explicitChoice(mode, "forced by caller");
    const SimdMode env = simdModeFromEnv();
    if (env != SimdMode::Auto)
        return explicitChoice(env, "SPIKESIM_SIMD");
    CalibState& st = calibState();
    const std::lock_guard<std::mutex> lock(st.mu);
    return calibratedChoiceLocked(st);
}

void
seedCalibrationTrace(const ResolvedTraceSoA& soa, std::size_t max_refs)
{
    const std::size_t n = std::min(max_refs, soa.addr.size());
    CalibState& st = calibState();
    const std::lock_guard<std::mutex> lock(st.mu);
    st.slice = ResolvedTraceSoA();
    if (n > 0) {
        st.slice.addr.assign(soa.addr.begin(),
                             soa.addr.begin() +
                                 static_cast<std::ptrdiff_t>(n));
        st.slice.bytes.assign(soa.bytes.begin(),
                              soa.bytes.begin() +
                                  static_cast<std::ptrdiff_t>(n));
        st.slice.owner.assign(soa.owner.begin(),
                              soa.owner.begin() +
                                  static_cast<std::ptrdiff_t>(n));
        st.slice.flags.assign(soa.flags.begin(),
                              soa.flags.begin() +
                                  static_cast<std::ptrdiff_t>(n));
        st.slice.num_cpus = 1;
        st.slice.cpu_begin = {0, n};
        st.slice.instr_events = n;
        st.slice.instrs = n;
    }
    st.seeded = n > 0;
    st.computed = false; // next Auto resolve re-calibrates
}

CalibrationInfo
calibrationInfo()
{
    CalibState& st = calibState();
    const std::lock_guard<std::mutex> lock(st.mu);
    return st.info;
}

const char*
kernelName(KernelKind kind)
{
    switch (kind) {
    case KernelKind::Scalar:
        return "scalar";
    case KernelKind::Avx2:
        return "avx2";
    case KernelKind::Avx512:
        return "avx512";
    }
    return "scalar";
}

namespace detail {

void
icacheShardScalar(const IcacheShard& shard)
{
    runIcacheShardImpl<ScalarProbe>(shard);
}

void
threeCShardScalar(const ThreeCShard& shard)
{
    runThreeCShardImpl<ScalarStatsProbe>(shard);
}

void
iTlbShard(const ITlbShard& shard)
{
    runITlbShardImpl(shard);
}

void
instrShard(const InstrShard& shard)
{
    runInstrShardImpl(shard);
}

void
streamBufShardScalar(const StreamBufShard& shard)
{
    runStreamBufShardImpl<ScalarStatsProbe>(shard);
}

#if !defined(SPIKESIM_AVX2_TU)
void
icacheShardAvx2(const IcacheShard& shard)
{
    (void)shard;
    support::fatal("AVX2 kernel invoked in a binary built without it");
}

void
threeCShardAvx2(const ThreeCShard& shard)
{
    (void)shard;
    support::fatal("AVX2 kernel invoked in a binary built without it");
}

void
streamBufShardAvx2(const StreamBufShard& shard)
{
    (void)shard;
    support::fatal("AVX2 kernel invoked in a binary built without it");
}
#endif

#if !defined(SPIKESIM_AVX512_TU)
void
icacheShardAvx512(const IcacheShard& shard)
{
    (void)shard;
    support::fatal(
        "AVX-512 kernel invoked in a binary built without it");
}

void
threeCShardAvx512(const ThreeCShard& shard)
{
    (void)shard;
    support::fatal(
        "AVX-512 kernel invoked in a binary built without it");
}

void
streamBufShardAvx512(const StreamBufShard& shard)
{
    (void)shard;
    support::fatal(
        "AVX-512 kernel invoked in a binary built without it");
}
#endif

void
icacheShardRun(KernelKind kind, const IcacheShard& shard)
{
    switch (kind) {
    case KernelKind::Scalar:
        icacheShardScalar(shard);
        return;
    case KernelKind::Avx2:
        icacheShardAvx2(shard);
        return;
    case KernelKind::Avx512:
        icacheShardAvx512(shard);
        return;
    }
}

void
threeCShardRun(KernelKind kind, const ThreeCShard& shard)
{
    switch (kind) {
    case KernelKind::Scalar:
        threeCShardScalar(shard);
        return;
    case KernelKind::Avx2:
        threeCShardAvx2(shard);
        return;
    case KernelKind::Avx512:
        threeCShardAvx512(shard);
        return;
    }
}

void
iTlbShardRun(KernelKind kind, const ITlbShard& shard)
{
    (void)kind; // one exact FA-LRU implementation serves every kind
    iTlbShard(shard);
}

void
instrShardRun(KernelKind kind, const InstrShard& shard)
{
    (void)kind; // one per-word scalar implementation serves every kind
    instrShard(shard);
}

void
streamBufShardRun(KernelKind kind, const StreamBufShard& shard)
{
    switch (kind) {
    case KernelKind::Scalar:
        streamBufShardScalar(shard);
        return;
    case KernelKind::Avx2:
        streamBufShardAvx2(shard);
        return;
    case KernelKind::Avx512:
        streamBufShardAvx512(shard);
        return;
    }
}

} // namespace detail

} // namespace spikesim::sim
