#include "sim/kernels.hh"

#include <cstdlib>
#include <string>

#include "sim/kernels_detail.hh"
#include "support/cpufeat.hh"
#include "support/panic.hh"

namespace spikesim::sim {

bool
simdKernelsCompiled()
{
#if defined(SPIKESIM_AVX2_TU)
    return true;
#else
    return false;
#endif
}

bool
simdAvailable()
{
    return simdKernelsCompiled() && support::cpuHasAvx2();
}

SimdMode
simdModeFromEnv()
{
    const char* raw = std::getenv("SPIKESIM_SIMD");
    if (raw == nullptr || raw[0] == '\0')
        return SimdMode::Auto;
    const std::string val(raw);
    if (val == "0")
        return SimdMode::Scalar;
    if (val == "1")
        return SimdMode::Simd;
    support::fatal("SPIKESIM_SIMD must be \"0\" or \"1\", got \"" + val +
                   "\"");
}

bool
resolveSimd(SimdMode mode)
{
    if (mode == SimdMode::Auto)
        mode = simdModeFromEnv();
    switch (mode) {
    case SimdMode::Scalar:
        return false;
    case SimdMode::Simd:
        if (!simdAvailable())
            support::fatal(
                std::string("SIMD kernels requested but unavailable: ") +
                (simdKernelsCompiled()
                     ? "host CPU does not report AVX2"
                     : "binary was built without AVX2 support"));
        return true;
    case SimdMode::Auto:
        break;
    }
    return simdAvailable();
}

const char*
simdKernelName(bool simd)
{
    return simd ? "avx2" : "scalar";
}

namespace detail {

void
icacheShardScalar(const IcacheShard& shard)
{
    runIcacheShardImpl<ScalarProbe>(shard);
}

#if !defined(SPIKESIM_AVX2_TU)
void
icacheShardAvx2(const IcacheShard& shard)
{
    (void)shard;
    support::fatal("AVX2 kernel invoked in a binary built without it");
}
#endif

} // namespace detail

} // namespace spikesim::sim
