#ifndef SPIKESIM_SIM_SWEEP_HH
#define SPIKESIM_SIM_SWEEP_HH

#include <string>
#include <vector>

#include "sim/replay.hh"
#include "support/threadpool.hh"

/**
 * @file
 * Parallel sweep executor: runs many single-pass cache sweeps —
 * independent (layout x stream-filter x line-size) jobs — concurrently
 * over one shared read-only TraceBuffer. The trace is resolved once
 * per job (the layouts differ), then every line size of every job
 * becomes its own task; tasks write disjoint slices of their job's
 * SweepResult, so no synchronization beyond the pool's barrier is
 * needed.
 */

namespace spikesim::sim {

/** One sweep to run: a layout pair, a stream filter, and a spec. */
struct SweepJob
{
    /** Application layout; must outlive the executor call. */
    const core::Layout* app_layout = nullptr;
    /** Kernel layout; may be null when the filter never selects
     *  kernel events. */
    const core::Layout* kernel_layout = nullptr;
    StreamFilter filter = StreamFilter::AppOnly;
    SweepSpec spec;
    /** Free-form tag for reporting (e.g. the layout combo name). */
    std::string label;
};

/**
 * Run every job's sweep over the trace. With a pool, resolution and
 * per-line-size simulation tasks run on the workers; with `pool`
 * null everything runs serially on the caller. Results are returned
 * in job order and are identical either way.
 */
std::vector<SweepResult> runSweepJobs(const trace::TraceBuffer& trace,
                                      const std::vector<SweepJob>& jobs,
                                      support::ThreadPool* pool = nullptr);

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_SWEEP_HH
