#ifndef SPIKESIM_SIM_KERNELS_VEC_HH
#define SPIKESIM_SIM_KERNELS_VEC_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include <immintrin.h>

#include "sim/kernels_detail.hh"

/**
 * @file
 * Vector replay kernels shared by the AVX2 and AVX-512 translation
 * units. Everything lives in an anonymous namespace on purpose: each
 * vector TU is compiled with its own ISA flags (-mavx2 / -mavx512f),
 * and internal linkage guarantees the linker can never substitute one
 * TU's copy of a helper for the other's (an AVX-512-compiled body must
 * not be reachable from the AVX2 dispatch path on an AVX2-only host).
 * Only this header's includers define the out-of-line entry points
 * (icacheShardAvx2 / icacheShardAvx512, ...), each in its own TU.
 *
 * The i-cache walk here replaces the per-ref gather kernel that lost
 * to the scalar walk on the fig04 grid. Instead of gathering four
 * scattered tag slots per line, it exploits what an instruction trace
 * actually looks like:
 *
 *  1. Run coalescing. Maximal chains of same-owner refs where each
 *     ref starts exactly where the previous one ended are merged into
 *     one byte run [first, run_end). Per line-size group the run spans
 *     lines [L0, L1]; the scalar walk's access counter over the same
 *     refs is (L1-L0+1) plus one extra access per interior ref
 *     boundary that is not line-aligned (the boundary line is counted
 *     by both refs), recovered O(1) per group from a ctz histogram of
 *     the boundary addresses. The scalar walk's repeat-line skip makes
 *     every line in [L0, L1] hit exactly one state update, minus L0
 *     when it equals the group's previous last line — so the span walk
 *     is bit-identical by construction.
 *
 *  2. Gather-free DM probes. Within a span, consecutive lines map to
 *     consecutive slots of a direct-mapped table until the set index
 *     wraps (slot = offset + (ln & mask)), so the fewest-set member's
 *     inclusive fast-path check becomes a contiguous vector load
 *     compared against an iota of line numbers — no gather. Lines
 *     whose lane misses fall back to the scalar all-members fill,
 *     which is the rare case by the inclusion invariant.
 *
 *  3. Group pairing. Two line-size groups' span loops advance in
 *     lockstep, issuing both tag loads before either fixup, covering
 *     one group's load latency with the other's compare.
 *
 * Set-associative members keep the whole-set vector probes of the
 * original AVX2 kernel (4/8-way tag compare + branch-free LRU age
 * update, scalar fallback otherwise), applied per line of the span.
 */

namespace spikesim::sim::detail {
namespace {

/** Largest supported line shift for the boundary-alignment histogram
 *  (16 MB lines — far beyond any simulated geometry). */
inline constexpr std::size_t kMaxLineShift = 24;

/** Lane mask (4 bits) of 64-bit lanes equal to `ln`. */
inline unsigned
eqMask4(__m256i tags, __m256i vln)
{
    const __m256i eq = _mm256_cmpeq_epi64(tags, vln);
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

/** ages[w] += (ages[w] < h) for four ways at once. */
inline __m256i
bumpYounger(__m256i ages, __m256i h)
{
    // Ages are tiny non-negative integers, so signed compare is exact;
    // subtracting the all-ones mask adds one to the younger lanes.
    return _mm256_sub_epi64(ages, _mm256_cmpgt_epi64(h, ages));
}

/** Whole-set vector probes for the interference-tracking i-cache
 *  members (owner tags), with scalar fallback for odd widths. */
struct VecAmProbe
{
    static void
    amProbe(LineGroup& g, const AssocMember& a, std::uint64_t ln,
            unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        switch (a.assoc) {
        case 4:
            probe4(g, a, ln, m, intf);
            return;
        case 8:
            probe8(g, a, ln, m, intf);
            return;
        default:
            ScalarProbe::amProbe(g, a, ln, m, intf);
            return;
        }
    }

  private:
    static void
    probe4(LineGroup& g, const AssocMember& a, std::uint64_t ln,
           unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        const std::size_t set = ln & a.set_mask;
        std::uint64_t* tags = g.am_tags.data() + a.base + set * 4;
        std::uint64_t* ages = g.am_ages.data() + a.base + set * 4;
        std::uint8_t* own = g.am_owners.data() + a.base + set * 4;

        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        const __m256i vtags = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        __m256i vages = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages));
        const unsigned hit = eqMask4(vtags, vln);
        if (hit != 0) {
            const unsigned h =
                static_cast<unsigned>(__builtin_ctz(hit));
            const __m256i vh = _mm256_set1_epi64x(
                static_cast<long long>(ages[h]));
            vages = bumpYounger(vages, vh);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages),
                                vages);
            ages[h] = 0;
            return;
        }
        const __m256i vlru = _mm256_set1_epi64x(3);
        const unsigned vict_mask = eqMask4(vages, vlru);
        const unsigned v =
            static_cast<unsigned>(__builtin_ctz(vict_mask));
        ++intf[a.slot][m * 3 + own[v]];
        tags[v] = ln;
        own[v] = static_cast<std::uint8_t>(m);
        vages = bumpYounger(vages, vlru);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), vages);
        ages[v] = 0;
    }

    static void
    probe8(LineGroup& g, const AssocMember& a, std::uint64_t ln,
           unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        const std::size_t set = ln & a.set_mask;
        std::uint64_t* tags = g.am_tags.data() + a.base + set * 8;
        std::uint64_t* ages = g.am_ages.data() + a.base + set * 8;
        std::uint8_t* own = g.am_owners.data() + a.base + set * 8;

        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        const __m256i t_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        const __m256i t_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags + 4));
        __m256i a_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages));
        __m256i a_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages + 4));
        const unsigned hit =
            eqMask4(t_lo, vln) | (eqMask4(t_hi, vln) << 4);
        if (hit != 0) {
            const unsigned h =
                static_cast<unsigned>(__builtin_ctz(hit));
            const __m256i vh = _mm256_set1_epi64x(
                static_cast<long long>(ages[h]));
            a_lo = bumpYounger(a_lo, vh);
            a_hi = bumpYounger(a_hi, vh);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), a_lo);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + 4),
                                a_hi);
            ages[h] = 0;
            return;
        }
        const __m256i vlru = _mm256_set1_epi64x(7);
        const unsigned vict_mask =
            eqMask4(a_lo, vlru) | (eqMask4(a_hi, vlru) << 4);
        const unsigned v =
            static_cast<unsigned>(__builtin_ctz(vict_mask));
        ++intf[a.slot][m * 3 + own[v]];
        tags[v] = ln;
        own[v] = static_cast<std::uint8_t>(m);
        a_lo = bumpYounger(a_lo, vlru);
        a_hi = bumpYounger(a_hi, vlru);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), a_lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + 4), a_hi);
        ages[v] = 0;
    }
};

/** Stats-only whole-set vector probes for the three-C and
 *  stream-buffer families (no owner tags). */
struct VecStatsProbe
{
    static bool
    amAccess(std::uint64_t* tags, std::uint64_t* ages,
             std::uint32_t assoc, std::uint64_t ln)
    {
        switch (assoc) {
        case 4:
            return access4(tags, ages, ln);
        case 8:
            return access8(tags, ages, ln);
        default:
            return ScalarStatsProbe::amAccess(tags, ages, assoc, ln);
        }
    }

  private:
    static bool
    access4(std::uint64_t* tags, std::uint64_t* ages, std::uint64_t ln)
    {
        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        const __m256i vtags = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        __m256i vages = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages));
        const unsigned hit = eqMask4(vtags, vln);
        if (hit != 0) {
            const unsigned h =
                static_cast<unsigned>(__builtin_ctz(hit));
            const __m256i vh = _mm256_set1_epi64x(
                static_cast<long long>(ages[h]));
            vages = bumpYounger(vages, vh);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages),
                                vages);
            ages[h] = 0;
            return true;
        }
        const __m256i vlru = _mm256_set1_epi64x(3);
        const unsigned vict_mask = eqMask4(vages, vlru);
        const unsigned v =
            static_cast<unsigned>(__builtin_ctz(vict_mask));
        tags[v] = ln;
        vages = bumpYounger(vages, vlru);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), vages);
        ages[v] = 0;
        return false;
    }

    static bool
    access8(std::uint64_t* tags, std::uint64_t* ages, std::uint64_t ln)
    {
        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        const __m256i t_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        const __m256i t_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags + 4));
        __m256i a_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages));
        __m256i a_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages + 4));
        const unsigned hit =
            eqMask4(t_lo, vln) | (eqMask4(t_hi, vln) << 4);
        if (hit != 0) {
            const unsigned h =
                static_cast<unsigned>(__builtin_ctz(hit));
            const __m256i vh = _mm256_set1_epi64x(
                static_cast<long long>(ages[h]));
            a_lo = bumpYounger(a_lo, vh);
            a_hi = bumpYounger(a_hi, vh);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), a_lo);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + 4),
                                a_hi);
            ages[h] = 0;
            return true;
        }
        const __m256i vlru = _mm256_set1_epi64x(7);
        const unsigned vict_mask =
            eqMask4(a_lo, vlru) | (eqMask4(a_hi, vlru) << 4);
        const unsigned v =
            static_cast<unsigned>(__builtin_ctz(vict_mask));
        tags[v] = ln;
        a_lo = bumpYounger(a_lo, vlru);
        a_hi = bumpYounger(a_hi, vlru);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), a_lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + 4), a_hi);
        ages[v] = 0;
        return false;
    }
};

/**
 * Cursor over one group's DM span [ln, l1], tracking the contiguous
 * slot segment of the fewest-set member (slots are consecutive until
 * the index mask wraps).
 */
struct DmSpanCursor
{
    LineGroup* g;
    std::uint64_t ln, l1;
    std::uint64_t seg_end = 0, idx = 0;
    unsigned m;

    DmSpanCursor(LineGroup& grp, std::uint64_t start, std::uint64_t stop,
                 unsigned mm)
        : g(&grp), ln(start), l1(stop), m(mm)
    {
        reseg();
    }

    void
    reseg()
    {
        const DmMember& mn = g->dm[g->dm_min];
        seg_end = std::min(l1, ln | mn.mask);
        idx = mn.offset + (ln & mn.mask);
    }

    bool done() const { return ln > l1; }

    template <std::size_t W>
    bool
    vecReady() const
    {
        return ln + W <= seg_end + 1;
    }
};

/** Apply one vector probe's miss mask (bit per lane, lane i = line
 *  ln+i) and advance the cursor by a full vector. */
template <class Ops>
inline void
dmFix(DmSpanCursor& c, unsigned miss, std::array<std::uint64_t, 6>* intf)
{
    while (miss != 0) {
        const unsigned lane =
            static_cast<unsigned>(std::countr_zero(miss));
        miss &= miss - 1;
        ScalarProbe::dmSlow(*c.g, c.ln + lane, c.m, intf);
    }
    c.ln += Ops::W;
    c.idx += Ops::W;
    if (c.ln > c.seg_end && !c.done())
        c.reseg();
}

/** Finish the (sub-vector-width) tail of the current slot segment. */
template <class Ops>
inline void
dmScalarSeg(DmSpanCursor& c, std::array<std::uint64_t, 6>* intf)
{
    std::uint64_t* tags = c.g->dm_tags.data();
    for (; c.ln <= c.seg_end; ++c.ln, ++c.idx)
        if (tags[c.idx] != c.ln)
            ScalarProbe::dmSlow(*c.g, c.ln, c.m, intf);
    if (!c.done())
        c.reseg();
}

template <class Ops>
inline void
dmSpanSingle(DmSpanCursor& c, std::array<std::uint64_t, 6>* intf)
{
    while (!c.done()) {
        if (c.template vecReady<Ops::W>()) {
            const unsigned miss =
                Ops::missMask(c.g->dm_tags.data() + c.idx, c.ln);
            dmFix<Ops>(c, miss, intf);
        } else {
            dmScalarSeg<Ops>(c, intf);
        }
    }
}

/** Walk two groups' spans in lockstep: both tag loads issue before
 *  either fixup, so one group's load latency hides under the other's
 *  compare. */
template <class Ops>
inline void
dmSpanPair(DmSpanCursor& a, DmSpanCursor& b,
           std::array<std::uint64_t, 6>* intf)
{
    while (!a.done() && !b.done()) {
        const bool ra = a.template vecReady<Ops::W>();
        const bool rb = b.template vecReady<Ops::W>();
        if (ra && rb) {
            const unsigned ma =
                Ops::missMask(a.g->dm_tags.data() + a.idx, a.ln);
            const unsigned mb =
                Ops::missMask(b.g->dm_tags.data() + b.idx, b.ln);
            dmFix<Ops>(a, ma, intf);
            dmFix<Ops>(b, mb, intf);
        } else if (!ra) {
            dmScalarSeg<Ops>(a, intf);
        } else {
            dmScalarSeg<Ops>(b, intf);
        }
    }
    dmSpanSingle<Ops>(a, intf);
    dmSpanSingle<Ops>(b, intf);
}

/**
 * The run-coalescing i-cache shard walk. Ops supplies the vector
 * width W and missMask(tags, ln0) — the bitmask of lanes where
 * tags[i] != ln0 + i for i in [0, W).
 */
template <class Ops>
inline void
runIcacheShardRuns(const IcacheShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    IcacheState st = buildIcacheState(sh.configs, sh.k0, sh.k1);
    std::size_t max_shift = 0;
    std::size_t min_shift = kMaxLineShift;
    for (const LineGroup& g : st.groups) {
        SPIKESIM_ASSERT(g.shift <= kMaxLineShift,
                        "line size exceeds the vector walk's bound");
        max_shift =
            std::max(max_shift, static_cast<std::size_t>(g.shift));
        min_shift =
            std::min(min_shift, static_cast<std::size_t>(g.shift));
    }
    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();
    const std::uint8_t data8 =
        static_cast<std::uint8_t>(mem::Owner::Data);
    const std::uint8_t app8 = static_cast<std::uint8_t>(mem::Owner::App);

    std::vector<DmSpanCursor> dmspans;
    dmspans.reserve(st.groups.size());
    struct AmSpan
    {
        LineGroup* g;
        std::uint64_t start, stop;
    };
    std::vector<AmSpan> amspans;
    amspans.reserve(st.groups.size());
    // tz[t] accumulates interior ref boundaries whose address has t
    // trailing zero bits; after the in-place exclusive prefix pass,
    // tz[s] is the number of boundaries *below* s bits of alignment —
    // exactly the double-counted lines of a group with line shift s.
    std::array<std::uint32_t, kMaxLineShift + 1> tz;

    std::size_t i = begin;
    while (i < end) {
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] == data8) {
            ++i;
            continue;
        }
        const std::uint8_t own8 = owners[i];
        const unsigned m = own8 == app8 ? 0u : 1u;
        const std::uint64_t first = addrs[i];
        std::uint64_t run_end = first + sizes[i];
        std::uint32_t nb = 0;
        std::size_t j = i + 1;
        while (j < end && owners[j] == own8 && addrs[j] == run_end) {
            if (j + kRefPrefetch < end) {
                __builtin_prefetch(addrs + j + kRefPrefetch);
                __builtin_prefetch(sizes + j + kRefPrefetch);
            }
            // The histogram only matters once a boundary exists, and
            // only up to the coarsest line shift in this config chunk
            // (finer-aligned boundaries are aligned for every group).
            if (nb++ == 0)
                std::fill(tz.begin(), tz.begin() + max_shift + 1, 0u);
            ++tz[std::min<std::size_t>(
                static_cast<std::size_t>(std::countr_zero(run_end)),
                max_shift)];
            run_end += sizes[j];
            ++j;
        }
        i = j;
        if (nb != 0) {
            std::uint32_t acc = 0;
            for (std::size_t t = 0; t <= max_shift; ++t) {
                const std::uint32_t cur = tz[t];
                tz[t] = acc;
                acc += cur;
            }
        }
        const std::uint64_t last_byte = run_end - 1;

        // Short-run fast path: the finest-shift group has the widest
        // line span, so if even it cannot fill one vector of lanes no
        // group can — probe scalar without any cursor setup. Results
        // are identical either way (the cursor path would route every
        // line through the same scalar probes).
        if ((last_byte >> min_shift) - (first >> min_shift) + 1 <
            Ops::W) {
            for (LineGroup& g : st.groups) {
                const std::uint64_t l0 = first >> g.shift;
                const std::uint64_t l1 = last_byte >> g.shift;
                g.accesses +=
                    (l1 - l0 + 1) + (nb != 0 ? tz[g.shift] : 0u);
                const std::uint64_t start =
                    l0 + (l0 == g.last_line ? 1 : 0);
                g.last_line = l1;
                if (start > l1)
                    continue;
                if (!g.dm.empty()) {
                    const DmMember& mn = g.dm[g.dm_min];
                    const std::uint64_t* tags = g.dm_tags.data();
                    for (std::uint64_t ln = start; ln <= l1; ++ln)
                        if (tags[mn.offset + (ln & mn.mask)] != ln)
                            ScalarProbe::dmSlow(g, ln, m,
                                                st.intf.data());
                }
                for (const AssocMember& a : g.am)
                    for (std::uint64_t ln = start; ln <= l1; ++ln)
                        VecAmProbe::amProbe(g, a, ln, m,
                                            st.intf.data());
            }
            continue;
        }

        dmspans.clear();
        amspans.clear();
        for (LineGroup& g : st.groups) {
            const std::uint64_t l0 = first >> g.shift;
            const std::uint64_t l1 = last_byte >> g.shift;
            g.accesses += (l1 - l0 + 1) + (nb != 0 ? tz[g.shift] : 0u);
            const std::uint64_t start =
                l0 + (l0 == g.last_line ? 1 : 0);
            g.last_line = l1;
            if (start > l1)
                continue;
            if (!g.dm.empty())
                dmspans.emplace_back(g, start, l1, m);
            if (!g.am.empty())
                amspans.push_back(AmSpan{&g, start, l1});
        }

        std::size_t p = 0;
        for (; p + 1 < dmspans.size(); p += 2)
            dmSpanPair<Ops>(dmspans[p], dmspans[p + 1],
                            st.intf.data());
        if (p < dmspans.size())
            dmSpanSingle<Ops>(dmspans[p], st.intf.data());

        for (const AmSpan& s : amspans)
            for (std::uint64_t ln = s.start; ln <= s.stop; ++ln)
                for (const AssocMember& a : s.g->am)
                    VecAmProbe::amProbe(*s.g, a, ln, m,
                                        st.intf.data());
    }

    foldIcacheState(st, sh);
}

} // namespace
} // namespace spikesim::sim::detail

#endif // SPIKESIM_SIM_KERNELS_VEC_HH
