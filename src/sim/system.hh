#ifndef SPIKESIM_SIM_SYSTEM_HH
#define SPIKESIM_SIM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "db/dss.hh"
#include "db/tpcb.hh"
#include "oskern/kernel.hh"
#include "profile/profile.hh"
#include "synth/synthprog.hh"
#include "synth/walker.hh"
#include "trace/trace.hh"

/**
 * @file
 * The full simulated system: the Oracle-like application image, the
 * kernel model, and the TPC-B engine, glued together the way the paper
 * runs its workload — N server processes spread over M CPUs, a
 * scheduling quantum injecting timer interrupts and context switches,
 * and engine I/O entering the kernel. The system executes transactions
 * and streams block/data events into whatever TraceSink is attached
 * (profile recorders for the Pixie-style profiling run, a TraceBuffer
 * for the measured run).
 */

namespace spikesim::sim {

/** Workload and machine shape. */
struct SystemConfig
{
    int num_cpus = 4;
    int processes_per_cpu = 8;
    /** Scheduling quantum in instructions (app+kernel) per process. */
    std::uint64_t quantum_instrs = 50'000;
    std::uint64_t app_seed = 42;
    std::uint64_t kernel_seed = 1042;
    std::uint64_t workload_seed = 7;
    /** Application text base (kernel text sits high, like Alpha). */
    std::uint64_t app_text_base = 0x10000000ULL;
    std::uint64_t kernel_text_base = 0xf0000000ULL;
    db::TpcbConfig tpcb;
    /**
     * Scale factor on the application image's subsystem sizes (1.0 =
     * the calibrated Oracle-like image). The image-scale ablation uses
     * this to study how layout gains depend on binary size.
     */
    double app_image_scale = 1.0;
};

/** Everything needed to run and measure the OLTP workload. */
class System : public db::EngineHooks
{
  public:
    explicit System(const SystemConfig& config = SystemConfig());

    /** Build the database (hooks muted, like the paper's ramp-up). */
    void setup();

    /**
     * Run `txns` transactions with events streamed to `sink`. Every
     * transaction is issued by the next server process round-robin;
     * the process's CPU executes it.
     */
    void run(std::uint64_t txns, trace::TraceSink& sink);

    /** Run with events discarded (warmup). */
    void warmup(std::uint64_t txns);

    /**
     * Run DSS queries instead of OLTP transactions: a mix of
     * full-scan aggregates and index range queries (one full scan per
     * eight range queries). Events stream to `sink` like run().
     */
    void runDss(std::uint64_t queries, trace::TraceSink& sink);

    /**
     * Run an arbitrary per-request workload under this system's
     * scheduling and tracing: `request_fn(process)` is invoked once
     * per request with hooks live, the process/CPU rotating exactly
     * like run(). Used to drive alternative engines (the TPC-C and
     * YCSB databases) through the same simulated machine.
     */
    void runRequests(std::uint64_t requests, trace::TraceSink& sink,
                     const std::function<void(std::uint16_t)>& request_fn);

    /** Convenience: run and collect app+kernel profiles. */
    struct Profiles
    {
        profile::Profile app;
        profile::Profile kernel;
    };
    Profiles collectProfiles(std::uint64_t txns);

    const synth::SyntheticProgram& appImage() const { return app_image_; }
    const program::Program& appProg() const { return app_image_.prog; }
    const program::Program& kernelProg() const { return kernel_.prog(); }
    oskern::KernelModel& kernel() { return kernel_; }
    db::TpcbDatabase& database() { return *db_; }
    const SystemConfig& config() const { return config_; }

    std::uint64_t appInstrs() const { return app_instrs_; }
    std::uint64_t kernelInstrs() const { return kernel_.totalInstrs(); }

    /**
     * Mean trace events (blocks + data refs) emitted per transaction,
     * measured over every hooked run so far (warmup and profiling runs
     * included); 0 until at least one transaction has run. run() uses
     * it to pre-reserve TraceBuffer sinks so the multi-million-event
     * measured trace never reallocates mid-recording.
     */
    std::uint64_t estimatedEventsPerTxn() const;

    // EngineHooks interface (called by the database engine).
    void onOp(const char* entry, std::span<const int> hints) override;
    void onData(std::uint64_t addr) override;
    void onSyscall(const char* entry, std::span<const int> hints) override;

  private:
    void maybePreempt();
    void reserveForRun(std::uint64_t txns, trace::TraceSink& sink);

    SystemConfig config_;
    synth::SyntheticProgram app_image_;
    std::unique_ptr<synth::CfgWalker> app_walker_;
    oskern::KernelModel kernel_;
    std::unique_ptr<db::TpcbDatabase> db_;
    std::unique_ptr<db::DssDriver> dss_;

    trace::TraceSink* sink_ = nullptr; ///< null = hooks muted
    trace::NullSink null_sink_;
    trace::ExecContext ctx_;
    std::uint64_t app_instrs_ = 0;
    std::uint64_t events_emitted_ = 0; ///< block + data events, all runs
    std::uint64_t txns_hooked_ = 0;    ///< txns run with hooks live
    std::uint64_t instrs_since_switch_ = 0;
    bool in_kernel_ = false; ///< guards quantum-preemption recursion
    std::uint64_t txns_issued_ = 0;
};

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_SYSTEM_HH
