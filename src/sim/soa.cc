#include "sim/soa.hh"

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace spikesim::sim {

namespace detail {

void
adviseHugePages([[maybe_unused]] void* p,
                [[maybe_unused]] std::size_t bytes) noexcept
{
#ifdef MADV_HUGEPAGE
    // Advisory only: a kernel with THP disabled simply ignores it (or
    // returns EINVAL, equally ignorable) and the columns stay on
    // ordinary pages.
    (void)::madvise(p, bytes, MADV_HUGEPAGE);
#endif
}

} // namespace detail

ResolvedTraceSoA
toSoA(const ResolvedTrace& trace)
{
    ResolvedTraceSoA out;
    const std::size_t n = trace.refs.size();
    out.addr.resize(n);
    out.bytes.resize(n);
    out.owner.resize(n);
    out.flags.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const ResolvedRef& r = trace.refs[i];
        out.addr[i] = r.addr;
        out.bytes[i] = r.bytes;
        out.owner[i] = static_cast<std::uint8_t>(r.owner);
        out.flags[i] = r.flags;
    }
    out.cpu_begin = trace.cpu_begin;
    out.data_refs = trace.data_refs;
    out.num_cpus = trace.num_cpus;
    out.instr_events = trace.instr_events;
    out.instrs = trace.instrs;
    return out;
}

} // namespace spikesim::sim
