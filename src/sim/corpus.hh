#ifndef SPIKESIM_SIM_CORPUS_HH
#define SPIKESIM_SIM_CORPUS_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "sim/system.hh"
#include "trace/trace.hh"

/**
 * @file
 * Persistent trace/profile corpus: the paper's "record the instruction
 * trace once, replay it many times" methodology made to hold *across*
 * processes, the way BOLT and Propeller treat profiles as reusable
 * on-disk artifacts. A corpus file bundles the measured TraceBuffer and
 * the app+kernel profiles for one exact workload parameterization,
 * identified by a fingerprint over every parameter that influences the
 * generated event stream. Benches consult a cache directory
 * (SPIKESIM_CORPUS_DIR or --corpus): on a fingerprint hit the
 * multi-minute generation phase collapses to a millisecond-scale
 * mmap + decode; on a miss they generate, save, and every later bench
 * of the sweep hits.
 *
 * File layout (little-endian; see DESIGN.md §10):
 *
 *   0   8B  magic "SPKCORP1"
 *   8   4B  format version (1)
 *   12  4B  trace cpu count (0 in files from before the field; the
 *           loader then derives it from the decoded events)
 *   16  8B  workload fingerprint
 *   24  8B  payload length in bytes
 *   32  8B  payload checksum (4-lane word-wise FNV-1a 64, fnv1a64Words)
 *   40      payload: params echo, trace section (trace/serialize),
 *           app profile, kernel profile (profile/serialize)
 */

namespace spikesim::sim {

inline constexpr std::uint32_t kCorpusVersion = 1;
inline constexpr std::size_t kCorpusHeaderBytes = 40;

/** Everything that determines the generated workload bit-for-bit. */
struct CorpusParams
{
    SystemConfig config;
    std::uint64_t warmup_txns = 50;
    std::uint64_t profile_txns = 800;
    std::uint64_t trace_txns = 500;
};

/**
 * Fingerprint over every CorpusParams field (machine shape, seeds,
 * TPC-B scale, WAL tuning, transaction counts). Two parameterizations
 * that could produce different event streams get different
 * fingerprints.
 */
std::uint64_t corpusFingerprint(const CorpusParams& params);

/** Cache file name for the given parameters: corpus-<hex>.spkc. */
std::string corpusFileName(const CorpusParams& params);

/** Size accounting returned by saveCorpus(). */
struct CorpusStats
{
    std::uint64_t events = 0;
    std::uint64_t raw_bytes = 0;  ///< events * sizeof(TraceEvent)
    std::uint64_t file_bytes = 0; ///< encoded file size incl. header
    double ratio = 0;             ///< raw_bytes / trace-section bytes
};

/** A workload either generated from scratch or loaded from a corpus. */
struct GeneratedWorkload
{
    std::unique_ptr<System> system;
    std::optional<System::Profiles> profiles;
    trace::TraceBuffer buf;
    /**
     * Whether system->setup() has run. Generation always loads the
     * database; a corpus hit skips it — replay-only consumers never
     * touch the database, and the skip is most of the hit-path
     * latency. Callers that run extra transactions must call
     * system->setup() first when this is false.
     */
    bool db_ready = false;
};

/**
 * Run the standard generation sequence from scratch: build the system,
 * load the database, warm up, profile, trace. This is the single
 * definition of the sequence — benches and the capture tool both use
 * it, so a captured corpus is bit-identical to what a bench would have
 * generated inline. Progress lines go to `log` when non-null.
 */
GeneratedWorkload generateWorkload(const CorpusParams& params,
                                   std::ostream* log);

/** Serialize and atomically write a corpus file (tmp file + rename). */
CorpusStats saveCorpus(const CorpusParams& params,
                       const System::Profiles& profiles,
                       const trace::TraceBuffer& buf,
                       const std::string& path);

/**
 * Load a corpus into `profiles`/`buf`, resolving profile block ids
 * against `system`'s programs (the system must be built with the same
 * config; its database state is untouched). Returns false when the
 * file does not exist or records a different fingerprint; fatal()s on
 * any corruption (truncation, checksum, version) — never garbage.
 * The read path mmaps the file when possible.
 */
bool loadCorpus(const std::string& path, const CorpusParams& params,
                System& system,
                std::optional<System::Profiles>& profiles,
                trace::TraceBuffer& buf);

/**
 * The cache: look up `dir`/corpusFileName(params); load on hit,
 * generate + save on miss. On a hit the database is NOT loaded
 * (db_ready is false): replaying the trace needs only the images and
 * profiles. Benches that run extra transactions afterwards must set up
 * the database first (bench::Workload::ensureDb does this lazily; a
 * post-hit database starts fresh rather than post-trace — see
 * EXPERIMENTS.md).
 */
GeneratedWorkload loadOrCapture(const CorpusParams& params,
                                const std::string& dir,
                                std::ostream* log);

/**
 * Differential check (SPIKESIM_CORPUS_VERIFY): regenerate the workload
 * from scratch and fatal() unless the corpus-loaded trace is
 * bit-identical, the profiles serialize to identical bytes, the
 * profile-driven optimized layouts place every block at the same
 * address, and an instruction-cache replay of both traces produces
 * identical miss counts.
 */
void verifyCorpusAgainstFresh(const CorpusParams& params,
                              const System::Profiles& profiles,
                              const trace::TraceBuffer& buf,
                              std::ostream* log);

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_CORPUS_HH
