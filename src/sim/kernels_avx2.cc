#include "sim/kernels_detail.hh"

#if defined(SPIKESIM_AVX2_TU)

#include <immintrin.h>

/**
 * @file
 * AVX2 probe traits for the fused i-cache kernel. This TU alone is
 * compiled with -mavx2 (see src/sim/CMakeLists.txt); nothing here runs
 * unless sim::resolveSimd() confirmed the host CPU reports AVX2.
 *
 * Vectorization points:
 *  - direct-mapped slow path: one 64-bit gather probes the tag tables
 *    of four configurations at once (the per-member mask/offset columns
 *    are preshaped in LineGroup::dm_masks/dm_offsets); misses are fixed
 *    up scalar since AVX2 has no scatter, but misses are the rare case.
 *  - 4-way / 8-way sets: tag compare and the LRU age-permutation update
 *    run as whole-set vectors ("age += (age < touched_age)" becomes a
 *    compare mask and a subtract of -1 lanes). Other associativities
 *    fall back to the scalar probe, which computes identical integers.
 */

namespace spikesim::sim::detail {
namespace {

/** Lane mask (4 bits) of 64-bit lanes equal to `ln`. */
inline unsigned
eqMask4(__m256i tags, __m256i vln)
{
    const __m256i eq = _mm256_cmpeq_epi64(tags, vln);
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

/** ages[w] += (ages[w] < h) for four ways at once. */
inline __m256i
bumpYounger(__m256i ages, __m256i h)
{
    // Ages are tiny non-negative integers, so signed compare is exact;
    // subtracting the all-ones mask adds one to the younger lanes.
    return _mm256_sub_epi64(ages, _mm256_cmpgt_epi64(h, ages));
}

struct Avx2Probe
{
    static void
    dmSlow(LineGroup& g, std::uint64_t ln, unsigned m,
           std::array<std::uint64_t, 6>* intf)
    {
        const std::size_t n = g.dm.size();
        std::uint64_t* tags = g.dm_tags.data();
        std::uint8_t* own = g.dm_owners.data();
        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        std::size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const __m256i vmask = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(g.dm_masks.data() + j));
            const __m256i voff = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(g.dm_offsets.data() +
                                                 j));
            const __m256i vidx = _mm256_add_epi64(
                voff, _mm256_and_si256(vln, vmask));
            const __m256i vtags = _mm256_i64gather_epi64(
                reinterpret_cast<const long long*>(tags), vidx, 8);
            unsigned miss = ~eqMask4(vtags, vln) & 0xfu;
            while (miss != 0) {
                const unsigned lane =
                    static_cast<unsigned>(__builtin_ctz(miss));
                miss &= miss - 1;
                const DmMember& d = g.dm[j + lane];
                const std::uint64_t idx = d.offset + (ln & d.mask);
                ++intf[d.slot][m * 3 + own[idx]];
                tags[idx] = ln;
                own[idx] = static_cast<std::uint8_t>(m);
            }
        }
        for (; j < n; ++j) {
            const DmMember& d = g.dm[j];
            const std::uint64_t idx = d.offset + (ln & d.mask);
            if (tags[idx] != ln) {
                ++intf[d.slot][m * 3 + own[idx]];
                tags[idx] = ln;
                own[idx] = static_cast<std::uint8_t>(m);
            }
        }
    }

    static void
    amProbe(LineGroup& g, const AssocMember& a, std::uint64_t ln,
            unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        switch (a.assoc) {
        case 4:
            probe4(g, a, ln, m, intf);
            return;
        case 8:
            probe8(g, a, ln, m, intf);
            return;
        default:
            ScalarProbe::amProbe(g, a, ln, m, intf);
            return;
        }
    }

  private:
    static void
    probe4(LineGroup& g, const AssocMember& a, std::uint64_t ln,
           unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        const std::size_t set = ln & a.set_mask;
        std::uint64_t* tags = g.am_tags.data() + a.base + set * 4;
        std::uint64_t* ages = g.am_ages.data() + a.base + set * 4;
        std::uint8_t* own = g.am_owners.data() + a.base + set * 4;

        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        const __m256i vtags = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        __m256i vages = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages));
        const unsigned hit = eqMask4(vtags, vln);
        if (hit != 0) {
            const unsigned h =
                static_cast<unsigned>(__builtin_ctz(hit));
            const __m256i vh = _mm256_set1_epi64x(
                static_cast<long long>(ages[h]));
            vages = bumpYounger(vages, vh);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages),
                                vages);
            ages[h] = 0;
            return;
        }
        const __m256i vlru = _mm256_set1_epi64x(3);
        const unsigned vict_mask = eqMask4(vages, vlru);
        const unsigned v =
            static_cast<unsigned>(__builtin_ctz(vict_mask));
        ++intf[a.slot][m * 3 + own[v]];
        tags[v] = ln;
        own[v] = static_cast<std::uint8_t>(m);
        vages = bumpYounger(vages, vlru);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), vages);
        ages[v] = 0;
    }

    static void
    probe8(LineGroup& g, const AssocMember& a, std::uint64_t ln,
           unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        const std::size_t set = ln & a.set_mask;
        std::uint64_t* tags = g.am_tags.data() + a.base + set * 8;
        std::uint64_t* ages = g.am_ages.data() + a.base + set * 8;
        std::uint8_t* own = g.am_owners.data() + a.base + set * 8;

        const __m256i vln =
            _mm256_set1_epi64x(static_cast<long long>(ln));
        const __m256i t_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        const __m256i t_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags + 4));
        __m256i a_lo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages));
        __m256i a_hi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(ages + 4));
        const unsigned hit =
            eqMask4(t_lo, vln) | (eqMask4(t_hi, vln) << 4);
        if (hit != 0) {
            const unsigned h =
                static_cast<unsigned>(__builtin_ctz(hit));
            const __m256i vh = _mm256_set1_epi64x(
                static_cast<long long>(ages[h]));
            a_lo = bumpYounger(a_lo, vh);
            a_hi = bumpYounger(a_hi, vh);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), a_lo);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + 4),
                                a_hi);
            ages[h] = 0;
            return;
        }
        const __m256i vlru = _mm256_set1_epi64x(7);
        const unsigned vict_mask =
            eqMask4(a_lo, vlru) | (eqMask4(a_hi, vlru) << 4);
        const unsigned v =
            static_cast<unsigned>(__builtin_ctz(vict_mask));
        ++intf[a.slot][m * 3 + own[v]];
        tags[v] = ln;
        own[v] = static_cast<std::uint8_t>(m);
        a_lo = bumpYounger(a_lo, vlru);
        a_hi = bumpYounger(a_hi, vlru);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages), a_lo);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(ages + 4), a_hi);
        ages[v] = 0;
    }
};

} // namespace

void
icacheShardAvx2(const IcacheShard& shard)
{
    runIcacheShardImpl<Avx2Probe>(shard);
}

} // namespace spikesim::sim::detail

#endif // SPIKESIM_AVX2_TU
