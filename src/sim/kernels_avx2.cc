#include "sim/kernels_detail.hh"

#if defined(SPIKESIM_AVX2_TU)

#include "sim/kernels_vec.hh"

/**
 * @file
 * AVX2 instantiations of the shared vector kernels (kernels_vec.hh).
 * This TU alone is compiled with -mavx2 (see src/sim/CMakeLists.txt);
 * nothing here runs unless sim::resolveKernel() confirmed the host CPU
 * reports AVX2. The i-cache walk is the run-coalescing span kernel
 * with 4-wide (256-bit) iota tag probes; the three-C and stream-buffer
 * families reuse the shared grouped walk with 4/8-way whole-set vector
 * probes.
 */

namespace spikesim::sim::detail {
namespace {

struct Avx2Ops
{
    static constexpr std::size_t W = 4;

    /** Bitmask of lanes where tags[i] != ln0 + i. */
    static unsigned
    missMask(const std::uint64_t* tags, std::uint64_t ln0)
    {
        const __m256i iota = _mm256_add_epi64(
            _mm256_set1_epi64x(static_cast<long long>(ln0)),
            _mm256_setr_epi64x(0, 1, 2, 3));
        const __m256i vtags = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(tags));
        return ~eqMask4(vtags, iota) & 0xfu;
    }
};

} // namespace

void
icacheShardAvx2(const IcacheShard& shard)
{
    runIcacheShardRuns<Avx2Ops>(shard);
}

void
threeCShardAvx2(const ThreeCShard& shard)
{
    runThreeCShardImpl<VecStatsProbe>(shard);
}

void
streamBufShardAvx2(const StreamBufShard& shard)
{
    runStreamBufShardImpl<VecStatsProbe>(shard);
}

} // namespace spikesim::sim::detail

#endif // SPIKESIM_AVX2_TU
