#include "sim/system.hh"

#include <algorithm>

#include "support/panic.hh"

namespace spikesim::sim {

namespace {

synth::SynthParams
scaledAppParams(const SystemConfig& config)
{
    synth::SynthParams params =
        synth::SynthParams::oracleLike(config.app_seed);
    if (config.app_image_scale != 1.0) {
        for (synth::SubsystemSpec& sub : params.subsystems)
            sub.num_procs = std::max(
                1, static_cast<int>(sub.num_procs *
                                    config.app_image_scale));
    }
    return params;
}

} // namespace

System::System(const SystemConfig& config)
    : config_(config),
      app_image_(synth::buildSyntheticProgram(scaledAppParams(config))),
      kernel_(synth::SynthParams::kernelLike(config.kernel_seed))
{
    app_walker_ = std::make_unique<synth::CfgWalker>(
        app_image_.prog, trace::ImageId::App, config.app_seed ^ 0xabcdULL);
    db::TpcbConfig tpcb = config.tpcb;
    tpcb.seed = config.workload_seed;
    db_ = std::make_unique<db::TpcbDatabase>(tpcb, this);
}

void
System::setup()
{
    sink_ = nullptr; // mute hooks during load, like the paper's warmup
    db_->setup();
}

void
System::run(std::uint64_t txns, trace::TraceSink& sink)
{
    SPIKESIM_ASSERT(db_ != nullptr, "system not set up");
    reserveForRun(txns, sink);
    sink_ = &sink;
    const int procs =
        config_.num_cpus * config_.processes_per_cpu;
    for (std::uint64_t i = 0; i < txns; ++i) {
        std::uint16_t process =
            static_cast<std::uint16_t>(txns_issued_ % procs);
        ctx_.process = process;
        ctx_.cpu = static_cast<std::uint8_t>(process % config_.num_cpus);
        ++txns_issued_;
        db_->runTransaction(process);
    }
    sink_ = nullptr;
    txns_hooked_ += txns;
}

std::uint64_t
System::estimatedEventsPerTxn() const
{
    return txns_hooked_ == 0 ? 0 : events_emitted_ / txns_hooked_;
}

void
System::reserveForRun(std::uint64_t txns, trace::TraceSink& sink)
{
    auto* buf = dynamic_cast<trace::TraceBuffer*>(&sink);
    if (buf == nullptr)
        return;
    const std::uint64_t per_txn = estimatedEventsPerTxn();
    if (per_txn == 0)
        return;
    // Headroom of one transaction plus 1/16 absorbs rate drift between
    // the profiling estimate and the measured run.
    const std::uint64_t estimate = txns * per_txn;
    buf->reserve(buf->size() + estimate + estimate / 16 + per_txn);
}

void
System::warmup(std::uint64_t txns)
{
    run(txns, null_sink_);
}

void
System::runDss(std::uint64_t queries, trace::TraceSink& sink)
{
    SPIKESIM_ASSERT(db_ != nullptr, "system not set up");
    if (dss_ == nullptr)
        dss_ = std::make_unique<db::DssDriver>(
            *db_, this, config_.workload_seed ^ 0xd55ULL);
    sink_ = &sink;
    const int procs = config_.num_cpus * config_.processes_per_cpu;
    for (std::uint64_t i = 0; i < queries; ++i) {
        std::uint16_t process =
            static_cast<std::uint16_t>(txns_issued_ % procs);
        ctx_.process = process;
        ctx_.cpu = static_cast<std::uint8_t>(process % config_.num_cpus);
        ++txns_issued_;
        if (i % 8 == 0)
            dss_->scanAggregate(process);
        else
            dss_->rangeQuery(process);
    }
    sink_ = nullptr;
    txns_hooked_ += queries;
}

void
System::runRequests(std::uint64_t requests, trace::TraceSink& sink,
                    const std::function<void(std::uint16_t)>& request_fn)
{
    sink_ = &sink;
    const int procs = config_.num_cpus * config_.processes_per_cpu;
    for (std::uint64_t i = 0; i < requests; ++i) {
        std::uint16_t process =
            static_cast<std::uint16_t>(txns_issued_ % procs);
        ctx_.process = process;
        ctx_.cpu = static_cast<std::uint8_t>(process % config_.num_cpus);
        ++txns_issued_;
        request_fn(process);
    }
    sink_ = nullptr;
    txns_hooked_ += requests;
}

System::Profiles
System::collectProfiles(std::uint64_t txns)
{
    Profiles p{profile::Profile(app_image_.prog),
               profile::Profile(kernel_.prog())};
    profile::ProfileRecorder app_rec(trace::ImageId::App, p.app);
    profile::ProfileRecorder kern_rec(trace::ImageId::Kernel, p.kernel);
    trace::TeeSink tee({&app_rec, &kern_rec});
    run(txns, tee);
    return p;
}

void
System::onOp(const char* entry, std::span<const int> hints)
{
    if (sink_ == nullptr)
        return;
    synth::WalkStats stats =
        app_walker_->run(app_image_.entry(entry), ctx_, *sink_, hints);
    app_instrs_ += stats.instrs;
    events_emitted_ += stats.blocks;
    instrs_since_switch_ += stats.instrs;
    maybePreempt();
}

void
System::onData(std::uint64_t addr)
{
    if (sink_ == nullptr)
        return;
    ++events_emitted_;
    sink_->onData(ctx_, addr);
}

void
System::onSyscall(const char* entry, std::span<const int> hints)
{
    if (sink_ == nullptr)
        return;
    bool nested = in_kernel_;
    in_kernel_ = true;
    synth::WalkStats stats = kernel_.enter(entry, ctx_, *sink_, hints);
    events_emitted_ += stats.blocks;
    instrs_since_switch_ += stats.instrs;
    in_kernel_ = nested;
    if (!nested)
        maybePreempt();
}

void
System::maybePreempt()
{
    if (in_kernel_ || instrs_since_switch_ < config_.quantum_instrs)
        return;
    instrs_since_switch_ = 0;
    in_kernel_ = true;
    events_emitted_ += kernel_.timerInterrupt(ctx_, *sink_).blocks;
    events_emitted_ += kernel_.contextSwitch(ctx_, *sink_).blocks;
    in_kernel_ = false;
}

} // namespace spikesim::sim
