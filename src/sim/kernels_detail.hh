#ifndef SPIKESIM_SIM_KERNELS_DETAIL_HH
#define SPIKESIM_SIM_KERNELS_DETAIL_HH

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "sim/kernels.hh"
#include "support/panic.hh"

/**
 * @file
 * Shared implementation of the fused i-cache config-column kernel:
 * state layout, state construction, the outer SoA walk with its two
 * fast paths, and the scalar probe set. The scalar TU (kernels.cc)
 * and the AVX2 TU (kernels_avx2.cc) both instantiate
 * runIcacheShardImpl with their probe traits, so the two kernels can
 * only differ in probe arithmetic — never in state layout, walk
 * order, or counting — which is what keeps them bit-identical to each
 * other and to the scalar Replayer oracle.
 *
 * Algorithm (per CPU, per line-size group of the config chunk):
 *
 *  - Repeat line: a line equal to this group's previous line is the
 *    MRU entry of its set in every member cache — a guaranteed hit
 *    with no LRU state change (re-stamping the MRU entry is a no-op),
 *    so only the access counter moves. Instruction streams are
 *    sequential, so this path takes a large share of fetches.
 *
 *  - Direct-mapped members share one inclusive check: the set masks
 *    at one line size are nested low-bit masks, so if the fewest-set
 *    table's slot holds the line, every table's slot does (the last
 *    write to the coarse slot wrote this line to all tables, and any
 *    later line that evicts it from a finer table would also have
 *    evicted it from the coarse one). One compare answers the whole
 *    member list; only on failure are the tables probed per member.
 *
 *  - Set-associative members keep true-LRU state as an age
 *    permutation (0 = MRU .. assoc-1 = LRU) per set, updated
 *    branch-free: age[w] += (age[w] < age[touched]); age[touched] = 0.
 *    Ages are initialized to way index, which reproduces the scalar
 *    SetAssocCache victim order exactly (invalid ways fill from the
 *    highest index down, then true LRU).
 *
 * Interference attribution needs the victim owner, so every table
 * slot carries an owner byte (0 app / 1 kernel / 2 cold) that is only
 * written on fills — identical to the oracle's owner-tag semantics.
 */

namespace spikesim::sim::detail {

inline constexpr std::uint64_t kInvalidTag = ~0ULL;
/** Victim-owner code for an invalid (cold) entry. */
inline constexpr std::uint8_t kOwnerCold = 2;

/** One direct-mapped configuration of a line-size group. */
struct DmMember
{
    std::uint64_t mask = 0;   ///< sets - 1
    std::uint64_t offset = 0; ///< start of this table in dm_tags
    std::uint32_t sets = 0;
    std::size_t slot = 0; ///< config index relative to the chunk
};

/** One set-associative configuration of a line-size group. */
struct AssocMember
{
    std::size_t slot = 0;
    std::uint32_t assoc = 0;
    std::uint64_t set_mask = 0;
    std::size_t base = 0; ///< start in am_tags/am_ages/am_owners
};

/** All configurations sharing one line size, plus their cache state. */
struct LineGroup
{
    std::uint32_t line = 0;
    std::uint32_t shift = 0;

    std::vector<DmMember> dm;
    std::size_t dm_min = 0; ///< member with the fewest sets
    std::size_t dm_big = 0; ///< member with the most sets (prefetch)
    std::vector<std::uint64_t> dm_tags;
    std::vector<std::uint8_t> dm_owners;
    /** Member mask/offset columns for the vector gather probe. */
    std::vector<std::uint64_t> dm_masks;
    std::vector<std::uint64_t> dm_offsets;

    std::vector<AssocMember> am;
    std::vector<std::uint64_t> am_tags;
    std::vector<std::uint64_t> am_ages;
    std::vector<std::uint8_t> am_owners;

    std::uint64_t accesses = 0;
    std::uint64_t last_line = kInvalidTag;
};

struct IcacheState
{
    std::vector<LineGroup> groups;
    /** Per config slot: interference counts indexed [m * 3 + victim]. */
    std::vector<std::array<std::uint64_t, 6>> intf;
};

inline IcacheState
buildIcacheState(const mem::CacheConfig* configs, std::size_t k0,
                 std::size_t k1)
{
    IcacheState st;
    st.intf.assign(k1 - k0, {});
    for (std::size_t k = k0; k < k1; ++k) {
        const mem::CacheConfig& c = configs[k];
        const std::string err = c.check();
        SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
        LineGroup* g = nullptr;
        for (LineGroup& cand : st.groups)
            if (cand.line == c.line_bytes)
                g = &cand;
        if (g == nullptr) {
            st.groups.emplace_back();
            g = &st.groups.back();
            g->line = c.line_bytes;
            g->shift = static_cast<std::uint32_t>(
                std::bit_width(c.line_bytes) - 1);
        }
        const std::uint32_t sets = c.numSets();
        if (c.assoc == 1) {
            DmMember d;
            d.mask = sets - 1;
            d.sets = sets;
            d.slot = k - k0;
            g->dm.push_back(d);
        } else {
            AssocMember a;
            a.slot = k - k0;
            a.assoc = c.assoc;
            a.set_mask = sets - 1;
            g->am.push_back(a);
        }
    }
    for (LineGroup& g : st.groups) {
        std::uint64_t off = 0;
        for (std::size_t j = 0; j < g.dm.size(); ++j) {
            DmMember& d = g.dm[j];
            d.offset = off;
            off += d.sets;
            if (d.sets < g.dm[g.dm_min].sets)
                g.dm_min = j;
            if (d.sets > g.dm[g.dm_big].sets)
                g.dm_big = j;
            g.dm_masks.push_back(d.mask);
            g.dm_offsets.push_back(d.offset);
        }
        g.dm_tags.assign(off, kInvalidTag);
        g.dm_owners.assign(off, kOwnerCold);

        std::size_t am_off = 0;
        for (AssocMember& a : g.am) {
            a.base = am_off;
            am_off += static_cast<std::size_t>(a.set_mask + 1) * a.assoc;
        }
        g.am_tags.assign(am_off, kInvalidTag);
        g.am_owners.assign(am_off, kOwnerCold);
        g.am_ages.resize(am_off);
        for (const AssocMember& a : g.am)
            for (std::size_t s = 0; s <= a.set_mask; ++s)
                for (std::uint32_t w = 0; w < a.assoc; ++w)
                    g.am_ages[a.base + s * a.assoc + w] = w;
    }
    return st;
}

/** Branch-lean reference probes; also the tail/odd-assoc fallback of
 *  the AVX2 traits. */
struct ScalarProbe
{
    /** Probe every direct-mapped member (the inclusive check already
     *  failed); count misses and fill. */
    static void
    dmSlow(LineGroup& g, std::uint64_t ln, unsigned m,
           std::array<std::uint64_t, 6>* intf)
    {
        std::uint64_t* tags = g.dm_tags.data();
        std::uint8_t* own = g.dm_owners.data();
        for (const DmMember& d : g.dm) {
            const std::uint64_t idx = d.offset + (ln & d.mask);
            if (tags[idx] != ln) {
                ++intf[d.slot][m * 3 + own[idx]];
                tags[idx] = ln;
                own[idx] = static_cast<std::uint8_t>(m);
            }
        }
    }

    /** Probe one set-associative member with age-permutation LRU. */
    static void
    amProbe(LineGroup& g, const AssocMember& a, std::uint64_t ln,
            unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        const std::uint32_t assoc = a.assoc;
        const std::size_t set = ln & a.set_mask;
        std::uint64_t* tags = g.am_tags.data() + a.base + set * assoc;
        std::uint64_t* ages = g.am_ages.data() + a.base + set * assoc;
        std::uint8_t* own = g.am_owners.data() + a.base + set * assoc;

        std::uint32_t hit = assoc;
        for (std::uint32_t w = 0; w < assoc; ++w)
            hit = tags[w] == ln ? w : hit;
        if (hit < assoc) {
            const std::uint64_t h = ages[hit];
            for (std::uint32_t w = 0; w < assoc; ++w)
                ages[w] += static_cast<std::uint64_t>(ages[w] < h);
            ages[hit] = 0;
            return;
        }
        // Miss: exactly one way carries age assoc-1 (the permutation
        // invariant), and it is the scalar cache's victim.
        const std::uint64_t lru = assoc - 1;
        std::uint32_t v = 0;
        for (std::uint32_t w = 0; w < assoc; ++w)
            v = ages[w] == lru ? w : v;
        ++intf[a.slot][m * 3 + own[v]];
        tags[v] = ln;
        own[v] = static_cast<std::uint8_t>(m);
        for (std::uint32_t w = 0; w < assoc; ++w)
            ages[w] += static_cast<std::uint64_t>(ages[w] < lru);
        ages[v] = 0;
    }
};

/** How many refs ahead the column prefetches run. */
inline constexpr std::size_t kRefPrefetch = 24;
/** Lead (in refs) for the tag-line prefetch of the biggest DM table. */
inline constexpr std::size_t kTagPrefetch = 4;

template <class Probe>
inline void
runIcacheShardImpl(const IcacheShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    IcacheState st = buildIcacheState(sh.configs, sh.k0, sh.k1);
    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();

    for (std::size_t i = begin; i < end; ++i) {
        // Stream the upcoming ref columns; prefetching one address
        // pulls its whole cache line of packed 8-byte entries.
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] ==
            static_cast<std::uint8_t>(mem::Owner::Data))
            continue;
        const unsigned m =
            owners[i] == static_cast<std::uint8_t>(mem::Owner::App)
                ? 0u
                : 1u;
        const std::uint64_t addr = addrs[i];
        const std::uint64_t last_byte = addr + sizes[i] - 1;
        // Cover the probe latency of the biggest (least cache-resident)
        // direct-mapped table with a short-lead slot prefetch.
        const std::uint64_t next_addr =
            addrs[i + kTagPrefetch < end ? i + kTagPrefetch : i];
        for (LineGroup& g : st.groups) {
            if (!g.dm.empty()) {
                const DmMember& big = g.dm[g.dm_big];
                __builtin_prefetch(
                    &g.dm_tags[big.offset +
                               ((next_addr >> g.shift) & big.mask)]);
            }
            std::uint64_t ln = addr >> g.shift;
            const std::uint64_t ln_end = last_byte >> g.shift;
            g.accesses += ln_end - ln + 1;
            std::uint64_t last = g.last_line;
            for (; ln <= ln_end; ++ln) {
                if (ln == last)
                    continue;
                last = ln;
                if (!g.dm.empty()) {
                    const DmMember& mn = g.dm[g.dm_min];
                    if (g.dm_tags[mn.offset + (ln & mn.mask)] != ln)
                        Probe::dmSlow(g, ln, m, st.intf.data());
                }
                for (const AssocMember& a : g.am)
                    Probe::amProbe(g, a, ln, m, st.intf.data());
            }
            g.last_line = last;
        }
    }

    for (const LineGroup& g : st.groups) {
        const auto fold = [&](std::size_t slot) {
            ICacheReplayResult& r = sh.out[slot];
            const std::array<std::uint64_t, 6>& c = st.intf[slot];
            r.accesses = g.accesses;
            for (int mm = 0; mm < 2; ++mm)
                for (int v = 0; v < 3; ++v)
                    r.interference.counts[mm][v] = c[mm * 3 + v];
            r.app_misses = c[0] + c[1] + c[2];
            r.kernel_misses = c[3] + c[4] + c[5];
            r.misses = r.app_misses + r.kernel_misses;
        };
        for (const DmMember& d : g.dm)
            fold(d.slot);
        for (const AssocMember& a : g.am)
            fold(a.slot);
    }
}

} // namespace spikesim::sim::detail

#endif // SPIKESIM_SIM_KERNELS_DETAIL_HH
