#ifndef SPIKESIM_SIM_KERNELS_DETAIL_HH
#define SPIKESIM_SIM_KERNELS_DETAIL_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernels.hh"
#include "support/panic.hh"

/**
 * @file
 * Shared implementation of the fused replay kernels: state layout and
 * construction, the outer SoA walks with their fast paths, and the
 * scalar probe sets, for the i-cache, three-C, iTLB and stream-buffer
 * families. The scalar TU (kernels.cc) and the vector TUs
 * (kernels_avx2.cc / kernels_avx512.cc via kernels_vec.hh) instantiate
 * the same templates with their probe traits, so the kernels can only
 * differ in probe arithmetic — never in state layout, walk order, or
 * counting — which is what keeps them bit-identical to each other and
 * to the scalar Replayer oracle.
 *
 * Algorithm (per CPU, per line-size group of the config chunk):
 *
 *  - Repeat line: a line equal to this group's previous line is the
 *    MRU entry of its set in every member cache — a guaranteed hit
 *    with no LRU state change (re-stamping the MRU entry is a no-op),
 *    so only the access counter moves. Instruction streams are
 *    sequential, so this path takes a large share of fetches.
 *
 *  - Direct-mapped members share one inclusive check: the set masks
 *    at one line size are nested low-bit masks, so if the fewest-set
 *    table's slot holds the line, every table's slot does (the last
 *    write to the coarse slot wrote this line to all tables, and any
 *    later line that evicts it from a finer table would also have
 *    evicted it from the coarse one). One compare answers the whole
 *    member list; only on failure are the tables probed per member.
 *
 *  - Set-associative members keep true-LRU state as an age
 *    permutation (0 = MRU .. assoc-1 = LRU) per set, updated
 *    branch-free: age[w] += (age[w] < age[touched]); age[touched] = 0.
 *    Ages are initialized to way index, which reproduces the scalar
 *    SetAssocCache victim order exactly (invalid ways fill from the
 *    highest index down, then true LRU).
 *
 * Interference attribution needs the victim owner, so every table
 * slot carries an owner byte (0 app / 1 kernel / 2 cold) that is only
 * written on fills — identical to the oracle's owner-tag semantics.
 */

namespace spikesim::sim::detail {

inline constexpr std::uint64_t kInvalidTag = ~0ULL;
/** Victim-owner code for an invalid (cold) entry. */
inline constexpr std::uint8_t kOwnerCold = 2;

/** One direct-mapped configuration of a line-size group. */
struct DmMember
{
    std::uint64_t mask = 0;   ///< sets - 1
    std::uint64_t offset = 0; ///< start of this table in dm_tags
    std::uint32_t sets = 0;
    std::size_t slot = 0; ///< config index relative to the chunk
};

/** One set-associative configuration of a line-size group. */
struct AssocMember
{
    std::size_t slot = 0;
    std::uint32_t assoc = 0;
    std::uint64_t set_mask = 0;
    std::size_t base = 0; ///< start in am_tags/am_ages/am_owners
};

/** All configurations sharing one line size, plus their cache state. */
struct LineGroup
{
    std::uint32_t line = 0;
    std::uint32_t shift = 0;

    std::vector<DmMember> dm;
    std::size_t dm_min = 0; ///< member with the fewest sets
    std::size_t dm_big = 0; ///< member with the most sets (prefetch)
    std::vector<std::uint64_t> dm_tags;
    std::vector<std::uint8_t> dm_owners;

    std::vector<AssocMember> am;
    std::vector<std::uint64_t> am_tags;
    std::vector<std::uint64_t> am_ages;
    std::vector<std::uint8_t> am_owners;

    std::uint64_t accesses = 0;
    std::uint64_t last_line = kInvalidTag;
};

struct IcacheState
{
    std::vector<LineGroup> groups;
    /** Per config slot: interference counts indexed [m * 3 + victim]. */
    std::vector<std::array<std::uint64_t, 6>> intf;
};

inline IcacheState
buildIcacheState(const mem::CacheConfig* configs, std::size_t k0,
                 std::size_t k1)
{
    IcacheState st;
    st.intf.assign(k1 - k0, {});
    for (std::size_t k = k0; k < k1; ++k) {
        const mem::CacheConfig& c = configs[k];
        const std::string err = c.check();
        SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
        LineGroup* g = nullptr;
        for (LineGroup& cand : st.groups)
            if (cand.line == c.line_bytes)
                g = &cand;
        if (g == nullptr) {
            st.groups.emplace_back();
            g = &st.groups.back();
            g->line = c.line_bytes;
            g->shift = static_cast<std::uint32_t>(
                std::bit_width(c.line_bytes) - 1);
        }
        const std::uint32_t sets = c.numSets();
        if (c.assoc == 1) {
            DmMember d;
            d.mask = sets - 1;
            d.sets = sets;
            d.slot = k - k0;
            g->dm.push_back(d);
        } else {
            AssocMember a;
            a.slot = k - k0;
            a.assoc = c.assoc;
            a.set_mask = sets - 1;
            g->am.push_back(a);
        }
    }
    for (LineGroup& g : st.groups) {
        std::uint64_t off = 0;
        for (std::size_t j = 0; j < g.dm.size(); ++j) {
            DmMember& d = g.dm[j];
            d.offset = off;
            off += d.sets;
            if (d.sets < g.dm[g.dm_min].sets)
                g.dm_min = j;
            if (d.sets > g.dm[g.dm_big].sets)
                g.dm_big = j;
        }
        g.dm_tags.assign(off, kInvalidTag);
        g.dm_owners.assign(off, kOwnerCold);

        std::size_t am_off = 0;
        for (AssocMember& a : g.am) {
            a.base = am_off;
            am_off += static_cast<std::size_t>(a.set_mask + 1) * a.assoc;
        }
        g.am_tags.assign(am_off, kInvalidTag);
        g.am_owners.assign(am_off, kOwnerCold);
        g.am_ages.resize(am_off);
        for (const AssocMember& a : g.am)
            for (std::size_t s = 0; s <= a.set_mask; ++s)
                for (std::uint32_t w = 0; w < a.assoc; ++w)
                    g.am_ages[a.base + s * a.assoc + w] = w;
    }
    return st;
}

/** Fold one shard's i-cache state into the output results. Shared by
 *  the scalar per-ref walk and the vector run-coalescing walk. */
inline void
foldIcacheState(const IcacheState& st, const IcacheShard& sh)
{
    for (const LineGroup& g : st.groups) {
        const auto fold = [&](std::size_t slot) {
            ICacheReplayResult& r = sh.out[slot];
            const std::array<std::uint64_t, 6>& c = st.intf[slot];
            r.accesses = g.accesses;
            for (int mm = 0; mm < 2; ++mm)
                for (int v = 0; v < 3; ++v)
                    r.interference.counts[mm][v] = c[mm * 3 + v];
            r.app_misses = c[0] + c[1] + c[2];
            r.kernel_misses = c[3] + c[4] + c[5];
            r.misses = r.app_misses + r.kernel_misses;
        };
        for (const DmMember& d : g.dm)
            fold(d.slot);
        for (const AssocMember& a : g.am)
            fold(a.slot);
    }
}

/** Branch-lean reference probes; also the tail/odd-assoc fallback of
 *  the AVX2 traits. */
struct ScalarProbe
{
    /** Probe every direct-mapped member (the inclusive check already
     *  failed); count misses and fill. */
    static void
    dmSlow(LineGroup& g, std::uint64_t ln, unsigned m,
           std::array<std::uint64_t, 6>* intf)
    {
        std::uint64_t* tags = g.dm_tags.data();
        std::uint8_t* own = g.dm_owners.data();
        for (const DmMember& d : g.dm) {
            const std::uint64_t idx = d.offset + (ln & d.mask);
            if (tags[idx] != ln) {
                ++intf[d.slot][m * 3 + own[idx]];
                tags[idx] = ln;
                own[idx] = static_cast<std::uint8_t>(m);
            }
        }
    }

    /** Probe one set-associative member with age-permutation LRU. */
    static void
    amProbe(LineGroup& g, const AssocMember& a, std::uint64_t ln,
            unsigned m, std::array<std::uint64_t, 6>* intf)
    {
        const std::uint32_t assoc = a.assoc;
        const std::size_t set = ln & a.set_mask;
        std::uint64_t* tags = g.am_tags.data() + a.base + set * assoc;
        std::uint64_t* ages = g.am_ages.data() + a.base + set * assoc;
        std::uint8_t* own = g.am_owners.data() + a.base + set * assoc;

        std::uint32_t hit = assoc;
        for (std::uint32_t w = 0; w < assoc; ++w)
            hit = tags[w] == ln ? w : hit;
        if (hit < assoc) {
            const std::uint64_t h = ages[hit];
            for (std::uint32_t w = 0; w < assoc; ++w)
                ages[w] += static_cast<std::uint64_t>(ages[w] < h);
            ages[hit] = 0;
            return;
        }
        // Miss: exactly one way carries age assoc-1 (the permutation
        // invariant), and it is the scalar cache's victim.
        const std::uint64_t lru = assoc - 1;
        std::uint32_t v = 0;
        for (std::uint32_t w = 0; w < assoc; ++w)
            v = ages[w] == lru ? w : v;
        ++intf[a.slot][m * 3 + own[v]];
        tags[v] = ln;
        own[v] = static_cast<std::uint8_t>(m);
        for (std::uint32_t w = 0; w < assoc; ++w)
            ages[w] += static_cast<std::uint64_t>(ages[w] < lru);
        ages[v] = 0;
    }
};

/** How many refs ahead the column prefetches run. */
inline constexpr std::size_t kRefPrefetch = 24;
/** Lead (in refs) for the tag-line prefetch of the biggest DM table. */
inline constexpr std::size_t kTagPrefetch = 4;

template <class Probe>
inline void
runIcacheShardImpl(const IcacheShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    IcacheState st = buildIcacheState(sh.configs, sh.k0, sh.k1);
    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();

    for (std::size_t i = begin; i < end; ++i) {
        // Stream the upcoming ref columns; prefetching one address
        // pulls its whole cache line of packed 8-byte entries.
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] ==
            static_cast<std::uint8_t>(mem::Owner::Data))
            continue;
        const unsigned m =
            owners[i] == static_cast<std::uint8_t>(mem::Owner::App)
                ? 0u
                : 1u;
        const std::uint64_t addr = addrs[i];
        const std::uint64_t last_byte = addr + sizes[i] - 1;
        // Cover the probe latency of the biggest (least cache-resident)
        // direct-mapped table with a short-lead slot prefetch.
        const std::uint64_t next_addr =
            addrs[i + kTagPrefetch < end ? i + kTagPrefetch : i];
        for (LineGroup& g : st.groups) {
            if (!g.dm.empty()) {
                const DmMember& big = g.dm[g.dm_big];
                __builtin_prefetch(
                    &g.dm_tags[big.offset +
                               ((next_addr >> g.shift) & big.mask)]);
            }
            std::uint64_t ln = addr >> g.shift;
            const std::uint64_t ln_end = last_byte >> g.shift;
            g.accesses += ln_end - ln + 1;
            std::uint64_t last = g.last_line;
            for (; ln <= ln_end; ++ln) {
                if (ln == last)
                    continue;
                last = ln;
                if (!g.dm.empty()) {
                    const DmMember& mn = g.dm[g.dm_min];
                    if (g.dm_tags[mn.offset + (ln & mn.mask)] != ln)
                        Probe::dmSlow(g, ln, m, st.intf.data());
                }
                for (const AssocMember& a : g.am)
                    Probe::amProbe(g, a, ln, m, st.intf.data());
            }
            g.last_line = last;
        }
    }

    foldIcacheState(st, sh);
}

// ---------------------------------------------------------------------
// Flat hash structures for the three-C / iTLB / stream-buffer families.
//
// The scalar simulator objects lean on std::unordered_map and
// std::list; the kernels below replace them with flat, allocation-free
// (after construction) equivalents that compute the same integers:
//
//  - FlatLineSet: open-addressing first-touch set (no deletion).
//  - FlatFaLru: fully-associative LRU over line/page numbers as an
//    intrusive doubly-linked list over a fixed node pool plus a chained
//    hash index — O(1) access, exact FullyAssocLru semantics
//    (insert-at-front, evict-back once full).
// ---------------------------------------------------------------------

/** Mix for line/page-number hashing (finalizer of MurmurHash3). */
inline std::uint64_t
hashLine(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    return x;
}

/** Open-addressing set of line numbers; grows, never deletes. The
 *  empty sentinel is kInvalidTag, which no real line number can be. */
class FlatLineSet
{
  public:
    explicit FlatLineSet(std::size_t expected = 64)
    {
        std::size_t cap = 64;
        while (cap < expected * 2)
            cap <<= 1;
        slots_.assign(cap, kInvalidTag);
    }

    /** Insert; returns whether the line was already present. */
    bool
    testAndSet(std::uint64_t ln)
    {
        if ((count_ + 1) * 2 > slots_.size())
            grow();
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hashLine(ln) & mask;
        while (slots_[i] != kInvalidTag) {
            if (slots_[i] == ln)
                return true;
            i = (i + 1) & mask;
        }
        slots_[i] = ln;
        ++count_;
        return false;
    }

  private:
    void
    grow()
    {
        std::vector<std::uint64_t> old = std::move(slots_);
        slots_.assign(old.size() * 2, kInvalidTag);
        const std::size_t mask = slots_.size() - 1;
        for (std::uint64_t v : old) {
            if (v == kInvalidTag)
                continue;
            std::size_t i = hashLine(v) & mask;
            while (slots_[i] != kInvalidTag)
                i = (i + 1) & mask;
            slots_[i] = v;
        }
    }

    std::vector<std::uint64_t> slots_;
    std::size_t count_ = 0;
};

/** Flat fully-associative LRU, bit-identical to mem::FullyAssocLru:
 *  hit moves to front; miss inserts at front and evicts the back once
 *  the capacity is exceeded. */
class FlatFaLru
{
  public:
    explicit FlatFaLru(std::uint32_t capacity) : cap_(capacity)
    {
        SPIKESIM_ASSERT(capacity > 0, "LRU needs capacity");
        line_.resize(cap_);
        prev_.resize(cap_);
        next_.resize(cap_);
        hnext_.resize(cap_);
        std::size_t b = 16;
        while (b < static_cast<std::size_t>(cap_) * 2)
            b <<= 1;
        bucket_.assign(b, kNull);
        bmask_ = static_cast<std::uint32_t>(b - 1);
    }

    /** Touch a line; true on hit. */
    bool
    access(std::uint64_t ln)
    {
        const std::uint32_t b =
            static_cast<std::uint32_t>(hashLine(ln)) & bmask_;
        for (std::uint32_t n = bucket_[b]; n != kNull; n = hnext_[n]) {
            if (line_[n] == ln) {
                moveToFront(n);
                return true;
            }
        }
        std::uint32_t n;
        if (count_ == cap_) {
            n = tail_;
            tail_ = prev_[n];
            if (tail_ != kNull)
                next_[tail_] = kNull;
            else
                head_ = kNull;
            chainRemove(n);
        } else {
            n = count_++;
        }
        line_[n] = ln;
        prev_[n] = kNull;
        next_[n] = head_;
        if (head_ != kNull)
            prev_[head_] = n;
        else
            tail_ = n;
        head_ = n;
        hnext_[n] = bucket_[b];
        bucket_[b] = n;
        return false;
    }

  private:
    void
    moveToFront(std::uint32_t n)
    {
        if (head_ == n)
            return;
        const std::uint32_t p = prev_[n];
        const std::uint32_t x = next_[n];
        next_[p] = x;
        if (x != kNull)
            prev_[x] = p;
        else
            tail_ = p;
        prev_[n] = kNull;
        next_[n] = head_;
        prev_[head_] = n;
        head_ = n;
    }

    void
    chainRemove(std::uint32_t n)
    {
        const std::uint32_t b =
            static_cast<std::uint32_t>(hashLine(line_[n])) & bmask_;
        std::uint32_t cur = bucket_[b];
        if (cur == n) {
            bucket_[b] = hnext_[n];
            return;
        }
        while (hnext_[cur] != n)
            cur = hnext_[cur];
        hnext_[cur] = hnext_[n];
    }

    static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

    std::uint32_t cap_;
    std::uint32_t count_ = 0;
    std::uint32_t head_ = kNull;
    std::uint32_t tail_ = kNull;
    std::uint32_t bmask_ = 0;
    std::vector<std::uint64_t> line_;
    std::vector<std::uint32_t> prev_, next_, hnext_;
    std::vector<std::uint32_t> bucket_;
};

/** Stats-only set-associative probe (no owner tags): true on hit,
 *  fills the LRU victim on miss. Same age-permutation scheme as
 *  ScalarProbe::amProbe. `tags`/`ages` point at the set. */
struct ScalarStatsProbe
{
    static bool
    amAccess(std::uint64_t* tags, std::uint64_t* ages,
             std::uint32_t assoc, std::uint64_t ln)
    {
        std::uint32_t hit = assoc;
        for (std::uint32_t w = 0; w < assoc; ++w)
            hit = tags[w] == ln ? w : hit;
        if (hit < assoc) {
            const std::uint64_t h = ages[hit];
            for (std::uint32_t w = 0; w < assoc; ++w)
                ages[w] += static_cast<std::uint64_t>(ages[w] < h);
            ages[hit] = 0;
            return true;
        }
        const std::uint64_t lru = assoc - 1;
        std::uint32_t v = 0;
        for (std::uint32_t w = 0; w < assoc; ++w)
            v = ages[w] == lru ? w : v;
        tags[v] = ln;
        for (std::uint32_t w = 0; w < assoc; ++w)
            ages[w] += static_cast<std::uint64_t>(ages[w] < lru);
        ages[v] = 0;
        return false;
    }
};

// ---------------------------------------------------------------------
// Three-C classification kernel.
//
// Exact port of mem::ClassifyingICache onto the grouped-column layout:
// per line-size group one shared first-touch set, one shared ideal
// FA-LRU per *distinct capacity* (ideal caches of equal capacity see
// the identical line-step sequence, so their state is identical and
// can be deduplicated), and the same DM/assoc real-cache machinery as
// the i-cache kernel minus owner tags. Per non-repeat line-step the
// walk reads `seen` (before setting it), accesses every ideal LRU, and
// classifies each member's real miss as compulsory (!seen), capacity
// (!ideal_hit) or conflict — the oracle's exact decision tree. The
// repeat-line fast path is valid for the same reason as the i-cache
// kernel: a repeated line is MRU everywhere (real sets, ideal LRU) and
// already touched, so only the access counter moves.
// ---------------------------------------------------------------------

/** All three-C configurations sharing one line size, plus state. */
struct ThreeCGroup
{
    std::uint32_t line = 0;
    std::uint32_t shift = 0;

    std::vector<DmMember> dm;
    std::size_t dm_min = 0;
    std::vector<std::uint64_t> dm_tags;
    std::vector<std::uint32_t> dm_cap; ///< per dm member: ideal index

    std::vector<AssocMember> am;
    std::vector<std::uint64_t> am_tags;
    std::vector<std::uint64_t> am_ages;
    std::vector<std::uint32_t> am_cap; ///< per am member: ideal index

    std::vector<FlatFaLru> ideal;      ///< one per distinct capacity
    std::vector<std::uint32_t> ideal_lines; ///< capacities (in lines)
    std::vector<std::uint8_t> ideal_hit;    ///< per-line-step scratch
    FlatLineSet touched;

    std::uint64_t line_steps = 0;
    std::uint64_t last_line = kInvalidTag;
};

inline std::vector<ThreeCGroup>
buildThreeCGroups(const mem::CacheConfig* configs, std::size_t k0,
                  std::size_t k1)
{
    std::vector<ThreeCGroup> groups;
    for (std::size_t k = k0; k < k1; ++k) {
        const mem::CacheConfig& c = configs[k];
        const std::string err = c.check();
        SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
        ThreeCGroup* g = nullptr;
        for (ThreeCGroup& cand : groups)
            if (cand.line == c.line_bytes)
                g = &cand;
        if (g == nullptr) {
            groups.emplace_back();
            g = &groups.back();
            g->line = c.line_bytes;
            g->shift = static_cast<std::uint32_t>(
                std::bit_width(c.line_bytes) - 1);
        }
        const std::uint32_t lines = c.numLines();
        std::uint32_t ci = static_cast<std::uint32_t>(g->ideal_lines.size());
        for (std::uint32_t j = 0; j < g->ideal_lines.size(); ++j)
            if (g->ideal_lines[j] == lines)
                ci = j;
        if (ci == g->ideal_lines.size()) {
            g->ideal_lines.push_back(lines);
            g->ideal.emplace_back(lines);
        }
        const std::uint32_t sets = c.numSets();
        if (c.assoc == 1) {
            DmMember d;
            d.mask = sets - 1;
            d.sets = sets;
            d.slot = k - k0;
            g->dm.push_back(d);
            g->dm_cap.push_back(ci);
        } else {
            AssocMember a;
            a.slot = k - k0;
            a.assoc = c.assoc;
            a.set_mask = sets - 1;
            g->am.push_back(a);
            g->am_cap.push_back(ci);
        }
    }
    for (ThreeCGroup& g : groups) {
        std::uint64_t off = 0;
        for (std::size_t j = 0; j < g.dm.size(); ++j) {
            DmMember& d = g.dm[j];
            d.offset = off;
            off += d.sets;
            if (d.sets < g.dm[g.dm_min].sets)
                g.dm_min = j;
        }
        g.dm_tags.assign(off, kInvalidTag);

        std::size_t am_off = 0;
        for (AssocMember& a : g.am) {
            a.base = am_off;
            am_off += static_cast<std::size_t>(a.set_mask + 1) * a.assoc;
        }
        g.am_tags.assign(am_off, kInvalidTag);
        g.am_ages.resize(am_off);
        for (const AssocMember& a : g.am)
            for (std::size_t s = 0; s <= a.set_mask; ++s)
                for (std::uint32_t w = 0; w < a.assoc; ++w)
                    g.am_ages[a.base + s * a.assoc + w] = w;
        g.ideal_hit.assign(g.ideal.size(), 0);
    }
    return groups;
}

/** The oracle's exact miss decision tree. c = [comp, cap, conf]. */
inline void
classifyThreeC(std::uint64_t* c, bool seen, bool ideal_hit)
{
    if (!seen)
        ++c[0];
    else if (!ideal_hit)
        ++c[1];
    else
        ++c[2];
}

template <class Probe>
inline void
runThreeCShardImpl(const ThreeCShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    std::vector<ThreeCGroup> groups =
        buildThreeCGroups(sh.configs, sh.k0, sh.k1);
    // Per config slot: [compulsory, capacity, conflict].
    std::vector<std::array<std::uint64_t, 3>> cls(sh.k1 - sh.k0, std::array<std::uint64_t, 3>{});

    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();

    for (std::size_t i = begin; i < end; ++i) {
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] == static_cast<std::uint8_t>(mem::Owner::Data))
            continue;
        const std::uint64_t addr = addrs[i];
        const std::uint64_t last_byte = addr + sizes[i] - 1;
        for (ThreeCGroup& g : groups) {
            std::uint64_t ln = addr >> g.shift;
            const std::uint64_t ln_end = last_byte >> g.shift;
            g.line_steps += ln_end - ln + 1;
            std::uint64_t last = g.last_line;
            for (; ln <= ln_end; ++ln) {
                if (ln == last)
                    continue;
                last = ln;
                const bool seen = g.touched.testAndSet(ln);
                for (std::size_t ci = 0; ci < g.ideal.size(); ++ci)
                    g.ideal_hit[ci] =
                        static_cast<std::uint8_t>(g.ideal[ci].access(ln));
                if (!g.dm.empty()) {
                    const DmMember& mn = g.dm[g.dm_min];
                    if (g.dm_tags[mn.offset + (ln & mn.mask)] != ln) {
                        for (std::size_t j = 0; j < g.dm.size(); ++j) {
                            const DmMember& d = g.dm[j];
                            const std::uint64_t idx =
                                d.offset + (ln & d.mask);
                            if (g.dm_tags[idx] != ln) {
                                g.dm_tags[idx] = ln;
                                classifyThreeC(
                                    cls[d.slot].data(), seen,
                                    g.ideal_hit[g.dm_cap[j]] != 0);
                            }
                        }
                    }
                }
                for (std::size_t j = 0; j < g.am.size(); ++j) {
                    const AssocMember& a = g.am[j];
                    const std::size_t set = ln & a.set_mask;
                    std::uint64_t* tags =
                        g.am_tags.data() + a.base + set * a.assoc;
                    std::uint64_t* ages =
                        g.am_ages.data() + a.base + set * a.assoc;
                    if (!Probe::amAccess(tags, ages, a.assoc, ln))
                        classifyThreeC(cls[a.slot].data(), seen,
                                       g.ideal_hit[g.am_cap[j]] != 0);
                }
            }
            g.last_line = last;
        }
    }

    for (const ThreeCGroup& g : groups) {
        const auto fold = [&](std::size_t slot) {
            mem::ThreeCStats& o = sh.out[slot];
            o = mem::ThreeCStats();
            o.compulsory = cls[slot][0];
            o.capacity = cls[slot][1];
            o.conflict = cls[slot][2];
            o.base.accesses = g.line_steps;
            o.base.misses = o.compulsory + o.capacity + o.conflict;
        };
        for (const DmMember& d : g.dm)
            fold(d.slot);
        for (const AssocMember& a : g.am)
            fold(a.slot);
    }
}

// ---------------------------------------------------------------------
// iTLB kernel.
//
// mem::ITlb is an exact fully-associative LRU over virtual page
// numbers: a hit re-stamps (making the entry MRU) and the victim scan
// picks the last invalid entry, else the minimum stamp — which, with
// strictly increasing stamps, is precisely "evict LRU once full". The
// resident set after every access therefore equals FlatFaLru's, and so
// do the hit/miss counts (which slot holds an entry never matters).
// The one-entry last-page filter is a pure MRU no-op, mirrored here so
// the FA-LRU is only consulted on page changes. Specs are grouped by
// fetch granularity (their line-step walks differ); there is no
// vector-profitable arithmetic, so one scalar implementation serves
// every KernelKind.
// ---------------------------------------------------------------------

/** One iTLB spec within a fetch-granularity group. */
struct ITlbMember
{
    std::size_t slot = 0;
    std::uint32_t page_shift = 0;
    std::uint64_t last_page = kInvalidTag;
    std::uint64_t misses = 0;
    FlatFaLru tlb;

    ITlbMember(std::size_t s, std::uint32_t ps, std::uint32_t entries)
        : slot(s), page_shift(ps), tlb(entries)
    {
    }
};

/** All iTLB specs sharing one fetch granularity. */
struct ITlbGroup
{
    std::uint32_t fetch = 0;
    std::uint32_t shift = 0;
    std::vector<ITlbMember> members;
    std::uint64_t line_steps = 0;
    std::uint64_t last_line = kInvalidTag;
};

inline void
runITlbShardImpl(const ITlbShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    std::vector<ITlbGroup> groups;
    for (std::size_t k = sh.k0; k < sh.k1; ++k) {
        const ITlbSpec& spec = sh.specs[k];
        SPIKESIM_ASSERT(spec.fetch_bytes > 0 &&
                            (spec.fetch_bytes &
                             (spec.fetch_bytes - 1)) == 0,
                        "fetch granularity must be a power of two");
        SPIKESIM_ASSERT(spec.page_bytes > 0 &&
                            (spec.page_bytes & (spec.page_bytes - 1)) ==
                                0,
                        "page size must be a power of two");
        ITlbGroup* g = nullptr;
        for (ITlbGroup& cand : groups)
            if (cand.fetch == spec.fetch_bytes)
                g = &cand;
        if (g == nullptr) {
            groups.emplace_back();
            g = &groups.back();
            g->fetch = spec.fetch_bytes;
            g->shift = static_cast<std::uint32_t>(
                std::bit_width(spec.fetch_bytes) - 1);
        }
        g->members.emplace_back(
            k - sh.k0,
            static_cast<std::uint32_t>(
                std::bit_width(spec.page_bytes) - 1),
            spec.entries);
    }

    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();

    for (std::size_t i = begin; i < end; ++i) {
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] == static_cast<std::uint8_t>(mem::Owner::Data))
            continue;
        const std::uint64_t addr = addrs[i];
        const std::uint64_t last_byte = addr + sizes[i] - 1;
        for (ITlbGroup& g : groups) {
            std::uint64_t ln = addr >> g.shift;
            const std::uint64_t ln_end = last_byte >> g.shift;
            g.line_steps += ln_end - ln + 1;
            std::uint64_t last = g.last_line;
            for (; ln <= ln_end; ++ln) {
                if (ln == last)
                    continue;
                last = ln;
                const std::uint64_t la = ln << g.shift;
                for (ITlbMember& m : g.members) {
                    const std::uint64_t page = la >> m.page_shift;
                    if (page == m.last_page)
                        continue;
                    m.last_page = page;
                    if (!m.tlb.access(page))
                        ++m.misses;
                }
            }
            g.last_line = last;
        }
    }

    for (const ITlbGroup& g : groups) {
        for (const ITlbMember& m : g.members) {
            ITlbReplayResult& o = sh.out[m.slot];
            o = ITlbReplayResult();
            o.accesses = g.line_steps;
            o.misses = m.misses;
        }
    }
}

// ---------------------------------------------------------------------
// Instrumented (per-word) kernel.
//
// Exact port of mem::InstrumentedICache onto the run-coalescing
// line-span walk: each instruction ref is split into maximal
// same-line word spans; the first word of a span pays the full probe
// (hit scan, else miss + retire + fill) and the remaining words are
// guaranteed hits on the same entry — the oracle's hit path is
// position-independent and side-effect-free until the hit is found,
// so touching the entry directly reproduces every counter, stamp and
// histogram update bit for bit. A one-entry MRU filter (last line +
// entry, re-validated against the tag) short-circuits the common
// sequential-fetch probe. Per-word histogram updates carry serial
// dependences (timestamps, saturating counters), so there is no
// profitable vector form and one scalar implementation serves every
// KernelKind.
// ---------------------------------------------------------------------

/** One instrumented configuration within a line-size group. */
struct InstrMember
{
    std::size_t slot = 0;
    std::uint32_t assoc = 0;
    std::uint32_t set_mask = 0;

    std::vector<std::uint8_t> valid;
    std::vector<std::uint64_t> tag;
    std::vector<std::uint64_t> stamp;
    std::vector<std::uint64_t> fill;
    std::vector<std::uint64_t> wmask;
    std::vector<std::uint16_t> counts; ///< entries * words-per-line

    support::Histogram words_used;
    support::Histogram word_reuse;
    support::Log2Histogram lifetimes;
    std::uint64_t now = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fetched = 0;
    std::uint64_t unused = 0;

    std::uint64_t last_line = kInvalidTag;
    std::size_t last_entry = 0;

    InstrMember(std::size_t s, const mem::CacheConfig& c,
                std::uint32_t wpl)
        : slot(s), assoc(c.assoc), set_mask(c.numSets() - 1),
          words_used(wpl + 1), word_reuse(16), lifetimes(32)
    {
        const std::size_t n =
            static_cast<std::size_t>(c.numSets()) * c.assoc;
        valid.assign(n, 0);
        tag.assign(n, 0);
        stamp.assign(n, 0);
        fill.assign(n, 0);
        wmask.assign(n, 0);
        counts.assign(n * wpl, 0);
    }
};

/** All instrumented configurations sharing one line size. */
struct InstrGroup
{
    std::uint32_t line = 0;
    std::uint32_t shift = 0;
    std::uint32_t wpl = 0; ///< words per line
    std::vector<InstrMember> members;
};

/** Retire one entry into the histograms (oracle retire(), verbatim). */
inline void
instrRetire(InstrMember& m, std::uint32_t wpl, std::size_t idx)
{
    if (!m.valid[idx])
        return;
    m.words_used.record(
        static_cast<std::uint64_t>(std::popcount(m.wmask[idx])));
    m.lifetimes.record(m.now - m.fill[idx]);
    std::uint16_t* counts = &m.counts[idx * wpl];
    for (std::uint32_t w = 0; w < wpl; ++w) {
        m.word_reuse.record(counts[w]);
        ++m.fetched;
        if (counts[w] == 0)
            ++m.unused;
        counts[w] = 0;
    }
    m.valid[idx] = 0;
    m.wmask[idx] = 0;
}

/** Feed one same-line span of `span` words starting at `word0`. */
inline void
instrSpan(InstrMember& m, std::uint32_t wpl, std::uint64_t line,
          std::uint32_t word0, std::uint32_t span)
{
    ++m.now;
    std::size_t entry;
    if (line == m.last_line && m.valid[m.last_entry] != 0 &&
        m.tag[m.last_entry] == line) {
        // MRU hit: identical effects to the scan finding this entry.
        entry = m.last_entry;
        m.stamp[entry] = m.now;
        m.wmask[entry] |= 1ULL << word0;
        std::uint16_t& c = m.counts[entry * wpl + word0];
        if (c < 0xffff)
            ++c;
        ++m.hits;
    } else {
        const std::size_t base =
            static_cast<std::size_t>(static_cast<std::uint32_t>(line) &
                                     m.set_mask) *
            m.assoc;
        std::size_t found = kInvalidTag;
        std::size_t victim = base;
        for (std::uint32_t w = 0; w < m.assoc; ++w) {
            const std::size_t idx = base + w;
            if (m.valid[idx] != 0 && m.tag[idx] == line) {
                found = idx;
                break;
            }
            // Oracle victim scan: last invalid way wins; else min stamp.
            if (m.valid[idx] == 0)
                victim = idx;
            else if (m.valid[victim] != 0 &&
                     m.stamp[idx] < m.stamp[victim])
                victim = idx;
        }
        if (found != kInvalidTag) {
            entry = found;
            m.stamp[entry] = m.now;
            m.wmask[entry] |= 1ULL << word0;
            std::uint16_t& c = m.counts[entry * wpl + word0];
            if (c < 0xffff)
                ++c;
            ++m.hits;
        } else {
            ++m.misses;
            instrRetire(m, wpl, victim);
            entry = victim;
            m.valid[entry] = 1;
            m.tag[entry] = line;
            m.stamp[entry] = m.now;
            m.fill[entry] = m.now;
            m.wmask[entry] = 1ULL << word0;
            m.counts[entry * wpl + word0] = 1;
        }
    }
    // The span's remaining words are consecutive indices of the same
    // line: guaranteed hits on `entry`, one oracle fetchWord() each.
    for (std::uint32_t s = 1; s < span; ++s) {
        ++m.now;
        m.stamp[entry] = m.now;
        m.wmask[entry] |= 1ULL << (word0 + s);
        std::uint16_t& c = m.counts[entry * wpl + word0 + s];
        if (c < 0xffff)
            ++c;
        ++m.hits;
    }
    m.last_line = line;
    m.last_entry = entry;
}

inline void
runInstrShardImpl(const InstrShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    std::vector<InstrGroup> groups;
    for (std::size_t k = sh.k0; k < sh.k1; ++k) {
        const mem::CacheConfig& cfg = sh.configs[k];
        const std::string err = cfg.check();
        SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
        SPIKESIM_ASSERT(cfg.line_bytes / 4 <= 64,
                        "line too wide for 64-bit word masks");
        InstrGroup* g = nullptr;
        for (InstrGroup& cand : groups)
            if (cand.line == cfg.line_bytes)
                g = &cand;
        if (g == nullptr) {
            groups.emplace_back();
            g = &groups.back();
            g->line = cfg.line_bytes;
            g->shift = static_cast<std::uint32_t>(
                std::bit_width(cfg.line_bytes) - 1);
            g->wpl = cfg.line_bytes / 4;
        }
        g->members.emplace_back(k - sh.k0, cfg, g->wpl);
    }

    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();

    for (std::size_t i = begin; i < end; ++i) {
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] == static_cast<std::uint8_t>(mem::Owner::Data))
            continue;
        const std::uint64_t addr = addrs[i];
        const std::uint32_t words = sizes[i] / 4;
        for (InstrGroup& g : groups) {
            std::uint32_t w = 0;
            while (w < words) {
                const std::uint64_t wa = addr + 4ULL * w;
                const std::uint64_t line = wa >> g.shift;
                const std::uint64_t next = (line + 1) << g.shift;
                // Words at wa, wa+4, ... stay on `line` while below
                // `next`: ceil((next - wa) / 4) of them.
                const std::uint32_t span =
                    static_cast<std::uint32_t>(std::min<std::uint64_t>(
                        words - w, (next - wa + 3) >> 2));
                const std::uint32_t word0 =
                    static_cast<std::uint32_t>(wa >> 2) & (g.wpl - 1);
                for (InstrMember& m : g.members)
                    instrSpan(m, g.wpl, line, word0, span);
                w += span;
            }
        }
    }

    for (InstrGroup& g : groups) {
        for (InstrMember& m : g.members) {
            if (sh.flush_at_end)
                for (std::size_t e = 0; e < m.valid.size(); ++e)
                    instrRetire(m, g.wpl, e);
            InstrShardOut& o = sh.out[m.slot];
            o.misses = m.misses;
            o.samples = m.word_reuse.totalSamples();
            o.unused_word_fraction =
                m.fetched == 0
                    ? 0.0
                    : static_cast<double>(m.unused) /
                          static_cast<double>(m.fetched);
            o.words_used = std::move(m.words_used);
            o.word_reuse = std::move(m.word_reuse);
            o.lifetimes = std::move(m.lifetimes);
        }
    }
}

// ---------------------------------------------------------------------
// Stream-buffer kernel.
//
// Exact port of mem::StreamBufferICache: per line-step the L1 is
// probed (and filled on miss — the demand fetch happens whether or not
// a buffer supplies the line); on an L1 miss the buffer heads are
// scanned in array order and the first match streams ahead; otherwise
// the first invalid buffer (else the minimum-stamp buffer) is
// reallocated. The oracle stamps buffers with a per-access clock; only
// the *order* of stamp assignments ever matters (stamps are compared
// with strict <, and each assignment uses a fresh clock value), so the
// kernel's per-member assignment counter reproduces every victim
// decision. Repeat lines are guaranteed L1 MRU hits and touch neither
// the buffers nor the clock order — the usual fast path.
// ---------------------------------------------------------------------

/** One stream-buffer configuration within a line-size group. */
struct StreamBufMember
{
    std::size_t slot = 0;
    std::uint32_t assoc = 0; ///< 1 = direct-mapped L1
    std::uint64_t set_mask = 0;
    std::size_t base = 0; ///< into the group tag/age arrays

    std::vector<std::uint64_t> buf_next;
    std::vector<std::uint64_t> buf_stamp;
    std::vector<std::uint8_t> buf_valid;
    std::uint64_t ctr = 0; ///< stamp-assignment order clock
    std::uint64_t l1_misses = 0;
    std::uint64_t demand_misses = 0;
};

/** All stream-buffer configurations sharing one line size. */
struct StreamBufGroup
{
    std::uint32_t line = 0;
    std::uint32_t shift = 0;
    std::vector<StreamBufMember> members;
    std::vector<std::uint64_t> tags;
    std::vector<std::uint64_t> ages;
    std::uint64_t line_steps = 0;
    std::uint64_t last_line = kInvalidTag;
};

inline std::vector<StreamBufGroup>
buildStreamBufGroups(const mem::CacheConfig* configs, std::size_t k0,
                     std::size_t k1, int num_buffers)
{
    SPIKESIM_ASSERT(num_buffers > 0, "need at least one stream buffer");
    std::vector<StreamBufGroup> groups;
    for (std::size_t k = k0; k < k1; ++k) {
        const mem::CacheConfig& c = configs[k];
        const std::string err = c.check();
        SPIKESIM_ASSERT(err.empty(), "bad cache config: " << err);
        StreamBufGroup* g = nullptr;
        for (StreamBufGroup& cand : groups)
            if (cand.line == c.line_bytes)
                g = &cand;
        if (g == nullptr) {
            groups.emplace_back();
            g = &groups.back();
            g->line = c.line_bytes;
            g->shift = static_cast<std::uint32_t>(
                std::bit_width(c.line_bytes) - 1);
        }
        StreamBufMember m;
        m.slot = k - k0;
        m.assoc = c.assoc;
        m.set_mask = c.numSets() - 1;
        m.buf_next.assign(static_cast<std::size_t>(num_buffers), 0);
        m.buf_stamp.assign(static_cast<std::size_t>(num_buffers), 0);
        m.buf_valid.assign(static_cast<std::size_t>(num_buffers), 0);
        g->members.push_back(std::move(m));
    }
    for (StreamBufGroup& g : groups) {
        std::size_t off = 0;
        for (StreamBufMember& m : g.members) {
            m.base = off;
            off += static_cast<std::size_t>(m.set_mask + 1) * m.assoc;
        }
        g.tags.assign(off, kInvalidTag);
        g.ages.resize(off);
        for (const StreamBufMember& m : g.members)
            if (m.assoc > 1)
                for (std::size_t s = 0; s <= m.set_mask; ++s)
                    for (std::uint32_t w = 0; w < m.assoc; ++w)
                        g.ages[m.base + s * m.assoc + w] = w;
    }
    return groups;
}

template <class Probe>
inline void
runStreamBufShardImpl(const StreamBufShard& sh)
{
    const ResolvedTraceSoA& soa = *sh.soa;
    std::vector<StreamBufGroup> groups = buildStreamBufGroups(
        sh.configs, sh.k0, sh.k1, sh.num_buffers);
    const std::size_t nb = static_cast<std::size_t>(sh.num_buffers);

    const auto [begin, end] = soa.cpuRange(sh.cpu);
    const std::uint64_t* addrs = soa.addr.data();
    const std::uint32_t* sizes = soa.bytes.data();
    const std::uint8_t* owners = soa.owner.data();

    for (std::size_t i = begin; i < end; ++i) {
        if (i + kRefPrefetch < end) {
            __builtin_prefetch(addrs + i + kRefPrefetch);
            __builtin_prefetch(sizes + i + kRefPrefetch);
        }
        if (owners[i] == static_cast<std::uint8_t>(mem::Owner::Data))
            continue;
        const std::uint64_t addr = addrs[i];
        const std::uint64_t last_byte = addr + sizes[i] - 1;
        for (StreamBufGroup& g : groups) {
            std::uint64_t ln = addr >> g.shift;
            const std::uint64_t ln_end = last_byte >> g.shift;
            g.line_steps += ln_end - ln + 1;
            std::uint64_t last = g.last_line;
            for (; ln <= ln_end; ++ln) {
                if (ln == last)
                    continue;
                last = ln;
                for (StreamBufMember& m : g.members) {
                    bool hit;
                    if (m.assoc == 1) {
                        const std::size_t idx =
                            m.base + (ln & m.set_mask);
                        hit = g.tags[idx] == ln;
                        if (!hit)
                            g.tags[idx] = ln;
                    } else {
                        const std::size_t set =
                            (ln & m.set_mask) * m.assoc;
                        hit = Probe::amAccess(
                            g.tags.data() + m.base + set,
                            g.ages.data() + m.base + set, m.assoc, ln);
                    }
                    if (hit)
                        continue;
                    ++m.l1_misses;
                    bool streamed = false;
                    for (std::size_t b = 0; b < nb; ++b) {
                        if (m.buf_valid[b] != 0 &&
                            m.buf_next[b] == ln) {
                            m.buf_next[b] = ln + 1;
                            m.buf_stamp[b] = ++m.ctr;
                            streamed = true;
                            break;
                        }
                    }
                    if (streamed)
                        continue;
                    ++m.demand_misses;
                    std::size_t v = 0;
                    for (std::size_t b = 0; b < nb; ++b) {
                        if (m.buf_valid[b] == 0) {
                            v = b;
                            break;
                        }
                        if (m.buf_stamp[b] < m.buf_stamp[v])
                            v = b;
                    }
                    m.buf_valid[v] = 1;
                    m.buf_next[v] = ln + 1;
                    m.buf_stamp[v] = ++m.ctr;
                }
            }
            g.last_line = last;
        }
    }

    for (const StreamBufGroup& g : groups) {
        for (const StreamBufMember& m : g.members) {
            mem::StreamBufferStats& o = sh.out[m.slot];
            o = mem::StreamBufferStats();
            o.l1.accesses = g.line_steps;
            o.l1.misses = m.l1_misses;
            o.stream.accesses = m.l1_misses;
            o.stream.misses = m.demand_misses;
        }
    }
}

} // namespace spikesim::sim::detail

#endif // SPIKESIM_SIM_KERNELS_DETAIL_HH
