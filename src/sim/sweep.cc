#include "sim/sweep.hh"

#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

namespace spikesim::sim {

std::vector<SweepResult>
runSweepJobs(const trace::TraceBuffer& trace,
             const std::vector<SweepJob>& jobs,
             support::ThreadPool* pool)
{
    std::vector<SweepResult> results;
    results.reserve(jobs.size());
    for (const SweepJob& job : jobs) {
        SPIKESIM_ASSERT(job.app_layout != nullptr,
                        "sweep job needs an application layout");
        std::string err = job.spec.check();
        SPIKESIM_ASSERT(err.empty(),
                        "bad sweep spec (" << job.label << "): " << err);
        results.emplace_back(job.spec);
    }

    static obs::Counter& c_jobs = obs::counter("sim.sweep.jobs");
    c_jobs.add(jobs.size());

    if (pool == nullptr) {
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            obs::Span span("sweep.job", "sim");
            Replayer rep(trace, *jobs[j].app_layout,
                         jobs[j].kernel_layout);
            ResolvedTrace resolved = rep.resolve(jobs[j].filter);
            sweepAllLines(resolved, jobs[j].spec, results[j]);
        }
        return results;
    }

    // Phase 1: resolve each job's trace through its layouts.
    std::vector<ResolvedTrace> resolved(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        pool->submit([&trace, &jobs, &resolved, j] {
            obs::Span span("sweep.resolve", "sim");
            Replayer rep(trace, *jobs[j].app_layout,
                         jobs[j].kernel_layout);
            resolved[j] = rep.resolve(jobs[j].filter);
        });
    }
    pool->wait();

    // Phase 2: every (job, line size) pair is an independent task
    // writing a disjoint slice of its job's result.
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        for (std::size_t li = 0; li < jobs[j].spec.line_bytes.size();
             ++li) {
            pool->submit([&jobs, &resolved, &results, j, li] {
                obs::Span span("sweep.line", "sim");
                sweepLineSize(resolved[j], jobs[j].spec, li, results[j]);
            });
        }
    }
    pool->wait();
    return results;
}

} // namespace spikesim::sim
