#ifndef SPIKESIM_SIM_REPLAY_HH
#define SPIKESIM_SIM_REPLAY_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/instrumented.hh"
#include "mem/streambuf.hh"
#include "mem/threec.hh"
#include "support/histogram.hh"
#include "trace/trace.hh"

/**
 * @file
 * Trace replay under a code layout: turns the recorded block trace into
 * fetch-address streams and feeds per-CPU cache simulators. This is the
 * paper's methodology — record the instruction trace once, then replay
 * it against many cache configurations and binaries (layouts).
 */

namespace spikesim::sim {

/** Which instruction streams to replay. */
enum class StreamFilter {
    AppOnly,
    KernelOnly,
    Combined,
};

/** App/kernel interference matrix (Figure 13). */
struct InterferenceMatrix
{
    /**
     * counts[m][v]: misses by stream m (0 = app, 1 = kernel) that
     * displaced a line owned by v (0 = app, 1 = kernel, 2 = cold fill).
     */
    std::uint64_t counts[2][3] = {{0, 0, 0}, {0, 0, 0}};

    std::uint64_t
    missesBy(int m) const
    {
        return counts[m][0] + counts[m][1] + counts[m][2];
    }
};

/** Result of a line-granular instruction cache replay. */
struct ICacheReplayResult
{
    std::uint64_t accesses = 0; ///< line fetches
    std::uint64_t misses = 0;
    std::uint64_t app_misses = 0;
    std::uint64_t kernel_misses = 0;
    InterferenceMatrix interference;
};

/** Result of a word-granular instrumented replay (Figures 9-11). */
struct WordStats
{
    support::Histogram words_used;
    support::Histogram word_reuse;
    support::Log2Histogram lifetimes;
    double unused_word_fraction = 0.0;
    std::uint64_t misses = 0;

    WordStats() : words_used(65), word_reuse(16), lifetimes(32) {}
};

/** Full-hierarchy replay result (Figures 14-15). */
struct HierarchyReplayResult
{
    mem::HierarchyStats total;
    std::vector<mem::HierarchyStats> per_cpu;
    std::uint64_t instrs = 0; ///< dynamic instructions replayed
    /** Fetch discontinuities (taken control transfers): each costs a
     *  fetch bubble on an in-order front end. */
    std::uint64_t fetch_breaks = 0;
};

/** Replays one recorded trace under layouts and cache configs. */
class Replayer
{
  public:
    /**
     * @param trace recorded block/data events.
     * @param app_layout layout of the application image.
     * @param kernel_layout layout of the kernel image (may be null when
     *        only the application stream will be replayed).
     */
    Replayer(const trace::TraceBuffer& trace,
             const core::Layout& app_layout,
             const core::Layout* kernel_layout = nullptr);

    /** The replayer stores references; temporaries would dangle. */
    Replayer(const trace::TraceBuffer&, core::Layout&&,
             const core::Layout* = nullptr) = delete;
    Replayer(trace::TraceBuffer&&, const core::Layout&,
             const core::Layout* = nullptr) = delete;

    /** Number of CPUs observed in the trace. */
    int numCpus() const { return num_cpus_; }

    /** Line-granular replay against per-CPU instruction caches. */
    ICacheReplayResult icache(const mem::CacheConfig& config,
                              StreamFilter filter) const;

    /** Word-granular instrumented replay (histograms merged over
     *  CPUs). */
    WordStats instrumented(const mem::CacheConfig& config,
                           StreamFilter filter,
                           bool flush_at_end = false) const;

    /** Replay against per-CPU stream-buffered instruction caches. */
    mem::StreamBufferStats streamBuffer(const mem::CacheConfig& config,
                                        int num_buffers,
                                        StreamFilter filter) const;

    /** Replay with three-C (compulsory/capacity/conflict) miss
     *  classification, merged over CPUs. */
    mem::ThreeCStats threeCs(const mem::CacheConfig& config,
                             StreamFilter filter) const;

    /**
     * Full hierarchy replay: instruction lines + data lines through
     * L1s and the unified L2 (always the combined stream). With
     * `model_coherence` set, data lines touched by multiple CPUs incur
     * communication misses (TPC-B's hot branch/teller rows migrate
     * between processors) -- the effect that dilutes layout gains on
     * multiprocessors in the paper's section 5.
     */
    HierarchyReplayResult hierarchy(const mem::HierarchyConfig& config,
                                    bool include_data = true,
                                    bool model_coherence = false) const;

    /** Dynamic instructions in the trace for the given filter (under
     *  the replayer's layouts, including materialized branches). */
    std::uint64_t dynamicInstrs(StreamFilter filter) const;

  private:
    const trace::TraceBuffer& trace_;
    const core::Layout& app_;
    const core::Layout* kernel_;
    int num_cpus_ = 1;
};

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_REPLAY_HH
