#ifndef SPIKESIM_SIM_REPLAY_HH
#define SPIKESIM_SIM_REPLAY_HH

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/layout.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/instrumented.hh"
#include "mem/streambuf.hh"
#include "mem/threec.hh"
#include "support/histogram.hh"
#include "trace/trace.hh"

/**
 * @file
 * Trace replay under a code layout: turns the recorded block trace into
 * fetch-address streams and feeds per-CPU cache simulators. This is the
 * paper's methodology — record the instruction trace once, then replay
 * it against many cache configurations and binaries (layouts).
 */

namespace spikesim::sim {

/** Which instruction streams to replay. */
enum class StreamFilter {
    AppOnly,
    KernelOnly,
    Combined,
};

/** Flag bits on a ResolvedRef. */
inline constexpr std::uint8_t kRefRunBreak = 1;

/**
 * One trace event resolved through a layout: the byte range its block
 * occupies, the CPU that fetched it, and which stream owns it.
 * Resolving the trace once and replaying the flat vector is what lets
 * one pass feed many cache configurations. The instruction count of a
 * block ref is bytes / program::kInstrBytes (layouts place blocks at
 * blockSize * kInstrBytes bytes, so the two are locked together).
 * kRefRunBreak marks refs where another image's block event took this
 * CPU's fetch unit since the previous ref — a filtered-out kernel
 * entry breaks a sequential run even when the addresses abut.
 */
struct ResolvedRef
{
    std::uint64_t addr = 0;
    std::uint32_t bytes = 0;
    std::uint8_t cpu = 0;
    mem::Owner owner = mem::Owner::App; ///< App/Kernel text, or Data
    std::uint8_t flags = 0;
};

/** One data reference, kept in global trace order: the coherence model
 *  (Replayer::hierarchy with model_coherence) depends on the cross-CPU
 *  interleaving of data events, unlike every cache simulator. */
struct ResolvedDataRef
{
    std::uint64_t addr = 0; ///< byte address of the referenced word
    std::uint8_t cpu = 0;
};

/**
 * A trace pre-resolved through one (app, kernel) layout pair,
 * partitioned by CPU. Every cache simulator's state is per-CPU, so a
 * replay of cpuRefs(c) on its own thread is bit-identical to the
 * interleaved scalar walk — the parallel replay engine (sim/engine.hh)
 * rests on exactly this. When resolved with include_data, each CPU's
 * slice also carries that CPU's data refs (owner == Data) interleaved
 * in trace order, because a CPU's private L2 sees its instruction and
 * data streams in exactly that order; data_refs additionally keeps the
 * global data-event order for the coherence pass.
 */
struct ResolvedTrace
{
    /** Refs grouped by CPU; within one CPU's slice, trace order. */
    std::vector<ResolvedRef> refs;
    /** Partition offsets: CPU c owns [cpu_begin[c], cpu_begin[c+1]). */
    std::vector<std::size_t> cpu_begin;
    /** Data references in global trace order (include_data only). */
    std::vector<ResolvedDataRef> data_refs;
    int num_cpus = 1;
    /** Filtered block events, including zero-sized blocks. */
    std::uint64_t instr_events = 0;
    /** Dynamic instructions: sum of block sizes over filtered events
     *  (what Replayer::dynamicInstrs walks the raw trace for). */
    std::uint64_t instrs = 0;

    std::span<const ResolvedRef>
    cpuRefs(int cpu) const
    {
        if (cpu < 0 || cpu + 1 >= static_cast<int>(cpu_begin.size()))
            return {};
        const std::size_t b = cpu_begin[static_cast<std::size_t>(cpu)];
        const std::size_t e =
            cpu_begin[static_cast<std::size_t>(cpu) + 1];
        return std::span<const ResolvedRef>(refs).subspan(b, e - b);
    }
};

/** Column form of ResolvedTrace; defined in sim/soa.hh. */
struct ResolvedTraceSoA;

/**
 * A cache-geometry sweep: the cross product of sizes x line sizes x
 * associativities. Every combination must be a valid CacheConfig.
 */
struct SweepSpec
{
    std::vector<std::uint32_t> size_bytes;
    std::vector<std::uint32_t> line_bytes;
    std::vector<std::uint32_t> assocs{1};

    /** Empty when every combination is consistent, else a complaint. */
    std::string check() const;

    /** Number of (size, line, assoc) combinations. */
    std::size_t
    numConfigs() const
    {
        return size_bytes.size() * line_bytes.size() * assocs.size();
    }
};

/**
 * Hit/miss counts for every configuration of a SweepSpec, produced by
 * the single-pass stack-distance engine. Counts are aggregated over
 * CPUs (each CPU simulates its own cache, as in Replayer::icache).
 */
class SweepResult
{
  public:
    SweepResult() = default;
    explicit SweepResult(SweepSpec spec);

    const SweepSpec& spec() const { return spec_; }

    /** Line fetches for the given line size (size/assoc-independent). */
    std::uint64_t accesses(std::uint32_t line_bytes) const;

    std::uint64_t misses(std::uint32_t size_bytes,
                         std::uint32_t line_bytes,
                         std::uint32_t assoc) const;

    std::uint64_t
    misses(const mem::CacheConfig& config) const
    {
        return misses(config.size_bytes, config.line_bytes, config.assoc);
    }

    std::uint64_t
    hits(std::uint32_t size_bytes, std::uint32_t line_bytes,
         std::uint32_t assoc) const
    {
        return accesses(line_bytes) -
               misses(size_bytes, line_bytes, assoc);
    }

  private:
    friend void sweepLineSize(const ResolvedTrace&, const SweepSpec&,
                              std::size_t, SweepResult&);
    friend void sweepAllLines(const ResolvedTrace&, const SweepSpec&,
                              SweepResult&);

    std::size_t lineIndex(std::uint32_t line_bytes) const;
    std::size_t index(std::size_t si, std::size_t li,
                      std::size_t ai) const;

    SweepSpec spec_;
    std::vector<std::uint64_t> accesses_; ///< per line-size index
    std::vector<std::uint64_t> misses_;   ///< [li][si][ai], line-major
    // Dimension-value -> index maps, built once by the constructor so
    // the accessors (called per table cell by the benches) don't
    // re-scan the spec vectors on every lookup.
    std::unordered_map<std::uint32_t, std::size_t> size_index_;
    std::unordered_map<std::uint32_t, std::size_t> line_index_;
    std::unordered_map<std::uint32_t, std::size_t> assoc_index_;
};

/**
 * Run the single-pass sweep for one line size of the spec, filling that
 * line's slice of `out`. Distinct line indices touch disjoint slices,
 * so concurrent calls on the same result are safe — the parallel sweep
 * executor (sim/sweep.hh) relies on this.
 */
void sweepLineSize(const ResolvedTrace& trace, const SweepSpec& spec,
                   std::size_t line_index, SweepResult& out);

/**
 * Run the sweep for every line size of the spec in ONE pass over the
 * resolved trace. Equivalent to calling sweepLineSize for each line
 * index, but the per-reference loop overhead (which dominates for short
 * basic blocks) is paid once instead of once per line size. This is the
 * serial fast path; the parallel executor uses sweepLineSize so line
 * sizes can run on different threads.
 */
void sweepAllLines(const ResolvedTrace& trace, const SweepSpec& spec,
                   SweepResult& out);

/** App/kernel interference matrix (Figure 13). */
struct InterferenceMatrix
{
    /**
     * counts[m][v]: misses by stream m (0 = app, 1 = kernel) that
     * displaced a line owned by v (0 = app, 1 = kernel, 2 = cold fill).
     */
    std::uint64_t counts[2][3] = {{0, 0, 0}, {0, 0, 0}};

    std::uint64_t
    missesBy(int m) const
    {
        return counts[m][0] + counts[m][1] + counts[m][2];
    }
};

/** Result of a line-granular instruction cache replay. */
struct ICacheReplayResult
{
    std::uint64_t accesses = 0; ///< line fetches
    std::uint64_t misses = 0;
    std::uint64_t app_misses = 0;
    std::uint64_t kernel_misses = 0;
    InterferenceMatrix interference;
};

/** Result of a word-granular instrumented replay (Figures 9-11). */
struct WordStats
{
    support::Histogram words_used;
    support::Histogram word_reuse;
    support::Log2Histogram lifetimes;
    double unused_word_fraction = 0.0;
    std::uint64_t misses = 0;

    WordStats() : words_used(65), word_reuse(16), lifetimes(32) {}
};

/**
 * Geometry of a standalone iTLB replay (the TLB rows of Figure 14
 * without simulating the caches around it). One TLB access is made per
 * fetched line of `fetch_bytes`, matching how MemoryHierarchy consults
 * its iTLB once per L1I line fetch — with fetch_bytes equal to the
 * hierarchy's L1I line size the miss counts coincide.
 */
struct ITlbSpec
{
    std::uint32_t entries = 64;
    std::uint32_t page_bytes = 8 * 1024;
    std::uint32_t fetch_bytes = 64;
};

/**
 * Result of a standalone iTLB replay (summed over per-CPU TLBs):
 * accesses are line-granular TLB lookups. The shared access/miss shape
 * directly — an iTLB has no refinement beyond hit or miss.
 */
using ITlbReplayResult = support::AccessStats;

/** Full-hierarchy replay result (Figures 14-15). */
struct HierarchyReplayResult
{
    mem::HierarchyStats total;
    std::vector<mem::HierarchyStats> per_cpu;
    std::uint64_t instrs = 0; ///< dynamic instructions replayed
    /** Fetch discontinuities (taken control transfers): each costs a
     *  fetch bubble on an in-order front end. */
    std::uint64_t fetch_breaks = 0;
};

/** Replays one recorded trace under layouts and cache configs. */
class Replayer
{
  public:
    /**
     * @param trace recorded block/data events.
     * @param app_layout layout of the application image.
     * @param kernel_layout layout of the kernel image (may be null when
     *        only the application stream will be replayed).
     */
    Replayer(const trace::TraceBuffer& trace,
             const core::Layout& app_layout,
             const core::Layout* kernel_layout = nullptr);

    /** The replayer stores references; temporaries would dangle. */
    Replayer(const trace::TraceBuffer&, core::Layout&&,
             const core::Layout* = nullptr) = delete;
    Replayer(trace::TraceBuffer&&, const core::Layout&,
             const core::Layout* = nullptr) = delete;

    /** Number of CPUs observed in the trace. */
    int numCpus() const { return num_cpus_; }

    const trace::TraceBuffer& trace() const { return trace_; }
    const core::Layout& app() const { return app_; }
    /** May be null (application-only replays). */
    const core::Layout* kernel() const { return kernel_; }

    /** Line-granular replay against per-CPU instruction caches. */
    ICacheReplayResult icache(const mem::CacheConfig& config,
                              StreamFilter filter) const;

    /**
     * Resolve the filtered trace through the layouts once: every block
     * event becomes a flat (addr, bytes, cpu, owner) record, grouped
     * by CPU (see ResolvedTrace). Zero-sized blocks are dropped from
     * the refs but still counted in instr_events/instrs. Data events
     * are dropped unless `include_data` is set, in which case they
     * appear both in the per-CPU slices (owner == Data) and in
     * data_refs in global order.
     */
    ResolvedTrace resolve(StreamFilter filter,
                          bool include_data = false) const;

    /**
     * Resolve straight into the column (SoA) form consumed by the
     * kernel replay paths, skipping the AoS intermediate and its
     * transpose. Field-for-field identical to toSoA(resolve(...)) —
     * the fuzz in tests/replay_parallel_test.cc pins that — with every
     * column and data_refs sized exactly from the first counting pass
     * (no growth reallocation). resolve() remains the differential
     * oracle.
     */
    ResolvedTraceSoA resolveSoA(StreamFilter filter,
                                bool include_data = false) const;

    /**
     * Single-pass cache sweep: resolves the trace once and prices every
     * configuration of the spec via per-set LRU stack distances
     * (mem::LruStackSim). Miss counts are bit-identical to running
     * icache() once per configuration, at a fraction of the cost; only
     * the owner/interference attribution is unavailable (use the
     * per-config path for Figure 13 style studies).
     */
    SweepResult icacheSweep(const SweepSpec& spec,
                            StreamFilter filter) const;

    /** Word-granular instrumented replay (histograms merged over
     *  CPUs). */
    WordStats instrumented(const mem::CacheConfig& config,
                           StreamFilter filter,
                           bool flush_at_end = false) const;

    /** Replay against per-CPU stream-buffered instruction caches. */
    mem::StreamBufferStats streamBuffer(const mem::CacheConfig& config,
                                        int num_buffers,
                                        StreamFilter filter) const;

    /** Replay with three-C (compulsory/capacity/conflict) miss
     *  classification, merged over CPUs. */
    mem::ThreeCStats threeCs(const mem::CacheConfig& config,
                             StreamFilter filter) const;

    /** Standalone iTLB replay against per-CPU TLBs (line-granular
     *  lookups at spec.fetch_bytes). */
    ITlbReplayResult itlb(const ITlbSpec& spec,
                          StreamFilter filter) const;

    /**
     * Full hierarchy replay: instruction lines + data lines through
     * L1s and the unified L2 (always the combined stream). With
     * `model_coherence` set, data lines touched by multiple CPUs incur
     * communication misses (TPC-B's hot branch/teller rows migrate
     * between processors) -- the effect that dilutes layout gains on
     * multiprocessors in the paper's section 5.
     */
    HierarchyReplayResult hierarchy(const mem::HierarchyConfig& config,
                                    bool include_data = true,
                                    bool model_coherence = false) const;

    /** Dynamic instructions in the trace for the given filter (under
     *  the replayer's layouts, including materialized branches). */
    std::uint64_t dynamicInstrs(StreamFilter filter) const;

  private:
    /** Per-CPU ref counts (and data-event total) for one (filter,
     *  include_data) key — the sizing product of resolveSoA's counting
     *  pass. A pure function of the immutable trace and layouts, so it
     *  is computed once and memoized: benches and multi-family suites
     *  resolve the same stream repeatedly, and the counting walk is
     *  ~15% of the resolve phase. */
    struct ResolveCounts
    {
        std::vector<std::size_t> count;
        std::size_t n_data = 0;
    };

    const ResolveCounts& countsFor(StreamFilter filter,
                                   bool include_data) const;

    const trace::TraceBuffer& trace_;
    const core::Layout& app_;
    const core::Layout* kernel_;
    int num_cpus_ = 1;
    mutable std::mutex counts_mu_;
    /** Memo slots indexed filter * 2 + include_data. */
    mutable std::array<std::optional<ResolveCounts>, 6> counts_memo_;
};

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_REPLAY_HH
