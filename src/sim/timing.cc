#include "sim/timing.hh"

namespace spikesim::sim {

PlatformParams
PlatformParams::alpha21264()
{
    PlatformParams p;
    p.name = "21264 (64KB, 2-way)";
    p.hierarchy.l1i = {64 * 1024, 64, 2};
    p.hierarchy.l1d = {64 * 1024, 64, 2};
    p.hierarchy.l2 = {4 * 1024 * 1024, 64, 1}; // board cache
    p.hierarchy.itlb_entries = 128;
    p.cpi_base = 1.0;
    p.l2_hit_cycles = 20.0;
    p.mem_cycles = 120.0;
    p.itlb_cycles = 40.0;
    p.clock_ghz = 0.667;
    return p;
}

PlatformParams
PlatformParams::alpha21164()
{
    PlatformParams p;
    p.name = "21164 (8KB, 1-way)";
    p.hierarchy.l1i = {8 * 1024, 32, 1};
    p.hierarchy.l1d = {8 * 1024, 32, 1};
    p.hierarchy.l2 = {2 * 1024 * 1024, 64, 1}; // 2MB direct board cache
    p.hierarchy.itlb_entries = 48;
    p.cpi_base = 1.0;
    p.l2_hit_cycles = 10.0; // on 300MHz parts the relative gap is lower
    p.mem_cycles = 60.0;
    p.itlb_cycles = 25.0;
    p.clock_ghz = 0.3;
    return p;
}

PlatformParams
PlatformParams::sim21364()
{
    PlatformParams p;
    p.name = "21364-sim (SimOS, 1GHz)";
    p.hierarchy.l1i = {64 * 1024, 64, 2};
    p.hierarchy.l1d = {64 * 1024, 64, 2};
    p.hierarchy.l2 = {1536 * 1024, 64, 6};
    p.hierarchy.itlb_entries = 64;
    p.cpi_base = 1.0;
    p.l2_hit_cycles = 12.0; // 12ns at 1GHz
    p.mem_cycles = 80.0;    // local memory
    p.itlb_cycles = 30.0;
    p.clock_ghz = 1.0;
    return p;
}

CycleBreakdown
cycleBreakdown(const mem::HierarchyStats& stats, std::uint64_t instrs,
               const PlatformParams& platform,
               std::uint64_t fetch_breaks)
{
    CycleBreakdown b;
    b.base = static_cast<double>(instrs) * platform.cpi_base;
    b.fetch_break = static_cast<double>(fetch_breaks) *
                    platform.fetch_break_cycles;
    b.l2_hit = static_cast<double>(stats.l1i.misses +
                                   stats.l1d.misses) *
               platform.l2_hit_cycles;
    b.memory = static_cast<double>(stats.l2i.misses +
                                   stats.l2d.misses) *
               platform.mem_cycles;
    b.itlb = static_cast<double>(stats.itlb_misses) *
             platform.itlb_cycles;
    b.remote = static_cast<double>(stats.comm_misses) *
               platform.remote_cycles;
    return b;
}

std::uint64_t
nonIdleCycles(const mem::HierarchyStats& stats, std::uint64_t instrs,
              const PlatformParams& platform,
              std::uint64_t fetch_breaks)
{
    // CycleBreakdown::total() accumulates in the same order these
    // terms were always summed, so the result is bit-identical to the
    // pre-breakdown implementation.
    return static_cast<std::uint64_t>(
        cycleBreakdown(stats, instrs, platform, fetch_breaks).total());
}

} // namespace spikesim::sim
