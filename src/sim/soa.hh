#ifndef SPIKESIM_SIM_SOA_HH
#define SPIKESIM_SIM_SOA_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sim/replay.hh"

/**
 * @file
 * Structure-of-arrays resolved trace: the same CPU-partitioned record
 * stream as sim::ResolvedTrace, but with addr/bytes/owner/flags stored
 * as separate contiguous columns. The replay hot loops consume one or
 * two of the four fields per family (the i-cache kernels read addr and
 * bytes and only branch on owner), so streaming a packed 8-byte addr
 * column instead of striding 24-byte ResolvedRef structs keeps the
 * loads dense, lets the hardware prefetcher see plain unit-stride
 * streams, and gives the SIMD kernels (sim/kernels.hh) contiguous
 * lanes to load from.
 *
 * The conversion is a by-construction bijection on the fields: every
 * SoA replay result is bit-identical to the AoS walk because the
 * per-CPU record sequences are byte-for-byte the same values in the
 * same order. tests/replay_parallel_test.cc fuzzes exactly that claim
 * against the scalar Replayer oracles for all seven families.
 */

namespace spikesim::sim {

namespace detail {
/** madvise(MADV_HUGEPAGE) where available; no-op elsewhere. */
void adviseHugePages(void* p, std::size_t bytes) noexcept;
} // namespace detail

/**
 * Allocator that default-initializes on vector::resize, leaving
 * trivial element types uninitialized. The resolve paths size each
 * column exactly from the ref counts and then write every slot, so
 * plain std::vector's value-init would memset 100+ MB of fresh pages
 * only for the fill pass to touch them all a second time — on this
 * class of trace that is a full third of the resolve phase.
 *
 * Columns of 2 MB and up are additionally allocated 2 MB-aligned and
 * advised MADV_HUGEPAGE: a 10M-ref trace needs ~35k 4 KB pages per
 * resolve, and both the first-touch fill and every subsequent kernel
 * stream over the columns pay the fault/TLB cost. With huge pages the
 * same trace is ~70 mappings. A no-op where THP or madvise is absent.
 */
template <class T>
struct ColumnAlloc : std::allocator<T>
{
    static constexpr std::size_t kHugeBytes = 2ull << 20;

    template <class U>
    struct rebind
    {
        using other = ColumnAlloc<U>;
    };

    T*
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (bytes < kHugeBytes)
            return std::allocator<T>::allocate(n);
        void* p = ::operator new(bytes, std::align_val_t(kHugeBytes));
        detail::adviseHugePages(p, bytes);
        return static_cast<T*>(p);
    }

    void
    deallocate(T* p, std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (bytes < kHugeBytes) {
            std::allocator<T>::deallocate(p, n);
            return;
        }
        ::operator delete(static_cast<void*>(p),
                          std::align_val_t(kHugeBytes));
    }

    template <class U>
    void
    construct(U* p) noexcept
    {
        ::new (static_cast<void*>(p)) U;
    }
    template <class U, class... Args>
    void
    construct(U* p, Args&&... args)
    {
        ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
    }
};

/** One resolved-trace column (uninitialized-resize vector). */
template <class T>
using Column = std::vector<T, ColumnAlloc<T>>;

/**
 * Column view of a ResolvedTrace. Owns its columns (the source trace
 * may be dropped after conversion); data_refs is copied verbatim for
 * the hierarchy coherence pass, which needs the global event order.
 */
struct ResolvedTraceSoA
{
    Column<std::uint64_t> addr;
    Column<std::uint32_t> bytes;
    Column<std::uint8_t> owner; ///< mem::Owner as raw uint8
    Column<std::uint8_t> flags; ///< kRefRunBreak etc.
    /** Partition offsets: CPU c owns [cpu_begin[c], cpu_begin[c+1]). */
    std::vector<std::size_t> cpu_begin;
    /** Data references in global trace order (include_data only). */
    std::vector<ResolvedDataRef> data_refs;
    int num_cpus = 1;
    std::uint64_t instr_events = 0;
    std::uint64_t instrs = 0;

    std::size_t size() const { return addr.size(); }

    /** [begin, end) column index range owned by `cpu`. */
    std::pair<std::size_t, std::size_t>
    cpuRange(int cpu) const
    {
        if (cpu < 0 || cpu + 1 >= static_cast<int>(cpu_begin.size()))
            return {0, 0};
        return {cpu_begin[static_cast<std::size_t>(cpu)],
                cpu_begin[static_cast<std::size_t>(cpu) + 1]};
    }
};

/** Transpose a resolved trace into columns (one linear pass). */
ResolvedTraceSoA toSoA(const ResolvedTrace& trace);

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_SOA_HH
