#ifndef SPIKESIM_SIM_SOA_HH
#define SPIKESIM_SIM_SOA_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sim/replay.hh"

/**
 * @file
 * Structure-of-arrays resolved trace: the same CPU-partitioned record
 * stream as sim::ResolvedTrace, but with addr/bytes/owner/flags stored
 * as separate contiguous columns. The replay hot loops consume one or
 * two of the four fields per family (the i-cache kernels read addr and
 * bytes and only branch on owner), so streaming a packed 8-byte addr
 * column instead of striding 24-byte ResolvedRef structs keeps the
 * loads dense, lets the hardware prefetcher see plain unit-stride
 * streams, and gives the SIMD kernels (sim/kernels.hh) contiguous
 * lanes to load from.
 *
 * The conversion is a by-construction bijection on the fields: every
 * SoA replay result is bit-identical to the AoS walk because the
 * per-CPU record sequences are byte-for-byte the same values in the
 * same order. tests/replay_parallel_test.cc fuzzes exactly that claim
 * against the scalar Replayer oracles for all seven families.
 */

namespace spikesim::sim {

/**
 * Column view of a ResolvedTrace. Owns its columns (the source trace
 * may be dropped after conversion); data_refs is copied verbatim for
 * the hierarchy coherence pass, which needs the global event order.
 */
struct ResolvedTraceSoA
{
    std::vector<std::uint64_t> addr;
    std::vector<std::uint32_t> bytes;
    std::vector<std::uint8_t> owner; ///< mem::Owner as raw uint8
    std::vector<std::uint8_t> flags; ///< kRefRunBreak etc.
    /** Partition offsets: CPU c owns [cpu_begin[c], cpu_begin[c+1]). */
    std::vector<std::size_t> cpu_begin;
    /** Data references in global trace order (include_data only). */
    std::vector<ResolvedDataRef> data_refs;
    int num_cpus = 1;
    std::uint64_t instr_events = 0;
    std::uint64_t instrs = 0;

    std::size_t size() const { return addr.size(); }

    /** [begin, end) column index range owned by `cpu`. */
    std::pair<std::size_t, std::size_t>
    cpuRange(int cpu) const
    {
        if (cpu < 0 || cpu + 1 >= static_cast<int>(cpu_begin.size()))
            return {0, 0};
        return {cpu_begin[static_cast<std::size_t>(cpu)],
                cpu_begin[static_cast<std::size_t>(cpu) + 1]};
    }
};

/** Transpose a resolved trace into columns (one linear pass). */
ResolvedTraceSoA toSoA(const ResolvedTrace& trace);

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_SOA_HH
