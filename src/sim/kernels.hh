#ifndef SPIKESIM_SIM_KERNELS_HH
#define SPIKESIM_SIM_KERNELS_HH

#include <cstddef>

#include "mem/cache.hh"
#include "sim/soa.hh"

/**
 * @file
 * Throughput replay kernels over the SoA resolved trace, plus the
 * runtime SIMD dispatch that picks between them.
 *
 * Two implementations of the fused i-cache config-column kernel exist
 * behind one interface:
 *
 *  - scalar (kernels.cc): branch-lean reference implementation, built
 *    with the project's default flags. This path runs on any x86-64 /
 *    any architecture and is the differential ground truth — the fuzz
 *    in tests/replay_parallel_test.cc pins it (and the AVX2 path) to
 *    the per-config scalar Replayer oracle bit for bit.
 *
 *  - AVX2 (kernels_avx2.cc): same algorithm with vector probes — the
 *    direct-mapped tag tables of a config chunk are probed with a
 *    256-bit gather+compare across four configurations at once, and
 *    4/8-way sets use vector tag compare plus conditional-move LRU age
 *    updates. The TU is compiled with -mavx2 only when the compiler
 *    supports the flag (no global -march change), and is only entered
 *    when the host CPU reports AVX2, so the binary still runs on
 *    non-AVX2 hosts through the scalar path.
 *
 * Both kernels share their state layout and outer walk via
 * kernels_detail.hh (one template, two probe traits), which is what
 * makes "bit-identical by construction" a structural property rather
 * than a testing aspiration: the only code that differs is the probe
 * arithmetic, and that computes the same integers.
 *
 * Dispatch: SimdMode::Auto consults the SPIKESIM_SIMD environment
 * variable (strictly "0" or "1"; anything else is a fatal user error),
 * then falls back to runtime CPU detection. Benches expose the same
 * choice as a --simd 0|1 flag, which wins over the environment.
 */

namespace spikesim::sim {

/** Kernel selection for the SoA replay entry points. */
enum class SimdMode {
    Auto = 0, ///< SPIKESIM_SIMD env if set, else hardware detection
    Scalar,   ///< force the scalar kernels (any host)
    Simd,     ///< force the AVX2 kernels (fatal if unavailable)
};

/** True when the AVX2 kernel TU was compiled into this binary. */
bool simdKernelsCompiled();

/** True when the AVX2 kernels can run here (compiled + CPU support). */
bool simdAvailable();

/**
 * Strict SPIKESIM_SIMD parse: unset/empty -> Auto, "0" -> Scalar,
 * "1" -> Simd; anything else is a fatal configuration error.
 */
SimdMode simdModeFromEnv();

/**
 * Resolve a mode to the final kernel choice (true = AVX2). Scalar and
 * Simd are explicit caller requests (e.g. a --simd flag) and win over
 * the environment; Auto defers to simdModeFromEnv(), then to
 * simdAvailable(). Requesting Simd on a host that cannot run it is a
 * fatal user error, never a silent fallback.
 */
bool resolveSimd(SimdMode mode);

/** "avx2" or "scalar" — for banners, manifests and JSON artifacts. */
const char* simdKernelName(bool simd);

namespace detail {

/**
 * One (cpu, config-chunk) cell of a fused i-cache replay: walk the
 * CPU's SoA column once, feeding configs [k0, k1); results land in
 * out[0 .. k1-k0), fully overwritten (not accumulated).
 */
struct IcacheShard
{
    const ResolvedTraceSoA* soa = nullptr;
    int cpu = 0;
    const mem::CacheConfig* configs = nullptr;
    std::size_t k0 = 0;
    std::size_t k1 = 0;
    ICacheReplayResult* out = nullptr;
};

void icacheShardScalar(const IcacheShard& shard);
void icacheShardAvx2(const IcacheShard& shard); ///< AVX2 TU only

} // namespace detail

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_KERNELS_HH
