#ifndef SPIKESIM_SIM_KERNELS_HH
#define SPIKESIM_SIM_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "mem/cache.hh"
#include "mem/itlb.hh"
#include "mem/streambuf.hh"
#include "mem/threec.hh"
#include "sim/soa.hh"
#include "support/histogram.hh"

/**
 * @file
 * Throughput replay kernels over the SoA resolved trace, plus the
 * runtime SIMD dispatch that picks between them.
 *
 * Three implementations of each config-column kernel family exist
 * behind one interface:
 *
 *  - scalar (kernels.cc): branch-lean reference implementation, built
 *    with the project's default flags. This path runs on any host and
 *    is the differential ground truth — the fuzz in
 *    tests/replay_parallel_test.cc pins it (and the vector paths) to
 *    the per-config scalar Replayer oracle bit for bit.
 *
 *  - AVX2 (kernels_avx2.cc): run-coalescing walk with gather-free
 *    direct-mapped probes. Consecutive same-owner instruction refs are
 *    merged into maximal contiguous byte runs; within a run each
 *    line-size group probes its fewest-set tag table with contiguous
 *    256-bit loads compared against an iota of line numbers (the slots
 *    of consecutive lines are consecutive until the index mask wraps),
 *    two line-size groups interleaved per pass for ILP. 4/8-way sets
 *    use vector tag compare plus conditional-move LRU age updates. The
 *    TU is compiled with -mavx2 only when the compiler supports the
 *    flag (no global -march change) and is only entered when the host
 *    CPU reports AVX2.
 *
 *  - AVX-512 (kernels_avx512.cc): the same run-coalescing walk with
 *    512-bit probes (eight lines per compare via compare-to-mask).
 *    Gated the same way behind -mavx512f and cpuHasAvx512f().
 *
 * All kernels share their state layout and outer walk via
 * kernels_detail.hh / kernels_vec.hh (one template, per-width probe
 * traits), which is what makes "bit-identical by construction" a
 * structural property rather than a testing aspiration: the only code
 * that differs is the probe arithmetic, and that computes the same
 * integers.
 *
 * Dispatch: SimdMode::Auto consults the SPIKESIM_SIMD environment
 * variable (strictly "0", "1" or "2"; anything else is a fatal user
 * error). When neither a flag nor the environment decides, a one-time
 * calibration replay times every runnable kernel on a tiny synthetic
 * trace and the fastest wins; the choice and its reason are exposed via
 * KernelChoice so benches can record them in run manifests. Benches
 * expose the same choice as a --simd 0|1|2 flag, which wins over the
 * environment. Forcing a kernel the host cannot run is always fatal,
 * never a silent fallback.
 */

namespace spikesim::sim {

/** Kernel selection request for the SoA replay entry points. */
enum class SimdMode {
    Auto = 0, ///< SPIKESIM_SIMD env if set, else calibration
    Scalar,   ///< force the scalar kernels (any host)
    Simd,     ///< force the AVX2 kernels (fatal if unavailable)
    Avx512,   ///< force the AVX-512 kernels (fatal if unavailable)
};

/** The concrete kernel implementation a replay call will run. */
enum class KernelKind {
    Scalar = 0,
    Avx2,
    Avx512,
};

/** Resolved dispatch decision plus a human-readable provenance note. */
struct KernelChoice
{
    KernelKind kind = KernelKind::Scalar;
    std::string reason; ///< e.g. "--simd flag", "SPIKESIM_SIMD=1",
                        ///< "auto-calibrated: avx512 1.4x vs scalar"
};

/** True when the AVX2 kernel TU was compiled into this binary. */
bool simdKernelsCompiled();

/** True when the AVX2 kernels can run here (compiled + CPU support). */
bool simdAvailable();

/** True when the AVX-512 kernel TU was compiled into this binary. */
bool avx512KernelsCompiled();

/** True when the AVX-512 kernels can run here (compiled + CPU). */
bool avx512Available();

/**
 * Strict SPIKESIM_SIMD parse: unset/empty -> Auto, "0" -> Scalar,
 * "1" -> Simd, "2" -> Avx512; anything else is a fatal configuration
 * error.
 */
SimdMode simdModeFromEnv();

/**
 * Resolve a mode to the final kernel choice. Scalar/Simd/Avx512 are
 * explicit caller requests (e.g. a --simd flag) and win over the
 * environment; Auto defers to simdModeFromEnv(), and when that is also
 * Auto, to a one-time calibration replay that times every runnable
 * kernel and picks the fastest (cached for the process lifetime).
 * Requesting a kernel the host cannot run is a fatal user error, never
 * a silent fallback.
 */
KernelChoice resolveKernel(SimdMode mode);

/** Provenance of the Auto-mode calibration replay. */
struct CalibrationInfo
{
    bool ran = false; ///< a timing replay actually ran
    /** "synthetic" or "real-slice" (seedCalibrationTrace was used). */
    std::string source = "synthetic";
    /** Reference count of the calibration trace that was timed. */
    std::uint64_t sample_refs = 0;
};

/**
 * Ground the Auto-mode calibration on a slice of a real resolved trace
 * instead of the synthetic one: the first `max_refs` references (single
 * CPU) are copied and the next calibration replay times the kernels on
 * them. Re-seeding invalidates any cached calibration, so call this
 * before the first resolveKernel(Auto). The synthetic trace remains the
 * fallback whenever no seed was provided.
 */
void seedCalibrationTrace(const ResolvedTraceSoA& soa,
                          std::size_t max_refs = 32 * 1024);

/** Provenance of the most recent calibration (ran=false if none). */
CalibrationInfo calibrationInfo();

/** "scalar", "avx2" or "avx512" — for banners, manifests, JSON. */
const char* kernelName(KernelKind kind);

namespace detail {

/**
 * One (cpu, config-chunk) cell of a fused i-cache replay: walk the
 * CPU's SoA column once, feeding configs [k0, k1); results land in
 * out[0 .. k1-k0), fully overwritten (not accumulated).
 */
struct IcacheShard
{
    const ResolvedTraceSoA* soa = nullptr;
    int cpu = 0;
    const mem::CacheConfig* configs = nullptr;
    std::size_t k0 = 0;
    std::size_t k1 = 0;
    ICacheReplayResult* out = nullptr;
};

/** One (cpu, config-chunk) cell of a fused three-C replay. */
struct ThreeCShard
{
    const ResolvedTraceSoA* soa = nullptr;
    int cpu = 0;
    const mem::CacheConfig* configs = nullptr;
    std::size_t k0 = 0;
    std::size_t k1 = 0;
    mem::ThreeCStats* out = nullptr;
};

/** One (cpu, spec-chunk) cell of a fused iTLB replay. */
struct ITlbShard
{
    const ResolvedTraceSoA* soa = nullptr;
    int cpu = 0;
    const ITlbSpec* specs = nullptr;
    std::size_t k0 = 0;
    std::size_t k1 = 0;
    ITlbReplayResult* out = nullptr;
};

/**
 * Per-config output of one instrumented-replay shard cell. Histograms
 * are default-sized like sim::WordStats; the kernel replaces them with
 * correctly-sized ones for the config's line geometry.
 */
struct InstrShardOut
{
    support::Histogram words_used{65};
    support::Histogram word_reuse{16};
    support::Log2Histogram lifetimes{32};
    std::uint64_t misses = 0;
    /** Lines retired (= word_reuse sample count / words-per-line). */
    std::uint64_t samples = 0;
    double unused_word_fraction = 0.0;
};

/** One (cpu, config-chunk) cell of a fused instrumented replay. */
struct InstrShard
{
    const ResolvedTraceSoA* soa = nullptr;
    int cpu = 0;
    const mem::CacheConfig* configs = nullptr;
    std::size_t k0 = 0;
    std::size_t k1 = 0;
    bool flush_at_end = false;
    InstrShardOut* out = nullptr;
};

/** One (cpu, config-chunk) cell of a fused stream-buffer replay. */
struct StreamBufShard
{
    const ResolvedTraceSoA* soa = nullptr;
    int cpu = 0;
    const mem::CacheConfig* configs = nullptr;
    std::size_t k0 = 0;
    std::size_t k1 = 0;
    int num_buffers = 0;
    mem::StreamBufferStats* out = nullptr;
};

void icacheShardScalar(const IcacheShard& shard);
void icacheShardAvx2(const IcacheShard& shard);   ///< AVX2 TU only
void icacheShardAvx512(const IcacheShard& shard); ///< AVX-512 TU only

void threeCShardScalar(const ThreeCShard& shard);
void threeCShardAvx2(const ThreeCShard& shard);   ///< AVX2 TU only
void threeCShardAvx512(const ThreeCShard& shard); ///< AVX-512 TU only

/**
 * The iTLB family reduces to an exact fully-associative LRU bound over
 * pages (see kernels_detail.hh); there is no profitable vector form,
 * so one scalar implementation serves every KernelKind.
 */
void iTlbShard(const ITlbShard& shard);

/**
 * The instrumented family is dominated by per-word histogram updates
 * with serial dependences (timestamps, saturating counters); there is
 * no profitable vector form, so one scalar implementation — built on
 * the same run-coalescing line-span walk as the throughput kernels —
 * serves every KernelKind.
 */
void instrShard(const InstrShard& shard);

void streamBufShardScalar(const StreamBufShard& shard);
void streamBufShardAvx2(const StreamBufShard& shard);   ///< AVX2 TU
void streamBufShardAvx512(const StreamBufShard& shard); ///< AVX-512 TU

/** Dispatch one shard to the kernel implementation for `kind`. */
void icacheShardRun(KernelKind kind, const IcacheShard& shard);
void threeCShardRun(KernelKind kind, const ThreeCShard& shard);
void iTlbShardRun(KernelKind kind, const ITlbShard& shard);
void instrShardRun(KernelKind kind, const InstrShard& shard);
void streamBufShardRun(KernelKind kind, const StreamBufShard& shard);

} // namespace detail

} // namespace spikesim::sim

#endif // SPIKESIM_SIM_KERNELS_HH
