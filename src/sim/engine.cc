#include "sim/engine.hh"

#include <algorithm>
#include <unordered_map>

#include "mem/itlb.hh"
#include "obs/registry.hh"
#include "obs/tracing.hh"
#include "support/panic.hh"

namespace spikesim::sim {

namespace {

/**
 * Shard a fused multi-config replay over the pool: one task per
 * (CPU, config-chunk). With no pool, run the fully fused serial path —
 * each CPU's slice is walked once feeding every configuration. With a
 * pool, CPUs are the natural shards (bit-exact, see engine.hh); when
 * threads outnumber trace CPUs the config list is additionally split
 * into chunks so the extra threads have work. Each extra chunk re-walks
 * that CPU's refs, so never split further than the thread count
 * warrants. fn(cpu, k0, k1) must touch only state owned by its
 * (cpu, [k0,k1)) cell; wait() is the merge barrier.
 */
inline std::size_t
shardRefCount(const ResolvedTrace& trace, int cpu)
{
    return trace.cpuRefs(cpu).size();
}

inline std::size_t
shardRefCount(const ResolvedTraceSoA& trace, int cpu)
{
    const auto [b, e] = trace.cpuRange(cpu);
    return e - b;
}

template <typename Trace, typename Fn>
void
forEachShard(const Trace& trace, std::size_t n_cfg,
             support::ThreadPool* pool, const Fn& fn)
{
    if (n_cfg == 0)
        return;
    const int n_cpu = trace.num_cpus;
    // Bulk-add the replayed ref count once per shard walk — never
    // per-ref inside the fused loops, which must stay counter-free.
    static obs::Counter& c_refs = obs::counter("sim.replay.refs");
    static obs::Counter& c_shards = obs::counter("sim.replay.shards");
    if (pool == nullptr) {
        for (int c = 0; c < n_cpu; ++c) {
            obs::Span span("replay.shard", "sim");
            fn(c, std::size_t{0}, n_cfg);
            c_refs.add(shardRefCount(trace, c));
            c_shards.add(1);
        }
        return;
    }
    const std::size_t threads =
        static_cast<std::size_t>(pool->numThreads());
    const std::size_t cpus = static_cast<std::size_t>(n_cpu);
    std::size_t chunks = 1;
    if (n_cfg > 1 && threads > cpus)
        chunks = std::min(n_cfg, (threads + cpus - 1) / cpus);
    for (int c = 0; c < n_cpu; ++c) {
        for (std::size_t i = 0; i < chunks; ++i) {
            const std::size_t k0 = n_cfg * i / chunks;
            const std::size_t k1 = n_cfg * (i + 1) / chunks;
            if (k0 == k1)
                continue;
            pool->submit([&fn, &trace, c, k0, k1] {
                obs::Span span("replay.shard", "sim");
                fn(c, k0, k1);
                c_refs.add(shardRefCount(trace, c));
                c_shards.add(1);
            });
        }
    }
    pool->wait();
}

} // namespace

std::vector<ICacheReplayResult>
replayICache(const ResolvedTrace& trace,
             std::span<const mem::CacheConfig> configs,
             support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<ICacheReplayResult> partial(n_cfg * n_cpu);

    forEachShard(trace, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::SetAssocCache> caches;
        caches.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            caches.emplace_back(configs[k]);
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data)
                continue;
            const std::uint64_t end = r.addr + r.bytes;
            const int m = r.owner == mem::Owner::App ? 0 : 1;
            for (std::size_t k = k0; k < k1; ++k) {
                ICacheReplayResult& res =
                    partial[k * n_cpu + static_cast<std::size_t>(cpu)];
                const std::uint64_t line = configs[k].line_bytes;
                mem::SetAssocCache& cache = caches[k - k0];
                for (std::uint64_t a = r.addr & ~(line - 1); a < end;
                     a += line) {
                    ++res.accesses;
                    mem::AccessResult ar = cache.access(a, r.owner);
                    if (!ar.hit) {
                        ++res.misses;
                        if (r.owner == mem::Owner::App)
                            ++res.app_misses;
                        else
                            ++res.kernel_misses;
                        int v = ar.victim == mem::Owner::App      ? 0
                                : ar.victim == mem::Owner::Kernel ? 1
                                                                  : 2;
                        ++res.interference.counts[m][v];
                    }
                }
            }
        }
    });

    std::vector<ICacheReplayResult> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        for (std::size_t c = 0; c < n_cpu; ++c) {
            const ICacheReplayResult& p = partial[k * n_cpu + c];
            out[k].accesses += p.accesses;
            out[k].misses += p.misses;
            out[k].app_misses += p.app_misses;
            out[k].kernel_misses += p.kernel_misses;
            for (int m = 0; m < 2; ++m)
                for (int v = 0; v < 3; ++v)
                    out[k].interference.counts[m][v] +=
                        p.interference.counts[m][v];
        }
    }
    return out;
}

std::vector<mem::ThreeCStats>
replayThreeCs(const ResolvedTrace& trace,
              std::span<const mem::CacheConfig> configs,
              support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<mem::ThreeCStats> partial(n_cfg * n_cpu);

    forEachShard(trace, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::ClassifyingICache> caches;
        caches.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            caches.emplace_back(configs[k]);
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data)
                continue;
            const std::uint64_t end = r.addr + r.bytes;
            for (std::size_t k = k0; k < k1; ++k) {
                const std::uint64_t line = configs[k].line_bytes;
                mem::ClassifyingICache& cache = caches[k - k0];
                for (std::uint64_t a = r.addr & ~(line - 1); a < end;
                     a += line)
                    cache.access(a);
            }
        }
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                caches[k - k0].stats();
    });

    std::vector<mem::ThreeCStats> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k)
        for (std::size_t c = 0; c < n_cpu; ++c)
            out[k] += partial[k * n_cpu + c];
    return out;
}

std::vector<mem::StreamBufferStats>
replayStreamBuffer(const ResolvedTrace& trace,
                   std::span<const mem::CacheConfig> configs,
                   int num_buffers, support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<mem::StreamBufferStats> partial(n_cfg * n_cpu);

    forEachShard(trace, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::StreamBufferICache> caches;
        caches.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            caches.emplace_back(configs[k], num_buffers);
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data)
                continue;
            const std::uint64_t end = r.addr + r.bytes;
            for (std::size_t k = k0; k < k1; ++k) {
                const std::uint64_t line = configs[k].line_bytes;
                mem::StreamBufferICache& cache = caches[k - k0];
                for (std::uint64_t a = r.addr & ~(line - 1); a < end;
                     a += line)
                    cache.fetchLine(a);
            }
        }
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                caches[k - k0].stats();
    });

    std::vector<mem::StreamBufferStats> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k)
        for (std::size_t c = 0; c < n_cpu; ++c)
            out[k] += partial[k * n_cpu + c];
    return out;
}

namespace {

/** Per-(config, CPU) instrumented partial: histogram copies plus the
 *  two scalars the CPU-ordered unused-fraction merge needs. */
struct InstrPartial
{
    WordStats stats; ///< histograms copy-assigned from the cache
    std::uint64_t samples = 0;
    double unused_frac = 0.0;
};

} // namespace

std::vector<WordStats>
replayInstrumented(const ResolvedTrace& trace,
                   std::span<const mem::CacheConfig> configs,
                   bool flush_at_end, support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<InstrPartial> partial(n_cfg * n_cpu);

    forEachShard(trace, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::InstrumentedICache> caches;
        caches.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            caches.emplace_back(configs[k]);
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data)
                continue;
            const std::uint32_t words = r.bytes / 4;
            for (std::size_t k = k0; k < k1; ++k) {
                mem::InstrumentedICache& cache = caches[k - k0];
                for (std::uint32_t w = 0; w < words; ++w)
                    cache.fetchWord(r.addr + w * 4ull, r.owner);
            }
        }
        for (std::size_t k = k0; k < k1; ++k) {
            mem::InstrumentedICache& cache = caches[k - k0];
            if (flush_at_end)
                cache.flush();
            InstrPartial& p =
                partial[k * n_cpu + static_cast<std::size_t>(cpu)];
            p.stats.words_used = cache.wordsUsed();
            p.stats.word_reuse = cache.wordReuse();
            p.stats.lifetimes = cache.lifetimes();
            p.stats.misses = cache.misses();
            p.samples = cache.wordReuse().totalSamples();
            p.unused_frac = cache.unusedWordFraction();
        }
    });

    std::vector<WordStats> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        // Replicate the scalar oracle's exact merge, CPU by CPU in
        // ascending order — including its floating-point operation
        // sequence for unused_word_fraction.
        out[k].words_used =
            support::Histogram(configs[k].line_bytes / 4 + 1);
        double fetched = 0.0;
        double unused = 0.0;
        for (std::size_t c = 0; c < n_cpu; ++c) {
            const InstrPartial& p = partial[k * n_cpu + c];
            out[k].words_used.merge(p.stats.words_used);
            out[k].word_reuse.merge(p.stats.word_reuse);
            out[k].lifetimes.merge(p.stats.lifetimes);
            out[k].misses += p.stats.misses;
            fetched += static_cast<double>(p.samples);
            unused += p.unused_frac * static_cast<double>(p.samples);
        }
        out[k].unused_word_fraction =
            fetched == 0.0 ? 0.0 : unused / fetched;
    }
    return out;
}

std::vector<ITlbReplayResult>
replayITlb(const ResolvedTrace& trace, std::span<const ITlbSpec> specs,
           support::ThreadPool* pool)
{
    const std::size_t n_cfg = specs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<ITlbReplayResult> partial(n_cfg * n_cpu);

    forEachShard(trace, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::ITlb> tlbs;
        tlbs.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            tlbs.emplace_back(specs[k].entries, specs[k].page_bytes);
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data)
                continue;
            const std::uint64_t end = r.addr + r.bytes;
            for (std::size_t k = k0; k < k1; ++k) {
                const std::uint64_t line = specs[k].fetch_bytes;
                ITlbReplayResult& res =
                    partial[k * n_cpu + static_cast<std::size_t>(cpu)];
                mem::ITlb& tlb = tlbs[k - k0];
                for (std::uint64_t a = r.addr & ~(line - 1); a < end;
                     a += line) {
                    ++res.accesses;
                    tlb.access(a);
                }
            }
        }
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)].misses =
                tlbs[k - k0].misses();
    });

    std::vector<ITlbReplayResult> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        for (std::size_t c = 0; c < n_cpu; ++c) {
            out[k].accesses += partial[k * n_cpu + c].accesses;
            out[k].misses += partial[k * n_cpu + c].misses;
        }
    }
    return out;
}

std::vector<HierarchyReplayResult>
replayHierarchy(const ResolvedTrace& trace,
                std::span<const mem::HierarchyConfig> configs,
                bool model_coherence, support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<mem::HierarchyStats> partial(n_cfg * n_cpu);
    std::vector<std::uint64_t> instrs_cpu(n_cpu, 0);
    std::vector<std::uint64_t> breaks_cpu(n_cpu, 0);
    std::vector<std::uint64_t> comm(n_cfg, 0);

    // The coherence map is the one piece of cross-CPU state: line
    // migration counting needs the *global* data-event order. It is
    // independent of every cache, so it runs as its own pass per
    // config over data_refs — sharded by config, exact by order.
    if (model_coherence && !trace.data_refs.empty()) {
        auto coherence = [&](std::size_t k) {
            const std::uint64_t dline = configs[k].l1d.line_bytes;
            std::unordered_map<std::uint64_t, std::uint8_t> data_owner;
            std::uint64_t misses = 0;
            for (const ResolvedDataRef& d : trace.data_refs) {
                const std::uint64_t line = d.addr & ~(dline - 1);
                auto [it, fresh] = data_owner.try_emplace(line, d.cpu);
                if (!fresh && it->second != d.cpu) {
                    ++misses;
                    it->second = d.cpu;
                }
            }
            comm[k] = misses;
        };
        if (pool == nullptr) {
            for (std::size_t k = 0; k < n_cfg; ++k)
                coherence(k);
        } else {
            // Copy the lambda: it dies with this block, but the tasks
            // may still be queued (its captures all outlive the wait).
            for (std::size_t k = 0; k < n_cfg; ++k)
                pool->submit([coherence, k] { coherence(k); });
            // forEachShard's wait() below is the barrier for these too.
        }
    }

    forEachShard(trace, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::MemoryHierarchy> cpus;
        cpus.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            cpus.emplace_back(configs[k]);
        std::uint64_t expected = ~0ULL;
        std::uint64_t instrs = 0;
        std::uint64_t breaks = 0;
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data) {
                for (std::size_t k = k0; k < k1; ++k) {
                    const std::uint64_t dline =
                        configs[k].l1d.line_bytes;
                    cpus[k - k0].dataLine(r.addr & ~(dline - 1));
                }
                continue;
            }
            const std::uint64_t end = r.addr + r.bytes;
            instrs += r.bytes / program::kInstrBytes;
            if (r.addr != expected)
                ++breaks;
            expected = end;
            for (std::size_t k = k0; k < k1; ++k) {
                const std::uint64_t iline = configs[k].l1i.line_bytes;
                mem::MemoryHierarchy& h = cpus[k - k0];
                for (std::uint64_t a = r.addr & ~(iline - 1); a < end;
                     a += iline)
                    h.fetchLine(a, r.owner);
            }
        }
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                cpus[k - k0].stats();
        // instrs/fetch_breaks are config-independent; only the chunk
        // that owns config 0 writes them, so split chunks don't race.
        if (k0 == 0) {
            instrs_cpu[static_cast<std::size_t>(cpu)] = instrs;
            breaks_cpu[static_cast<std::size_t>(cpu)] = breaks;
        }
    });

    std::vector<HierarchyReplayResult> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        out[k].total.comm_misses = comm[k];
        out[k].per_cpu.reserve(n_cpu);
        for (std::size_t c = 0; c < n_cpu; ++c) {
            const mem::HierarchyStats& s = partial[k * n_cpu + c];
            out[k].per_cpu.push_back(s);
            out[k].total += s;
        }
        for (std::size_t c = 0; c < n_cpu; ++c) {
            out[k].instrs += instrs_cpu[c];
            out[k].fetch_breaks += breaks_cpu[c];
        }
    }
    return out;
}

metrics::SequenceStats
replaySequence(const ResolvedTrace& trace, support::ThreadPool* pool)
{
    const std::size_t n_cpu = static_cast<std::size_t>(trace.num_cpus);
    std::vector<support::Histogram> partial(n_cpu,
                                            support::Histogram(34));

    forEachShard(trace, 1, pool,
                 [&](int cpu, std::size_t, std::size_t) {
        support::Histogram& hist =
            partial[static_cast<std::size_t>(cpu)];
        std::uint64_t expected = ~0ULL;
        std::uint64_t run = 0;
        auto close_run = [&] {
            if (run > 0)
                hist.record(run);
            run = 0;
            expected = ~0ULL;
        };
        for (const ResolvedRef& r : trace.cpuRefs(cpu)) {
            if (r.owner == mem::Owner::Data)
                continue;
            if ((r.flags & kRefRunBreak) != 0 || r.addr != expected)
                close_run();
            run += r.bytes / program::kInstrBytes;
            expected = r.addr + r.bytes;
        }
        close_run();
    });

    metrics::SequenceStats stats;
    for (std::size_t c = 0; c < n_cpu; ++c)
        stats.lengths.merge(partial[c]);
    stats.mean = stats.lengths.mean();
    stats.mean_block_size =
        trace.instr_events == 0
            ? 0.0
            : static_cast<double>(trace.instrs) /
                  static_cast<double>(trace.instr_events);
    return stats;
}

// ---------------------------------------------------------------------
// SoA overloads. The instrumented/hierarchy/sequence walks below are
// the column-major ports of the AoS shard bodies above: identical
// simulator objects, identical per-CPU record order, only the field
// loads differ. The i-cache, three-C, iTLB, and stream-buffer families
// instead dispatch into the throughput kernels (sim/kernels.hh), which
// replace the simulator objects with flat grouped tables.
// ---------------------------------------------------------------------

namespace {

constexpr std::uint8_t kOwnerDataByte =
    static_cast<std::uint8_t>(mem::Owner::Data);

} // namespace

std::vector<ICacheReplayResult>
replayICache(const ResolvedTraceSoA& soa,
             std::span<const mem::CacheConfig> configs, SimdMode mode,
             support::ThreadPool* pool)
{
    // Resolve once, up front: a fatal misconfiguration (forced SIMD on
    // a host without it) must fire before any shard runs, and every
    // shard must use the same kernel.
    const KernelKind kind = resolveKernel(mode).kind;
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<ICacheReplayResult> partial(n_cfg * n_cpu);

    forEachShard(soa, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<ICacheReplayResult> local(k1 - k0);
        detail::IcacheShard shard;
        shard.soa = &soa;
        shard.cpu = cpu;
        shard.configs = configs.data();
        shard.k0 = k0;
        shard.k1 = k1;
        shard.out = local.data();
        detail::icacheShardRun(kind, shard);
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                local[k - k0];
    });

    std::vector<ICacheReplayResult> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        for (std::size_t c = 0; c < n_cpu; ++c) {
            const ICacheReplayResult& p = partial[k * n_cpu + c];
            out[k].accesses += p.accesses;
            out[k].misses += p.misses;
            out[k].app_misses += p.app_misses;
            out[k].kernel_misses += p.kernel_misses;
            for (int m = 0; m < 2; ++m)
                for (int v = 0; v < 3; ++v)
                    out[k].interference.counts[m][v] +=
                        p.interference.counts[m][v];
        }
    }
    return out;
}

std::vector<mem::ThreeCStats>
replayThreeCs(const ResolvedTraceSoA& soa,
              std::span<const mem::CacheConfig> configs, SimdMode mode,
              support::ThreadPool* pool)
{
    const KernelKind kind = resolveKernel(mode).kind;
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<mem::ThreeCStats> partial(n_cfg * n_cpu);

    forEachShard(soa, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::ThreeCStats> local(k1 - k0);
        detail::ThreeCShard shard;
        shard.soa = &soa;
        shard.cpu = cpu;
        shard.configs = configs.data();
        shard.k0 = k0;
        shard.k1 = k1;
        shard.out = local.data();
        detail::threeCShardRun(kind, shard);
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                local[k - k0];
    });

    std::vector<mem::ThreeCStats> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k)
        for (std::size_t c = 0; c < n_cpu; ++c)
            out[k] += partial[k * n_cpu + c];
    return out;
}

std::vector<mem::StreamBufferStats>
replayStreamBuffer(const ResolvedTraceSoA& soa,
                   std::span<const mem::CacheConfig> configs,
                   int num_buffers, SimdMode mode,
                   support::ThreadPool* pool)
{
    const KernelKind kind = resolveKernel(mode).kind;
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<mem::StreamBufferStats> partial(n_cfg * n_cpu);

    forEachShard(soa, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::StreamBufferStats> local(k1 - k0);
        detail::StreamBufShard shard;
        shard.soa = &soa;
        shard.cpu = cpu;
        shard.configs = configs.data();
        shard.k0 = k0;
        shard.k1 = k1;
        shard.num_buffers = num_buffers;
        shard.out = local.data();
        detail::streamBufShardRun(kind, shard);
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                local[k - k0];
    });

    std::vector<mem::StreamBufferStats> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k)
        for (std::size_t c = 0; c < n_cpu; ++c)
            out[k] += partial[k * n_cpu + c];
    return out;
}

std::vector<WordStats>
replayInstrumented(const ResolvedTraceSoA& soa,
                   std::span<const mem::CacheConfig> configs,
                   bool flush_at_end, support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<InstrPartial> partial(n_cfg * n_cpu);

    forEachShard(soa, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<detail::InstrShardOut> local(k1 - k0);
        detail::InstrShard shard;
        shard.soa = &soa;
        shard.cpu = cpu;
        shard.configs = configs.data();
        shard.k0 = k0;
        shard.k1 = k1;
        shard.flush_at_end = flush_at_end;
        shard.out = local.data();
        detail::instrShardRun(KernelKind::Scalar, shard);
        for (std::size_t k = k0; k < k1; ++k) {
            detail::InstrShardOut& o = local[k - k0];
            InstrPartial& p =
                partial[k * n_cpu + static_cast<std::size_t>(cpu)];
            p.stats.words_used = std::move(o.words_used);
            p.stats.word_reuse = std::move(o.word_reuse);
            p.stats.lifetimes = std::move(o.lifetimes);
            p.stats.misses = o.misses;
            p.samples = o.samples;
            p.unused_frac = o.unused_word_fraction;
        }
    });

    std::vector<WordStats> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        out[k].words_used =
            support::Histogram(configs[k].line_bytes / 4 + 1);
        double fetched = 0.0;
        double unused = 0.0;
        for (std::size_t c = 0; c < n_cpu; ++c) {
            const InstrPartial& p = partial[k * n_cpu + c];
            out[k].words_used.merge(p.stats.words_used);
            out[k].word_reuse.merge(p.stats.word_reuse);
            out[k].lifetimes.merge(p.stats.lifetimes);
            out[k].misses += p.stats.misses;
            fetched += static_cast<double>(p.samples);
            unused += p.unused_frac * static_cast<double>(p.samples);
        }
        out[k].unused_word_fraction =
            fetched == 0.0 ? 0.0 : unused / fetched;
    }
    return out;
}

std::vector<ITlbReplayResult>
replayITlb(const ResolvedTraceSoA& soa, std::span<const ITlbSpec> specs,
           SimdMode mode, support::ThreadPool* pool)
{
    const KernelKind kind = resolveKernel(mode).kind;
    const std::size_t n_cfg = specs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<ITlbReplayResult> partial(n_cfg * n_cpu);

    forEachShard(soa, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<ITlbReplayResult> local(k1 - k0);
        detail::ITlbShard shard;
        shard.soa = &soa;
        shard.cpu = cpu;
        shard.specs = specs.data();
        shard.k0 = k0;
        shard.k1 = k1;
        shard.out = local.data();
        detail::iTlbShardRun(kind, shard);
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                local[k - k0];
    });

    std::vector<ITlbReplayResult> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        for (std::size_t c = 0; c < n_cpu; ++c) {
            out[k].accesses += partial[k * n_cpu + c].accesses;
            out[k].misses += partial[k * n_cpu + c].misses;
        }
    }
    return out;
}

std::vector<HierarchyReplayResult>
replayHierarchy(const ResolvedTraceSoA& soa,
                std::span<const mem::HierarchyConfig> configs,
                bool model_coherence, support::ThreadPool* pool)
{
    const std::size_t n_cfg = configs.size();
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<mem::HierarchyStats> partial(n_cfg * n_cpu);
    std::vector<std::uint64_t> instrs_cpu(n_cpu, 0);
    std::vector<std::uint64_t> breaks_cpu(n_cpu, 0);
    std::vector<std::uint64_t> comm(n_cfg, 0);

    if (model_coherence && !soa.data_refs.empty()) {
        auto coherence = [&](std::size_t k) {
            const std::uint64_t dline = configs[k].l1d.line_bytes;
            std::unordered_map<std::uint64_t, std::uint8_t> data_owner;
            std::uint64_t misses = 0;
            for (const ResolvedDataRef& d : soa.data_refs) {
                const std::uint64_t line = d.addr & ~(dline - 1);
                auto [it, fresh] = data_owner.try_emplace(line, d.cpu);
                if (!fresh && it->second != d.cpu) {
                    ++misses;
                    it->second = d.cpu;
                }
            }
            comm[k] = misses;
        };
        if (pool == nullptr) {
            for (std::size_t k = 0; k < n_cfg; ++k)
                coherence(k);
        } else {
            for (std::size_t k = 0; k < n_cfg; ++k)
                pool->submit([coherence, k] { coherence(k); });
            // forEachShard's wait() below is the barrier for these too.
        }
    }

    forEachShard(soa, n_cfg, pool,
                 [&](int cpu, std::size_t k0, std::size_t k1) {
        std::vector<mem::MemoryHierarchy> cpus;
        cpus.reserve(k1 - k0);
        for (std::size_t k = k0; k < k1; ++k)
            cpus.emplace_back(configs[k]);
        std::uint64_t expected = ~0ULL;
        std::uint64_t instrs = 0;
        std::uint64_t breaks = 0;
        const auto [begin, end_i] = soa.cpuRange(cpu);
        for (std::size_t i = begin; i < end_i; ++i) {
            const std::uint64_t addr = soa.addr[i];
            if (soa.owner[i] == kOwnerDataByte) {
                for (std::size_t k = k0; k < k1; ++k) {
                    const std::uint64_t dline =
                        configs[k].l1d.line_bytes;
                    cpus[k - k0].dataLine(addr & ~(dline - 1));
                }
                continue;
            }
            const std::uint64_t end = addr + soa.bytes[i];
            instrs += soa.bytes[i] / program::kInstrBytes;
            if (addr != expected)
                ++breaks;
            expected = end;
            const mem::Owner owner =
                static_cast<mem::Owner>(soa.owner[i]);
            for (std::size_t k = k0; k < k1; ++k) {
                const std::uint64_t iline = configs[k].l1i.line_bytes;
                mem::MemoryHierarchy& h = cpus[k - k0];
                for (std::uint64_t a = addr & ~(iline - 1); a < end;
                     a += iline)
                    h.fetchLine(a, owner);
            }
        }
        for (std::size_t k = k0; k < k1; ++k)
            partial[k * n_cpu + static_cast<std::size_t>(cpu)] =
                cpus[k - k0].stats();
        if (k0 == 0) {
            instrs_cpu[static_cast<std::size_t>(cpu)] = instrs;
            breaks_cpu[static_cast<std::size_t>(cpu)] = breaks;
        }
    });

    std::vector<HierarchyReplayResult> out(n_cfg);
    for (std::size_t k = 0; k < n_cfg; ++k) {
        out[k].total.comm_misses = comm[k];
        out[k].per_cpu.reserve(n_cpu);
        for (std::size_t c = 0; c < n_cpu; ++c) {
            const mem::HierarchyStats& s = partial[k * n_cpu + c];
            out[k].per_cpu.push_back(s);
            out[k].total += s;
        }
        for (std::size_t c = 0; c < n_cpu; ++c) {
            out[k].instrs += instrs_cpu[c];
            out[k].fetch_breaks += breaks_cpu[c];
        }
    }
    return out;
}

metrics::SequenceStats
replaySequence(const ResolvedTraceSoA& soa, support::ThreadPool* pool)
{
    const std::size_t n_cpu = static_cast<std::size_t>(soa.num_cpus);
    std::vector<support::Histogram> partial(n_cpu,
                                            support::Histogram(34));

    forEachShard(soa, 1, pool,
                 [&](int cpu, std::size_t, std::size_t) {
        support::Histogram& hist =
            partial[static_cast<std::size_t>(cpu)];
        std::uint64_t expected = ~0ULL;
        std::uint64_t run = 0;
        auto close_run = [&] {
            if (run > 0)
                hist.record(run);
            run = 0;
            expected = ~0ULL;
        };
        const auto [begin, end_i] = soa.cpuRange(cpu);
        for (std::size_t i = begin; i < end_i; ++i) {
            if (soa.owner[i] == kOwnerDataByte)
                continue;
            const std::uint64_t addr = soa.addr[i];
            if ((soa.flags[i] & kRefRunBreak) != 0 || addr != expected)
                close_run();
            run += soa.bytes[i] / program::kInstrBytes;
            expected = addr + soa.bytes[i];
        }
        close_run();
    });

    metrics::SequenceStats stats;
    for (std::size_t c = 0; c < n_cpu; ++c)
        stats.lengths.merge(partial[c]);
    stats.mean = stats.lengths.mean();
    stats.mean_block_size =
        soa.instr_events == 0
            ? 0.0
            : static_cast<double>(soa.instrs) /
                  static_cast<double>(soa.instr_events);
    return stats;
}

} // namespace spikesim::sim
