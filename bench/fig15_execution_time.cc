/**
 * @file
 * Figure 15: relative execution time (non-idle cycles) of each
 * optimization combination on two hardware-like platforms and the
 * SimOS-simulated system, plus the paper's kernel-layout experiment
 * (optimizing the OS text buys little).
 */

#include "bench/common.hh"
#include "sim/timing.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 15",
                  "relative execution time (non-idle cycles, %)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout kernel = w.kernelLayout();

    const std::vector<sim::PlatformParams> platforms{
        sim::PlatformParams::alpha21264(),
        sim::PlatformParams::alpha21164(),
        sim::PlatformParams::sim21364(),
    };

    std::vector<mem::HierarchyConfig> hierarchies;
    for (const auto& p : platforms)
        hierarchies.push_back(p.hierarchy);

    // Baseline cycles per platform.
    std::vector<std::uint64_t> base_cycles;
    {
        core::Layout base = w.appLayout(core::OptCombo::Base);
        bench::BenchReplay rep(w, base, &kernel);
        auto col = rep.hierarchyColumn(hierarchies);
        for (std::size_t i = 0; i < platforms.size(); ++i)
            base_cycles.push_back(
                sim::nonIdleCycles(col[i].total, col[i].instrs,
                                   platforms[i], col[i].fetch_breaks));
    }

    std::vector<std::string> headers{"optimizations"};
    for (const auto& p : platforms)
        headers.push_back(p.name);
    support::TablePrinter table(headers);
    double speedup_21264 = 1.0, speedup_21164 = 1.0, speedup_sim = 1.0;
    for (core::OptCombo combo : core::allCombos()) {
        core::Layout layout = w.appLayout(combo);
        bench::BenchReplay rep(w, layout, &kernel);
        auto col = rep.hierarchyColumn(hierarchies);
        std::vector<std::string> row{core::comboName(combo)};
        for (std::size_t i = 0; i < platforms.size(); ++i) {
            const auto& h = col[i];
            std::uint64_t cycles = sim::nonIdleCycles(
                h.total, h.instrs, platforms[i], h.fetch_breaks);
            double rel = static_cast<double>(cycles) /
                         static_cast<double>(base_cycles[i]);
            // Keyed on the combo *name* so appended combos don't shift
            // which row feeds the summary.
            if (std::string(core::comboName(combo)) == "all") {
                if (i == 0)
                    speedup_21264 = 1.0 / rel;
                if (i == 1)
                    speedup_21164 = 1.0 / rel;
                if (i == 2)
                    speedup_sim = 1.0 / rel;
            }
            row.push_back(support::fixed(rel * 100.0, 1) + "%");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";

    // Kernel-layout experiment: optimize the OS text too.
    {
        core::Layout app = w.appLayout(core::OptCombo::All);
        core::Layout kopt = w.kernelOptimizedLayout();
        const sim::PlatformParams& p = platforms[2];
        bench::BenchReplay plain(w, app, &kernel);
        bench::BenchReplay with_kopt(w, app, &kopt);
        auto h0 = plain.hierarchy(p.hierarchy);
        auto h1 = with_kopt.hierarchy(p.hierarchy);
        std::uint64_t c0 =
            sim::nonIdleCycles(h0.total, h0.instrs, p, h0.fetch_breaks);
        std::uint64_t c1 =
            sim::nonIdleCycles(h1.total, h1.instrs, p, h1.fetch_breaks);
        double gain = 1.0 - static_cast<double>(c1) /
                                static_cast<double>(c0);
        std::cout << "optimizing the kernel layout on top of the "
                     "optimized application: "
                  << support::percent(gain) << " additional cycles saved\n\n";
        bench::paperVsMeasured("kernel layout optimization",
                               "~3.5% improvement (small)",
                               support::percent(gain));
    }

    bench::paperVsMeasured(
        "overall execution-time improvement (all optimizations)",
        "1.33x on 21264 and 21164 hardware; 1.37x on the simulated "
        "21364",
        "x" + support::fixed(speedup_21264, 2) + " (21264-like), x" +
            support::fixed(speedup_21164, 2) + " (21164-like), x" +
            support::fixed(speedup_sim, 2) + " (21364-sim)");
    bench::paperVsMeasured(
        "consistency across platforms",
        "similar improvement across three processor generations",
        "compare the three columns of the 'all' row");
    return 0;
}
