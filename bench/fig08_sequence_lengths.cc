/**
 * @file
 * Figure 8: sequentially executed instructions between control breaks
 * -- (a) averages (with the dynamic basic block size for reference),
 * (b) histogram of sequence lengths for base and optimized binaries.
 */

#include "bench/common.hh"
#include "metrics/sequence.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 8", "sequentially executed instructions");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    bench::BenchReplay base_replay(w, base);
    bench::BenchReplay opt_replay(w, opt);
    metrics::SequenceStats sb =
        base_replay.sequence(sim::StreamFilter::AppOnly);
    metrics::SequenceStats so =
        opt_replay.sequence(sim::StreamFilter::AppOnly);

    std::cout << "(a) average sequence lengths\n";
    support::TablePrinter avg({"setup", "average length (instrs)"});
    avg.addRow({"basic block size", support::fixed(sb.mean_block_size, 2)});
    avg.addRow({"base", support::fixed(sb.mean, 2)});
    avg.addRow({"optimized", support::fixed(so.mean, 2)});
    avg.print(std::cout);

    std::cout << "\n(b) sequence length histogram (% of all sequences)\n";
    support::TablePrinter hist({"length", "base", "optimized"});
    for (std::size_t len = 1; len <= 33; ++len) {
        std::string label = len == 33 ? "33+" : std::to_string(len);
        hist.addRow({label, support::percent(sb.lengths.fraction(len)),
                     support::percent(so.lengths.fraction(len))});
    }
    hist.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "average sequence length",
        "7.3 instructions (base) -> over 10 (optimized)",
        support::fixed(sb.mean, 1) + " -> " + support::fixed(so.mean, 1));
    bench::paperVsMeasured(
        "1-instruction sequences",
        "21% of sequences (base) -> 15% (optimized)",
        support::percent(sb.lengths.fraction(1)) + " -> " +
            support::percent(so.lengths.fraction(1)));
    return 0;
}
