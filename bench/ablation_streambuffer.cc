/**
 * @file
 * Stream-buffer ablation (paper section 6): Ranganathan et al. found a
 * 4-element instruction stream buffer effective for database
 * workloads, and the paper conjectures that code layout optimization
 * "can be used to enhance the efficiency of instruction stream buffers
 * by increasing instruction sequence lengths". This bench tests the
 * conjecture: stream-buffer coverage and residual demand misses for
 * the baseline vs optimized binaries.
 */

#include "bench/common.hh"
#include "metrics/sequence.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Stream-buffer ablation",
                  "4-element stream buffers, base vs optimized "
                  "(64KB/64B/2-way L1I)");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);
    mem::CacheConfig l1i{64 * 1024, 64, 2};

    support::TablePrinter table({"binary", "L1 misses", "stream hits",
                                 "demand misses", "coverage",
                                 "seq len"});
    double coverage[2] = {0, 0};
    int i = 0;
    for (const core::Layout* layout : {&base, &opt}) {
        bench::BenchReplay rep(w, *layout);
        mem::StreamBufferStats s =
            rep.streamBuffer(l1i, 4, sim::StreamFilter::AppOnly);
        auto seq = rep.sequence(sim::StreamFilter::AppOnly);
        coverage[i] = s.coverage();
        table.addRow({layout == &base ? "base" : "optimized",
                      support::withCommas(s.l1Misses()),
                      support::withCommas(s.streamHits()),
                      support::withCommas(s.demandMisses()),
                      support::percent(s.coverage()),
                      support::fixed(seq.mean, 1)});
        ++i;
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "stream buffers + code layout",
        "layout should raise stream-buffer effectiveness (longer "
        "sequential runs) — the paper's section 6 conjecture",
        "coverage " + support::percent(coverage[0]) + " (base) -> " +
            support::percent(coverage[1]) + " (optimized)");
    return 0;
}
