/**
 * @file
 * Figure 9: unique words used in a 128-byte cache line before it is
 * replaced (128KB, 4-way instruction cache), base vs optimized.
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 9",
                  "unique word usage before cache replacement "
                  "(128KB/128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    mem::CacheConfig cache{128 * 1024, 128, 4};
    core::Layout base_layout = w.appLayout(core::OptCombo::Base);
    core::Layout opt_layout = w.appLayout(core::OptCombo::All);
    bench::BenchReplay base_rep(w, base_layout);
    bench::BenchReplay opt_rep(w, opt_layout);
    sim::WordStats base =
        base_rep.instrumented(cache, sim::StreamFilter::AppOnly);
    sim::WordStats opt =
        opt_rep.instrumented(cache, sim::StreamFilter::AppOnly);

    support::TablePrinter table({"words used", "base", "optimized"});
    for (std::size_t words = 1; words <= 32; ++words)
        table.addRow({std::to_string(words),
                      support::percent(base.words_used.fraction(words)),
                      support::percent(opt.words_used.fraction(words))});
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "full-line (32 word) use before replacement",
        "optimized uses the full 128B line for over 60% of "
        "replacements; base far lower",
        "base " + support::percent(base.words_used.fraction(32)) +
            ", optimized " +
            support::percent(opt.words_used.fraction(32)));
    return 0;
}
