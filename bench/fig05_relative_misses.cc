/**
 * @file
 * Figure 5: instruction cache misses of the optimized binary relative
 * to the baseline (percent), across cache sizes and line sizes.
 */

#include "bench/common.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 5",
                  "relative misses, optimized/base (%), direct-mapped");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);
    sim::Replayer base_rep(w.buf, base);
    sim::Replayer opt_rep(w.buf, opt);

    support::TablePrinter table(
        {"cache", "16B", "32B", "64B", "128B", "256B"});
    double at64_128 = 0, at128_128 = 0;
    for (std::uint32_t kb : {32, 64, 128, 256, 512}) {
        std::vector<std::string> row{std::to_string(kb) + "KB"};
        for (std::uint32_t line : {16, 32, 64, 128, 256}) {
            mem::CacheConfig cfg{kb * 1024, line, 1};
            auto b = base_rep.icache(cfg, sim::StreamFilter::AppOnly);
            auto o = opt_rep.icache(cfg, sim::StreamFilter::AppOnly);
            double rel = b.misses == 0
                             ? 100.0
                             : 100.0 * static_cast<double>(o.misses) /
                                   static_cast<double>(b.misses);
            if (line == 128 && kb == 64)
                at64_128 = rel;
            if (line == 128 && kb == 128)
                at128_128 = rel;
            row.push_back(support::fixed(rel, 1) + "%");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "application miss reduction at 64-128KB caches",
        "55%-65% fewer misses (relative = 35%-45%)",
        "relative misses " + support::fixed(at64_128, 1) + "% at 64KB, " +
            support::fixed(at128_128, 1) + "% at 128KB (128B lines)");
    bench::paperVsMeasured(
        "trend", "relative gains grow with line size and cache size "
                 "(up to 256KB)",
        "compare rows/columns above");
    return 0;
}
