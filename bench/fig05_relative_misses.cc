/**
 * @file
 * Figure 5: instruction cache misses of the optimized binary relative
 * to the baseline (percent), across cache sizes and line sizes. Both
 * binaries' sweeps run through the single-pass sweep engine in
 * parallel.
 */

#include "bench/common.hh"
#include "sim/sweep.hh"

using namespace spikesim;

int
main(int argc, char** argv)
{
    bench::banner("Figure 5",
                  "relative misses, optimized/base (%), direct-mapped");
    bench::Workload w = bench::runWorkload(argc, argv);
    core::Layout base = w.appLayout(core::OptCombo::Base);
    core::Layout opt = w.appLayout(core::OptCombo::All);

    sim::SweepSpec spec;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        spec.size_bytes.push_back(kb * 1024);
    spec.line_bytes = {16, 32, 64, 128, 256};
    spec.assocs = {1};

    std::vector<sim::SweepJob> jobs{
        {&base, nullptr, sim::StreamFilter::AppOnly, spec, "base"},
        {&opt, nullptr, sim::StreamFilter::AppOnly, spec, "opt"},
    };
    std::vector<sim::SweepResult> results =
        sim::runSweepJobs(w.buf, jobs, w.pool());
    const sim::SweepResult& b = results[0];
    const sim::SweepResult& o = results[1];

    support::TablePrinter table(
        {"cache", "16B", "32B", "64B", "128B", "256B"});
    double at64_128 = 0, at128_128 = 0;
    for (std::uint32_t kb : spec.size_bytes) {
        std::vector<std::string> row{std::to_string(kb / 1024) + "KB"};
        for (std::uint32_t line : spec.line_bytes) {
            std::uint64_t bm = b.misses(kb, line, 1);
            std::uint64_t om = o.misses(kb, line, 1);
            double rel = bm == 0 ? 100.0
                                 : 100.0 * static_cast<double>(om) /
                                       static_cast<double>(bm);
            if (line == 128 && kb == 64 * 1024)
                at64_128 = rel;
            if (line == 128 && kb == 128 * 1024)
                at128_128 = rel;
            row.push_back(support::fixed(rel, 1) + "%");
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "\n";

    bench::paperVsMeasured(
        "application miss reduction at 64-128KB caches",
        "55%-65% fewer misses (relative = 35%-45%)",
        "relative misses " + support::fixed(at64_128, 1) + "% at 64KB, " +
            support::fixed(at128_128, 1) + "% at 128KB (128B lines)");
    bench::paperVsMeasured(
        "trend", "relative gains grow with line size and cache size "
                 "(up to 256KB)",
        "compare rows/columns above");
    return 0;
}
