/**
 * @file
 * Placement-algorithm ablation (paper section 6, related work): the
 * Spike pipeline (chain + fine-grain split + Pettis-Hansen) against
 * the alternatives the paper discusses -- Gloy-style temporal-affinity
 * ordering, Hashemi-style cache-colored placement, classic hot/cold
 * splitting, and the CFA/software-trace-cache layout. All variants
 * share the same chained + split segments so only the *placement*
 * differs.
 */

#include <algorithm>

#include "bench/common.hh"
#include "core/chain.hh"
#include "core/coloring.hh"
#include "core/porder.hh"
#include "core/split.hh"
#include "core/temporal.hh"
#include "opt/hierarchy.hh"

using namespace spikesim;

namespace {

/** Chained, fine-grain-split segments for every procedure. */
std::vector<core::CodeSegment>
splitSegments(const bench::Workload& w)
{
    std::vector<core::CodeSegment> segs;
    for (program::ProcId p = 0; p < w.appProg().numProcs(); ++p) {
        auto order = core::chainBasicBlocks(w.appProg(), p,
                                            w.appProfile());
        auto pieces = core::splitFineGrain(w.appProg(), p, order);
        for (auto& seg : pieces)
            segs.push_back(std::move(seg));
    }
    return segs;
}

core::Layout
makeLayout(const bench::Workload& w, std::vector<core::CodeSegment> segs)
{
    core::AssignOptions opts;
    opts.text_base = w.system->config().app_text_base;
    opts.segment_align = 4;
    return core::Layout(w.appProg(), std::move(segs), opts);
}

void
report(support::TablePrinter& table, const bench::Workload& w,
       const std::string& name, const core::Layout& layout)
{
    bench::BenchReplay rep(w, layout);
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128})
        configs.push_back({kb * 1024, 128, 4});
    auto col = rep.icacheColumn(configs, sim::StreamFilter::AppOnly);
    // Standalone-iTLB misses at base and huge pages, priced through
    // the same fused column path fig14 uses.
    const sim::ITlbSpec tlb_specs[] = {
        {64, 4096, 128},
        {64, 2u * 1024 * 1024, 128},
    };
    auto tlb = rep.itlbColumn(tlb_specs, sim::StreamFilter::AppOnly);
    std::vector<std::string> row{name};
    for (const auto& r : col)
        row.push_back(support::withCommas(r.misses));
    for (const auto& r : tlb)
        row.push_back(support::withCommas(r.misses));
    table.addRow(row);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner("Placement ablation",
                  "Pettis-Hansen vs temporal affinity vs cache "
                  "coloring (chained + split segments; 128B/4-way)");
    bench::Workload w = bench::runWorkload(argc, argv);
    support::TablePrinter table({"placement", "32KB", "64KB", "128KB",
                                 "iTLB 4KB", "iTLB 2MB"});

    // Reference points.
    core::Layout base = w.appLayout(core::OptCombo::Base);
    report(table, w, "base (no optimization)", base);
    core::Layout all = w.appLayout(core::OptCombo::All);
    report(table, w, "Pettis-Hansen (paper: all)", all);

    // Temporal-affinity ordering of the same segments: the graph is
    // built over procedures; segments follow their procedure's slot.
    {
        core::SegmentGraph trg =
            core::buildTemporalGraph(w.appProg(), w.buf);
        std::vector<std::uint32_t> proc_order =
            core::pettisHansenOrder(trg.num_nodes, trg.edges);
        std::vector<core::CodeSegment> segs = splitSegments(w);
        // Stable-bucket the segments by their procedure's rank.
        std::vector<std::uint32_t> rank(w.appProg().numProcs());
        for (std::uint32_t i = 0; i < proc_order.size(); ++i)
            rank[proc_order[i]] = i;
        std::stable_sort(segs.begin(), segs.end(),
                         [&](const core::CodeSegment& a,
                             const core::CodeSegment& b) {
                             return rank[a.proc] < rank[b.proc];
                         });
        core::Layout temporal = makeLayout(w, std::move(segs));
        report(table, w, "temporal affinity (Gloy-style)", temporal);
    }

    // Cache-colored (row-packed) placement of the same segments.
    for (std::uint32_t kb : {32u, 64u}) {
        core::ColoringOptions copts;
        copts.target = {kb * 1024, 128, 1};
        core::Layout colored = makeLayout(
            w, core::colorOrderSegments(w.appProg(), w.appProfile(),
                                        splitSegments(w), copts));
        report(table, w,
               "cache coloring (Hashemi-style, " + std::to_string(kb) +
                   "KB target)",
               colored);
    }

    // The remaining ablations from the pipeline.
    core::Layout hotcold = w.appLayout(core::OptCombo::HotCold);
    report(table, w, "hot/cold split (classic PH)", hotcold);
    core::Layout cfa = w.appLayout(core::OptCombo::Cfa);
    report(table, w, "CFA / software trace cache", cfa);

    // Codestitcher-style distance-bounded hierarchical chain merging
    // over the same chained + split segments (opt/hierarchy.hh): hot
    // chains merged at 64B, then 4KB, then 2MB distance bounds, cold
    // tail appended.
    {
        opt::HierarchyResult hr = opt::hierarchicalOrder(
            w.appProg(), w.appProfile(), splitSegments(w));
        core::Layout hier = makeLayout(w, std::move(hr.segments));
        report(table, w, "hierarchical merge (Codestitcher-style)",
               hier);
    }

    table.print(std::cout);
    std::cout << "\n";
    bench::paperVsMeasured(
        "placement algorithm choice",
        "the paper's related-work position: placement-only variants "
        "underperform the full chain+split+order pipeline on OLTP",
        "compare rows against 'Pettis-Hansen (paper: all)'");
    return 0;
}
