/**
 * @file
 * Headline microbenchmark for the unified parallel replay engine
 * (sim/engine.hh). One multiprocessor trace (4 simulated CPUs) is
 * replayed through every simulator family — i-cache columns with
 * interference attribution, three-C classification, stream buffers,
 * word-granular instrumentation, standalone iTLBs, full hierarchies
 * with the coherence model, sequential-run analysis, and the dynamic
 * instruction count — three ways:
 *
 *   per-config oracle   one scalar Replayer walk per configuration
 *   serial fused        resolve once, engine with no thread pool
 *   parallel fused      resolve once, engine sharded across a pool
 *
 * All three must produce bit-identical results (the process exits
 * non-zero on any divergence, which is what bench_micro_replay_smoke
 * checks in ctest). Timings go to BENCH_replay.json. The
 * fused-vs-per-config ratio is host-independent; the parallel ratio
 * additionally depends on how many hardware threads the host gives the
 * pool (SPIKESIM_THREADS overrides, as in the figure benches).
 *
 * Usage: micro_replay [profile_txns] [trace_txns]
 */

#include <chrono>
#include <cmath>
#include <fstream>

#include "bench/common.hh"
#include "sim/timing.hh"

using namespace spikesim;

namespace {

constexpr int kStreamBuffers = 4;

std::vector<mem::CacheConfig>
icacheConfigs()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        configs.push_back({kb * 1024, 128, 4});
    return configs;
}

std::vector<mem::CacheConfig>
threeCConfigs()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256})
        configs.push_back({kb * 1024, 128, 1});
    return configs;
}

std::vector<mem::CacheConfig>
streamConfigs()
{
    return {{8 * 1024, 32, 1}, {64 * 1024, 32, 2}};
}

std::vector<mem::CacheConfig>
instrConfigs()
{
    return {{64 * 1024, 64, 2}, {64 * 1024, 128, 2}};
}

std::vector<sim::ITlbSpec>
itlbSpecs()
{
    return {{64, 8 * 1024, 64}, {128, 8 * 1024, 64}};
}

std::vector<mem::HierarchyConfig>
hierarchyConfigs()
{
    return {sim::PlatformParams::sim21364().hierarchy,
            sim::PlatformParams::alpha21164().hierarchy};
}

/** Everything one pass over the suite produces, for bit-comparison. */
struct SuiteResults
{
    std::vector<sim::ICacheReplayResult> icache;
    std::vector<mem::ThreeCStats> threec;
    std::vector<mem::StreamBufferStats> sbuf;
    std::vector<sim::WordStats> words;
    std::vector<sim::ITlbReplayResult> itlb;
    std::vector<sim::HierarchyReplayResult> hier;
    metrics::SequenceStats seq;
    std::uint64_t dyn_instrs = 0;
    double seconds = 0;
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

/**
 * Run the full suite. The fused paths charge the resolve passes to
 * their own time — the resolve-once cost is part of what the engine
 * buys (or doesn't) versus re-walking the raw trace per config.
 */
SuiteResults
runSuite(const sim::Replayer& rep, bool fused,
         support::ThreadPool* pool)
{
    using clock = std::chrono::steady_clock;
    const auto icfg = icacheConfigs();
    const auto tcfg = threeCConfigs();
    const auto scfg = streamConfigs();
    const auto wcfg = instrConfigs();
    const auto specs = itlbSpecs();
    const auto hcfg = hierarchyConfigs();
    const auto filter = sim::StreamFilter::Combined;

    SuiteResults r;
    auto t0 = clock::now();
    if (!fused) {
        for (const auto& c : icfg)
            r.icache.push_back(rep.icache(c, filter));
        for (const auto& c : tcfg)
            r.threec.push_back(rep.threeCs(c, filter));
        for (const auto& c : scfg)
            r.sbuf.push_back(
                rep.streamBuffer(c, kStreamBuffers, filter));
        for (const auto& c : wcfg)
            r.words.push_back(rep.instrumented(c, filter));
        for (const auto& s : specs)
            r.itlb.push_back(rep.itlb(s, filter));
        for (const auto& h : hcfg)
            r.hier.push_back(rep.hierarchy(h, true, true));
        r.seq = metrics::sequenceLengths(rep.trace(), rep.app(),
                                         trace::ImageId::App);
        r.dyn_instrs = rep.dynamicInstrs(filter);
    } else {
        sim::ResolvedTrace instr = rep.resolve(filter);
        sim::ResolvedTrace with_data = rep.resolve(filter, true);
        sim::ResolvedTrace app_only =
            rep.resolve(sim::StreamFilter::AppOnly);
        r.icache = sim::replayICache(instr, icfg, pool);
        r.threec = sim::replayThreeCs(instr, tcfg, pool);
        r.sbuf = sim::replayStreamBuffer(instr, scfg, kStreamBuffers,
                                         pool);
        r.words = sim::replayInstrumented(instr, wcfg, false, pool);
        r.itlb = sim::replayITlb(instr, specs, pool);
        r.hier = sim::replayHierarchy(with_data, hcfg, true, pool);
        r.seq = sim::replaySequence(app_only, pool);
        r.dyn_instrs = instr.instrs;
    }
    r.seconds = seconds(t0, clock::now());
    return r;
}

template <typename H>
bool
sameHist(const H& a, const H& b)
{
    if (a.numBuckets() != b.numBuckets())
        return false;
    for (std::size_t i = 0; i < a.numBuckets(); ++i)
        if (a.bucket(i) != b.bucket(i))
            return false;
    return true;
}

bool
sameDouble(double a, double b)
{
    return a == b || (std::isnan(a) && std::isnan(b));
}

bool
sameStats(const mem::HierarchyStats& x, const mem::HierarchyStats& y)
{
    return x.l1i.accesses == y.l1i.accesses &&
           x.l1i.misses == y.l1i.misses &&
           x.l1d.accesses == y.l1d.accesses &&
           x.l1d.misses == y.l1d.misses &&
           x.l2i.accesses == y.l2i.accesses &&
           x.l2i.misses == y.l2i.misses &&
           x.l2d.accesses == y.l2d.accesses &&
           x.l2d.misses == y.l2d.misses &&
           x.itlb_misses == y.itlb_misses &&
           x.comm_misses == y.comm_misses;
}

/** Exit non-zero on the first divergence between two suite runs. */
void
compareSuites(const SuiteResults& a, const SuiteResults& b,
              const char* label)
{
    auto check = [&](bool ok, const char* what) {
        if (ok)
            return;
        std::cerr << "[micro_replay] FAIL: " << what << " differs ("
                  << label << ")\n";
        std::exit(1);
    };

    check(a.icache.size() == b.icache.size(), "icache config count");
    for (std::size_t i = 0; i < a.icache.size(); ++i) {
        const auto& x = a.icache[i];
        const auto& y = b.icache[i];
        check(x.accesses == y.accesses && x.misses == y.misses &&
                  x.app_misses == y.app_misses &&
                  x.kernel_misses == y.kernel_misses,
              "icache counts");
        for (int m = 0; m < 2; ++m)
            for (int v = 0; v < 3; ++v)
                check(x.interference.counts[m][v] ==
                          y.interference.counts[m][v],
                      "interference matrix");
    }

    check(a.threec.size() == b.threec.size(), "threeC config count");
    for (std::size_t i = 0; i < a.threec.size(); ++i) {
        const auto& x = a.threec[i];
        const auto& y = b.threec[i];
        check(x.accesses() == y.accesses() &&
                  x.compulsory == y.compulsory &&
                  x.capacity == y.capacity &&
                  x.conflict == y.conflict,
              "threeC counts");
    }

    check(a.sbuf.size() == b.sbuf.size(), "stream config count");
    for (std::size_t i = 0; i < a.sbuf.size(); ++i) {
        const auto& x = a.sbuf[i];
        const auto& y = b.sbuf[i];
        check(x.accesses() == y.accesses() &&
                  x.l1Misses() == y.l1Misses() &&
                  x.streamHits() == y.streamHits() &&
                  x.demandMisses() == y.demandMisses(),
              "stream buffer counts");
    }

    check(a.words.size() == b.words.size(), "instr config count");
    for (std::size_t i = 0; i < a.words.size(); ++i) {
        const auto& x = a.words[i];
        const auto& y = b.words[i];
        check(sameHist(x.words_used, y.words_used), "words_used");
        check(sameHist(x.word_reuse, y.word_reuse), "word_reuse");
        check(sameHist(x.lifetimes, y.lifetimes), "lifetimes");
        check(sameDouble(x.unused_word_fraction,
                         y.unused_word_fraction),
              "unused_word_fraction");
        check(x.misses == y.misses, "instrumented misses");
    }

    check(a.itlb.size() == b.itlb.size(), "itlb spec count");
    for (std::size_t i = 0; i < a.itlb.size(); ++i)
        check(a.itlb[i].accesses == b.itlb[i].accesses &&
                  a.itlb[i].misses == b.itlb[i].misses,
              "itlb counts");

    check(a.hier.size() == b.hier.size(), "hierarchy config count");
    for (std::size_t i = 0; i < a.hier.size(); ++i) {
        const auto& x = a.hier[i];
        const auto& y = b.hier[i];
        check(sameStats(x.total, y.total), "hierarchy totals");
        check(x.per_cpu.size() == y.per_cpu.size(),
              "hierarchy per-cpu count");
        for (std::size_t c = 0; c < x.per_cpu.size(); ++c)
            check(sameStats(x.per_cpu[c], y.per_cpu[c]),
                  "hierarchy per-cpu stats");
        check(x.instrs == y.instrs && x.fetch_breaks == y.fetch_breaks,
              "hierarchy instrs/fetch_breaks");
    }

    check(sameHist(a.seq.lengths, b.seq.lengths), "sequence lengths");
    check(sameDouble(a.seq.mean, b.seq.mean), "sequence mean");
    check(sameDouble(a.seq.mean_block_size, b.seq.mean_block_size),
          "sequence mean_block_size");
    check(a.dyn_instrs == b.dyn_instrs, "dynamic instrs");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::ObsRun obs(bench::obsOptionsFromEnv(), argc, argv);
    bench::banner("Replay engine microbenchmark",
                  "per-config oracle vs fused vs parallel replay "
                  "(bit-identical)");
    std::uint64_t profile_txns = argc > 1 ? std::atoll(argv[1]) : 400;
    std::uint64_t trace_txns = argc > 2 ? std::atoll(argv[2]) : 300;

    sim::SystemConfig config;
    config.num_cpus = 4;
    sim::System system(config);
    std::cerr << "[micro_replay] 4-cpu system: loading...\n";
    system.setup();
    system.warmup(50);
    sim::System::Profiles profiles =
        system.collectProfiles(profile_txns);
    trace::TraceBuffer buf;
    system.run(trace_txns, buf);

    core::PipelineOptions opts;
    opts.combo = core::OptCombo::All;
    opts.text_base = config.app_text_base;
    core::Layout app =
        core::buildLayout(system.appProg(), profiles.app, opts);
    core::Layout kernel = core::baselineLayout(system.kernelProg(),
                                               config.kernel_text_base);
    sim::Replayer rep(buf, app, &kernel);

    const int threads = std::max(1, bench::threadsFromEnv());
    support::ThreadPool pool(threads);

    std::cerr << "[micro_replay] trace: " << buf.size() << " events, "
              << buf.numCpus() << " cpus; replaying...\n";
    SuiteResults oracle = runSuite(rep, false, nullptr);
    SuiteResults fused = runSuite(rep, true, nullptr);
    SuiteResults parallel = runSuite(rep, true, &pool);

    compareSuites(oracle, fused, "oracle vs serial fused");
    compareSuites(oracle, parallel, "oracle vs parallel fused");

    // The suite total is dominated by the two (unfusable-with-anything
    // -else) hierarchy configs; time the five-config i-cache column on
    // its own: five raw-trace walks plus five layout resolutions vs
    // one resolution and one fused walk. Simulator work is identical
    // either way, so this isolates what resolve amortization buys (or
    // costs — the resolved vector is larger than the raw trace) for
    // one family.
    using clock = std::chrono::steady_clock;
    const auto icfg = icacheConfigs();
    auto t0 = clock::now();
    for (const auto& c : icfg)
        (void)rep.icache(c, sim::StreamFilter::Combined);
    auto t1 = clock::now();
    {
        sim::ResolvedTrace instr =
            rep.resolve(sim::StreamFilter::Combined);
        (void)sim::replayICache(instr, icfg, nullptr);
    }
    auto t2 = clock::now();
    double icache_oracle_s = seconds(t0, t1);
    double icache_fused_s = seconds(t1, t2);
    double icache_speedup = icache_oracle_s / icache_fused_s;

    double fused_speedup = oracle.seconds / fused.seconds;
    double parallel_speedup = fused.seconds / parallel.seconds;
    double end_to_end = oracle.seconds / parallel.seconds;

    std::cout << "trace events:        " << buf.size() << " ("
              << buf.numCpus() << " cpus)\n"
              << "per-config oracle:   " << oracle.seconds << " s\n"
              << "serial fused:        " << fused.seconds << " s\n"
              << "parallel fused:      " << parallel.seconds << " s ("
              << pool.numThreads() << " threads)\n"
              << "fused speedup:       " << fused_speedup << "x\n"
              << "parallel speedup:    " << parallel_speedup << "x\n"
              << "end-to-end speedup:  " << end_to_end << "x\n"
              << "icache column:       " << icache_oracle_s
              << " s per-config, " << icache_fused_s << " s fused ("
              << icache_speedup << "x)\n"
              << "differential check:  PASS (all simulator families "
                 "bit-identical)\n\n";

    std::ofstream json("BENCH_replay.json");
    json << "{\n"
         << "  \"bench\": \"replay\",\n"
         << "  \"trace_events\": " << buf.size() << ",\n"
         << "  \"trace_cpus\": " << buf.numCpus() << ",\n"
         << "  \"oracle_seconds\": " << oracle.seconds << ",\n"
         << "  \"serial_fused_seconds\": " << fused.seconds << ",\n"
         << "  \"parallel_fused_seconds\": " << parallel.seconds
         << ",\n"
         << "  \"parallel_threads\": " << pool.numThreads() << ",\n"
         << "  \"fused_vs_per_config\": " << fused_speedup << ",\n"
         << "  \"parallel_vs_serial_fused\": " << parallel_speedup
         << ",\n"
         << "  \"end_to_end_speedup\": " << end_to_end << ",\n"
         << "  \"icache_column_oracle_seconds\": " << icache_oracle_s
         << ",\n"
         << "  \"icache_column_fused_seconds\": " << icache_fused_s
         << ",\n"
         << "  \"icache_column_fused_speedup\": " << icache_speedup
         << ",\n"
         << "  \"differential_ok\": true\n"
         << "}\n";
    json.close(); // flush before the manifest embeds it
    std::cout << "wrote BENCH_replay.json\n";
    obs.addArtifactFile("BENCH_replay.json");
    return 0;
}
