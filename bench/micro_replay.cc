/**
 * @file
 * Headline microbenchmark for the unified parallel replay engine
 * (sim/engine.hh) and the SoA/SIMD replay kernels (sim/kernels.hh).
 * One multiprocessor trace (4 simulated CPUs) is replayed through
 * every simulator family — i-cache columns with interference
 * attribution, three-C classification, stream buffers, word-granular
 * instrumentation, standalone iTLBs, full hierarchies with the
 * coherence model, sequential-run analysis, and the dynamic
 * instruction count — several ways:
 *
 *   per-config oracle   one scalar Replayer walk per configuration
 *   serial fused        resolve once, AoS engine, no thread pool
 *   parallel fused      resolve once, AoS engine sharded across a pool
 *   soa scalar          direct SoA resolve, scalar kernels forced
 *   soa avx2 / avx512   same, the vector kernels (when runnable here)
 *
 * All paths must produce bit-identical results (the process exits
 * non-zero on any divergence, which is what the ctest smokes check —
 * bench_micro_replay_smoke with default dispatch,
 * bench_micro_replay_scalar_smoke with SPIKESIM_SIMD=0, and
 * bench_micro_replay_avx512_smoke with --simd 2, which exits 77 /
 * SKIP on hosts that cannot run the AVX-512 kernels). `--results-out
 * FILE` additionally dumps every replayed counter in a fixed text
 * format; the bench_micro_replay_identity ctest compares the dump of
 * a forced-scalar run byte-for-byte against an auto-dispatch run.
 *
 * Timed phases, all in BENCH_replay.json:
 *
 *  - resolve_direct vs resolve_transpose: Replayer::resolveSoA
 *    against the PR 6 route (resolve to AoS, then sim::toSoA).
 *  - per-family kernel rows: the three-C, iTLB, and stream-buffer
 *    column replays under each runnable kernel, next to the i-cache
 *    column (the iTLB kernel is FA-LRU-bound, so its rows measure
 *    the grouped flat walk, not vector width).
 *  - the fig04 grid: the paper's 25-configuration direct-mapped
 *    sweep ({32..512}KB x {16..256}B), single-threaded, through the
 *    AoS engine and every runnable SoA kernel.
 *
 * Usage: micro_replay [profile_txns] [trace_txns] [--simd 0|1|2]
 *                     [--skip-unsupported-simd] [--results-out FILE]
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iomanip>

#include "bench/common.hh"
#include "sim/timing.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

constexpr int kStreamBuffers = 4;
constexpr int kGridReps = 3; ///< best-of-N for the grid timings

std::vector<mem::CacheConfig>
icacheConfigs()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        configs.push_back({kb * 1024, 128, 4});
    return configs;
}

/** The paper's Figure 4 grid: 25 direct-mapped configurations. */
std::vector<mem::CacheConfig>
fig04Grid()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        for (std::uint32_t line : {16, 32, 64, 128, 256})
            configs.push_back({kb * 1024, line, 1});
    return configs;
}

std::vector<mem::CacheConfig>
threeCConfigs()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256})
        configs.push_back({kb * 1024, 128, 1});
    return configs;
}

std::vector<mem::CacheConfig>
streamConfigs()
{
    return {{8 * 1024, 32, 1}, {64 * 1024, 32, 2}};
}

std::vector<mem::CacheConfig>
instrConfigs()
{
    return {{64 * 1024, 64, 2}, {64 * 1024, 128, 2}};
}

std::vector<sim::ITlbSpec>
itlbSpecs()
{
    return {{64, 8 * 1024, 64}, {128, 8 * 1024, 64}};
}

std::vector<mem::HierarchyConfig>
hierarchyConfigs()
{
    return {sim::PlatformParams::sim21364().hierarchy,
            sim::PlatformParams::alpha21164().hierarchy};
}

/** Everything one pass over the suite produces, for bit-comparison. */
struct SuiteResults
{
    std::vector<sim::ICacheReplayResult> icache;
    std::vector<mem::ThreeCStats> threec;
    std::vector<mem::StreamBufferStats> sbuf;
    std::vector<sim::WordStats> words;
    std::vector<sim::ITlbReplayResult> itlb;
    std::vector<sim::HierarchyReplayResult> hier;
    metrics::SequenceStats seq;
    std::uint64_t dyn_instrs = 0;
    double resolve_seconds = 0; ///< resolve phase
    double replay_seconds = 0;  ///< simulator walks only
    double seconds = 0;         ///< total
};

/** How runSuite reaches the simulators. */
enum class SuitePath {
    Oracle,   ///< one scalar Replayer walk per configuration
    FusedAoS, ///< PR 3 engine over the AoS resolved trace
    FusedSoA, ///< direct SoA resolve; `mode` picks the kernels
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

SuiteResults
runSuite(const sim::Replayer& rep, SuitePath path, sim::SimdMode mode,
         support::ThreadPool* pool)
{
    using clock = std::chrono::steady_clock;
    const auto icfg = icacheConfigs();
    const auto tcfg = threeCConfigs();
    const auto scfg = streamConfigs();
    const auto wcfg = instrConfigs();
    const auto specs = itlbSpecs();
    const auto hcfg = hierarchyConfigs();
    const auto filter = sim::StreamFilter::Combined;

    SuiteResults r;
    const auto t0 = clock::now();
    if (path == SuitePath::Oracle) {
        for (const auto& c : icfg)
            r.icache.push_back(rep.icache(c, filter));
        for (const auto& c : tcfg)
            r.threec.push_back(rep.threeCs(c, filter));
        for (const auto& c : scfg)
            r.sbuf.push_back(
                rep.streamBuffer(c, kStreamBuffers, filter));
        for (const auto& c : wcfg)
            r.words.push_back(rep.instrumented(c, filter));
        for (const auto& s : specs)
            r.itlb.push_back(rep.itlb(s, filter));
        for (const auto& h : hcfg)
            r.hier.push_back(rep.hierarchy(h, true, true));
        r.seq = metrics::sequenceLengths(rep.trace(), rep.app(),
                                         trace::ImageId::App);
        r.dyn_instrs = rep.dynamicInstrs(filter);
        r.replay_seconds = seconds(t0, clock::now());
    } else if (path == SuitePath::FusedAoS) {
        sim::ResolvedTrace instr = rep.resolve(filter);
        sim::ResolvedTrace with_data = rep.resolve(filter, true);
        sim::ResolvedTrace app_only =
            rep.resolve(sim::StreamFilter::AppOnly);
        const auto t1 = clock::now();
        r.resolve_seconds = seconds(t0, t1);
        r.icache = sim::replayICache(instr, icfg, pool);
        r.threec = sim::replayThreeCs(instr, tcfg, pool);
        r.sbuf = sim::replayStreamBuffer(instr, scfg, kStreamBuffers,
                                         pool);
        r.words = sim::replayInstrumented(instr, wcfg, false, pool);
        r.itlb = sim::replayITlb(instr, specs, pool);
        r.hier = sim::replayHierarchy(with_data, hcfg, true, pool);
        r.seq = sim::replaySequence(app_only, pool);
        r.dyn_instrs = instr.instrs;
        r.replay_seconds = seconds(t1, clock::now());
    } else {
        sim::ResolvedTraceSoA instr = rep.resolveSoA(filter);
        sim::ResolvedTraceSoA with_data = rep.resolveSoA(filter, true);
        sim::ResolvedTraceSoA app_only =
            rep.resolveSoA(sim::StreamFilter::AppOnly);
        const auto t1 = clock::now();
        r.resolve_seconds = seconds(t0, t1);
        r.icache = sim::replayICache(instr, icfg, mode, pool);
        r.threec = sim::replayThreeCs(instr, tcfg, mode, pool);
        r.sbuf = sim::replayStreamBuffer(instr, scfg, kStreamBuffers,
                                         mode, pool);
        r.words = sim::replayInstrumented(instr, wcfg, false, pool);
        r.itlb = sim::replayITlb(instr, specs, mode, pool);
        r.hier = sim::replayHierarchy(with_data, hcfg, true, pool);
        r.seq = sim::replaySequence(app_only, pool);
        r.dyn_instrs = instr.instrs;
        r.replay_seconds = seconds(t1, clock::now());
    }
    r.seconds = seconds(t0, clock::now());
    return r;
}

template <typename H>
bool
sameHist(const H& a, const H& b)
{
    if (a.numBuckets() != b.numBuckets())
        return false;
    for (std::size_t i = 0; i < a.numBuckets(); ++i)
        if (a.bucket(i) != b.bucket(i))
            return false;
    return true;
}

bool
sameDouble(double a, double b)
{
    return a == b || (std::isnan(a) && std::isnan(b));
}

bool
sameStats(const mem::HierarchyStats& x, const mem::HierarchyStats& y)
{
    return x.l1i.accesses == y.l1i.accesses &&
           x.l1i.misses == y.l1i.misses &&
           x.l1d.accesses == y.l1d.accesses &&
           x.l1d.misses == y.l1d.misses &&
           x.l2i.accesses == y.l2i.accesses &&
           x.l2i.misses == y.l2i.misses &&
           x.l2d.accesses == y.l2d.accesses &&
           x.l2d.misses == y.l2d.misses &&
           x.itlb_misses == y.itlb_misses &&
           x.comm_misses == y.comm_misses;
}

bool
sameICache(const sim::ICacheReplayResult& x,
           const sim::ICacheReplayResult& y)
{
    if (x.accesses != y.accesses || x.misses != y.misses ||
        x.app_misses != y.app_misses ||
        x.kernel_misses != y.kernel_misses)
        return false;
    for (int m = 0; m < 2; ++m)
        for (int v = 0; v < 3; ++v)
            if (x.interference.counts[m][v] !=
                y.interference.counts[m][v])
                return false;
    return true;
}

bool
sameThreeC(const mem::ThreeCStats& x, const mem::ThreeCStats& y)
{
    return x.accesses() == y.accesses() &&
           x.compulsory == y.compulsory && x.capacity == y.capacity &&
           x.conflict == y.conflict;
}

bool
sameSbuf(const mem::StreamBufferStats& x,
         const mem::StreamBufferStats& y)
{
    return x.accesses() == y.accesses() &&
           x.l1Misses() == y.l1Misses() &&
           x.streamHits() == y.streamHits() &&
           x.demandMisses() == y.demandMisses();
}

bool
sameITlb(const sim::ITlbReplayResult& x, const sim::ITlbReplayResult& y)
{
    return x.accesses == y.accesses && x.misses == y.misses;
}

/** Exit non-zero on the first divergence between two suite runs. */
void
compareSuites(const SuiteResults& a, const SuiteResults& b,
              const char* label)
{
    auto check = [&](bool ok, const char* what) {
        if (ok)
            return;
        std::cerr << "[micro_replay] FAIL: " << what << " differs ("
                  << label << ")\n";
        std::exit(1);
    };

    check(a.icache.size() == b.icache.size(), "icache config count");
    for (std::size_t i = 0; i < a.icache.size(); ++i)
        check(sameICache(a.icache[i], b.icache[i]), "icache counts");

    check(a.threec.size() == b.threec.size(), "threeC config count");
    for (std::size_t i = 0; i < a.threec.size(); ++i)
        check(sameThreeC(a.threec[i], b.threec[i]), "threeC counts");

    check(a.sbuf.size() == b.sbuf.size(), "stream config count");
    for (std::size_t i = 0; i < a.sbuf.size(); ++i)
        check(sameSbuf(a.sbuf[i], b.sbuf[i]), "stream buffer counts");

    check(a.words.size() == b.words.size(), "instr config count");
    for (std::size_t i = 0; i < a.words.size(); ++i) {
        const auto& x = a.words[i];
        const auto& y = b.words[i];
        check(sameHist(x.words_used, y.words_used), "words_used");
        check(sameHist(x.word_reuse, y.word_reuse), "word_reuse");
        check(sameHist(x.lifetimes, y.lifetimes), "lifetimes");
        check(sameDouble(x.unused_word_fraction,
                         y.unused_word_fraction),
              "unused_word_fraction");
        check(x.misses == y.misses, "instrumented misses");
    }

    check(a.itlb.size() == b.itlb.size(), "itlb spec count");
    for (std::size_t i = 0; i < a.itlb.size(); ++i)
        check(sameITlb(a.itlb[i], b.itlb[i]), "itlb counts");

    check(a.hier.size() == b.hier.size(), "hierarchy config count");
    for (std::size_t i = 0; i < a.hier.size(); ++i) {
        const auto& x = a.hier[i];
        const auto& y = b.hier[i];
        check(sameStats(x.total, y.total), "hierarchy totals");
        check(x.per_cpu.size() == y.per_cpu.size(),
              "hierarchy per-cpu count");
        for (std::size_t c = 0; c < x.per_cpu.size(); ++c)
            check(sameStats(x.per_cpu[c], y.per_cpu[c]),
                  "hierarchy per-cpu stats");
        check(x.instrs == y.instrs && x.fetch_breaks == y.fetch_breaks,
              "hierarchy instrs/fetch_breaks");
    }

    check(sameHist(a.seq.lengths, b.seq.lengths), "sequence lengths");
    check(sameDouble(a.seq.mean, b.seq.mean), "sequence mean");
    check(sameDouble(a.seq.mean_block_size, b.seq.mean_block_size),
          "sequence mean_block_size");
    check(a.dyn_instrs == b.dyn_instrs, "dynamic instrs");
}

/**
 * Dump every replayed counter of one suite run in a fixed text format.
 * Counters only — no timings, no host facts — so the file is
 * byte-identical across kernels, thread counts, and hosts; the
 * bench_micro_replay_identity ctest diffs a forced-scalar run against
 * an auto-dispatch run through this.
 */
void
writeResults(const std::string& path, const SuiteResults& r)
{
    std::ofstream os(path);
    if (!os)
        support::fatal("cannot write --results-out file " + path);
    os << std::setprecision(17);
    auto hist = [&](const char* name, std::size_t i, const auto& h) {
        os << name << '[' << i << "]:";
        for (std::size_t b = 0; b < h.numBuckets(); ++b)
            os << ' ' << h.bucket(b);
        os << '\n';
    };
    for (std::size_t i = 0; i < r.icache.size(); ++i) {
        const auto& x = r.icache[i];
        os << "icache[" << i << "]: " << x.accesses << ' ' << x.misses
           << ' ' << x.app_misses << ' ' << x.kernel_misses;
        for (int m = 0; m < 2; ++m)
            for (int v = 0; v < 3; ++v)
                os << ' ' << x.interference.counts[m][v];
        os << '\n';
    }
    for (std::size_t i = 0; i < r.threec.size(); ++i) {
        const auto& x = r.threec[i];
        os << "threec[" << i << "]: " << x.accesses() << ' '
           << x.compulsory << ' ' << x.capacity << ' ' << x.conflict
           << '\n';
    }
    for (std::size_t i = 0; i < r.sbuf.size(); ++i) {
        const auto& x = r.sbuf[i];
        os << "sbuf[" << i << "]: " << x.accesses() << ' '
           << x.l1Misses() << ' ' << x.streamHits() << ' '
           << x.demandMisses() << '\n';
    }
    for (std::size_t i = 0; i < r.words.size(); ++i) {
        const auto& x = r.words[i];
        hist("words_used", i, x.words_used);
        hist("word_reuse", i, x.word_reuse);
        hist("lifetimes", i, x.lifetimes);
        os << "unused_word_fraction[" << i
           << "]: " << x.unused_word_fraction << '\n'
           << "instr_misses[" << i << "]: " << x.misses << '\n';
    }
    for (std::size_t i = 0; i < r.itlb.size(); ++i)
        os << "itlb[" << i << "]: " << r.itlb[i].accesses << ' '
           << r.itlb[i].misses << '\n';
    for (std::size_t i = 0; i < r.hier.size(); ++i) {
        const auto& x = r.hier[i];
        auto stats = [&](const char* what, const mem::HierarchyStats& s) {
            os << what << ": " << s.l1i.accesses << ' ' << s.l1i.misses
               << ' ' << s.l1d.accesses << ' ' << s.l1d.misses << ' '
               << s.l2i.accesses << ' ' << s.l2i.misses << ' '
               << s.l2d.accesses << ' ' << s.l2d.misses << ' '
               << s.itlb_misses << ' ' << s.comm_misses << '\n';
        };
        os << "hier[" << i << "] instrs: " << x.instrs
           << " fetch_breaks: " << x.fetch_breaks << '\n';
        stats("hier total", x.total);
        for (std::size_t c = 0; c < x.per_cpu.size(); ++c)
            stats("hier cpu", x.per_cpu[c]);
    }
    hist("seq_lengths", 0, r.seq.lengths);
    os << "seq_mean: " << r.seq.mean << '\n'
       << "seq_mean_block_size: " << r.seq.mean_block_size << '\n'
       << "dyn_instrs: " << r.dyn_instrs << '\n';
}

/** Best-of-N single-thread timing of one replay path. */
template <typename Fn>
double
bestOf(Fn&& fn)
{
    using clock = std::chrono::steady_clock;
    double best = 0;
    for (int i = 0; i < kGridReps; ++i) {
        const auto t0 = clock::now();
        fn();
        const double s = seconds(t0, clock::now());
        if (i == 0 || s < best)
            best = s;
    }
    return best;
}

/** Per-family single-thread column timings for one kernel kind. */
struct FamilyTimes
{
    double icache = 0;
    double threec = 0;
    double sbuf = 0;
    double itlb = 0;
};

sim::SimdMode
modeFor(sim::KernelKind kind)
{
    switch (kind) {
    case sim::KernelKind::Avx2:
        return sim::SimdMode::Simd;
    case sim::KernelKind::Avx512:
        return sim::SimdMode::Avx512;
    default:
        return sim::SimdMode::Scalar;
    }
}

} // namespace

int
main(int argc, char** argv)
{
    bench::ObsRun obs(bench::obsOptionsFromEnv(), argc, argv);
    bench::banner("Replay engine microbenchmark",
                  "per-config oracle vs fused AoS vs SoA kernels "
                  "(bit-identical)");

    std::uint64_t positional[2] = {400, 300};
    int n_positional = 0;
    sim::SimdMode simd_mode = sim::SimdMode::Auto;
    bool skip_unsupported = false;
    std::string results_out;
    auto parseSimd = [](const char* v) {
        if (std::strcmp(v, "0") == 0)
            return sim::SimdMode::Scalar;
        if (std::strcmp(v, "1") == 0)
            return sim::SimdMode::Simd;
        if (std::strcmp(v, "2") == 0)
            return sim::SimdMode::Avx512;
        support::fatal(std::string("--simd must be 0, 1 or 2, got \"") +
                       v + "\"");
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc)
            simd_mode = parseSimd(argv[++i]);
        else if (std::strncmp(argv[i], "--simd=", 7) == 0)
            simd_mode = parseSimd(argv[i] + 7);
        else if (std::strcmp(argv[i], "--skip-unsupported-simd") == 0)
            skip_unsupported = true;
        else if (std::strcmp(argv[i], "--results-out") == 0 &&
                 i + 1 < argc)
            results_out = argv[++i];
        else if (std::strncmp(argv[i], "--results-out=", 14) == 0)
            results_out = argv[i] + 14;
        else if (std::strncmp(argv[i], "--", 2) == 0)
            support::fatal(std::string("unknown flag ") + argv[i] +
                           "; usage: micro_replay [profile_txns] "
                           "[trace_txns] [--simd 0|1|2] "
                           "[--skip-unsupported-simd] "
                           "[--results-out FILE]");
        else if (n_positional < 2)
            positional[n_positional++] =
                static_cast<std::uint64_t>(std::atoll(argv[i]));
    }
    const std::uint64_t profile_txns = positional[0];
    const std::uint64_t trace_txns = positional[1];

    // A forced-but-unrunnable kernel is normally a fatal error (never a
    // silent fallback). The ctest AVX-512 smoke instead passes
    // --skip-unsupported-simd and maps exit 77 to SKIP, recording why.
    if (skip_unsupported) {
        const char* why = nullptr;
        if (simd_mode == sim::SimdMode::Simd && !sim::simdAvailable())
            why = sim::simdKernelsCompiled()
                      ? "host CPU does not report AVX2"
                      : "binary was built without AVX2 support";
        if (simd_mode == sim::SimdMode::Avx512 &&
            !sim::avx512Available())
            why = sim::avx512KernelsCompiled()
                      ? "host CPU does not report AVX512F"
                      : "binary was built without AVX-512 support";
        if (why != nullptr) {
            std::cerr << "[micro_replay] SKIP: requested SIMD kernel "
                         "unavailable: "
                      << why << "\n";
            return 77;
        }
    }
    // Resolve the dispatch once, up front: --simd on a host that cannot
    // run the requested kernels must fail loudly here, not silently
    // fall back mid-run. Auto runs (and caches) the calibration.
    const sim::KernelChoice choice = sim::resolveKernel(simd_mode);
    const char* kernel_name = sim::kernelName(choice.kind);

    sim::SystemConfig config;
    config.num_cpus = 4;
    sim::System system(config);
    std::cerr << "[micro_replay] 4-cpu system: loading...\n";
    system.setup();
    system.warmup(50);
    sim::System::Profiles profiles =
        system.collectProfiles(profile_txns);
    trace::TraceBuffer buf;
    system.run(trace_txns, buf);

    core::PipelineOptions opts;
    opts.combo = core::OptCombo::All;
    opts.text_base = config.app_text_base;
    core::Layout app =
        core::buildLayout(system.appProg(), profiles.app, opts);
    core::Layout kernel = core::baselineLayout(system.kernelProg(),
                                               config.kernel_text_base);
    sim::Replayer rep(buf, app, &kernel);

    const int threads = std::max(1, bench::threadsFromEnv());
    support::ThreadPool pool(threads);

    std::cerr << "[micro_replay] trace: " << buf.size() << " events, "
              << buf.numCpus() << " cpus; kernel " << kernel_name
              << " (" << choice.reason << "); replaying...\n";
    SuiteResults oracle =
        runSuite(rep, SuitePath::Oracle, simd_mode, nullptr);
    SuiteResults fused =
        runSuite(rep, SuitePath::FusedAoS, simd_mode, nullptr);
    SuiteResults parallel =
        runSuite(rep, SuitePath::FusedAoS, simd_mode, &pool);
    SuiteResults soa_scalar =
        runSuite(rep, SuitePath::FusedSoA, sim::SimdMode::Scalar,
                 nullptr);

    compareSuites(oracle, fused, "oracle vs serial fused");
    compareSuites(oracle, parallel, "oracle vs parallel fused");
    compareSuites(oracle, soa_scalar, "oracle vs soa scalar");

    // Which vector kernels get their own comparison rows: --simd 0
    // means a fully scalar run (what bench_micro_replay_scalar_smoke
    // pins), a forced vector mode runs exactly that kernel, and Auto
    // runs every kernel the host can — that is what makes the fig04
    // scalar-vs-vector verdict measurable in one invocation.
    std::vector<sim::KernelKind> vec_kinds;
    if (simd_mode == sim::SimdMode::Auto) {
        if (sim::simdAvailable())
            vec_kinds.push_back(sim::KernelKind::Avx2);
        if (sim::avx512Available())
            vec_kinds.push_back(sim::KernelKind::Avx512);
    } else if (choice.kind != sim::KernelKind::Scalar) {
        vec_kinds.push_back(choice.kind);
    }

    std::vector<SuiteResults> soa_vec(vec_kinds.size());
    for (std::size_t v = 0; v < vec_kinds.size(); ++v) {
        soa_vec[v] = runSuite(rep, SuitePath::FusedSoA,
                              modeFor(vec_kinds[v]), nullptr);
        const std::string label =
            std::string("oracle vs soa ") +
            sim::kernelName(vec_kinds[v]);
        compareSuites(oracle, soa_vec[v], label.c_str());
    }

    // Resolve-phase A/B: the direct column resolve against the PR 6
    // route (AoS resolve, then transpose). Same filter, same output.
    const auto filter = sim::StreamFilter::Combined;
    const double resolve_direct_s =
        bestOf([&] { (void)rep.resolveSoA(filter); });
    const double resolve_transpose_s =
        bestOf([&] { (void)sim::toSoA(rep.resolve(filter)); });
    const double resolve_speedup =
        resolve_transpose_s / resolve_direct_s;

    // Headline: the paper's 25-config direct-mapped grid (Figure 4),
    // single-threaded, resolve excluded — this isolates the replay
    // kernels themselves. PR 3's AoS engine is the baseline the SoA
    // kernels are measured against.
    const auto grid = fig04Grid();
    const sim::ResolvedTrace grid_trace = rep.resolve(filter);
    const sim::ResolvedTraceSoA grid_soa = rep.resolveSoA(filter);
    std::vector<sim::ICacheReplayResult> grid_aos, grid_scalar;
    const double grid_aos_s = bestOf([&] {
        grid_aos = sim::replayICache(grid_trace, grid, nullptr);
    });
    const double grid_scalar_s = bestOf([&] {
        grid_scalar = sim::replayICache(grid_soa, grid,
                                        sim::SimdMode::Scalar, nullptr);
    });
    std::vector<double> grid_vec_s(vec_kinds.size(), 0.0);
    for (std::size_t v = 0; v < vec_kinds.size(); ++v) {
        std::vector<sim::ICacheReplayResult> grid_vec;
        grid_vec_s[v] = bestOf([&] {
            grid_vec = sim::replayICache(grid_soa, grid,
                                         modeFor(vec_kinds[v]), nullptr);
        });
        for (std::size_t i = 0; i < grid.size(); ++i) {
            if (!sameICache(grid_aos[i], grid_vec[i])) {
                std::cerr << "[micro_replay] FAIL: fig04 grid config "
                          << i << " diverges under "
                          << sim::kernelName(vec_kinds[v]) << "\n";
                return 1;
            }
        }
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!sameICache(grid_aos[i], grid_scalar[i])) {
            std::cerr << "[micro_replay] FAIL: fig04 grid config " << i
                      << " diverges across kernels\n";
            return 1;
        }
    }
    const double grid_scalar_speedup = grid_aos_s / grid_scalar_s;

    // Per-family column timings under each kernel, over the same SoA
    // trace: where each family's vector port pays (or, for the
    // FA-LRU-bound iTLB walk, provably cannot).
    const auto icfg = icacheConfigs();
    const auto tcfg = threeCConfigs();
    const auto scfg = streamConfigs();
    const auto specs = itlbSpecs();
    std::vector<sim::KernelKind> all_kinds{sim::KernelKind::Scalar};
    all_kinds.insert(all_kinds.end(), vec_kinds.begin(),
                     vec_kinds.end());
    std::vector<FamilyTimes> family(all_kinds.size());
    for (std::size_t v = 0; v < all_kinds.size(); ++v) {
        const sim::SimdMode m = modeFor(all_kinds[v]);
        family[v].icache = bestOf([&] {
            (void)sim::replayICache(grid_soa, icfg, m, nullptr);
        });
        family[v].threec = bestOf([&] {
            (void)sim::replayThreeCs(grid_soa, tcfg, m, nullptr);
        });
        family[v].sbuf = bestOf([&] {
            (void)sim::replayStreamBuffer(grid_soa, scfg,
                                          kStreamBuffers, m, nullptr);
        });
        family[v].itlb = bestOf([&] {
            (void)sim::replayITlb(grid_soa, specs, m, nullptr);
        });
    }

    double fused_speedup = oracle.seconds / fused.seconds;
    double parallel_speedup = fused.seconds / parallel.seconds;
    double end_to_end = oracle.seconds / parallel.seconds;

    auto phase_row = [](const std::string& name,
                        const SuiteResults& s) {
        std::cout << name << s.seconds << " s (resolve "
                  << s.resolve_seconds << " s + replay "
                  << s.replay_seconds << " s)\n";
    };
    std::cout << "trace events:        " << buf.size() << " ("
              << buf.numCpus() << " cpus)\n"
              << "simd kernel:         " << kernel_name << " ("
              << choice.reason << ")\n"
              << "per-config oracle:   " << oracle.seconds << " s\n";
    phase_row("serial fused (aos):  ", fused);
    std::cout << "parallel fused(aos): " << parallel.seconds << " s ("
              << pool.numThreads() << " threads)\n";
    phase_row("soa scalar:          ", soa_scalar);
    for (std::size_t v = 0; v < vec_kinds.size(); ++v) {
        std::string name =
            std::string("soa ") + sim::kernelName(vec_kinds[v]) + ":";
        name.resize(21, ' ');
        phase_row(name, soa_vec[v]);
    }
    std::cout << "fused speedup:       " << fused_speedup << "x\n"
              << "parallel speedup:    " << parallel_speedup << "x\n"
              << "end-to-end speedup:  " << end_to_end << "x\n"
              << "resolve phase:       direct " << resolve_direct_s
              << " s vs transpose " << resolve_transpose_s << " s ("
              << resolve_speedup << "x)\n"
              << "fig04 grid (25 cfg): aos " << grid_aos_s
              << " s, soa scalar " << grid_scalar_s << " s ("
              << grid_scalar_speedup << "x)";
    for (std::size_t v = 0; v < vec_kinds.size(); ++v)
        std::cout << ", soa " << sim::kernelName(vec_kinds[v]) << " "
                  << grid_vec_s[v] << " s ("
                  << grid_aos_s / grid_vec_s[v] << "x)";
    std::cout << "\nper-family columns (s):\n";
    for (std::size_t v = 0; v < all_kinds.size(); ++v) {
        std::string name = sim::kernelName(all_kinds[v]);
        name.resize(8, ' ');
        std::cout << "  " << name << " icache " << family[v].icache
                  << "  threec " << family[v].threec << "  sbuf "
                  << family[v].sbuf << "  itlb " << family[v].itlb
                  << "\n";
    }
    std::cout << "differential check:  PASS (all simulator families "
                 "bit-identical)\n\n";

    std::ofstream json("BENCH_replay.json");
    json << "{\n"
         << "  \"bench\": \"replay\",\n"
         << "  \"trace_events\": " << buf.size() << ",\n"
         << "  \"trace_cpus\": " << buf.numCpus() << ",\n"
         << "  \"simd_kernel\": \"" << kernel_name << "\",\n"
         << "  \"simd_kernel_reason\": \"" << choice.reason << "\",\n"
         << "  \"avx2_available\": "
         << (sim::simdAvailable() ? "true" : "false") << ",\n"
         << "  \"avx512_available\": "
         << (sim::avx512Available() ? "true" : "false") << ",\n"
         << "  \"oracle_seconds\": " << oracle.seconds << ",\n"
         << "  \"serial_fused_seconds\": " << fused.seconds << ",\n"
         << "  \"serial_fused_resolve_seconds\": "
         << fused.resolve_seconds << ",\n"
         << "  \"serial_fused_replay_seconds\": "
         << fused.replay_seconds << ",\n"
         << "  \"parallel_fused_seconds\": " << parallel.seconds
         << ",\n"
         << "  \"parallel_threads\": " << pool.numThreads() << ",\n"
         << "  \"soa_scalar_seconds\": " << soa_scalar.seconds << ",\n"
         << "  \"soa_scalar_resolve_seconds\": "
         << soa_scalar.resolve_seconds << ",\n"
         << "  \"soa_scalar_replay_seconds\": "
         << soa_scalar.replay_seconds << ",\n";
    for (std::size_t v = 0; v < vec_kinds.size(); ++v) {
        const char* kn = sim::kernelName(vec_kinds[v]);
        json << "  \"soa_" << kn << "_seconds\": "
             << soa_vec[v].seconds << ",\n"
             << "  \"soa_" << kn << "_resolve_seconds\": "
             << soa_vec[v].resolve_seconds << ",\n"
             << "  \"soa_" << kn << "_replay_seconds\": "
             << soa_vec[v].replay_seconds << ",\n";
    }
    json << "  \"fused_vs_per_config\": " << fused_speedup << ",\n"
         << "  \"parallel_vs_serial_fused\": " << parallel_speedup
         << ",\n"
         << "  \"end_to_end_speedup\": " << end_to_end << ",\n"
         << "  \"resolve_direct_seconds\": " << resolve_direct_s
         << ",\n"
         << "  \"resolve_transpose_seconds\": " << resolve_transpose_s
         << ",\n"
         << "  \"resolve_direct_speedup\": " << resolve_speedup
         << ",\n"
         << "  \"icache_grid_configs\": " << grid.size() << ",\n"
         << "  \"icache_grid_aos_seconds\": " << grid_aos_s << ",\n"
         << "  \"icache_grid_soa_scalar_seconds\": " << grid_scalar_s
         << ",\n"
         << "  \"icache_grid_scalar_speedup\": " << grid_scalar_speedup
         << ",\n";
    for (std::size_t v = 0; v < vec_kinds.size(); ++v) {
        const char* kn = sim::kernelName(vec_kinds[v]);
        json << "  \"icache_grid_soa_" << kn << "_seconds\": "
             << grid_vec_s[v] << ",\n"
             << "  \"icache_grid_" << kn << "_speedup\": "
             << grid_aos_s / grid_vec_s[v] << ",\n";
    }
    for (std::size_t v = 0; v < all_kinds.size(); ++v) {
        const char* kn = sim::kernelName(all_kinds[v]);
        json << "  \"family_" << kn << "_icache_seconds\": "
             << family[v].icache << ",\n"
             << "  \"family_" << kn << "_threec_seconds\": "
             << family[v].threec << ",\n"
             << "  \"family_" << kn << "_streambuf_seconds\": "
             << family[v].sbuf << ",\n"
             << "  \"family_" << kn << "_itlb_seconds\": "
             << family[v].itlb << ",\n";
    }
    json << "  \"differential_ok\": true\n"
         << "}\n";
    json.close(); // flush before the manifest embeds it
    std::cout << "wrote BENCH_replay.json\n";
    obs.addArtifactFile("BENCH_replay.json");

    // The identity dump uses the suite replayed under the resolved
    // dispatch: for --simd 0 that is the all-scalar run, otherwise the
    // last (widest) vector run — so diffing a forced-scalar dump
    // against an auto dump compares scalar and vector kernel output
    // across two processes, not just within this one.
    if (!results_out.empty()) {
        writeResults(results_out, soa_vec.empty()
                                      ? soa_scalar
                                      : soa_vec.back());
        std::cout << "wrote " << results_out << "\n";
    }
    return 0;
}
