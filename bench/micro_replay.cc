/**
 * @file
 * Headline microbenchmark for the unified parallel replay engine
 * (sim/engine.hh) and the SoA/SIMD replay kernels (sim/kernels.hh).
 * One multiprocessor trace (4 simulated CPUs) is replayed through
 * every simulator family — i-cache columns with interference
 * attribution, three-C classification, stream buffers, word-granular
 * instrumentation, standalone iTLBs, full hierarchies with the
 * coherence model, sequential-run analysis, and the dynamic
 * instruction count — several ways:
 *
 *   per-config oracle   one scalar Replayer walk per configuration
 *   serial fused        resolve once, AoS engine, no thread pool
 *   parallel fused      resolve once, AoS engine sharded across a pool
 *   soa scalar          resolve + transpose once, SoA engine, scalar
 *                       kernels forced
 *   soa avx2            same, AVX2 kernels forced (when runnable here)
 *
 * All paths must produce bit-identical results (the process exits
 * non-zero on any divergence, which is what the ctest smokes check —
 * bench_micro_replay_smoke with default dispatch and
 * bench_micro_replay_scalar_smoke with SPIKESIM_SIMD=0). Fused rows
 * report their resolve/transpose and replay phases separately: the
 * resolve-once cost is part of what the engine buys (or doesn't)
 * versus re-walking the raw trace per config, but the kernel speedups
 * only show in the replay phase.
 *
 * The headline number is the fig04 grid: the paper's 25-configuration
 * direct-mapped i-cache sweep ({32..512}KB x {16..256}B), replayed
 * single-threaded through the PR 3 AoS engine, the SoA scalar kernel,
 * and the SoA AVX2 kernel. Timings go to BENCH_replay.json.
 * SPIKESIM_THREADS sizes the pool, as in the figure benches.
 *
 * Usage: micro_replay [profile_txns] [trace_txns] [--simd 0|1]
 */

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>

#include "bench/common.hh"
#include "sim/timing.hh"
#include "support/panic.hh"

using namespace spikesim;

namespace {

constexpr int kStreamBuffers = 4;
constexpr int kGridReps = 3; ///< best-of-N for the grid timings

std::vector<mem::CacheConfig>
icacheConfigs()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        configs.push_back({kb * 1024, 128, 4});
    return configs;
}

/** The paper's Figure 4 grid: 25 direct-mapped configurations. */
std::vector<mem::CacheConfig>
fig04Grid()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256, 512})
        for (std::uint32_t line : {16, 32, 64, 128, 256})
            configs.push_back({kb * 1024, line, 1});
    return configs;
}

std::vector<mem::CacheConfig>
threeCConfigs()
{
    std::vector<mem::CacheConfig> configs;
    for (std::uint32_t kb : {32, 64, 128, 256})
        configs.push_back({kb * 1024, 128, 1});
    return configs;
}

std::vector<mem::CacheConfig>
streamConfigs()
{
    return {{8 * 1024, 32, 1}, {64 * 1024, 32, 2}};
}

std::vector<mem::CacheConfig>
instrConfigs()
{
    return {{64 * 1024, 64, 2}, {64 * 1024, 128, 2}};
}

std::vector<sim::ITlbSpec>
itlbSpecs()
{
    return {{64, 8 * 1024, 64}, {128, 8 * 1024, 64}};
}

std::vector<mem::HierarchyConfig>
hierarchyConfigs()
{
    return {sim::PlatformParams::sim21364().hierarchy,
            sim::PlatformParams::alpha21164().hierarchy};
}

/** Everything one pass over the suite produces, for bit-comparison. */
struct SuiteResults
{
    std::vector<sim::ICacheReplayResult> icache;
    std::vector<mem::ThreeCStats> threec;
    std::vector<mem::StreamBufferStats> sbuf;
    std::vector<sim::WordStats> words;
    std::vector<sim::ITlbReplayResult> itlb;
    std::vector<sim::HierarchyReplayResult> hier;
    metrics::SequenceStats seq;
    std::uint64_t dyn_instrs = 0;
    double resolve_seconds = 0; ///< resolve (+ SoA transpose) phase
    double replay_seconds = 0;  ///< simulator walks only
    double seconds = 0;         ///< total
};

/** How runSuite reaches the simulators. */
enum class SuitePath {
    Oracle,   ///< one scalar Replayer walk per configuration
    FusedAoS, ///< PR 3 engine over the AoS resolved trace
    FusedSoA, ///< SoA engine; `mode` picks the i-cache kernel
};

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

SuiteResults
runSuite(const sim::Replayer& rep, SuitePath path, sim::SimdMode mode,
         support::ThreadPool* pool)
{
    using clock = std::chrono::steady_clock;
    const auto icfg = icacheConfigs();
    const auto tcfg = threeCConfigs();
    const auto scfg = streamConfigs();
    const auto wcfg = instrConfigs();
    const auto specs = itlbSpecs();
    const auto hcfg = hierarchyConfigs();
    const auto filter = sim::StreamFilter::Combined;

    SuiteResults r;
    const auto t0 = clock::now();
    if (path == SuitePath::Oracle) {
        for (const auto& c : icfg)
            r.icache.push_back(rep.icache(c, filter));
        for (const auto& c : tcfg)
            r.threec.push_back(rep.threeCs(c, filter));
        for (const auto& c : scfg)
            r.sbuf.push_back(
                rep.streamBuffer(c, kStreamBuffers, filter));
        for (const auto& c : wcfg)
            r.words.push_back(rep.instrumented(c, filter));
        for (const auto& s : specs)
            r.itlb.push_back(rep.itlb(s, filter));
        for (const auto& h : hcfg)
            r.hier.push_back(rep.hierarchy(h, true, true));
        r.seq = metrics::sequenceLengths(rep.trace(), rep.app(),
                                         trace::ImageId::App);
        r.dyn_instrs = rep.dynamicInstrs(filter);
        r.replay_seconds = seconds(t0, clock::now());
    } else if (path == SuitePath::FusedAoS) {
        sim::ResolvedTrace instr = rep.resolve(filter);
        sim::ResolvedTrace with_data = rep.resolve(filter, true);
        sim::ResolvedTrace app_only =
            rep.resolve(sim::StreamFilter::AppOnly);
        const auto t1 = clock::now();
        r.resolve_seconds = seconds(t0, t1);
        r.icache = sim::replayICache(instr, icfg, pool);
        r.threec = sim::replayThreeCs(instr, tcfg, pool);
        r.sbuf = sim::replayStreamBuffer(instr, scfg, kStreamBuffers,
                                         pool);
        r.words = sim::replayInstrumented(instr, wcfg, false, pool);
        r.itlb = sim::replayITlb(instr, specs, pool);
        r.hier = sim::replayHierarchy(with_data, hcfg, true, pool);
        r.seq = sim::replaySequence(app_only, pool);
        r.dyn_instrs = instr.instrs;
        r.replay_seconds = seconds(t1, clock::now());
    } else {
        sim::ResolvedTraceSoA instr = sim::toSoA(rep.resolve(filter));
        sim::ResolvedTraceSoA with_data =
            sim::toSoA(rep.resolve(filter, true));
        sim::ResolvedTraceSoA app_only =
            sim::toSoA(rep.resolve(sim::StreamFilter::AppOnly));
        const auto t1 = clock::now();
        r.resolve_seconds = seconds(t0, t1);
        r.icache = sim::replayICache(instr, icfg, mode, pool);
        r.threec = sim::replayThreeCs(instr, tcfg, pool);
        r.sbuf = sim::replayStreamBuffer(instr, scfg, kStreamBuffers,
                                         pool);
        r.words = sim::replayInstrumented(instr, wcfg, false, pool);
        r.itlb = sim::replayITlb(instr, specs, pool);
        r.hier = sim::replayHierarchy(with_data, hcfg, true, pool);
        r.seq = sim::replaySequence(app_only, pool);
        r.dyn_instrs = instr.instrs;
        r.replay_seconds = seconds(t1, clock::now());
    }
    r.seconds = seconds(t0, clock::now());
    return r;
}

template <typename H>
bool
sameHist(const H& a, const H& b)
{
    if (a.numBuckets() != b.numBuckets())
        return false;
    for (std::size_t i = 0; i < a.numBuckets(); ++i)
        if (a.bucket(i) != b.bucket(i))
            return false;
    return true;
}

bool
sameDouble(double a, double b)
{
    return a == b || (std::isnan(a) && std::isnan(b));
}

bool
sameStats(const mem::HierarchyStats& x, const mem::HierarchyStats& y)
{
    return x.l1i.accesses == y.l1i.accesses &&
           x.l1i.misses == y.l1i.misses &&
           x.l1d.accesses == y.l1d.accesses &&
           x.l1d.misses == y.l1d.misses &&
           x.l2i.accesses == y.l2i.accesses &&
           x.l2i.misses == y.l2i.misses &&
           x.l2d.accesses == y.l2d.accesses &&
           x.l2d.misses == y.l2d.misses &&
           x.itlb_misses == y.itlb_misses &&
           x.comm_misses == y.comm_misses;
}

bool
sameICache(const sim::ICacheReplayResult& x,
           const sim::ICacheReplayResult& y)
{
    if (x.accesses != y.accesses || x.misses != y.misses ||
        x.app_misses != y.app_misses ||
        x.kernel_misses != y.kernel_misses)
        return false;
    for (int m = 0; m < 2; ++m)
        for (int v = 0; v < 3; ++v)
            if (x.interference.counts[m][v] !=
                y.interference.counts[m][v])
                return false;
    return true;
}

/** Exit non-zero on the first divergence between two suite runs. */
void
compareSuites(const SuiteResults& a, const SuiteResults& b,
              const char* label)
{
    auto check = [&](bool ok, const char* what) {
        if (ok)
            return;
        std::cerr << "[micro_replay] FAIL: " << what << " differs ("
                  << label << ")\n";
        std::exit(1);
    };

    check(a.icache.size() == b.icache.size(), "icache config count");
    for (std::size_t i = 0; i < a.icache.size(); ++i)
        check(sameICache(a.icache[i], b.icache[i]), "icache counts");

    check(a.threec.size() == b.threec.size(), "threeC config count");
    for (std::size_t i = 0; i < a.threec.size(); ++i) {
        const auto& x = a.threec[i];
        const auto& y = b.threec[i];
        check(x.accesses() == y.accesses() &&
                  x.compulsory == y.compulsory &&
                  x.capacity == y.capacity &&
                  x.conflict == y.conflict,
              "threeC counts");
    }

    check(a.sbuf.size() == b.sbuf.size(), "stream config count");
    for (std::size_t i = 0; i < a.sbuf.size(); ++i) {
        const auto& x = a.sbuf[i];
        const auto& y = b.sbuf[i];
        check(x.accesses() == y.accesses() &&
                  x.l1Misses() == y.l1Misses() &&
                  x.streamHits() == y.streamHits() &&
                  x.demandMisses() == y.demandMisses(),
              "stream buffer counts");
    }

    check(a.words.size() == b.words.size(), "instr config count");
    for (std::size_t i = 0; i < a.words.size(); ++i) {
        const auto& x = a.words[i];
        const auto& y = b.words[i];
        check(sameHist(x.words_used, y.words_used), "words_used");
        check(sameHist(x.word_reuse, y.word_reuse), "word_reuse");
        check(sameHist(x.lifetimes, y.lifetimes), "lifetimes");
        check(sameDouble(x.unused_word_fraction,
                         y.unused_word_fraction),
              "unused_word_fraction");
        check(x.misses == y.misses, "instrumented misses");
    }

    check(a.itlb.size() == b.itlb.size(), "itlb spec count");
    for (std::size_t i = 0; i < a.itlb.size(); ++i)
        check(a.itlb[i].accesses == b.itlb[i].accesses &&
                  a.itlb[i].misses == b.itlb[i].misses,
              "itlb counts");

    check(a.hier.size() == b.hier.size(), "hierarchy config count");
    for (std::size_t i = 0; i < a.hier.size(); ++i) {
        const auto& x = a.hier[i];
        const auto& y = b.hier[i];
        check(sameStats(x.total, y.total), "hierarchy totals");
        check(x.per_cpu.size() == y.per_cpu.size(),
              "hierarchy per-cpu count");
        for (std::size_t c = 0; c < x.per_cpu.size(); ++c)
            check(sameStats(x.per_cpu[c], y.per_cpu[c]),
                  "hierarchy per-cpu stats");
        check(x.instrs == y.instrs && x.fetch_breaks == y.fetch_breaks,
              "hierarchy instrs/fetch_breaks");
    }

    check(sameHist(a.seq.lengths, b.seq.lengths), "sequence lengths");
    check(sameDouble(a.seq.mean, b.seq.mean), "sequence mean");
    check(sameDouble(a.seq.mean_block_size, b.seq.mean_block_size),
          "sequence mean_block_size");
    check(a.dyn_instrs == b.dyn_instrs, "dynamic instrs");
}

/** Best-of-N single-thread timing of one grid replay path. */
template <typename Fn>
double
bestOf(Fn&& fn)
{
    using clock = std::chrono::steady_clock;
    double best = 0;
    for (int i = 0; i < kGridReps; ++i) {
        const auto t0 = clock::now();
        fn();
        const double s = seconds(t0, clock::now());
        if (i == 0 || s < best)
            best = s;
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::ObsRun obs(bench::obsOptionsFromEnv(), argc, argv);
    bench::banner("Replay engine microbenchmark",
                  "per-config oracle vs fused AoS vs SoA kernels "
                  "(bit-identical)");

    std::uint64_t positional[2] = {400, 300};
    int n_positional = 0;
    sim::SimdMode simd_mode = sim::SimdMode::Auto;
    auto parseSimd = [](const char* v) {
        if (std::strcmp(v, "0") == 0)
            return sim::SimdMode::Scalar;
        if (std::strcmp(v, "1") == 0)
            return sim::SimdMode::Simd;
        support::fatal(std::string("--simd must be 0 or 1, got \"") + v +
                       "\"");
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--simd") == 0 && i + 1 < argc)
            simd_mode = parseSimd(argv[++i]);
        else if (std::strncmp(argv[i], "--simd=", 7) == 0)
            simd_mode = parseSimd(argv[i] + 7);
        else if (std::strncmp(argv[i], "--", 2) == 0)
            support::fatal(std::string("unknown flag ") + argv[i] +
                           "; usage: micro_replay [profile_txns] "
                           "[trace_txns] [--simd 0|1]");
        else if (n_positional < 2)
            positional[n_positional++] =
                static_cast<std::uint64_t>(std::atoll(argv[i]));
    }
    const std::uint64_t profile_txns = positional[0];
    const std::uint64_t trace_txns = positional[1];
    // Resolve the dispatch once, up front: --simd 1 (or SPIKESIM_SIMD=1)
    // on a host that cannot run the AVX2 kernels must fail loudly here,
    // not silently fall back mid-run.
    const bool use_simd = sim::resolveSimd(simd_mode);
    const char* kernel_name = sim::simdKernelName(use_simd);

    sim::SystemConfig config;
    config.num_cpus = 4;
    sim::System system(config);
    std::cerr << "[micro_replay] 4-cpu system: loading...\n";
    system.setup();
    system.warmup(50);
    sim::System::Profiles profiles =
        system.collectProfiles(profile_txns);
    trace::TraceBuffer buf;
    system.run(trace_txns, buf);

    core::PipelineOptions opts;
    opts.combo = core::OptCombo::All;
    opts.text_base = config.app_text_base;
    core::Layout app =
        core::buildLayout(system.appProg(), profiles.app, opts);
    core::Layout kernel = core::baselineLayout(system.kernelProg(),
                                               config.kernel_text_base);
    sim::Replayer rep(buf, app, &kernel);

    const int threads = std::max(1, bench::threadsFromEnv());
    support::ThreadPool pool(threads);

    std::cerr << "[micro_replay] trace: " << buf.size() << " events, "
              << buf.numCpus() << " cpus; kernel " << kernel_name
              << "; replaying...\n";
    SuiteResults oracle =
        runSuite(rep, SuitePath::Oracle, simd_mode, nullptr);
    SuiteResults fused =
        runSuite(rep, SuitePath::FusedAoS, simd_mode, nullptr);
    SuiteResults parallel =
        runSuite(rep, SuitePath::FusedAoS, simd_mode, &pool);
    SuiteResults soa_scalar =
        runSuite(rep, SuitePath::FusedSoA, sim::SimdMode::Scalar,
                 nullptr);

    compareSuites(oracle, fused, "oracle vs serial fused");
    compareSuites(oracle, parallel, "oracle vs parallel fused");
    compareSuites(oracle, soa_scalar, "oracle vs soa scalar");

    // The avx2 comparison rows run only when the resolved dispatch is
    // avx2: --simd 0 / SPIKESIM_SIMD=0 means a fully scalar run (what
    // bench_micro_replay_scalar_smoke pins), not "scalar dispatch plus
    // an avx2 row anyway".
    const bool simd_runnable = use_simd;
    SuiteResults soa_simd;
    if (simd_runnable) {
        soa_simd = runSuite(rep, SuitePath::FusedSoA,
                            sim::SimdMode::Simd, nullptr);
        compareSuites(oracle, soa_simd, "oracle vs soa avx2");
    }

    // Headline: the paper's 25-config direct-mapped grid (Figure 4),
    // single-threaded, resolve/transpose excluded — this isolates the
    // replay kernels themselves. PR 3's AoS engine is the baseline the
    // SoA kernels are measured against.
    const auto grid = fig04Grid();
    const sim::ResolvedTrace grid_trace =
        rep.resolve(sim::StreamFilter::Combined);
    const sim::ResolvedTraceSoA grid_soa = sim::toSoA(grid_trace);
    std::vector<sim::ICacheReplayResult> grid_aos, grid_scalar,
        grid_simd;
    const double grid_aos_s = bestOf([&] {
        grid_aos = sim::replayICache(grid_trace, grid, nullptr);
    });
    const double grid_scalar_s = bestOf([&] {
        grid_scalar = sim::replayICache(grid_soa, grid,
                                        sim::SimdMode::Scalar, nullptr);
    });
    double grid_simd_s = 0;
    if (simd_runnable)
        grid_simd_s = bestOf([&] {
            grid_simd = sim::replayICache(
                grid_soa, grid, sim::SimdMode::Simd, nullptr);
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (!sameICache(grid_aos[i], grid_scalar[i]) ||
            (simd_runnable && !sameICache(grid_aos[i], grid_simd[i]))) {
            std::cerr << "[micro_replay] FAIL: fig04 grid config " << i
                      << " diverges across kernels\n";
            return 1;
        }
    }
    const double grid_scalar_speedup = grid_aos_s / grid_scalar_s;
    const double grid_simd_speedup =
        simd_runnable ? grid_aos_s / grid_simd_s : 0;

    // The suite total is dominated by the two (unfusable-with-anything
    // -else) hierarchy configs; the 5-config i-cache column on its own
    // shows what resolve amortization buys for one family.
    using clock = std::chrono::steady_clock;
    const auto icfg = icacheConfigs();
    auto t0 = clock::now();
    for (const auto& c : icfg)
        (void)rep.icache(c, sim::StreamFilter::Combined);
    auto t1 = clock::now();
    (void)sim::replayICache(grid_soa, icfg, simd_mode, nullptr);
    auto t2 = clock::now();
    double icache_oracle_s = seconds(t0, t1);
    double icache_fused_s = seconds(t1, t2);
    double icache_speedup = icache_oracle_s / icache_fused_s;

    double fused_speedup = oracle.seconds / fused.seconds;
    double parallel_speedup = fused.seconds / parallel.seconds;
    double end_to_end = oracle.seconds / parallel.seconds;

    auto phase_row = [](const char* name, const SuiteResults& s) {
        std::cout << name << s.seconds << " s (resolve "
                  << s.resolve_seconds << " s + replay "
                  << s.replay_seconds << " s)\n";
    };
    std::cout << "trace events:        " << buf.size() << " ("
              << buf.numCpus() << " cpus)\n"
              << "simd kernel:         " << kernel_name
              << (sim::simdAvailable() ? "" : " (avx2 unavailable)")
              << "\n"
              << "per-config oracle:   " << oracle.seconds << " s\n";
    phase_row("serial fused (aos):  ", fused);
    std::cout << "parallel fused(aos): " << parallel.seconds << " s ("
              << pool.numThreads() << " threads)\n";
    phase_row("soa scalar:          ", soa_scalar);
    if (simd_runnable)
        phase_row("soa avx2:            ", soa_simd);
    std::cout << "fused speedup:       " << fused_speedup << "x\n"
              << "parallel speedup:    " << parallel_speedup << "x\n"
              << "end-to-end speedup:  " << end_to_end << "x\n"
              << "icache column:       " << icache_oracle_s
              << " s per-config, " << icache_fused_s << " s fused ("
              << icache_speedup << "x)\n"
              << "fig04 grid (25 cfg): aos " << grid_aos_s
              << " s, soa scalar " << grid_scalar_s << " s ("
              << grid_scalar_speedup << "x)";
    if (simd_runnable)
        std::cout << ", soa avx2 " << grid_simd_s << " s ("
                  << grid_simd_speedup << "x)";
    std::cout << "\ndifferential check:  PASS (all simulator families "
                 "bit-identical)\n\n";

    std::ofstream json("BENCH_replay.json");
    json << "{\n"
         << "  \"bench\": \"replay\",\n"
         << "  \"trace_events\": " << buf.size() << ",\n"
         << "  \"trace_cpus\": " << buf.numCpus() << ",\n"
         << "  \"simd_kernel\": \"" << kernel_name << "\",\n"
         << "  \"simd_available\": "
         << (simd_runnable ? "true" : "false") << ",\n"
         << "  \"oracle_seconds\": " << oracle.seconds << ",\n"
         << "  \"serial_fused_seconds\": " << fused.seconds << ",\n"
         << "  \"serial_fused_resolve_seconds\": "
         << fused.resolve_seconds << ",\n"
         << "  \"serial_fused_replay_seconds\": "
         << fused.replay_seconds << ",\n"
         << "  \"parallel_fused_seconds\": " << parallel.seconds
         << ",\n"
         << "  \"parallel_threads\": " << pool.numThreads() << ",\n"
         << "  \"soa_scalar_seconds\": " << soa_scalar.seconds << ",\n"
         << "  \"soa_scalar_resolve_seconds\": "
         << soa_scalar.resolve_seconds << ",\n"
         << "  \"soa_scalar_replay_seconds\": "
         << soa_scalar.replay_seconds << ",\n";
    if (simd_runnable)
        json << "  \"soa_simd_seconds\": " << soa_simd.seconds << ",\n"
             << "  \"soa_simd_resolve_seconds\": "
             << soa_simd.resolve_seconds << ",\n"
             << "  \"soa_simd_replay_seconds\": "
             << soa_simd.replay_seconds << ",\n";
    json << "  \"fused_vs_per_config\": " << fused_speedup << ",\n"
         << "  \"parallel_vs_serial_fused\": " << parallel_speedup
         << ",\n"
         << "  \"end_to_end_speedup\": " << end_to_end << ",\n"
         << "  \"icache_column_oracle_seconds\": " << icache_oracle_s
         << ",\n"
         << "  \"icache_column_fused_seconds\": " << icache_fused_s
         << ",\n"
         << "  \"icache_column_fused_speedup\": " << icache_speedup
         << ",\n"
         << "  \"icache_grid_configs\": "
         << grid.size() << ",\n"
         << "  \"icache_grid_aos_seconds\": " << grid_aos_s << ",\n"
         << "  \"icache_grid_soa_scalar_seconds\": " << grid_scalar_s
         << ",\n"
         << "  \"icache_grid_scalar_speedup\": " << grid_scalar_speedup
         << ",\n";
    if (simd_runnable)
        json << "  \"icache_grid_soa_simd_seconds\": " << grid_simd_s
             << ",\n"
             << "  \"icache_grid_simd_speedup\": " << grid_simd_speedup
             << ",\n";
    json << "  \"differential_ok\": true\n"
         << "}\n";
    json.close(); // flush before the manifest embeds it
    std::cout << "wrote BENCH_replay.json\n";
    obs.addArtifactFile("BENCH_replay.json");
    return 0;
}
