#ifndef SPIKESIM_BENCH_COMMON_HH
#define SPIKESIM_BENCH_COMMON_HH

#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "core/pipeline.hh"
#include "sim/replay.hh"
#include "sim/system.hh"
#include "support/table.hh"
#include "trace/trace.hh"

/**
 * @file
 * Shared harness for the figure-reproduction benchmarks: runs the OLTP
 * workload once (profile run + measured trace run, mirroring the
 * paper's Pixie profiling followed by SimOS trace collection) and hands
 * each bench the pieces it needs. Workload size is overridable from the
 * command line: `<bench> [--corpus DIR] [profile_txns] [trace_txns]`.
 *
 * When a corpus directory is given (the `--corpus` flag or the
 * SPIKESIM_CORPUS_DIR environment variable), runWorkload() consults the
 * persistent trace/profile cache (sim/corpus.hh): a fingerprint hit
 * skips database load, warmup, profiling, and tracing entirely and the
 * bench starts at replay speed; a miss generates the workload and saves
 * it for every subsequent bench of the sweep. Setting
 * SPIKESIM_CORPUS_VERIFY=1 additionally regenerates the workload from
 * scratch and fatal()s unless the loaded artifacts are bit-identical.
 */

namespace spikesim::bench {

/** Everything a figure bench needs. */
struct Workload
{
    std::unique_ptr<sim::System> system;
    std::optional<sim::System::Profiles> profiles;
    trace::TraceBuffer buf;
    std::uint64_t profile_txns = 0;
    std::uint64_t trace_txns = 0;
    bool db_ready = false; ///< system->setup() has run

    /**
     * Load the database if it is not loaded yet. A corpus hit skips
     * database setup (replaying the trace never touches it); benches
     * that run additional transactions call this first. Note the
     * database then starts fresh rather than in its post-trace state —
     * same as a fresh run's warmup-start.
     */
    void
    ensureDb()
    {
        if (db_ready)
            return;
        system->setup();
        db_ready = true;
    }

    const program::Program& appProg() const { return system->appProg(); }
    const program::Program&
    kernelProg() const
    {
        return system->kernelProg();
    }
    const profile::Profile& appProfile() const { return profiles->app; }
    const profile::Profile&
    kernelProfile() const
    {
        return profiles->kernel;
    }

    /** Build an application layout for the given combination. */
    core::Layout
    appLayout(core::OptCombo combo) const
    {
        core::PipelineOptions opts;
        opts.combo = combo;
        opts.text_base = system->config().app_text_base;
        return core::buildLayout(appProg(), profiles->app, opts);
    }

    /** Kernel baseline layout (the unoptimized kernel binary). */
    core::Layout
    kernelLayout() const
    {
        return core::baselineLayout(kernelProg(),
                                    system->config().kernel_text_base);
    }

    /** Kernel layout optimized with the full pipeline. */
    core::Layout
    kernelOptimizedLayout() const
    {
        core::PipelineOptions opts;
        opts.combo = core::OptCombo::All;
        opts.text_base = system->config().kernel_text_base;
        return core::buildLayout(kernelProg(), profiles->kernel, opts);
    }
};

/**
 * Run the standard workload: build the system, load the database, warm
 * up, profile `profile_txns`, then record a `trace_txns` trace — or
 * load all of it from a corpus cache hit (see the file comment).
 * Malformed command-line arguments (negative, non-numeric, or
 * out-of-range transaction counts, unknown flags) are rejected with
 * fatal() instead of being silently misparsed.
 */
Workload runWorkload(int argc, char** argv,
                     std::uint64_t profile_txns = 800,
                     std::uint64_t trace_txns = 500);

/** Print the bench banner. */
void banner(const std::string& figure, const std::string& what);

/** Print a PAPER vs MEASURED comparison line. */
void paperVsMeasured(const std::string& metric, const std::string& paper,
                     const std::string& measured);

} // namespace spikesim::bench

#endif // SPIKESIM_BENCH_COMMON_HH
